# Convenience targets for the reproduction.

PYTHON ?= python

.PHONY: install test bench report calibrate sweep clean

install:
	$(PYTHON) -m pip install -e . || $(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

report:
	$(PYTHON) -m repro --preset medium report

calibrate:
	$(PYTHON) scripts/calibrate.py medium

sweep:
	$(PYTHON) scripts/seed_sweep.py 5 small

clean:
	rm -rf build *.egg-info .pytest_cache .hypothesis benchmarks/output
	find . -name __pycache__ -type d -exec rm -rf {} +
