# Convenience targets for the reproduction.

PYTHON ?= python

.PHONY: install test lint bench report run-smoke trace-smoke diff-smoke serve-smoke serve-load scale-smoke profile-smoke calibrate sweep clean

install:
	$(PYTHON) -m pip install -e . || $(PYTHON) setup.py develop

# Mirrors the tier-1 verify command exactly.
test:
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} $(PYTHON) -m pytest -x -q

# reprolint: whole-program pass over every invariant family
# (determinism, error discipline, layering, cache integrity, shard
# purity, observability consistency) plus a dump of the import/call
# graph the C4xx/P5xx/O6xx rules reason over.  See docs/linting.md.
lint:
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} $(PYTHON) -m repro.lint src/repro scripts benchmarks --jobs 0 --graph-json build/program-graph.json --dataflow-json build/dataflow-report.json --concurrency-json build/concurrency-report.json --sarif build/reprolint.sarif

# The JSON report (build/bench.json) feeds scripts/bench_to_ledger.py,
# which folds the timing statistics into the run ledger as a
# kind="bench" record (see docs/ledger.md).
bench:
	@if $(PYTHON) -c "import pytest_benchmark" >/dev/null 2>&1; then \
		mkdir -p build; \
		$(PYTHON) -m pytest benchmarks/ --benchmark-only \
			--benchmark-json build/bench.json; \
	else \
		echo "pytest-benchmark is not installed; cannot run benchmarks" >&2; \
		exit 1; \
	fi

report:
	$(PYTHON) -m repro --preset medium report

# Tiny end-to-end engine run: cold fill + warm replay of the artifact
# cache must produce identical headline numbers (see docs/runtime.md).
run-smoke:
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} $(PYTHON) scripts/run_smoke.py

# Traced engine run via `repro run --trace`: the provenance manifest
# must validate with a span and record counts for every stage, and an
# untraced run must agree on every metric (see docs/observability.md).
trace-smoke:
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} $(PYTHON) scripts/trace_smoke.py

# Ledger/diff smoke: two traced `repro run` invocations against one
# cache, then `repro obs diff` between them must report zero
# unexplained drift, both trace-event exports must validate and the
# budget gate must pass/fail correctly (see docs/ledger.md).  Leaves
# the ledger, diff JSON and trace events in build/diff-smoke for CI.
diff-smoke:
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} $(PYTHON) scripts/diff_smoke.py

# Study-service smoke: start `repro serve` on an ephemeral port, submit
# the same small config twice (cold fill, then warm replay with hit
# rate 1.0 on /metrics), assert both SSE streams are well-formed and
# terminal, that the HTTP ledger diff matches `repro obs diff` with
# zero unexplained drift, and that shutdown is clean (see
# docs/service.md).  Leaves the server log, event streams and diff in
# build/serve-smoke for CI.
serve-smoke:
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} $(PYTHON) scripts/serve_smoke.py

# Service load benchmark: concurrent clients vs a warm server; the JSON
# report feeds bench_to_ledger.py --serve-report (serve.requests_per_s
# gauges in the run ledger).
serve-load:
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} $(PYTHON) scripts/serve_load.py

# Columnar record-path smoke: stream a 50k-user synthetic world
# through the vectorized kernels under a hard peak-RSS limit, fold the
# per-stage flows_per_s throughput into a ledger record, and gate it
# against benchmarks/budgets_scale.json (see docs/scaling.md).  Leaves
# the scale report and ledger in build/scale-smoke for CI.
scale-smoke:
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} $(PYTHON) scripts/scale_smoke.py

# Continuous-profiling smoke: profiled cold/warm `repro run --workers 4`
# medium runs (worker span tracks in the trace export, speedscope
# profiles replayed warm, zero unexplained ledger drift), a profiled
# streaming columnar pass that must catch the vectorized kernels, and
# the profile.self_s budget gate against benchmarks/budgets_profile.json
# (see docs/observability.md).  Leaves profiles, reports and the ledger
# in build/profile-smoke for CI.
profile-smoke:
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} $(PYTHON) scripts/profile_smoke.py

calibrate:
	$(PYTHON) scripts/calibrate.py medium

sweep:
	$(PYTHON) scripts/seed_sweep.py 5 small

clean:
	rm -rf build *.egg-info .pytest_cache .hypothesis benchmarks/output
	find . -name __pycache__ -type d -exec rm -rf {} +
