"""Unit tests for the runtime engine's building blocks.

Covers the stage graph's validation and ordering, the worker-count-free
shard partition, the content-addressed cache (keys, salt folding,
corruption handling, the disabled mode) and the executor's argument
validation — everything that does not need a built world.
"""

from __future__ import annotations

import pickle

import pytest

from repro import Study, WorldConfig
from repro.errors import ExecutionError, PipelineError, ValidationError
from repro.io import run_metrics_to_json
from repro.runtime import (
    ArtifactCache,
    ShardAxis,
    StageGraph,
    StageSpec,
    config_digest,
    partition,
)
from repro.runtime.cache import effective_salts
from repro.runtime.executor import ShardExecutor
from repro.runtime.stages import STAGE_GRAPH, STAGE_NAMES


def _spec(name, inputs=(), run=None, version="1"):
    return StageSpec(
        name=name,
        axis=ShardAxis.NONE,
        inputs=tuple(inputs),
        outputs=(),
        plan=lambda world, products: [("all", None)],
        run=run or (lambda world, products, key, payload: None),
        merge=lambda world, products, shards: shards,
        version=version,
    )


class TestPartition:
    def test_covers_contiguously_and_balanced(self):
        blocks = partition(list(range(10)), 4)
        assert blocks == [(0, 3), (3, 6), (6, 8), (8, 10)]
        sizes = [stop - start for start, stop in blocks]
        assert max(sizes) - min(sizes) <= 1

    def test_never_more_shards_than_items(self):
        assert partition([1, 2], 8) == [(0, 1), (1, 2)]
        assert partition([], 8) == []

    def test_pure_function_of_length(self):
        assert partition(list("abcdef"), 3) == partition(list(range(6)), 3)

    def test_rejects_non_positive_target(self):
        with pytest.raises(ValidationError):
            partition([1], 0)


class TestStageGraph:
    def test_rejects_duplicates(self):
        graph = StageGraph()
        graph.add(_spec("a"))
        with pytest.raises(ValidationError):
            graph.add(_spec("a"))

    def test_rejects_forward_references(self):
        graph = StageGraph()
        with pytest.raises(ValidationError):
            graph.add(_spec("b", inputs=("a",)))

    def test_topological_order_filters_to_ancestors(self):
        graph = StageGraph()
        graph.add(_spec("a"))
        graph.add(_spec("b", inputs=("a",)))
        graph.add(_spec("c", inputs=("a",)))
        graph.add(_spec("d", inputs=("b",)))
        assert graph.topological_order() == ("a", "b", "c", "d")
        assert graph.topological_order(["d"]) == ("a", "b", "d")
        assert graph.dependencies_transitive("d") == ("a", "b")

    def test_unknown_stage_lookup(self):
        with pytest.raises(ValidationError):
            StageGraph()["nope"]

    def test_production_graph_shape(self):
        assert STAGE_NAMES == tuple(
            spec.name for spec in STAGE_GRAPH.stages
        )
        # Insertion order must be a valid execution order.
        seen = set()
        for spec in STAGE_GRAPH.stages:
            assert all(dep in seen for dep in spec.inputs)
            seen.add(spec.name)


class TestCacheKeys:
    def test_config_digest_is_value_identity(self):
        assert config_digest(WorldConfig.small()) == config_digest(
            WorldConfig.small()
        )
        assert config_digest(WorldConfig.small()) != config_digest(
            WorldConfig.small(seed=99)
        )

    def test_editing_a_stage_invalidates_dependents_only(self):
        def run_v1(world, products, key, payload):
            return 1

        def run_v2(world, products, key, payload):
            return 2

        def build(middle_run):
            graph = StageGraph()
            graph.add(_spec("a"))
            graph.add(_spec("b", inputs=("a",), run=middle_run))
            graph.add(_spec("c", inputs=("b",)))
            return effective_salts(graph)

        before, after = build(run_v1), build(run_v2)
        assert before["a"] == after["a"]
        assert before["b"] != after["b"]
        assert before["c"] != after["c"]

    def test_version_bump_invalidates(self):
        one = effective_salts_of(_spec("a", version="1"))
        two = effective_salts_of(_spec("a", version="2"))
        assert one != two


def effective_salts_of(spec):
    graph = StageGraph()
    graph.add(spec)
    return effective_salts(graph)[spec.name]


class TestArtifactCache:
    def test_disabled_cache_misses_and_ignores_stores(self):
        cache = ArtifactCache(None)
        assert not cache.enabled
        cache.store("stage", "k", {"x": 1})
        hit, artifact = cache.load("stage", "k")
        assert (hit, artifact) == (False, None)
        assert (cache.hits, cache.misses) == (0, 1)

    def test_roundtrip(self, tmp_path):
        cache = ArtifactCache(str(tmp_path))
        hit, _ = cache.load("stage", "k1")
        assert not hit
        cache.store("stage", "k1", {"x": [1, 2]})
        hit, artifact = cache.load("stage", "k1")
        assert hit and artifact == {"x": [1, 2]}
        assert (cache.hits, cache.misses) == (1, 1)

    def test_corrupt_artifact_is_a_miss(self, tmp_path):
        cache = ArtifactCache(str(tmp_path))
        cache.store("stage", "k1", "fine")
        path = tmp_path / "stage" / "k1.pkl"
        path.write_bytes(path.read_bytes()[:3])
        hit, artifact = cache.load("stage", "k1")
        assert (hit, artifact) == (False, None)
        # And a recompute overwrites it cleanly.
        cache.store("stage", "k1", "fixed")
        assert cache.load("stage", "k1") == (True, "fixed")

    def test_no_temp_files_left_behind(self, tmp_path):
        cache = ArtifactCache(str(tmp_path))
        cache.store("stage", "k1", list(range(100)))
        leftovers = [
            p for p in (tmp_path / "stage").iterdir()
            if not p.name.endswith(".pkl")
        ]
        assert leftovers == []

    def test_key_separates_every_component(self):
        cache = ArtifactCache(None)
        base = cache.key("dig", "salt", "stage", "shard")
        assert base != cache.key("dig2", "salt", "stage", "shard")
        assert base != cache.key("dig", "salt2", "stage", "shard")
        assert base != cache.key("dig", "salt", "stage2", "shard")
        assert base != cache.key("dig", "salt", "stage", "shard2")

    def test_concurrent_stores_of_same_key_never_corrupt(self, tmp_path):
        # The serve job pool runs engine runs on threads of one
        # process, so two threads can store the same artifact key at
        # once.  The per-writer temp suffix (pid + thread id) keeps
        # their write-temp-then-rename slots disjoint: whichever rename
        # lands last, the published artifact is one writer's complete
        # payload, never an interleaving, and no temp files survive.
        import threading

        cache = ArtifactCache(str(tmp_path))
        payload = {"rows": list(range(2000))}
        barrier = threading.Barrier(8)

        def writer():
            barrier.wait()
            for _ in range(25):
                cache.store("stage", "k1", payload)

        threads = [threading.Thread(target=writer) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        hit, artifact = cache.load("stage", "k1")
        assert hit and artifact == payload
        leftovers = [
            p for p in (tmp_path / "stage").iterdir()
            if not p.name.endswith(".pkl")
        ]
        assert leftovers == []


class TestExecutorValidation:
    def test_rejects_non_positive_workers(self):
        with pytest.raises(ExecutionError):
            ShardExecutor(0)

    def test_empty_shard_list(self):
        assert ShardExecutor(2).execute(_spec("a"), None, {}, []) == []


class TestMetricsExport:
    def test_run_metrics_roundtrip(self, tmp_path):
        rows = [
            {"stage": "panel", "shards": 8, "cache_hits": 0,
             "cache_misses": 8, "wall_s": 1.5},
        ]
        path = tmp_path / "metrics.json"
        run_metrics_to_json(rows, path, workers=4, preset="small")
        import json

        payload = json.loads(path.read_text())
        assert payload["stages"] == rows
        assert payload["workers"] == 4
        assert payload["preset"] == "small"


class TestStudyConfigIdentity:
    def test_equal_but_distinct_config_accepted(self, small_world):
        # Regression: Study.__init__ used to compare config identity
        # with `is`, rejecting a value-equal config built separately.
        study = Study(config=WorldConfig.small(), world=small_world)
        assert study.world is small_world

    def test_differing_config_still_rejected(self, small_world):
        with pytest.raises(PipelineError):
            Study(config=WorldConfig.small(seed=99), world=small_world)


def test_shard_products_pickle():
    """Every stage product must survive the process boundary."""
    # A representative check on the picklability assumption the
    # executor's spawn path and the artifact cache both rely on.
    from repro.util.sankey import Sankey

    sankey = Sankey()
    sankey.add("EU 28", "N. America", 3.0)
    clone = pickle.loads(pickle.dumps(sankey))
    assert clone.rows() == sankey.rows()
