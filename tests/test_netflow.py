"""Tests for repro.netflow: records, exporter, traffic, join."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.config import SNAPSHOT_DAYS
from repro.errors import NetFlowError
from repro.netbase.addr import IPAddress, Prefix
from repro.netflow.exporter import FlowExporter, PacketSampler, RouterInterface
from repro.netflow.isps import AccessType, ISPProfile, default_isps
from repro.netflow.join import HashedIPMatcher, TrackerFlowJoin
from repro.netflow.records import PROTO_TCP, PROTO_UDP, FlowRecord


def make_record(src="10.0.0.1", dst="1.0.0.1", dst_port=443,
                protocol=PROTO_TCP, timestamp=1.0):
    return FlowRecord(
        timestamp=timestamp,
        router_id=1,
        interface_id=0,
        protocol=protocol,
        src_ip=IPAddress.parse(src),
        dst_ip=IPAddress.parse(dst),
        src_port=40000,
        dst_port=dst_port,
        tos=0,
        sampled_packets=2,
        sampled_bytes=1200,
    )


class TestFlowRecord:
    def test_web_detection(self):
        assert make_record(dst_port=443).is_web
        assert make_record(dst_port=80).is_web
        assert not make_record(dst_port=8080).is_web

    def test_encrypted_detection(self):
        assert make_record(dst_port=443).is_encrypted
        assert not make_record(dst_port=80).is_encrypted
        assert make_record(dst_port=443, protocol=PROTO_UDP).is_encrypted

    def test_unsupported_protocol(self):
        with pytest.raises(NetFlowError):
            make_record(protocol=1)

    def test_port_range(self):
        with pytest.raises(NetFlowError):
            make_record(dst_port=70000)

    def test_positive_counters(self):
        with pytest.raises(NetFlowError):
            FlowRecord(
                timestamp=0, router_id=1, interface_id=0,
                protocol=PROTO_TCP,
                src_ip=IPAddress.parse("10.0.0.1"),
                dst_ip=IPAddress.parse("1.0.0.1"),
                src_port=1, dst_port=2, tos=0,
                sampled_packets=0, sampled_bytes=1,
            )


class TestPacketSampler:
    def test_rate_one_is_identity(self):
        sampler = PacketSampler(1)
        assert sampler.sample_count(17, random.Random(0)) == 17

    def test_invalid_rate(self):
        with pytest.raises(NetFlowError):
            PacketSampler(0)

    def test_negative_packets(self):
        with pytest.raises(NetFlowError):
            PacketSampler(10).sample_count(-1, random.Random(0))

    def test_estimator_scales(self):
        assert PacketSampler(1000).estimate_total(12) == 12000

    def test_estimator_unbiased_small_flows(self):
        """Horvitz–Thompson estimate averages to the true count."""
        sampler = PacketSampler(10)
        rng = random.Random(42)
        true_packets = 30
        estimates = [
            sampler.estimate_total(sampler.sample_count(true_packets, rng))
            for _ in range(4000)
        ]
        mean = sum(estimates) / len(estimates)
        assert abs(mean - true_packets) < 2.0

    def test_estimator_unbiased_large_flows(self):
        sampler = PacketSampler(100)
        rng = random.Random(7)
        true_packets = 5000
        estimates = [
            sampler.estimate_total(sampler.sample_count(true_packets, rng))
            for _ in range(2000)
        ]
        mean = sum(estimates) / len(estimates)
        assert abs(mean - true_packets) / true_packets < 0.05


class TestFlowExporter:
    def _exporter(self):
        return FlowExporter(
            interfaces=[
                RouterInterface(1, 0, internal_edge=True),
                RouterInterface(1, 1, internal_edge=False),
            ],
            subscriber_space=[Prefix.parse("10.0.0.0/8")],
            sampler=PacketSampler(100),
        )

    def test_requires_internal_interface(self):
        with pytest.raises(NetFlowError):
            FlowExporter(
                interfaces=[RouterInterface(1, 0, internal_edge=False)],
                subscriber_space=[],
                sampler=PacketSampler(1),
            )

    def test_ingress_filtering_drops_spoofed(self):
        exporter = self._exporter()
        legitimate = make_record(src="10.1.2.3")
        spoofed = make_record(src="99.9.9.9", dst="99.9.9.8")
        exported = list(exporter.export([legitimate, spoofed]))
        assert exported == [legitimate]

    def test_pick_interface_internal_only(self):
        exporter = self._exporter()
        rng = random.Random(0)
        assert all(
            exporter.pick_interface(rng).internal_edge for _ in range(20)
        )


class TestISPProfiles:
    def test_table7_profiles(self):
        isps = {isp.name: isp for isp in default_isps()}
        assert isps["DE-Broadband"].country == "DE"
        assert isps["DE-Mobile"].is_mobile
        assert isps["PL"].access is AccessType.MIXED
        assert isps["HU"].subscribers_m >= 6.0

    def test_egress_mix_defaults_to_home(self):
        isp = ISPProfile(
            name="x", country="DE", access=AccessType.MOBILE,
            subscribers_m=1.0, demographics="", web_activity=1.0,
        )
        assert isp.resolved_egress_mix() == {"DE": 1.0}

    def test_hu_egresses_via_vienna(self):
        hu = next(i for i in default_isps() if i.name == "HU")
        assert hu.resolved_egress_mix().get("AT", 0) > 0.5


class TestTrafficSynthesizer:
    def test_snapshot_shape(self, small_world):
        synthesizer = small_world.synthesizers["DE-Broadband"]
        records = synthesizer.snapshot(SNAPSHOT_DAYS["April 4"])
        expected = (
            small_world.config.isp.sampled_flows["DE-Broadband"]
            + small_world.config.isp.background_flows
        )
        assert len(records) == expected
        timestamps = [r.timestamp for r in records]
        assert timestamps == sorted(timestamps)
        day = SNAPSHOT_DAYS["April 4"]
        assert all(day <= t <= day + 1 for t in timestamps)

    def test_port_mix_matches_paper(self, small_world):
        synthesizer = small_world.synthesizers["DE-Broadband"]
        records = synthesizer.snapshot(SNAPSHOT_DAYS["Nov 8"])
        web = sum(1 for r in records if r.is_web)
        encrypted = sum(1 for r in records if r.is_encrypted)
        assert web / len(records) > 0.99
        assert 0.70 < encrypted / len(records) < 0.95

    def test_sources_are_subscribers(self, small_world):
        synthesizer = small_world.synthesizers["HU"]
        records = synthesizer.snapshot(SNAPSHOT_DAYS["Nov 8"])
        prefix = synthesizer.subscriber_prefix
        assert all(r.src_ip in prefix for r in records)

    def test_destinations_are_fleet_servers(self, small_world):
        synthesizer = small_world.synthesizers["PL"]
        records = synthesizer.snapshot(SNAPSHOT_DAYS["Nov 8"])
        fleet = small_world.fleet
        for record in records[:200]:
            assert fleet.server_for_ip(record.dst_ip) is not None


class TestHashedIPMatcher:
    def test_membership_via_hash(self):
        matcher = HashedIPMatcher()
        ip = IPAddress.parse("1.2.3.4")
        matcher.add(ip)
        assert matcher.match(ip, at=0.0) == ip
        assert matcher.match(IPAddress.parse("1.2.3.5"), at=0.0) is None

    def test_window_enforced(self):
        matcher = HashedIPMatcher(window_slack_days=0.0)
        ip = IPAddress.parse("1.2.3.4")
        matcher.add(ip, window=(10.0, 20.0))
        assert matcher.match(ip, at=15.0) == ip
        assert matcher.match(ip, at=5.0) is None
        assert matcher.match(ip, at=25.0) is None

    def test_windows_merge(self):
        matcher = HashedIPMatcher(window_slack_days=0.0)
        ip = IPAddress.parse("1.2.3.4")
        matcher.add(ip, window=(0.0, 5.0))
        matcher.add(ip, window=(10.0, 20.0))
        assert matcher.match(ip, at=7.0) == ip  # merged hull

    def test_none_window_means_always(self):
        matcher = HashedIPMatcher(window_slack_days=0.0)
        ip = IPAddress.parse("1.2.3.4")
        matcher.add(ip, window=(0.0, 5.0))
        matcher.add(ip, window=None)
        assert matcher.match(ip, at=999.0) == ip

    def test_invalid_window(self):
        with pytest.raises(NetFlowError):
            HashedIPMatcher().add(IPAddress.parse("1.2.3.4"), window=(5, 1))


class TestTrackerFlowJoin:
    def test_join_counts_and_destinations(self):
        matcher = HashedIPMatcher()
        tracker = IPAddress.parse("1.0.0.1")
        matcher.add(tracker)
        join = TrackerFlowJoin(
            matcher, locate=lambda ip: "DE" if ip == tracker else None
        )
        records = [
            make_record(dst="1.0.0.1"),
            make_record(dst="1.0.0.1", dst_port=80),
            make_record(dst="9.9.9.9"),
        ]
        result = join.join("ISP", "DE", 1.0, records)
        assert result.matched_flows == 2
        assert result.unmatched_flows == 1
        assert result.per_tracker_ip[tracker] == 2
        assert result.destinations == {"DE": 2}
        assert result.web_share() == 1.0
        assert 0 < result.encrypted_share() < 1

    def test_join_checks_both_endpoints(self):
        matcher = HashedIPMatcher()
        tracker = IPAddress.parse("1.0.0.1")
        matcher.add(tracker)
        join = TrackerFlowJoin(matcher, locate=lambda ip: "DE")
        # Tracker appears as the source (server→user direction).
        record = make_record(src="1.0.0.1", dst="10.0.0.9")
        result = join.join("ISP", "DE", 1.0, [record])
        assert result.matched_flows == 1

    def test_unknown_location_bucketed(self):
        matcher = HashedIPMatcher()
        tracker = IPAddress.parse("1.0.0.1")
        matcher.add(tracker)
        join = TrackerFlowJoin(matcher, locate=lambda ip: None)
        result = join.join("ISP", "DE", 1.0, [make_record(dst="1.0.0.1")])
        assert result.destinations == {"unknown": 1}


@given(
    st.integers(min_value=1, max_value=50),
    st.integers(min_value=0, max_value=200),
    st.integers(min_value=0, max_value=2**31),
)
@settings(max_examples=50)
def test_sample_count_bounded_property(rate, packets, seed):
    sampler = PacketSampler(rate)
    sampled = sampler.sample_count(packets, random.Random(seed))
    assert 0 <= sampled <= packets or (
        packets > 64 and sampled >= 0
    )  # normal approximation may not exceed packets anyway


    def test_window_slack_extends_liveness(self):
        matcher = HashedIPMatcher(window_slack_days=30.0)
        ip = IPAddress.parse("1.2.3.4")
        matcher.add(ip, window=(10.0, 20.0))
        assert matcher.match(ip, at=45.0) == ip
        assert matcher.match(ip, at=55.0) is None

    def test_negative_slack_rejected(self):
        with pytest.raises(NetFlowError):
            HashedIPMatcher(window_slack_days=-1.0)
