"""Unit tests for :mod:`repro.obs.profile` — the sampling profiler.

The sampler runs against hand-built frame objects and a
:class:`TickClock`, so every profile here is byte-deterministic; the
one real-thread test only asserts liveness, not timing.  The
integration with the runtime engine (worker profiles, envelope replay,
ledger gauges) is locked in ``test_runtime_profile.py``.
"""

from __future__ import annotations

import json
import threading
import time

import pytest

from repro.errors import ObservabilityError
from repro.obs import (
    DEFAULT_HZ,
    PROFILE_REPORT_SCHEMA,
    PROFILE_SCHEMA,
    Profile,
    SamplingProfiler,
    TickClock,
    build_report,
    collapsed_text,
    decode_speedscope,
    load_speedscope,
    parse_collapsed,
    report_gauges,
    speedscope_document,
    validate_collapsed,
    validate_speedscope,
    write_speedscope,
)
from repro.obs.profile import (
    MAX_STACK_DEPTH,
    frame_label,
    shorten_path,
    walk_stack,
)


class FakeCode:
    def __init__(self, name, filename, line):
        self.co_name = name
        self.co_filename = filename
        self.co_firstlineno = line


class FakeFrame:
    """Just enough of a frame for :func:`walk_stack`."""

    def __init__(self, name, filename, line, back=None):
        self.f_code = FakeCode(name, filename, line)
        self.f_back = back


def fake_stack(*frames):
    """Build a linked frame chain from (name, file, line) triples,
    root first; returns the *innermost* frame (the frame-source shape)."""
    frame = None
    for name, filename, line in frames:
        frame = FakeFrame(name, filename, line, back=frame)
    return frame


def make_profile(*stacks):
    profile = Profile()
    for frames, weight in stacks:
        profile.add_stack(frames, weight)
    return profile


STACK_A = (("main", "repro/cli.py", 10), ("classify", "repro/core/kernels.py", 59))
STACK_B = (("main", "repro/cli.py", 10), ("locate", "repro/geoloc/ipmap.py", 30))


class TestStackWalking:
    def test_repo_paths_collapse_to_repro_suffix(self):
        assert (
            shorten_path("/root/repo/src/repro/core/kernels.py")
            == "repro/core/kernels.py"
        )

    def test_foreign_paths_keep_last_two_components(self):
        assert (
            shorten_path("/usr/lib/python3.11/urllib/parse.py")
            == "urllib/parse.py"
        )
        assert shorten_path("") == ""

    def test_windows_separators_are_normalized(self):
        assert (
            shorten_path("C:\\repo\\src\\repro\\cli.py") == "repro/cli.py"
        )

    def test_frame_label_is_file_colon_name(self):
        assert frame_label(("classify", "repro/core/kernels.py", 59)) == (
            "repro/core/kernels.py:classify"
        )

    def test_walk_stack_orders_root_first(self):
        frame = fake_stack(
            ("outer", "/root/repo/src/repro/cli.py", 1),
            ("inner", "/root/repo/src/repro/core/kernels.py", 59),
        )
        assert walk_stack(frame) == (
            ("outer", "repro/cli.py", 1),
            ("inner", "repro/core/kernels.py", 59),
        )

    def test_runaway_recursion_is_truncated(self):
        frame = fake_stack(*[("f", "a/b.py", 1)] * (MAX_STACK_DEPTH + 50))
        assert len(walk_stack(frame)) == MAX_STACK_DEPTH


class TestProfile:
    def test_weights_accumulate_per_stack(self):
        profile = make_profile((STACK_A, 100), (STACK_A, 50), (STACK_B, 25))
        assert len(profile) == 2
        assert profile.weight_us == 175
        assert profile.seconds == pytest.approx(175e-6)

    def test_negative_weight_rejected(self):
        with pytest.raises(ObservabilityError, match=">= 0"):
            Profile().add_stack(STACK_A, -1)

    def test_empty_stack_is_a_no_op(self):
        profile = Profile()
        profile.add_stack((), 100)
        assert len(profile) == 0

    def test_merge_is_commutative(self):
        a1 = make_profile((STACK_A, 100), (STACK_B, 7))
        b1 = make_profile((STACK_A, 3), (STACK_B, 11))
        a2 = make_profile((STACK_A, 100), (STACK_B, 7))
        b2 = make_profile((STACK_A, 3), (STACK_B, 11))
        assert a1.merge(b1) == b2.merge(a2)

    def test_merge_is_associative(self):
        def abc():
            return (
                make_profile((STACK_A, 13)),
                make_profile((STACK_A, 5), (STACK_B, 2)),
                make_profile((STACK_B, 99)),
            )

        a, b, c = abc()
        left = a.merge(b).merge(c)
        a, b, c = abc()
        right = a.merge(b.merge(c))
        assert left == right

    def test_dict_round_trip(self):
        profile = make_profile((STACK_A, 100), (STACK_B, 25))
        payload = profile.to_dict()
        assert payload["schema"] == PROFILE_SCHEMA
        assert Profile.from_dict(payload) == profile

    def test_from_dict_rejects_wrong_schema_and_malformed_stacks(self):
        with pytest.raises(ObservabilityError, match="schema"):
            Profile.from_dict({"schema": "nope", "stacks": []})
        with pytest.raises(ObservabilityError, match="malformed"):
            Profile.from_dict(
                {"schema": PROFILE_SCHEMA, "stacks": [{"frames": "x"}]}
            )

    def test_self_vs_total_time(self):
        profile = make_profile((STACK_A, 100), (STACK_B, 25))
        root = ("main", "repro/cli.py", 10)
        assert profile.self_us().get(root) is None  # never a leaf
        assert profile.total_us()[root] == 125

    def test_recursive_frames_count_total_once(self):
        frame = ("f", "a/b.py", 1)
        profile = make_profile(((frame, frame, frame), 40))
        assert profile.total_us() == {frame: 40}
        assert profile.self_us() == {frame: 40}

    def test_function_table_sorted_by_self_time(self):
        profile = make_profile((STACK_A, 100), (STACK_B, 25))
        rows = profile.function_table()
        assert rows[0]["func"] == "repro/core/kernels.py:classify"
        assert rows[0]["share"] == pytest.approx(100 / 125)
        assert profile.function_table(top=1) == rows[:1]

    def test_renderers_cover_empty_and_populated(self):
        assert Profile().render_table() == "(no samples recorded)"
        assert Profile().render_flame() == "(no samples recorded)"
        profile = make_profile((STACK_A, 100), (STACK_B, 25))
        table = profile.render_table(top=1)
        assert "repro/core/kernels.py:classify" in table
        flame = profile.render_flame()
        assert flame.splitlines()[0].startswith("repro/cli.py:main")
        assert "  repro/core/kernels.py:classify" in flame


class TestSampler:
    def test_hz_must_be_positive(self):
        with pytest.raises(ObservabilityError, match="hz"):
            SamplingProfiler(hz=0)

    def test_sample_once_is_deterministic(self):
        def frames():
            return {
                2: fake_stack(("b", "x/b.py", 2)),
                1: fake_stack(("a", "x/a.py", 1)),
            }

        profiler = SamplingProfiler(hz=1000.0, frame_source=frames)
        assert profiler.sample_once() == 2
        expected = make_profile(
            ((("a", "x/a.py", 1),), 1000),
            ((("b", "x/b.py", 2),), 1000),
        )
        assert profiler.snapshot() == expected

    def test_sample_once_excludes_named_threads(self):
        def frames():
            return {1: fake_stack(("a", "x/a.py", 1)),
                    2: fake_stack(("b", "x/b.py", 2))}

        profiler = SamplingProfiler(hz=1000.0, frame_source=frames)
        assert profiler.sample_once(exclude=(2,)) == 1
        assert profiler.snapshot() == make_profile(
            ((("a", "x/a.py", 1),), 1000)
        )

    def test_sample_for_takes_a_deterministic_sample_count(self):
        def frames():
            return {1: fake_stack(("a", "x/a.py", 1))}

        profiler = SamplingProfiler(
            hz=2000.0, frame_source=frames, clock=TickClock(step=1.0)
        )
        # wall readings tick 0,1,2,...: deadline 0+3, samples at 1 and 2.
        profile = profiler.sample_for(3.0)
        assert profile.weight_us == 2 * profiler.period_us

    def test_sample_for_rejects_non_positive_duration(self):
        with pytest.raises(ObservabilityError, match="duration"):
            SamplingProfiler(hz=10.0).sample_for(0)

    def test_start_twice_is_an_error(self):
        profiler = SamplingProfiler(
            hz=1000.0, frame_source=lambda: {}
        )
        profiler.start()
        try:
            with pytest.raises(ObservabilityError, match="already running"):
                profiler.start()
        finally:
            profiler.stop()

    def test_real_thread_sampling_smoke(self):
        profiler = SamplingProfiler(hz=500.0)
        profiler.start()
        deadline = time.monotonic() + 5.0
        try:
            while not len(profiler.snapshot()):
                assert time.monotonic() < deadline, "no samples in 5s"
                threading.Event().wait(0.01)
        finally:
            profile = profiler.stop()
        assert profile.weight_us > 0
        # This very test function is on the sampled main-thread stack.
        assert any(
            name == "test_real_thread_sampling_smoke"
            for stack, _ in profile.stacks()
            for name, _path, _line in stack
        )


class TestCollapsed:
    def test_round_trip_zeroes_line_numbers(self):
        profile = make_profile((STACK_A, 100), (STACK_B, 25))
        text = collapsed_text(profile)
        validate_collapsed(text)
        expected = make_profile(
            (tuple((n, p, 0) for n, p, _ in STACK_A), 100),
            (tuple((n, p, 0) for n, p, _ in STACK_B), 25),
        )
        assert parse_collapsed(text) == expected

    def test_lines_are_sorted_and_weighted(self):
        text = collapsed_text(make_profile((STACK_B, 25), (STACK_A, 100)))
        lines = text.splitlines()
        assert lines == sorted(lines)
        assert lines[0].endswith(" 100")

    def test_empty_profile_is_empty_text(self):
        assert collapsed_text(Profile()) == ""
        validate_collapsed("")

    @pytest.mark.parametrize("bad", [
        "stack_without_weight",
        "frame;frame -3",
        "frame;;frame 10",
        "frame 1.5",
    ])
    def test_malformed_lines_rejected(self, bad):
        with pytest.raises(ObservabilityError):
            validate_collapsed(bad)

    def test_non_text_rejected(self):
        with pytest.raises(ObservabilityError, match="text"):
            validate_collapsed(b"bytes")


class TestSpeedscope:
    def test_document_validates_and_decodes_exactly(self):
        profile = make_profile((STACK_A, 100), (STACK_B, 25))
        document = speedscope_document(profile, name="unit")
        validate_speedscope(document)
        assert document["exporter"] == PROFILE_SCHEMA
        assert document["profiles"][0]["name"] == "unit"
        assert decode_speedscope(document) == profile

    def test_write_and_load_round_trip(self, tmp_path):
        profile = make_profile((STACK_A, 100), (STACK_B, 25))
        path = tmp_path / "profile.json"
        assert write_speedscope(profile, path) == 2
        assert load_speedscope(path) == profile

    def test_load_rejects_garbage(self, tmp_path):
        path = tmp_path / "garbage.json"
        path.write_text("{not json", encoding="utf-8")
        with pytest.raises(ObservabilityError, match="cannot read"):
            load_speedscope(path)
        with pytest.raises(ObservabilityError, match="cannot read"):
            load_speedscope(tmp_path / "missing.json")

    @pytest.mark.parametrize("mutate, message", [
        (lambda d: d.update({"$schema": "x"}), "schema"),
        (lambda d: d["shared"].pop("frames"), "shared.frames"),
        (lambda d: d.update({"profiles": []}), "no 'profiles'"),
        (lambda d: d["profiles"][0].update({"type": "evented"}), "sampled"),
        (lambda d: d["profiles"][0]["weights"].pop(), "weights"),
        (lambda d: d["profiles"][0]["samples"][0].append(99), "outside"),
        (
            lambda d: d["profiles"][0]["weights"].__setitem__(0, -1),
            "non-negative",
        ),
        (
            lambda d: d["profiles"][0]["samples"].__setitem__(0, []),
            "non-empty",
        ),
    ])
    def test_validator_rejects_mutations(self, mutate, message):
        document = speedscope_document(
            make_profile((STACK_A, 100), (STACK_B, 25))
        )
        mutate(document)
        with pytest.raises(ObservabilityError, match=message):
            validate_speedscope(document)

    def test_multi_profile_documents_decode_to_the_union(self):
        a = speedscope_document(make_profile((STACK_A, 100)))
        b = speedscope_document(make_profile((STACK_A, 11), (STACK_B, 25)))
        a["profiles"].extend(b["profiles"])
        a["shared"]["frames"] = b["shared"]["frames"]
        # Frame sets differ, so rebuild profile 0's indices against the
        # union frame table before decoding.
        frames = [
            (f["name"], f["file"], f["line"]) for f in b["shared"]["frames"]
        ]
        a["profiles"][0]["samples"] = [
            [frames.index(frame) for frame in STACK_A]
        ]
        merged = make_profile((STACK_A, 111), (STACK_B, 25))
        assert decode_speedscope(a) == merged

    def test_document_is_json_serializable(self):
        document = speedscope_document(make_profile((STACK_A, 100)))
        assert json.loads(json.dumps(document)) == document


class TestReport:
    def test_report_shape_and_total_row(self):
        report = build_report(
            {"panel": make_profile((STACK_A, 2_000_000), (STACK_B, 500_000))},
            hz=DEFAULT_HZ,
        )
        assert report["schema"] == PROFILE_REPORT_SCHEMA
        assert report["hz"] == DEFAULT_HZ
        stage = report["stages"]["panel"]
        assert stage["seconds"] == pytest.approx(2.5)
        assert stage["stacks"] == 2
        assert stage["self_s"]["_total"] == pytest.approx(2.5)
        assert stage["self_s"]["repro/core/kernels.py:classify"] == (
            pytest.approx(2.0)
        )

    def test_top_bounds_the_hot_set_but_never_total(self):
        report = build_report(
            {"panel": make_profile((STACK_A, 100), (STACK_B, 25))},
            hz=97.0, top=1,
        )
        self_s = report["stages"]["panel"]["self_s"]
        assert set(self_s) == {"_total", "repro/core/kernels.py:classify"}

    def test_empty_stage_still_reports_total(self):
        report = build_report({"panel": Profile()}, hz=97.0)
        assert report["stages"]["panel"]["self_s"] == {"_total": 0.0}

    def test_gauges_key_shape(self):
        report = build_report(
            {"panel": make_profile((STACK_A, 1_000_000))}, hz=97.0
        )
        gauges = report_gauges(report)
        key = "profile.self_s{func=_total,stage=panel}"
        assert gauges[key] == {"kind": "gauge", "value": 1.0}
        assert all(entry["kind"] == "gauge" for entry in gauges.values())
        assert (
            "profile.self_s{func=repro/core/kernels.py:classify,stage=panel}"
            in gauges
        )

    def test_gauges_reject_malformed_reports(self):
        with pytest.raises(ObservabilityError, match="schema"):
            report_gauges({"schema": "nope"})
        with pytest.raises(ObservabilityError, match="stages"):
            report_gauges({"schema": PROFILE_REPORT_SCHEMA})
        with pytest.raises(ObservabilityError, match="_total"):
            report_gauges({
                "schema": PROFILE_REPORT_SCHEMA,
                "stages": {"panel": {"self_s": {}}},
            })
        with pytest.raises(ObservabilityError, match="numeric"):
            report_gauges({
                "schema": PROFILE_REPORT_SCHEMA,
                "stages": {"panel": {"self_s": {"_total": True}}},
            })
