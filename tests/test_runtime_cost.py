"""Static cost footprints in manifests and ledger records.

Cost footprints are computed from the program model, never from the
run, so they must be byte-identical across worker counts and across
cold/warm cache runs.  The diff engine treats a moved cost digest as a
*code* cause (``cost:<stage>``) — the static half of the acceptance
criterion that an injected nested loop shows up as a code change, not
drift.
"""

from __future__ import annotations

from repro import WorldConfig
from repro.obs.diff import diff_records, render_diff_text
from repro.runtime import run_study
from repro.runtime.footprint import stage_costs
from repro.runtime.stages import STAGE_GRAPH, STAGE_NAMES


def cost_digests(manifest) -> dict:
    return {
        name: footprint["digest"]
        for name, footprint in manifest["cost_footprint"].items()
    }


def test_manifest_cost_covers_every_stage():
    run = run_study(WorldConfig.small(), workers=1)
    costs = run.manifest["cost_footprint"]
    assert set(costs) == set(STAGE_NAMES)
    for name, footprint in costs.items():
        assert footprint["digest"], name
        assert footprint["nesting"] >= 1, name
        assert footprint["nesting_class"] in (
            "linear", "quadratic", "polynomial",
        ), name
        assert len(footprint["functions"]) >= 1, name
        assert footprint["hazards"] == 0, name


def test_cost_digests_invariant_across_worker_counts():
    config = WorldConfig.small()
    serial = run_study(config, workers=1)
    fanned = run_study(config, workers=4)
    assert cost_digests(serial.manifest) == cost_digests(fanned.manifest)


def test_cost_digests_invariant_cold_vs_warm_cache(tmp_path):
    config = WorldConfig.small()
    cold = run_study(config, workers=1, cache_dir=str(tmp_path))
    warm = run_study(config, workers=1, cache_dir=str(tmp_path))
    assert cost_digests(cold.manifest) == cost_digests(warm.manifest)
    # The ledger record carries digest-only footprints, shaped for diffing.
    for run in (cold, warm):
        record = run.result.ledger_record
        assert record is not None
        assert record["cost_footprint"] == cost_digests(run.manifest)


def test_stage_costs_resolves_default_graph():
    costs = stage_costs(STAGE_GRAPH)
    assert set(costs) == set(STAGE_NAMES)
    for footprint in costs.values():
        assert len(footprint["digest"]) == 40
    # Stages whose run paths reach the same function set legitimately
    # share a digest (sensitive rides the confinement machinery); every
    # other pair is distinct.
    digests = [footprint["digest"] for footprint in costs.values()]
    assert len(set(digests)) >= len(digests) - 1


def _record(cost: str, value: int) -> dict:
    return {
        "run_id": f"run-{cost}",
        "config": {"digest": "cfg", "seed": 7},
        "workers": 1,
        "salts": {"panel": "salt"},
        "footprints": {"panel": "fp"},
        "rng_lineage": {"panel": "lineage"},
        "cost_footprint": {"panel": cost},
        "stages": [{
            "stage": "panel",
            "shards": 1,
            "cache_hits": 0,
            "cache_misses": 1,
            "wall_s": 0.1,
            "cpu_s": 0.1,
            "metric_keys": ["panel.count"],
        }],
        "metrics": {"panel.count": {"kind": "counter", "value": value}},
    }


def test_diff_classifies_cost_change_as_code_cause():
    diff = diff_records(_record("cost-a", 1), _record("cost-b", 2))
    assert diff.changed_costs == ("panel",)
    assert diff.unexplained() == []
    (delta,) = diff.deltas
    assert delta.classification == "code"
    assert "cost:panel" in delta.caused_by
    assert diff.to_dict()["changed_costs"] == ["panel"]
    assert "changed cost footprints: panel" in render_diff_text(diff)


def test_diff_without_cost_sections_stays_backward_compatible():
    record_a = _record("cost", 1)
    record_b = _record("cost", 1)
    for record in (record_a, record_b):
        del record["cost_footprint"]
    diff = diff_records(record_a, record_b)
    assert diff.changed_costs == ()
    assert diff.deltas == []
