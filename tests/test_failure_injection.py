"""Failure-injection tests: the package must fail loudly and precisely
on malformed inputs, not corrupt results silently."""

import json

import pytest

from repro.core.classify import RequestClassifier
from repro.core.confinement import ConfinementAnalyzer
from repro.core.localization import LocalizationAnalyzer
from repro.core.tracker_ips import TrackerIPInventory
from repro.dnssim.passive import PassiveDNSDatabase
from repro.errors import (
    ClassificationError,
    ConfigError,
    DNSError,
    NXDomainError,
    ReproError,
)
from repro.netbase.addr import IPAddress
from repro.web.browser import BrowserExtensionSimulator
from repro.web.filterlists import FilterList, FilterRule
from repro.web.organizations import ServiceRole
from repro.web.requests import ThirdPartyRequest, tld1_of


class TestClassifierRobustness:
    def _classifier(self):
        return RequestClassifier(FilterList("a"), FilterList("b"))

    def test_empty_log(self):
        result = self._classifier().classify([])
        assert result.requests == [] and result.stages == []

    def test_request_with_hostless_url_fails_loudly(self):
        request = ThirdPartyRequest(
            first_party="s.example", url="not-a-url",
            referrer="https://s.example/", ip=IPAddress.v4(1), user_id=1,
            user_country="DE", day=0.0, https=True,
            truth_role=ServiceRole.COOKIE_SYNC, truth_org="o",
            truth_country="DE", chain_depth=0,
        )
        with pytest.raises(ClassificationError):
            self._classifier().classify([request])

    def test_bad_tld1(self):
        with pytest.raises(ClassificationError):
            tld1_of("")

    def test_malformed_rule_lines_rejected(self):
        filter_list = FilterList("x")
        with pytest.raises(ClassificationError):
            filter_list.add_lines(["||bad/rule^"])
        with pytest.raises(ClassificationError):
            FilterRule.parse("")


class TestWorldConstructionGuards:
    def test_browser_requires_publishers(self, small_world):
        with pytest.raises(ConfigError):
            BrowserExtensionSimulator(
                fleet=small_world.fleet,
                publishers=[],
                users=small_world.users,
                panel_config=small_world.config.panel,
                browsing_config=small_world.config.browsing,
                registry=small_world.registry,
                mapping=small_world.mapping,
                streams=small_world.streams,
            )

    def test_mapping_unknown_fqdn(self, small_world):
        site = small_world.mapping.country_site("DE")
        with pytest.raises(ConfigError):
            small_world.mapping.resolve("missing.example", site, 0.0)

    def test_authority_unknown_zone(self, small_world):
        with pytest.raises(NXDomainError):
            small_world.fleet.authorities.zone_for("x.notreal.zz")

    def test_duplicate_zone_rejected(self, small_world):
        from repro.dnssim.authority import Zone

        existing = small_world.fleet.authorities.zones()[0]
        with pytest.raises(DNSError):
            small_world.fleet.authorities.add(
                Zone(existing.apex, owner="impostor")
            )


class TestAnalysisRobustness:
    def test_confinement_on_empty_log(self):
        analyzer = ConfinementAnalyzer(lambda ip: "DE")
        assert analyzer.continent_sankey([]).total == 0
        assert analyzer.national_confinement([]) == {}
        assert analyzer.overall_destination_shares([]) == {}

    def test_localization_on_empty_inventory(self):
        from repro.cloud.providers import CloudCatalog
        from repro.core.localization import LocalizationScenario

        analyzer = LocalizationAnalyzer(
            inventory=TrackerIPInventory(),
            locate=lambda ip: None,
            clouds=CloudCatalog(),
        )
        outcome = analyzer.evaluate([], LocalizationScenario.DEFAULT)
        assert outcome.n_flows == 0
        assert outcome.country_pct == 0.0

    def test_inventory_queries_on_empty(self):
        inventory = TrackerIPInventory()
        assert inventory.additional_share_pct() == 0.0
        assert inventory.ipv4_share_pct() == 0.0
        assert inventory.single_domain_request_share_pct() == 0.0
        assert inventory.heavy_multi_domain_ips() == []

    def test_pdns_unknown_queries_return_empty(self):
        pdns = PassiveDNSDatabase()
        assert pdns.forward("ghost.example") == []
        assert pdns.reverse(IPAddress.v4(99)) == []
        assert pdns.domains_behind(IPAddress.v4(99)) == set()


class TestSerializationRobustness:
    def test_truncated_json_inventory(self, tmp_path):
        from repro.io import inventory_from_json

        path = tmp_path / "broken.json"
        path.write_text('{"format_version": 1, "records": [{"address":')
        with pytest.raises(json.JSONDecodeError):
            inventory_from_json(path)

    def test_request_record_with_bad_ip(self, tmp_path):
        from repro.io import requests_from_jsonl

        record = {
            "first_party": "s", "url": "https://x.example/", "referrer": "r",
            "ip": "999.999.1.1", "user_id": 1, "user_country": "DE",
            "day": 0.0, "https": True, "truth_role": "cookie_sync",
            "truth_org": "o", "truth_country": "DE", "chain_depth": 0,
        }
        path = tmp_path / "bad.jsonl"
        path.write_text(json.dumps(record) + "\n")
        with pytest.raises(ReproError):
            requests_from_jsonl(path)

    def test_request_record_with_bad_role(self, tmp_path):
        from repro.io import requests_from_jsonl

        record = {
            "first_party": "s", "url": "https://x.example/", "referrer": "r",
            "ip": "1.2.3.4", "user_id": 1, "user_country": "DE",
            "day": 0.0, "https": True, "truth_role": "mind_reading",
            "truth_org": "o", "truth_country": "DE", "chain_depth": 0,
        }
        path = tmp_path / "bad.jsonl"
        path.write_text(json.dumps(record) + "\n")
        with pytest.raises(ReproError):
            requests_from_jsonl(path)
