"""Tests for repro.geoloc: probes, IPmap engine, commercial databases,
comparison tooling."""

import random

import pytest

from repro.geodata.regions import region_of_country
from repro.geoloc.commercial import CommercialGeoDatabase
from repro.geoloc.compare import agreement_matrix, misgeolocation_report
from repro.geoloc.ipmap import IPmapEngine
from repro.geoloc.probes import Probe, ProbeMesh
from repro.netbase.addr import IPAddress


class TestProbeMesh:
    def test_density_profile(self, small_world):
        mesh = small_world.probes
        europe = sum(
            1
            for p in mesh.probes()
            if small_world.registry.get(p.country).continent == "EU"
        )
        us = len(mesh.in_country("US"))
        # Paper: dense in Europe (5K+), substantial in the US (1K+).
        assert europe > 2 * us > 0

    def test_every_country_covered(self, small_world):
        covered = set(small_world.probes.countries())
        assert covered == set(small_world.registry.codes())

    def test_probe_rtt_reflects_distance(self):
        probe = Probe(0, "DE", 52.5, 13.4)
        near = probe.rtt_to(52.5, 13.5)
        far = probe.rtt_to(40.4, -3.7)
        assert near < far

    def test_sample_size_clamped(self, small_world):
        mesh = small_world.probes
        sample = mesh.sample(random.Random(0), 10 ** 6)
        assert len(sample) == len(mesh)

    def test_empty_mesh_rejected(self):
        from repro.errors import GeolocationError

        with pytest.raises(GeolocationError):
            ProbeMesh([])


class TestIPmapEngine:
    def test_region_always_correct_for_servers(self, small_world):
        oracle_ok = 0
        servers = small_world.fleet.servers()[:150]
        for server in servers:
            estimate = small_world.ipmap.geolocate(server.ip)
            if (
                region_of_country(estimate.country)
                is region_of_country(server.country)
            ):
                oracle_ok += 1
        assert oracle_ok / len(servers) > 0.97

    def test_country_mostly_correct(self, small_world):
        servers = small_world.fleet.servers()[:200]
        correct = sum(
            1
            for s in servers
            if small_world.ipmap.locate(s.ip) == s.country
        )
        assert correct / len(servers) > 0.9

    def test_votes_sum_to_voter_count(self, small_world):
        server = small_world.fleet.servers()[0]
        estimate = small_world.ipmap.geolocate(server.ip)
        assert sum(count for _, count in estimate.votes) == IPmapEngine.N_VOTERS
        assert 0 < estimate.country_agreement <= 1.0
        assert estimate.region_agreement >= estimate.country_agreement

    def test_caching(self, small_world):
        server = small_world.fleet.servers()[1]
        first = small_world.ipmap.geolocate(server.ip)
        second = small_world.ipmap.geolocate(server.ip)
        assert first is second

    def test_unknown_address_raises(self, small_world):
        from repro.errors import GeolocationError

        with pytest.raises(GeolocationError):
            small_world.ipmap.geolocate(IPAddress.parse("203.0.113.7"))

    def test_cloud_range_validation_accuracy(self, small_study):
        """Sect. 3.4's AWS/Azure check: near-perfect on cloud ranges."""
        accuracy = small_study.geolocation.validate_ipmap_against_clouds(
            small_study.world.clouds, per_pool_samples=2
        )
        assert accuracy["n"] > 0
        assert accuracy["country_pct"] > 90.0
        assert accuracy["region_pct"] > 97.0


class TestCommercialDatabases:
    def test_eyeball_prefixes_correct(self, small_world):
        plan = small_world.plan
        maxmind = small_world.maxmind
        for record in plan.records_for(kind="eyeball"):
            assert maxmind.prefix_country(record.prefix) == record.country

    def test_infrastructure_biased_to_seat(self, small_world):
        """Most hosting prefixes of US-seated organizations are mapped
        to the US regardless of their true country."""
        plan = small_world.plan
        maxmind = small_world.maxmind
        us_seat_orgs = {
            o.name
            for o in small_world.organizations
            if o.legal_country == "US"
        }
        wrong = total = 0
        for record in plan.records_for(kind="hosting"):
            if record.owner in us_seat_orgs and record.country != "US":
                total += 1
                if maxmind.prefix_country(record.prefix) == "US":
                    wrong += 1
        assert total > 0
        bias = small_world.config.geolocation.commercial_legal_seat_bias
        assert abs(wrong / total - bias) < 0.12

    def test_ip_api_mostly_agrees_with_maxmind(self, small_world):
        plan = small_world.plan
        agree = total = 0
        for record in plan.records():
            total += 1
            if small_world.ip_api.prefix_country(
                record.prefix
            ) == small_world.maxmind.prefix_country(record.prefix):
                agree += 1
        assert agree / total > 0.9

    def test_locate_requires_plan(self):
        database = CommercialGeoDatabase("x", {})
        with pytest.raises(RuntimeError):
            database.locate(IPAddress.parse("1.2.3.4"))

    def test_locate_unknown_space(self, small_world):
        assert small_world.maxmind.locate(
            IPAddress.parse("203.0.113.7")
        ) is None


class TestCompare:
    def test_agreement_matrix_diagonal_is_100(self):
        addresses = [IPAddress.v4(i) for i in range(10)]
        locators = {
            "a": lambda ip: "DE",
            "b": lambda ip: "FR" if int(ip) % 2 else "DE",
        }
        matrix = agreement_matrix(addresses, locators)
        assert matrix[("a", "a")].country_pct == 100.0
        assert matrix[("a", "b")].country_pct == 50.0
        # DE and FR share the EU28 region.
        assert matrix[("a", "b")].region_pct == 100.0

    def test_agreement_symmetric(self):
        addresses = [IPAddress.v4(i) for i in range(10)]
        locators = {
            "a": lambda ip: "DE",
            "b": lambda ip: "US" if int(ip) % 3 else "DE",
        }
        matrix = agreement_matrix(addresses, locators)
        assert matrix[("a", "b")] == matrix[("b", "a")]

    def test_agreement_skips_none(self):
        addresses = [IPAddress.v4(i) for i in range(4)]
        locators = {
            "a": lambda ip: None if int(ip) == 0 else "DE",
            "b": lambda ip: "DE",
        }
        matrix = agreement_matrix(addresses, locators)
        assert matrix[("a", "b")].country_pct == 100.0

    def test_misgeolocation_report(self):
        addresses = [IPAddress.v4(i) for i in range(4)]
        counts = {ip: 10 for ip in addresses}
        row = misgeolocation_report(
            org_label="acme",
            addresses=addresses,
            request_counts=counts,
            tested=lambda ip: "US",
            reference=lambda ip: "DE" if int(ip) < 2 else "US",
        )
        assert row.n_ips == 4
        assert row.wrong_country_ips == 2
        assert row.wrong_country_ip_pct == 50.0
        assert row.wrong_country_requests == 20
        assert row.wrong_region_ips == 2

    def test_misgeolocation_empty(self):
        row = misgeolocation_report(
            "none", [], {}, lambda ip: None, lambda ip: None
        )
        assert row.n_ips == 0
        assert row.wrong_country_ip_pct == 0.0
