"""Tests for the two-stage classifier (repro.core.classify)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.classify import (
    ClassificationResult,
    ClassificationStage,
    RequestClassifier,
    StageStats,
)
from repro.netbase.addr import IPAddress
from repro.web.filterlists import FilterList, FilterRule
from repro.web.organizations import ServiceRole
from repro.web.requests import ThirdPartyRequest


def make_request(
    url: str,
    referrer: str = "https://site.example/",
    first_party: str = "site.example",
    role: ServiceRole = ServiceRole.COOKIE_SYNC,
) -> ThirdPartyRequest:
    return ThirdPartyRequest(
        first_party=first_party,
        url=url,
        referrer=referrer,
        ip=IPAddress.parse("1.0.0.1"),
        user_id=1,
        user_country="DE",
        day=1.0,
        https=True,
        truth_role=role,
        truth_org="org",
        truth_country="DE",
        chain_depth=0,
    )


def classifier_with(*rules: str) -> RequestClassifier:
    easylist = FilterList("easylist")
    for rule in rules:
        easylist.add(FilterRule.parse(rule))
    return RequestClassifier(easylist, FilterList("easyprivacy"))


class TestStage1Lists:
    def test_anchor_match(self):
        classifier = classifier_with("||ads.example^")
        result = classifier.classify([make_request("https://ads.example/x")])
        assert result.stages == [ClassificationStage.LIST]

    def test_no_match(self):
        classifier = classifier_with("||ads.example^")
        result = classifier.classify([make_request("https://clean.example/x")])
        assert result.stages == [ClassificationStage.NONE]


class TestStage2ReferrerClosure:
    def test_direct_promotion(self):
        classifier = classifier_with("||ads.example^")
        root = make_request("https://ads.example/slot")
        child = make_request(
            "https://dmp.example/p?uid=7", referrer=root.url
        )
        result = classifier.classify([root, child])
        assert result.stages == [
            ClassificationStage.LIST, ClassificationStage.REFERRER,
        ]

    def test_transitive_closure_to_fixpoint(self):
        classifier = classifier_with("||ads.example^")
        root = make_request("https://ads.example/slot")
        mid = make_request("https://dmp.example/p?uid=7", referrer=root.url)
        leaf = make_request("https://tr.example/q?sid=9", referrer=mid.url)
        # Order should not matter: present leaf before mid.
        result = classifier.classify([leaf, root, mid])
        assert result.stages[0] is ClassificationStage.REFERRER  # leaf
        assert result.stages[1] is ClassificationStage.LIST      # root
        assert result.stages[2] is ClassificationStage.REFERRER  # mid

    def test_requires_args(self):
        classifier = classifier_with("||ads.example^")
        root = make_request("https://ads.example/slot")
        child = make_request("https://dmp.example/noargs", referrer=root.url)
        result = classifier.classify([root, child])
        assert result.stages[1] is ClassificationStage.NONE

    def test_requires_tracking_referrer(self):
        classifier = classifier_with("||ads.example^")
        orphan = make_request(
            "https://dmp.example/p?uid=7",
            referrer="https://innocent.example/page",
        )
        result = classifier.classify([orphan])
        assert result.stages == [ClassificationStage.NONE]


class TestStage3Keywords:
    def test_keyword_with_args_promoted(self):
        classifier = classifier_with("||ads.example^")
        request = make_request("https://x.example/usermatch?uid=1")
        result = classifier.classify([request])
        assert result.stages == [ClassificationStage.KEYWORD]

    def test_keyword_without_args_not_promoted(self):
        classifier = classifier_with("||ads.example^")
        request = make_request("https://x.example/usermatch")
        result = classifier.classify([request])
        assert result.stages == [ClassificationStage.NONE]

    def test_list_match_takes_precedence(self):
        classifier = classifier_with("||x.example^")
        request = make_request("https://x.example/usermatch?uid=1")
        result = classifier.classify([request])
        assert result.stages == [ClassificationStage.LIST]


class TestClassificationResult:
    def _result(self):
        classifier = classifier_with("||ads.example^")
        requests = [
            make_request("https://ads.example/slot"),
            make_request("https://clean.example/x"),
        ]
        requests.append(
            make_request("https://dmp.example/p?uid=1",
                         referrer=requests[0].url)
        )
        return classifier.classify(requests)

    def test_views_partition(self):
        result = self._result()
        assert len(result.tracking_requests()) == 2
        assert len(result.non_tracking_requests()) == 1
        assert result.n_tracking() == 2

    def test_stats_split(self):
        result = self._result()
        assert result.list_stats().total_requests == 1
        assert result.semi_automatic_stats().total_requests == 1
        assert result.total_stats().total_requests == 2

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            ClassificationResult(
                requests=[make_request("https://a.example/x")], stages=[]
            )

    def test_top_tlds(self):
        result = self._result()
        top = result.top_tlds(5)
        tlds = [t for t, _, _ in top]
        assert "ads.example" in tlds and "dmp.example" in tlds

    def test_per_site_counts(self):
        result = self._result()
        tracking, clean = result.per_site_counts()["site.example"]
        assert (tracking, clean) == (2, 1)

    def test_stage_stats_merge(self):
        first, second = StageStats(), StageStats()
        first.absorb(make_request("https://a.example/x"))
        second.absorb(make_request("https://b.example/y"))
        merged = first.merge(second)
        assert merged.total_requests == 2
        assert merged.fqdns == {"a.example", "b.example"}


class TestOnRealLog:
    def test_classifier_finds_most_tracking(self, small_study):
        """Completeness against ground truth on the simulated panel."""
        result = small_study.classification
        truth = [r.is_tracking_truth for r in result.requests]
        found = [s.is_tracking for s in result.stages]
        true_positives = sum(1 for t, f in zip(truth, found) if t and f)
        false_positives = sum(1 for t, f in zip(truth, found) if not t and f)
        recall = true_positives / sum(truth)
        precision = true_positives / (true_positives + false_positives)
        assert recall > 0.9
        assert precision > 0.97

    def test_semi_stage_mostly_middle_tier(self, small_study):
        """The semi-automatic discoveries skew to chain-only organizations
        (Fig. 3's observation)."""
        fleet = small_study.world.fleet
        from repro.web.organizations import OrgKind

        semi_kinds = set()
        for request, stage in zip(
            small_study.classification.requests,
            small_study.classification.stages,
        ):
            if stage.is_semi_automatic:
                semi_kinds.add(fleet.org(request.truth_org).kind)
        assert OrgKind.DMP in semi_kinds or OrgKind.DSP in semi_kinds


@given(st.data())
@settings(max_examples=30, deadline=None)
def test_adding_rules_is_monotone_property(data):
    """More list rules never classify fewer requests as tracking."""
    domains = ["a.example", "b.example", "c.example"]
    urls = [
        f"https://{domain}/p{'?uid=1' if data.draw(st.booleans()) else ''}"
        for domain in data.draw(
            st.lists(st.sampled_from(domains), min_size=1, max_size=8)
        )
    ]
    requests = [make_request(url) for url in urls]
    subset = data.draw(st.sets(st.sampled_from(domains), max_size=2))
    superset = subset | data.draw(st.sets(st.sampled_from(domains), max_size=3))

    def count(rule_domains):
        classifier = classifier_with(
            *(f"||{domain}^" for domain in sorted(rule_domains))
        )
        return classifier.classify(requests).n_tracking()

    assert count(superset) >= count(subset)
