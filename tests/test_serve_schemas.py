"""Unit tests for :mod:`repro.serve.schemas` — submissions and events.

The submission validator is the service's front door: everything it
lets through lands on the job queue, so every rejection path below is
a 400 the HTTP layer renders, never a crashed job.
"""

from __future__ import annotations

import pytest

from repro.config import WorldConfig
from repro.errors import ConfigError, ServeError
from repro.serve.schemas import (
    EVENT_SCHEMA,
    JOB_SCHEMA,
    config_from_payload,
    config_identity,
    event_payload,
    validate_event,
)


class TestConfigFromPayload:
    def test_empty_body_is_the_small_preset(self):
        assert config_from_payload({}) == WorldConfig.small()

    def test_preset_and_seed(self):
        config = config_from_payload({"preset": "small", "seed": 99})
        assert config == WorldConfig.small(seed=99)

    def test_explicit_schema_accepted(self):
        assert (
            config_from_payload({"schema": JOB_SCHEMA})
            == WorldConfig.small()
        )

    def test_overrides_apply_sparsely(self):
        config = config_from_payload({
            "overrides": {"panel": {"visits_per_user": 3.5}},
        })
        assert config.panel.visits_per_user == 3.5
        # Everything untouched stays at the preset's value.
        assert config.browsing == WorldConfig.small().browsing

    def test_int_typed_knobs_stay_int_through_json(self):
        # JSON has one number type; 50.0 must land as int 50.
        config = config_from_payload({
            "overrides": {"geolocation": {"probes_per_campaign": 50.0}},
        })
        assert config.geolocation.probes_per_campaign == 50
        assert isinstance(config.geolocation.probes_per_campaign, int)

    @pytest.mark.parametrize("payload, fragment", [
        ([1, 2], "must be a JSON object"),
        ({"presett": "small"}, "unknown submission key"),
        ({"schema": "repro.serve/job/v0"}, "unsupported submission schema"),
        ({"preset": "gigantic"}, "unknown preset"),
        ({"seed": "7"}, "seed must be an integer"),
        ({"seed": True}, "seed must be an integer"),
        ({"overrides": [1]}, "overrides must be a JSON object"),
        ({"overrides": {"dns": {}}}, "unknown override section"),
        ({"overrides": {"panel": [1]}}, "must be an object"),
        ({"overrides": {"panel": {"n_userz": 1}}}, "unknown override field"),
        (
            {"overrides": {"panel": {"visits_per_user": "many"}}},
            "must be float-compatible",
        ),
        (
            {"overrides": {"geolocation": {"probes_per_campaign": True}}},
            "must be int-compatible",
        ),
    ])
    def test_rejections_name_the_offender(self, payload, fragment):
        with pytest.raises(ServeError) as excinfo:
            config_from_payload(payload)
        assert fragment in str(excinfo.value)

    def test_section_consistency_checks_still_apply(self):
        # The assembled config re-runs __post_init__ — an override that
        # breaks a cross-field invariant is a ConfigError (also a 400).
        with pytest.raises(ConfigError):
            config_from_payload({"overrides": {"panel": {"n_users": 41}}})

    def test_config_identity(self):
        config = config_from_payload({"seed": 5})
        assert config_identity(config) == (config.digest(), 5)


class TestEvents:
    def test_payload_round_trips_validation(self):
        payload = event_payload("job:queued", "abc123", 0, {"state": "queued"})
        assert payload["schema"] == EVENT_SCHEMA
        validate_event(payload)

    def test_unknown_event_name_rejected_at_both_ends(self):
        with pytest.raises(ServeError):
            event_payload("job:paused", "abc123", 0, {})
        good = event_payload("job:done", "abc123", 3, {})
        with pytest.raises(ServeError):
            validate_event(dict(good, event="job:paused"))

    @pytest.mark.parametrize("mutation", [
        lambda e: e.pop("job_id"),
        lambda e: e.update(schema="repro.serve/event/v0"),
        lambda e: e.update(seq=-1),
        lambda e: e.update(seq=True),
        lambda e: e.update(seq="0"),
        lambda e: e.update(data=[1]),
    ])
    def test_malformed_events_rejected(self, mutation):
        payload = event_payload("span:end", "abc123", 2, {"wall_s": 0.1})
        mutation(payload)
        with pytest.raises(ServeError):
            validate_event(payload)

    def test_non_mapping_rejected(self):
        with pytest.raises(ServeError):
            validate_event("job:done")
