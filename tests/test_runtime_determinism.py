"""Tier-1 determinism guarantees of the runtime engine.

The engine's contract is that the headline numbers — Table 2's
classification counts and Fig. 7's EU28 destination shares — are
byte-identical regardless of (a) how many workers execute the shards
and (b) whether the shards ran live or replayed from the artifact
cache.  Three full engine runs over ``WorldConfig.small()`` are shared
module-wide; every comparison below is exact equality, no tolerances.
"""

from __future__ import annotations

import pytest

from repro import WorldConfig
from repro.runtime import run_study
from repro.runtime.stages import STAGE_NAMES


def headline(run):
    """The numbers the paper leads with, in exactly comparable form."""
    return {
        "table2": run.table2_counts(),
        "fig7_ipmap": run.eu28_destination_regions("RIPE IPmap"),
        "fig7_maxmind": run.eu28_destination_regions("MaxMind"),
        "table5": [
            (row.scenario.name, row.n_flows, row.country_pct, row.region_pct)
            for row in run.scenario_table()
        ],
        "sensitive": run.sensitive_summary(),
        "table8": {
            key: (
                report.sampled_tracking_flows,
                report.estimated_tracking_flows,
                report.region_shares,
                report.destination_countries,
            )
            for key, report in run.isp_reports().items()
        },
    }


@pytest.fixture(scope="module")
def engine_config():
    return WorldConfig.small()


@pytest.fixture(scope="module")
def serial_run(engine_config):
    return run_study(engine_config, workers=1)


@pytest.fixture(scope="module")
def cache_dir(tmp_path_factory):
    return str(tmp_path_factory.mktemp("artifact-cache"))


@pytest.fixture(scope="module")
def parallel_cold_run(engine_config, cache_dir):
    return run_study(engine_config, workers=4, cache_dir=cache_dir)


@pytest.fixture(scope="module")
def parallel_warm_run(engine_config, cache_dir, parallel_cold_run):
    return run_study(engine_config, workers=4, cache_dir=cache_dir)


class TestShardCountInvariance:
    def test_workers_1_vs_4_identical(self, serial_run, parallel_cold_run):
        assert headline(serial_run) == headline(parallel_cold_run)

    def test_all_stages_ran(self, serial_run):
        assert tuple(serial_run.products) == STAGE_NAMES


class TestCacheReplayInvariance:
    def test_cold_vs_warm_identical(self, parallel_cold_run, parallel_warm_run):
        assert headline(parallel_cold_run) == headline(parallel_warm_run)

    def test_cold_run_was_all_misses(self, parallel_cold_run):
        assert parallel_cold_run.cache_hits == 0
        assert parallel_cold_run.cache_misses > 0

    def test_warm_run_skips_every_stage(self, parallel_warm_run):
        assert parallel_warm_run.cache_hits > 0
        assert parallel_warm_run.cache_misses == 0
        for metrics in parallel_warm_run.result.metrics.values():
            assert metrics.executed_shards == 0, metrics.name

    def test_warm_hits_cover_every_shard(
        self, parallel_cold_run, parallel_warm_run
    ):
        assert (
            parallel_warm_run.cache_hits == parallel_cold_run.cache_misses
        )


class TestHydratedStudyConsistency:
    def test_study_reads_engine_products(self, serial_run):
        study = serial_run.study()
        # The hydrated study must report the engine's numbers, not a
        # recomputation of the lazy path.
        totals = serial_run.table2_counts()["total"]
        stats = study.classification.total_stats()
        assert stats.total_requests == totals["total_requests"]
        assert len(stats.fqdns) == totals["fqdns"]
        assert study.inventory is serial_run.products["inventory"]
        assert (
            study.eu28_destination_regions("RIPE IPmap")
            == serial_run.eu28_destination_regions("RIPE IPmap")
        )
