"""Tier-1 determinism guarantees of the runtime engine.

The engine's contract is that the headline numbers — Table 2's
classification counts and Fig. 7's EU28 destination shares — are
byte-identical regardless of (a) how many workers execute the shards
and (b) whether the shards ran live or replayed from the artifact
cache.  Three full engine runs over ``WorldConfig.small()`` are shared
module-wide; every comparison below is exact equality, no tolerances.
"""

from __future__ import annotations

import pytest

from repro import WorldConfig
from repro.obs import TickClock, Tracer, validate_manifest
from repro.runtime import run_study
from repro.runtime.stages import STAGE_NAMES


def headline(run):
    """The numbers the paper leads with, in exactly comparable form."""
    return {
        "table2": run.table2_counts(),
        "fig7_ipmap": run.eu28_destination_regions("RIPE IPmap"),
        "fig7_maxmind": run.eu28_destination_regions("MaxMind"),
        "table5": [
            (row.scenario.name, row.n_flows, row.country_pct, row.region_pct)
            for row in run.scenario_table()
        ],
        "sensitive": run.sensitive_summary(),
        "table8": {
            key: (
                report.sampled_tracking_flows,
                report.estimated_tracking_flows,
                report.region_shares,
                report.destination_countries,
            )
            for key, report in run.isp_reports().items()
        },
    }


@pytest.fixture(scope="module")
def engine_config():
    return WorldConfig.small()


@pytest.fixture(scope="module")
def serial_run(engine_config):
    return run_study(engine_config, workers=1)


@pytest.fixture(scope="module")
def cache_dir(tmp_path_factory):
    return str(tmp_path_factory.mktemp("artifact-cache"))


@pytest.fixture(scope="module")
def parallel_cold_run(engine_config, cache_dir):
    return run_study(engine_config, workers=4, cache_dir=cache_dir)


@pytest.fixture(scope="module")
def parallel_warm_run(engine_config, cache_dir, parallel_cold_run):
    return run_study(engine_config, workers=4, cache_dir=cache_dir)


class TestShardCountInvariance:
    def test_workers_1_vs_4_identical(self, serial_run, parallel_cold_run):
        assert headline(serial_run) == headline(parallel_cold_run)

    def test_all_stages_ran(self, serial_run):
        assert tuple(serial_run.products) == STAGE_NAMES


class TestCacheReplayInvariance:
    def test_cold_vs_warm_identical(self, parallel_cold_run, parallel_warm_run):
        assert headline(parallel_cold_run) == headline(parallel_warm_run)

    def test_cold_run_was_all_misses(self, parallel_cold_run):
        assert parallel_cold_run.cache_hits == 0
        assert parallel_cold_run.cache_misses > 0

    def test_warm_run_skips_every_stage(self, parallel_warm_run):
        assert parallel_warm_run.cache_hits > 0
        assert parallel_warm_run.cache_misses == 0
        for metrics in parallel_warm_run.result.metrics.values():
            assert metrics.executed_shards == 0, metrics.name

    def test_warm_hits_cover_every_shard(
        self, parallel_cold_run, parallel_warm_run
    ):
        assert (
            parallel_warm_run.cache_hits == parallel_cold_run.cache_misses
        )


@pytest.fixture(scope="module")
def traced_run(engine_config):
    # A deterministic clock: the resulting spans are byte-stable, so
    # this fixture doubles as the traced-vs-untraced comparison run and
    # the manifest-content lock.
    return run_study(engine_config, workers=1, tracer=Tracer(TickClock()))


class TestObservabilityInvariance:
    def test_traced_vs_untraced_identical(self, serial_run, traced_run):
        # Tracing must be a pure observer: same study products whether
        # or not a tracer recorded the run.
        assert headline(serial_run) == headline(traced_run)

    def test_registry_identical_1_vs_4_workers(
        self, serial_run, parallel_cold_run
    ):
        # Timing lives only in spans, counters only count work — so the
        # merged registry snapshot is exactly equal across worker
        # counts.  (The uncached serial run and the cold cached run both
        # miss every shard, so even the cache counters agree.)
        assert (
            serial_run.result.registry.to_dict()
            == parallel_cold_run.result.registry.to_dict()
        )

    def test_shard_metrics_replay_from_cache(
        self, parallel_cold_run, parallel_warm_run
    ):
        # The warm run executed zero shards, yet its registry carries
        # the same shard-level metrics — replayed from cache envelopes.
        # Only the runtime's own cache/executed counters may differ.
        def non_runtime(snapshot):
            return {
                key: value
                for key, value in snapshot.items()
                if not key.startswith("runtime.")
            }

        assert non_runtime(
            parallel_cold_run.result.registry.to_dict()
        ) == non_runtime(parallel_warm_run.result.registry.to_dict())

    def test_manifest_valid_with_all_stage_spans(self, traced_run):
        manifest = traced_run.manifest
        validate_manifest(manifest)
        assert [s["stage"] for s in manifest["stages"]] == list(STAGE_NAMES)
        span_names = {span["name"] for span in manifest["spans"]}
        for stage in STAGE_NAMES:
            assert f"stage:{stage}" in span_names
        assert "run" in span_names and "world:build" in span_names

    def test_manifest_record_counts_match_products(self, traced_run):
        by_stage = {s["stage"]: s for s in traced_run.manifest["stages"]}
        panel = traced_run.products["panel"]
        assert by_stage["panel"]["records_out"] == {
            "visits": len(panel["visits"]),
            "requests": len(panel["requests"]),
            "pdns_pairs": len(panel["pdns_pairs"]),
        }
        assert by_stage["classification"]["records_in"]["panel"] == (
            by_stage["panel"]["records_out"]
        )

    def test_span_nesting_is_well_formed(self, traced_run):
        spans = traced_run.manifest["spans"]
        assert spans[0]["name"] == "run" and spans[0]["parent"] is None
        for span in spans[1:]:
            parent = spans[span["parent"]]
            assert span["depth"] == parent["depth"] + 1
            # TickClock stamps are strictly ordered, so every child
            # opens at or after its parent and closes before it.
            assert span["wall_s"] >= 0

    def test_untraced_run_records_nothing(self, serial_run):
        assert serial_run.trace_report() == "(tracing disabled)"
        assert serial_run.result.tracer.rows() == []


class TestHydratedStudyConsistency:
    def test_study_reads_engine_products(self, serial_run):
        study = serial_run.study()
        # The hydrated study must report the engine's numbers, not a
        # recomputation of the lazy path.
        totals = serial_run.table2_counts()["total"]
        stats = study.classification.total_stats()
        assert stats.total_requests == totals["total_requests"]
        assert len(stats.fqdns) == totals["fqdns"]
        assert study.inventory is serial_run.products["inventory"]
        assert (
            study.eu28_destination_regions("RIPE IPmap")
            == serial_run.eu28_destination_regions("RIPE IPmap")
        )


class TestLedgerIntegration:
    # The acceptance criterion for the run ledger: two identical-config
    # runs (cold then warm, same cache dir) diff to zero unexplained
    # drift — every delta classifies as cache behaviour.

    def test_cached_runs_append_ledger_records(
        self, cache_dir, parallel_cold_run, parallel_warm_run
    ):
        from repro.obs import ledger_path, load_ledger

        records = load_ledger(ledger_path(cache_dir))
        assert [r["run_id"] for r in records] == [
            parallel_cold_run.ledger_record["run_id"],
            parallel_warm_run.ledger_record["run_id"],
        ]
        assert [r["seq"] for r in records] == [0, 1]
        for record in records:
            assert [s["stage"] for s in record["stages"]] == list(STAGE_NAMES)
            # The ownership map the diff engine attributes domain
            # metrics with: instrumented stages list the registry keys
            # their shards touched, and only keys the run recorded.
            owned = {
                key for s in record["stages"] for key in s["metric_keys"]
            }
            assert owned and owned <= set(record["metrics"])

    def test_uncached_run_appends_nothing(self, serial_run):
        assert serial_run.ledger_record is None

    def test_cold_vs_warm_diff_has_zero_drift(
        self, parallel_cold_run, parallel_warm_run
    ):
        from repro.obs import diff_records

        diff = diff_records(
            parallel_cold_run.ledger_record,
            parallel_warm_run.ledger_record,
        )
        assert not diff.config_changed
        assert diff.changed_salts == ()
        assert diff.unexplained() == []
        counts = diff.counts()
        assert counts["cache"] > 0 and counts["drift"] == 0

    def test_trace_report_summarizes_histograms(self, traced_run):
        report = traced_run.trace_report()
        assert "p50" in report and "p95" in report
        assert "ipmap.country_agreement" in report
