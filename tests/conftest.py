"""Shared fixtures.

The small world / study are expensive enough (seconds) that they are
built once per test session and shared read-only across test modules.
Tests that mutate state build their own objects.
"""

from __future__ import annotations

import pytest

from repro import Study, WorldConfig
from repro.datasets.builder import World, build_world


@pytest.fixture(scope="session")
def small_config() -> WorldConfig:
    return WorldConfig.small()


@pytest.fixture(scope="session")
def small_world(small_config: WorldConfig) -> World:
    return build_world(small_config)


@pytest.fixture(scope="session")
def small_study(small_world: World) -> Study:
    study = Study(world=small_world)
    study.run_all()
    return study
