"""Shared fixtures.

The small world / study are expensive enough (seconds) that they are
built once per test session and shared read-only across test modules.
Tests that mutate state build their own objects.
"""

from __future__ import annotations

import pytest

from repro import Study, WorldConfig
from repro.datasets.builder import World, build_world
from repro.geodata.countries import default_registry


@pytest.fixture(scope="session")
def small_config() -> WorldConfig:
    return WorldConfig.small()


@pytest.fixture(scope="session")
def synthetic_locate():
    """A deterministic, call-order-independent locator.

    Spreads destinations over the country registry by address value and
    leaves every ninth address unlocatable (the ``unknown`` bucket).
    The columnar equivalence tests need call-order independence — the
    real serial geolocation engine's draws are order-dependent by
    design, which would conflate locator state with record-path
    behavior.
    """
    codes = sorted(default_registry().codes())

    def locate(address):
        if address.value % 9 == 0:
            return None
        return codes[address.value % len(codes)]

    return locate


@pytest.fixture(scope="session")
def small_world(small_config: WorldConfig) -> World:
    return build_world(small_config)


@pytest.fixture(scope="session")
def small_study(small_world: World) -> Study:
    study = Study(world=small_world)
    study.run_all()
    return study
