"""Tests for tracker-IP inventory (Sect. 3.3) and confinement (Sect. 4)."""

import pytest

from repro.core.confinement import ConfinementAnalyzer
from repro.core.tracker_ips import TrackerIPInventory
from repro.dnssim.passive import PassiveDNSDatabase
from repro.geodata.regions import Region
from repro.netbase.addr import IPAddress
from repro.web.organizations import ServiceRole
from repro.web.requests import ThirdPartyRequest


def make_request(ip_text: str, fqdn: str = "sync.t.example",
                 user_country: str = "DE", user_id: int = 1):
    return ThirdPartyRequest(
        first_party="site.example",
        url=f"https://{fqdn}/p?uid=1",
        referrer="https://site.example/",
        ip=IPAddress.parse(ip_text),
        user_id=user_id,
        user_country=user_country,
        day=1.0,
        https=True,
        truth_role=ServiceRole.COOKIE_SYNC,
        truth_org="org",
        truth_country="DE",
        chain_depth=1,
    )


class TestTrackerIPInventory:
    def test_panel_ingestion(self):
        inventory = TrackerIPInventory()
        inventory.ingest_panel(
            [make_request("1.0.0.1"), make_request("1.0.0.1"),
             make_request("1.0.0.2")]
        )
        assert len(inventory) == 2
        assert inventory.record(IPAddress.parse("1.0.0.1")).request_count == 2
        assert inventory.record(IPAddress.parse("1.0.0.1")).seen_by_panel

    def test_pdns_completion_finds_unseen_ips(self):
        pdns = PassiveDNSDatabase()
        pdns.observe("sync.t.example", IPAddress.parse("1.0.0.1"), 1.0)
        pdns.observe("sync.t.example", IPAddress.parse("1.0.0.9"), 2.0)
        inventory = TrackerIPInventory()
        inventory.ingest_panel([make_request("1.0.0.1")])
        added = inventory.complete_from_pdns(pdns)
        assert added == 1
        additional = inventory.additional_addresses()
        assert additional == [IPAddress.parse("1.0.0.9")]
        assert not inventory.record(additional[0]).seen_by_panel

    def test_additional_share(self):
        pdns = PassiveDNSDatabase()
        pdns.observe("sync.t.example", IPAddress.parse("1.0.0.9"), 2.0)
        inventory = TrackerIPInventory()
        inventory.ingest_panel([make_request("1.0.0.1")])
        inventory.complete_from_pdns(pdns)
        assert inventory.additional_share_pct() == pytest.approx(100.0)

    def test_window_annotation(self):
        pdns = PassiveDNSDatabase()
        ip = IPAddress.parse("1.0.0.1")
        pdns.observe("sync.t.example", ip, 3.0)
        pdns.observe("sync.t.example", ip, 9.0)
        inventory = TrackerIPInventory()
        inventory.ingest_panel([make_request("1.0.0.1")])
        inventory.annotate_windows(pdns)
        assert inventory.record(ip).window == (3.0, 9.0)

    def test_dedication_from_reverse_pdns(self):
        pdns = PassiveDNSDatabase()
        ip = IPAddress.parse("1.0.0.1")
        pdns.observe("sync.t.example", ip, 1.0)
        pdns.observe("px.other.example", ip, 1.0)
        inventory = TrackerIPInventory()
        inventory.ingest_panel([make_request("1.0.0.1")])
        inventory.annotate_dedication(pdns)
        record = inventory.record(ip)
        assert record.domains_behind == {"t.example", "other.example"}
        assert record.n_domains_behind == 2

    def test_dedication_fallback_without_pdns(self):
        inventory = TrackerIPInventory()
        inventory.ingest_panel([make_request("1.0.0.1")])
        inventory.annotate_dedication(PassiveDNSDatabase())
        record = inventory.record(IPAddress.parse("1.0.0.1"))
        assert record.domains_behind == {"t.example"}

    def test_ipv4_share(self):
        inventory = TrackerIPInventory()
        inventory.ingest_panel(
            [make_request("1.0.0.1"), make_request("1.0.0.2")]
        )
        assert inventory.ipv4_share_pct() == 100.0

    def test_figure4_metrics(self):
        pdns = PassiveDNSDatabase()
        hub = IPAddress.parse("1.0.0.1")
        for index in range(12):
            pdns.observe(f"sync.org{index}.example", hub, 1.0)
        inventory = TrackerIPInventory()
        inventory.ingest_panel(
            [make_request("1.0.0.1"), make_request("1.0.0.2"),
             make_request("1.0.0.2")]
        )
        inventory.annotate_dedication(pdns)
        assert inventory.heavy_multi_domain_ips(10)[0].address == hub
        assert inventory.multi_domain_ip_share_pct() == pytest.approx(50.0)
        # 2 of 3 panel requests hit the dedicated IP.
        assert inventory.single_domain_request_share_pct() == pytest.approx(
            100.0 * 2 / 3
        )

    def test_on_study(self, small_study):
        inventory = small_study.inventory
        assert len(inventory) > 0
        assert inventory.ipv4_share_pct() > 90.0
        # Additional IPs exist but are a small minority (Sect. 3.3).
        assert 0.0 < inventory.additional_share_pct() < 25.0
        # Every panel-seen IP belongs to a real server.
        fleet = small_study.world.fleet
        for address in inventory.panel_addresses()[:100]:
            assert fleet.server_for_ip(address) is not None


class FakeLocator:
    """ip.value even → DE, odd → US, value 999 → unknown."""

    def __init__(self):
        self.calls = 0

    def __call__(self, address):
        self.calls += 1
        if address.value == 999:
            return None
        return "DE" if address.value % 2 == 0 else "US"


class TestConfinementAnalyzer:
    def _requests(self):
        return [
            make_request("0.0.0.2", user_country="DE"),  # DE → DE
            make_request("0.0.0.2", user_country="DE"),  # DE → DE
            make_request("0.0.0.3", user_country="DE"),  # DE → US
            make_request("0.0.0.3", user_country="FR"),  # FR → US
            make_request("0.0.3.231", user_country="BR", fqdn="x.t.example"),
        ]

    def test_continent_sankey(self):
        analyzer = ConfinementAnalyzer(FakeLocator())
        sankey = analyzer.continent_sankey(self._requests())
        assert sankey.edge(Region.EU28.value, Region.EU28.value) == 2
        assert sankey.edge(Region.EU28.value, Region.NORTH_AMERICA.value) == 2
        assert sankey.edge(
            Region.SOUTH_AMERICA.value, Region.UNKNOWN.value
        ) == 1  # 0.0.3.231 has value 999 → locator abstains → unknown

    def test_destination_regions_restricted_to_origin(self):
        analyzer = ConfinementAnalyzer(FakeLocator())
        shares = analyzer.destination_regions(self._requests(), Region.EU28)
        assert shares[Region.EU28.value] == pytest.approx(50.0)
        assert shares[Region.NORTH_AMERICA.value] == pytest.approx(50.0)

    def test_country_sankey_eu_only(self):
        analyzer = ConfinementAnalyzer(FakeLocator())
        sankey = analyzer.country_sankey(self._requests(), Region.EU28)
        assert "BR" not in sankey.origins()
        assert sankey.confinement("DE") == pytest.approx(100 * 2 / 3)

    def test_unknown_destination_bucket(self):
        analyzer = ConfinementAnalyzer(FakeLocator())
        requests = [make_request("0.0.3.231", user_country="DE")]
        sankey = analyzer.country_sankey(requests, Region.EU28)
        assert sankey.edge("DE", "unknown") == 1

    def test_locator_cached_per_ip(self):
        locator = FakeLocator()
        analyzer = ConfinementAnalyzer(locator)
        requests = [make_request("0.0.0.2") for _ in range(50)]
        analyzer.continent_sankey(requests)
        assert locator.calls == 1

    def test_per_region_confinement_user_counts(self):
        analyzer = ConfinementAnalyzer(FakeLocator())
        requests = [
            make_request("0.0.0.2", user_country="DE", user_id=1),
            make_request("0.0.0.2", user_country="FR", user_id=2),
            make_request("0.0.0.3", user_country="US", user_id=3),
        ]
        per_region = analyzer.per_region_confinement(requests)
        assert per_region[Region.EU28.value][1] == 2
        assert per_region[Region.NORTH_AMERICA.value] == (100.0, 1)

    def test_national_confinement(self):
        analyzer = ConfinementAnalyzer(FakeLocator())
        national = analyzer.national_confinement(self._requests())
        assert national["DE"] == pytest.approx(100 * 2 / 3)
        assert national["FR"] == 0.0

    def test_study_region_confinement_matches_fig7(self, small_study):
        analyzer = small_study.confinement()
        tracking = small_study.tracking_requests()
        eu = analyzer.region_confinement(tracking, Region.EU28)
        # The headline result: most EU28 flows stay inside EU28.
        assert eu > 70.0
