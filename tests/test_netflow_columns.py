"""Tests for repro.netflow.columns: flow tables and the columnar join."""

import pytest

from repro.config import SNAPSHOT_DAYS
from repro.errors import NetFlowError
from repro.netbase.addr import IPAddress
from repro.netflow.columns import (
    FLOW_SCHEMA,
    flow_table,
    join_table,
    table_to_records,
)
from repro.netflow.join import HashedIPMatcher, TrackerFlowJoin
from repro.netflow.records import PROTO_TCP, PROTO_UDP, FlowRecord


def make_record(src="10.0.0.1", dst="1.0.0.1", dst_port=443,
                protocol=PROTO_TCP, timestamp=1.0):
    return FlowRecord(
        timestamp=timestamp,
        router_id=1,
        interface_id=0,
        protocol=protocol,
        src_ip=IPAddress.parse(src),
        dst_ip=IPAddress.parse(dst),
        src_port=40000,
        dst_port=dst_port,
        tos=0,
        sampled_packets=2,
        sampled_bytes=1200,
    )


def _matcher_with(trackers, slack=0.0):
    matcher = HashedIPMatcher(window_slack_days=slack)
    for address, window in trackers:
        matcher.add(IPAddress.parse(address), window)
    return matcher


def _assert_join_equal(matcher_a, matcher_b, locate, records):
    """Object-path and columnar join must agree field for field."""
    want = TrackerFlowJoin(matcher_a, locate).join("ISP", "DE", 1.0, records)
    got = join_table(matcher_b, locate, "ISP", "DE", 1.0,
                     flow_table(records))
    assert (want.matched_flows, want.unmatched_flows) == (
        got.matched_flows, got.unmatched_flows
    )
    assert (want.web_flows, want.encrypted_flows) == (
        got.web_flows, got.encrypted_flows
    )
    assert want.per_tracker_ip == got.per_tracker_ip
    assert want.destinations == got.destinations
    # Dict insertion order is part of downstream report ordering.
    assert list(want.destinations) == list(got.destinations)
    return got


class TestFlowTable:
    def test_round_trip(self):
        records = [
            make_record(dst="1.0.0.1"),
            make_record(dst="9.9.9.9", dst_port=80, protocol=PROTO_UDP),
            make_record(src="10.0.0.2", timestamp=2.5),
        ]
        table = flow_table(records)
        assert len(table) == 3
        assert table.schema is FLOW_SCHEMA
        assert table_to_records(table) == records

    def test_endpoints_dictionary_encode(self):
        records = [make_record(dst="1.0.0.1") for _ in range(50)]
        table = flow_table(records)
        assert table.column("dst_ip").n_values == 1
        assert table.column("src_ip").n_values == 1

    def test_decode_revalidates(self):
        table = flow_table([make_record()])
        # Corrupt a packed cell: decoding re-runs FlowRecord validation.
        table.column("sampled_packets")[0] = 0
        with pytest.raises(NetFlowError):
            table_to_records(table)


class TestJoinTable:
    def test_matches_object_join_on_basics(self):
        trackers = [("1.0.0.1", None), ("2.0.0.2", None)]
        records = [
            make_record(dst="1.0.0.1"),
            make_record(dst="1.0.0.1", dst_port=80),
            make_record(dst="2.0.0.2", protocol=PROTO_UDP),
            make_record(dst="9.9.9.9"),
            make_record(src="1.0.0.1", dst="10.0.0.9"),  # src-side match
        ]
        locate = lambda ip: {"1.0.0.1": "DE"}.get(str(ip))
        got = _assert_join_equal(
            _matcher_with(trackers), _matcher_with(trackers), locate, records
        )
        assert got.matched_flows == 4
        assert got.destinations["DE"] == 3
        assert got.destinations["unknown"] == 1

    def test_matches_object_join_with_windows(self):
        trackers = [
            ("1.0.0.1", (0.5, 1.5)),   # valid at t=1.0
            ("2.0.0.2", (5.0, 9.0)),   # stale at t=1.0
        ]
        records = [
            make_record(dst="1.0.0.1", timestamp=1.0),
            make_record(dst="2.0.0.2", timestamp=1.0),
            make_record(dst="2.0.0.2", timestamp=6.0),
            # dst window stale, src side valid: must fall through to src.
            make_record(src="1.0.0.1", dst="2.0.0.2", timestamp=1.2),
        ]
        locate = lambda ip: "US"
        got = _assert_join_equal(
            _matcher_with(trackers), _matcher_with(trackers), locate, records
        )
        assert got.matched_flows == 3
        assert got.unmatched_flows == 1

    def test_matches_object_join_on_synthesized_snapshot(
        self, small_study, synthetic_locate
    ):
        matcher_a = HashedIPMatcher()
        matcher_b = HashedIPMatcher()
        for record in small_study.inventory.records():
            matcher_a.add(record.address, record.window)
            matcher_b.add(record.address, record.window)
        synthesizer = small_study.world.synthesizers["DE-Broadband"]
        records = synthesizer.snapshot(SNAPSHOT_DAYS["Nov 8"])
        got = _assert_join_equal(
            matcher_a, matcher_b, synthetic_locate, records
        )
        assert got.total_flows == len(records)
        assert got.matched_flows > 0

    def test_empty_table(self):
        matcher = _matcher_with([("1.0.0.1", None)])
        result = join_table(
            matcher, lambda ip: "DE", "ISP", "DE", 1.0, flow_table([])
        )
        assert result.total_flows == 0
        assert result.destinations == {}
