"""Deeper hypothesis property tests across subsystem boundaries."""

import random
import string

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.classify import RequestClassifier
from repro.netbase.addr import IPAddress, Prefix
from repro.netbase.allocator import AddressPlan
from repro.util.sankey import Sankey
from repro.web.filterlists import FilterList, FilterRule
from repro.web.requests import build_url, url_args, url_fqdn, url_has_args

label = st.text(alphabet=string.ascii_lowercase, min_size=1, max_size=8)
domain = st.builds(lambda a, b: f"{a}.{b}", label, label)


@given(
    domain,
    st.text(alphabet=string.ascii_lowercase + "/", min_size=0, max_size=20),
    st.dictionaries(label, label, max_size=4),
    st.booleans(),
)
def test_url_build_parse_roundtrip(fqdn, path, args, https):
    url = build_url(fqdn, path, args, https)
    assert url_fqdn(url) == fqdn
    assert url_has_args(url) == bool(args)
    assert url_args(url) == args


@given(st.lists(domain, min_size=1, max_size=8, unique=True))
def test_anchor_rules_match_exactly_their_subtrees(domains):
    """A ``||d^`` rule matches d and subdomains of d, nothing else."""
    filter_list = FilterList("t")
    covered = domains[: len(domains) // 2 + 1]
    for item in covered:
        filter_list.add(FilterRule.parse(f"||{item}^"))
    for item in domains:
        url = f"https://sub.{item}/x"
        expected = item in covered
        assert filter_list.matches(url, f"sub.{item}") == expected
        assert filter_list.matches(f"https://{item}/x", item) == expected
        # Prefix-sharing lookalikes never match.
        lookalike = f"evil{item}"
        assert not filter_list.matches(
            f"https://{lookalike}/x", lookalike
        ) or lookalike in covered


@given(
    st.lists(
        st.tuples(st.booleans(), st.booleans()), min_size=1, max_size=30
    ),
    st.integers(min_value=0, max_value=2**31),
)
@settings(max_examples=40)
def test_referrer_closure_order_invariance(flags, seed):
    """Classification must not depend on the order of the request log."""
    from repro.web.organizations import ServiceRole
    from repro.web.requests import ThirdPartyRequest

    filter_list = FilterList("easylist")
    filter_list.add(FilterRule.parse("||root.example^"))
    classifier = RequestClassifier(filter_list, FilterList("easyprivacy"))

    requests = []
    previous_url = None
    for index, (chain_off_root, with_args) in enumerate(flags):
        if chain_off_root and previous_url is not None:
            referrer = previous_url
        else:
            referrer = "https://site.example/"
        url = build_url(
            "root.example" if index == 0 else f"d{index}.example",
            f"/p{index}",
            {"uid": "1"} if with_args else None,
        )
        requests.append(
            ThirdPartyRequest(
                first_party="site.example", url=url, referrer=referrer,
                ip=IPAddress.v4(index + 1), user_id=1, user_country="DE",
                day=1.0, https=True, truth_role=ServiceRole.COOKIE_SYNC,
                truth_org="o", truth_country="DE", chain_depth=0,
            )
        )
        previous_url = url

    baseline = classifier.classify(requests)
    shuffled = list(requests)
    random.Random(seed).shuffle(shuffled)
    permuted = classifier.classify(shuffled)
    by_url_baseline = {
        r.url: s for r, s in zip(baseline.requests, baseline.stages)
    }
    by_url_permuted = {
        r.url: s for r, s in zip(permuted.requests, permuted.stages)
    }
    assert by_url_baseline == by_url_permuted


@given(
    st.lists(
        st.tuples(
            st.sampled_from(["DE", "FR", "US"]),
            st.sampled_from(["hosting", "eyeball", "cloud"]),
            st.integers(min_value=24, max_value=28),
        ),
        min_size=1,
        max_size=25,
    )
)
@settings(max_examples=30)
def test_address_plan_pools_never_overlap(pool_specs):
    plan = AddressPlan()
    prefixes = []
    for index, (country, kind, length) in enumerate(pool_specs):
        record = plan.create_pool(country, kind, f"owner-{index}", length)
        prefixes.append(record.prefix)
    for i, first in enumerate(prefixes):
        for second in prefixes[i + 1:]:
            assert not first.overlaps(second)
    # Every allocated address resolves back to exactly its own pool.
    for index, prefix in enumerate(prefixes):
        address = plan.pool(prefix).allocate_address()
        assert plan.lookup(address).owner == f"owner-{index}"


@given(
    st.lists(
        st.tuples(
            st.sampled_from("abcd"), st.sampled_from("wxyz"),
            st.integers(min_value=1, max_value=50),
        ),
        min_size=1,
        max_size=40,
    )
)
def test_sankey_confinement_bounds(edges):
    sankey = Sankey()
    for origin, destination, weight in edges:
        sankey.add(origin, destination, weight)
    for origin in sankey.origins():
        confinement = sankey.confinement(origin)
        assert 0.0 <= confinement <= 100.0
        shares = sankey.origin_shares(origin)
        assert sum(shares.values()) == pytest.approx(100.0)
        assert confinement == pytest.approx(shares.get(origin, 0.0))


@given(st.integers(min_value=0, max_value=(1 << 32) - 1),
       st.integers(min_value=1, max_value=31))
def test_prefix_subnet_supernet_inverse(value, length):
    prefix = Prefix.of(IPAddress.v4(value), length)
    for subnet in list(prefix.subnets(length + 1))[:4]:
        assert subnet.supernet(length) == prefix
        assert subnet in prefix
