"""The footprint-salt loop: edit a helper, invalidate exactly the right
stages.

The flagship regression here copies the installed source tree twice,
appends a helper function to ``core/classify.py`` in one copy, and
asserts that the classification stage's footprint salt — and therefore
its effective salt and its cache keys, plus those of every stage
downstream of it — changes, while stages that cannot reach the edited
module keep byte-identical salts and keys.
"""

from __future__ import annotations

import shutil
from pathlib import Path

import pytest

from repro import WorldConfig
from repro.runtime import run_study
from repro.runtime.cache import ArtifactCache, effective_salts, stage_code_salt
from repro.runtime.footprint import (
    default_root,
    footprint_salts,
    program_model,
    stage_footprints,
)
from repro.runtime.graph import StageGraph, StageSpec
from repro.runtime.stages import STAGE_NAMES, build_stage_graph

#: stages that can reach core/classify.py, directly or through an input
CLASSIFY_DEPENDENTS = {
    "classification", "inventory", "geolocation", "confinement",
    "localization", "sensitive", "ispscale",
}

#: stages whose closure does not include core/classify.py
CLASSIFY_INDEPENDENT = {"panel", "sensitive_domains"}


def copy_tree(tmp_path: Path, name: str) -> Path:
    target = tmp_path / name / "repro"
    shutil.copytree(default_root(), target)
    return target


@pytest.fixture(scope="module")
def edited_trees(tmp_path_factory):
    """(pristine copy, copy with a helper appended to core/classify.py)."""
    tmp_path = tmp_path_factory.mktemp("footprint-trees")
    pristine = copy_tree(tmp_path, "v1")
    edited = copy_tree(tmp_path, "v2")
    classify = edited / "core" / "classify.py"
    classify.write_text(
        classify.read_text()
        + "\n\ndef _footprint_probe(flow):\n    return flow\n"
    )
    return pristine, edited


def test_program_model_is_memoized_per_root():
    assert program_model() is program_model()
    assert program_model() is program_model(default_root())


def test_every_pipeline_stage_gets_a_footprint():
    footprints = stage_footprints(build_stage_graph())
    assert set(footprints) == set(STAGE_NAMES)
    for name, fp in footprints.items():
        assert fp.salt, name
        assert fp.stage_modules, name
        assert fp.missing == (), name
    # footprints discriminate between stages — no two identical
    salts = [fp.salt for fp in footprints.values()]
    assert len(set(salts)) == len(salts)


def test_classification_footprint_covers_classify_module():
    footprints = stage_footprints(build_stage_graph())
    assert "repro.core.classify" in footprints["classification"].modules
    for name in CLASSIFY_INDEPENDENT:
        covered = set(footprints[name].modules)
        covered |= set(footprints[name].stage_modules)
        assert "repro.core.classify" not in covered, name


def test_helper_edit_changes_exactly_the_reaching_footprints(edited_trees):
    pristine, edited = edited_trees
    graph = build_stage_graph()
    before = stage_footprints(graph, root=pristine)
    after = stage_footprints(graph, root=edited)
    assert set(before) == set(STAGE_NAMES) and set(after) == set(STAGE_NAMES)
    assert before["classification"].salt != after["classification"].salt
    for name in CLASSIFY_INDEPENDENT:
        assert before[name].salt == after[name].salt, name


def test_helper_edit_propagates_to_effective_salts_and_cache_keys(
    edited_trees,
):
    pristine, edited = edited_trees
    graph = build_stage_graph()
    before = effective_salts(
        graph, footprint_salts(stage_footprints(graph, root=pristine))
    )
    after = effective_salts(
        graph, footprint_salts(stage_footprints(graph, root=edited))
    )
    cache = ArtifactCache(None)
    for name in STAGE_NAMES:
        key_before = cache.key("cfg", before[name], name, "s0")
        key_after = cache.key("cfg", after[name], name, "s0")
        if name in CLASSIFY_DEPENDENTS:
            assert before[name] != after[name], name
            assert key_before != key_after, name
        else:
            assert before[name] == after[name], name
            assert key_before == key_after, name


def test_footprint_salt_folds_into_stage_code_salt():
    spec = build_stage_graph()["classification"]
    plain = stage_code_salt(spec)
    folded = stage_code_salt(spec, module_footprint_salt="abc123")
    assert plain != folded
    # the empty footprint reproduces the footprint-less salt exactly
    assert stage_code_salt(spec, module_footprint_salt="") == plain


def test_synthetic_graph_without_model_coverage_gets_no_footprint():
    def plan(world, products):
        return [("s0", None)]

    def run(world, products, payload):
        return None

    def merge(world, products, shards):
        return None

    graph = StageGraph()
    graph.add(StageSpec(
        name="synthetic", axis=None, inputs=(), outputs=("out",),
        plan=plan, run=run, merge=merge,
    ))
    # test-local functions have '<locals>' qualnames: no footprint, and
    # effective_salts degrades to the footprint-less behavior
    footprints = stage_footprints(graph)
    assert footprints == {}
    salts = effective_salts(graph, footprint_salts(footprints))
    assert salts["synthetic"] == effective_salts(graph)["synthetic"]


def test_manifest_records_footprints():
    run = run_study(WorldConfig.small(), workers=1)
    manifest = run.manifest
    assert manifest is not None
    footprints = manifest["footprints"]
    assert set(footprints) == set(STAGE_NAMES)
    entry = footprints["classification"]
    assert entry["salt"]
    assert "repro.core.classify" in entry["modules"]
    assert entry["exempted"] == []
