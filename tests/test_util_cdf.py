"""Tests for repro.util.cdf."""

import pytest
from hypothesis import given, strategies as st

from repro.util.cdf import EmpiricalCDF, histogram, share_table


class TestEmpiricalCDF:
    def test_empty_raises(self):
        with pytest.raises(ValueError):
            EmpiricalCDF([])

    def test_evaluate_exact_points(self):
        cdf = EmpiricalCDF([1, 2, 2, 4])
        assert cdf.evaluate(0) == 0.0
        assert cdf.evaluate(1) == 0.25
        assert cdf.evaluate(2) == 0.75
        assert cdf.evaluate(3) == 0.75
        assert cdf.evaluate(4) == 1.0
        assert cdf.evaluate(100) == 1.0

    def test_quantiles(self):
        cdf = EmpiricalCDF([1, 2, 3, 4])
        assert cdf.quantile(0.0) == 1
        assert cdf.quantile(0.25) == 1
        assert cdf.quantile(0.5) == 2
        assert cdf.quantile(1.0) == 4

    def test_quantile_out_of_range(self):
        cdf = EmpiricalCDF([1])
        with pytest.raises(ValueError):
            cdf.quantile(1.5)

    def test_median_of_singleton(self):
        assert EmpiricalCDF([7]).median() == 7

    def test_mean_min_max(self):
        cdf = EmpiricalCDF([1, 3, 5])
        assert cdf.mean() == 3
        assert cdf.min == 1
        assert cdf.max == 5

    def test_points_step_structure(self):
        cdf = EmpiricalCDF([1, 2, 2, 4])
        assert cdf.points() == [(1.0, 0.25), (2.0, 0.75), (4.0, 1.0)]

    def test_points_cover_full_probability(self):
        cdf = EmpiricalCDF([5, 5, 5])
        assert cdf.points() == [(5.0, 1.0)]

    def test_summary_keys(self):
        summary = EmpiricalCDF(range(1, 101)).summary()
        assert summary["n"] == 100
        assert summary["median"] == 50
        assert summary["p90"] == 90
        assert summary["max"] == 100


class TestHistogram:
    def test_basic_binning(self):
        counts = histogram([1, 2, 3, 4, 5], [0, 2, 4, 6])
        assert counts == [1, 2, 2]

    def test_max_value_included_in_last_bin(self):
        assert histogram([6], [0, 3, 6]) == [0, 1]

    def test_out_of_range_ignored(self):
        assert histogram([-1, 10], [0, 5]) == [0]

    def test_too_few_edges(self):
        with pytest.raises(ValueError):
            histogram([1], [0])

    def test_unsorted_edges(self):
        with pytest.raises(ValueError):
            histogram([1], [5, 0])


class TestShareTable:
    def test_normalizes_to_100(self):
        shares = share_table({"a": 1, "b": 3})
        assert shares == {"a": 25.0, "b": 75.0}

    def test_zero_total(self):
        assert share_table({"a": 0}) == {}


@given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1,
                max_size=200))
def test_cdf_is_monotone_nondecreasing(sample):
    cdf = EmpiricalCDF(sample)
    points = cdf.points()
    xs = [x for x, _ in points]
    ys = [y for _, y in points]
    assert xs == sorted(xs)
    assert ys == sorted(ys)
    assert ys[-1] == pytest.approx(1.0)


@given(
    st.lists(st.integers(min_value=-100, max_value=100), min_size=1,
             max_size=100),
    st.floats(min_value=0.001, max_value=1.0),
)
def test_quantile_inverts_cdf(sample, q):
    cdf = EmpiricalCDF(sample)
    x = cdf.quantile(q)
    # By definition: F(quantile(q)) >= q, and quantile is a sample value.
    assert cdf.evaluate(x) >= q - 1e-12
    assert x in [float(v) for v in sample]
