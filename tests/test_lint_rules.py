"""Per-rule fixture tests for reprolint.

Every shipped rule gets at least one seeded violation it must detect
and one compliant snippet it must stay quiet on.  Snippets are written
to a temp tree (with ``__init__.py`` chains where package placement
matters) and run through the real framework, so these tests cover the
visitor plumbing as well as the rules.
"""

from __future__ import annotations

import textwrap
from pathlib import Path
from typing import List, Optional, Sequence

import pytest

from repro.lint import Finding, run_lint, select_rules


def lint_snippet(
    tmp_path: Path,
    source: str,
    relpath: str = "mod.py",
    select: Optional[Sequence[str]] = None,
    packages: Sequence[str] = (),
) -> List[Finding]:
    """Write ``source`` at ``relpath`` under a temp tree and lint it."""
    for package in packages:
        directory = tmp_path / package
        directory.mkdir(parents=True, exist_ok=True)
        init = directory / "__init__.py"
        if not init.exists():
            init.write_text("")
    path = tmp_path / relpath
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source))
    rules = select_rules(select) if select else None
    return run_lint([tmp_path], rules=rules, root=tmp_path).findings


def codes(findings: Sequence[Finding]) -> List[str]:
    return [finding.rule for finding in findings]


# ---------------------------------------------------------------------------
# D101 — module-level random.*
# ---------------------------------------------------------------------------


def test_d101_fires_on_global_random_call(tmp_path):
    findings = lint_snippet(
        tmp_path,
        """
        import random
        x = random.random()
        """,
        select=["D101"],
    )
    assert codes(findings) == ["D101"]
    assert "process-global" in findings[0].message


def test_d101_fires_on_from_import_of_random_functions(tmp_path):
    findings = lint_snippet(
        tmp_path,
        """
        from random import choice, shuffle
        """,
        select=["D101"],
    )
    assert codes(findings) == ["D101"]


def test_d101_quiet_on_injected_stream(tmp_path):
    findings = lint_snippet(
        tmp_path,
        """
        import random

        def draw(rng: random.Random) -> float:
            return rng.random()
        """,
        select=["D101"],
    )
    assert findings == []


# ---------------------------------------------------------------------------
# D102 — raw random.Random construction
# ---------------------------------------------------------------------------


def test_d102_fires_outside_rng_module(tmp_path):
    findings = lint_snippet(
        tmp_path,
        """
        import random
        r = random.Random(3)
        """,
        select=["D102"],
    )
    assert codes(findings) == ["D102"]


def test_d102_allows_construction_inside_util_rng(tmp_path):
    findings = lint_snippet(
        tmp_path,
        """
        import random
        r = random.Random(3)
        """,
        relpath="util/rng.py",
        select=["D102"],
        packages=["util"],
    )
    assert findings == []


def test_d102_quiet_on_annotation_only(tmp_path):
    findings = lint_snippet(
        tmp_path,
        """
        import random

        def f(rng: random.Random) -> None:
            pass
        """,
        select=["D102"],
    )
    assert findings == []


# ---------------------------------------------------------------------------
# D103 — wall clock / environment in deterministic packages
# ---------------------------------------------------------------------------


def test_d103_fires_on_time_time_in_core(tmp_path):
    findings = lint_snippet(
        tmp_path,
        """
        import time
        t = time.time()
        """,
        relpath="core/clock.py",
        select=["D103"],
        packages=["core"],
    )
    assert codes(findings) == ["D103"]


def test_d103_fires_on_os_environ_and_resolved_from_import(tmp_path):
    findings = lint_snippet(
        tmp_path,
        """
        import os
        from os import getenv

        a = os.environ["HOME"]
        b = getenv("HOME")
        """,
        relpath="web/envread.py",
        select=["D103"],
        packages=["web"],
    )
    assert codes(findings) == ["D103", "D103"]


def test_d103_fires_on_datetime_now_via_alias(tmp_path):
    findings = lint_snippet(
        tmp_path,
        """
        from datetime import datetime as dt
        stamp = dt.now()
        """,
        relpath="dnssim/stamp.py",
        select=["D103"],
        packages=["dnssim"],
    )
    assert codes(findings) == ["D103"]


def test_d103_quiet_outside_deterministic_packages(tmp_path):
    findings = lint_snippet(
        tmp_path,
        """
        import time
        t = time.time()
        """,
        relpath="analysis/clock.py",
        select=["D103"],
        packages=["analysis"],
    )
    assert findings == []


# ---------------------------------------------------------------------------
# D104 — hash() for seeding
# ---------------------------------------------------------------------------


def test_d104_fires_on_hash_call(tmp_path):
    findings = lint_snippet(
        tmp_path,
        """
        seed = hash("panel")
        """,
        select=["D104"],
    )
    assert codes(findings) == ["D104"]


def test_d104_quiet_inside_dunder_hash(tmp_path):
    findings = lint_snippet(
        tmp_path,
        """
        class Key:
            def __hash__(self) -> int:
                return hash(("key", 1))
        """,
        select=["D104"],
    )
    assert findings == []


# ---------------------------------------------------------------------------
# D105 — unsorted set iteration
# ---------------------------------------------------------------------------


def test_d105_fires_on_for_over_set_literal_variable(tmp_path):
    findings = lint_snippet(
        tmp_path,
        """
        items = {1, 2, 3}
        for item in items:
            print(item)
        """,
        select=["D105"],
    )
    assert codes(findings) == ["D105"]


def test_d105_fires_on_comprehension_over_annotated_param(tmp_path):
    findings = lint_snippet(
        tmp_path,
        """
        from typing import Set

        def flatten(names: Set[str]) -> list:
            return [name.upper() for name in names]
        """,
        select=["D105"],
    )
    assert codes(findings) == ["D105"]


def test_d105_fires_on_dict_of_set_get(tmp_path):
    findings = lint_snippet(
        tmp_path,
        """
        from typing import Dict, Set

        class Index:
            def __init__(self) -> None:
                self.forward: Dict[str, Set[str]] = {}

            def lookup(self, key: str) -> list:
                out = []
                for value in self.forward.get(key, ()):
                    out.append(value)
                return out
        """,
        select=["D105"],
    )
    assert codes(findings) == ["D105"]


def test_d105_fires_on_dataclass_attribute_of_loop_variable(tmp_path):
    findings = lint_snippet(
        tmp_path,
        """
        from dataclasses import dataclass, field
        from typing import Set

        @dataclass
        class Record:
            fqdns: Set[str] = field(default_factory=set)

        def consume(records):
            for record in records:
                for fqdn in record.fqdns:
                    print(fqdn)
        """,
        select=["D105"],
    )
    assert codes(findings) == ["D105"]


def test_d105_fires_on_set_union_expression(tmp_path):
    findings = lint_snippet(
        tmp_path,
        """
        a = set([1])
        b = set([2])
        both = [x for x in a | b]
        """,
        select=["D105"],
    )
    assert codes(findings) == ["D105"]


def test_d105_quiet_when_sorted(tmp_path):
    findings = lint_snippet(
        tmp_path,
        """
        from typing import Set

        def flatten(names: Set[str]) -> list:
            ordered = [name for name in sorted(names)]
            for name in sorted(names):
                ordered.append(name)
            return ordered
        """,
        select=["D105"],
    )
    assert findings == []


def test_d105_quiet_on_reassignment_to_sorted(tmp_path):
    findings = lint_snippet(
        tmp_path,
        """
        items = {3, 1, 2}
        items = sorted(items)
        for item in items:
            print(item)
        """,
        select=["D105"],
    )
    assert findings == []


# ---------------------------------------------------------------------------
# E201 — raise taxonomy
# ---------------------------------------------------------------------------


def test_e201_fires_on_value_error(tmp_path):
    findings = lint_snippet(
        tmp_path,
        """
        def f(n):
            raise ValueError("bad n")
        """,
        select=["E201"],
    )
    assert codes(findings) == ["E201"]


def test_e201_allows_taxonomy_and_local_subclasses(tmp_path):
    findings = lint_snippet(
        tmp_path,
        """
        from repro.errors import ReproError, ValidationError

        class LocalError(ReproError):
            pass

        class DeeperError(LocalError):
            pass

        def f(flag):
            if flag == 1:
                raise ValidationError("flag")
            if flag == 2:
                raise LocalError("local")
            raise DeeperError("deeper")
        """,
        select=["E201"],
    )
    assert findings == []


def test_e201_allows_reraise_of_caught_variable(tmp_path):
    findings = lint_snippet(
        tmp_path,
        """
        def f():
            try:
                g()
            except KeyError as exc:
                raise
        """,
        select=["E201"],
    )
    assert findings == []


def test_e201_system_exit_only_in_entry_points(tmp_path):
    source = """
    def main():
        return 0

    raise SystemExit(main())
    """
    def findings_for(relpath):
        found = lint_snippet(tmp_path, source, relpath=relpath, select=["E201"])
        return [f for f in found if f.path == relpath]

    assert codes(findings_for("other.py")) == ["E201"]
    assert findings_for("cli.py") == []
    assert findings_for("__main__.py") == []


# ---------------------------------------------------------------------------
# E202 — bare except
# ---------------------------------------------------------------------------


def test_e202_fires_on_bare_except(tmp_path):
    findings = lint_snippet(
        tmp_path,
        """
        try:
            risky()
        except:
            pass
        """,
        select=["E202"],
    )
    assert codes(findings) == ["E202"]


def test_e202_quiet_on_typed_except(tmp_path):
    findings = lint_snippet(
        tmp_path,
        """
        from repro.errors import ReproError

        try:
            risky()
        except ReproError:
            pass
        """,
        select=["E202"],
    )
    assert findings == []


# ---------------------------------------------------------------------------
# E203 — assert for input validation
# ---------------------------------------------------------------------------


def test_e203_fires_on_parameter_assert(tmp_path):
    findings = lint_snippet(
        tmp_path,
        """
        def f(n):
            assert n >= 0
            return n
        """,
        select=["E203"],
    )
    assert codes(findings) == ["E203"]
    assert "'n'" in findings[0].message


def test_e203_fires_on_parameter_inside_call(tmp_path):
    findings = lint_snippet(
        tmp_path,
        """
        def f(items):
            assert len(items) > 0
            return items
        """,
        select=["E203"],
    )
    assert codes(findings) == ["E203"]


def test_e203_quiet_on_narrowing_and_locals(tmp_path):
    findings = lint_snippet(
        tmp_path,
        """
        def f(ctx):
            assert ctx.tree is not None
            record = lookup()
            assert record is not None
            return record
        """,
        select=["E203"],
    )
    assert findings == []


# ---------------------------------------------------------------------------
# A301 — layer order
# ---------------------------------------------------------------------------


def test_a301_fires_when_substrate_imports_core(tmp_path):
    findings = lint_snippet(
        tmp_path,
        """
        from repro.core.classify import RequestClassifier
        """,
        relpath="repro/web/upward.py",
        select=["A301"],
        packages=["repro", "repro/web"],
    )
    assert codes(findings) == ["A301"]
    assert "'core'" in findings[0].message


def test_a301_fires_when_core_imports_analysis(tmp_path):
    findings = lint_snippet(
        tmp_path,
        """
        def lazy():
            from repro.analysis.report import build
            return build
        """,
        relpath="repro/core/upward.py",
        select=["A301"],
        packages=["repro", "repro/core"],
    )
    assert codes(findings) == ["A301"]


def test_a301_quiet_on_downward_import(tmp_path):
    findings = lint_snippet(
        tmp_path,
        """
        from repro.web.requests import ThirdPartyRequest
        from repro.errors import ReproError
        """,
        relpath="repro/core/downward.py",
        select=["A301"],
        packages=["repro", "repro/core"],
    )
    assert findings == []


# ---------------------------------------------------------------------------
# A302 — import cycles
# ---------------------------------------------------------------------------


def test_a302_fires_on_module_cycle(tmp_path):
    (tmp_path / "pkg").mkdir()
    (tmp_path / "pkg" / "__init__.py").write_text("")
    (tmp_path / "pkg" / "alpha.py").write_text("import pkg.beta\n")
    (tmp_path / "pkg" / "beta.py").write_text("import pkg.alpha\n")
    findings = run_lint(
        [tmp_path], rules=select_rules(["A302"]), root=tmp_path
    ).findings
    assert codes(findings) == ["A302"]
    assert "pkg.alpha -> pkg.beta -> pkg.alpha" in findings[0].message


def test_a302_quiet_when_cycle_broken_by_function_level_import(tmp_path):
    (tmp_path / "pkg").mkdir()
    (tmp_path / "pkg" / "__init__.py").write_text("")
    (tmp_path / "pkg" / "alpha.py").write_text("import pkg.beta\n")
    (tmp_path / "pkg" / "beta.py").write_text(
        "def lazy():\n    import pkg.alpha\n    return pkg.alpha\n"
    )
    findings = run_lint(
        [tmp_path], rules=select_rules(["A302"]), root=tmp_path
    ).findings
    assert findings == []


# ---------------------------------------------------------------------------
# P001 — parse errors surface as findings
# ---------------------------------------------------------------------------


def test_parse_error_reported(tmp_path):
    findings = lint_snippet(tmp_path, "def broken(:\n    pass\n")
    assert codes(findings) == ["P001"]


# ---------------------------------------------------------------------------
# Pragmas
# ---------------------------------------------------------------------------


def test_inline_pragma_suppresses_single_rule(tmp_path):
    findings = lint_snippet(
        tmp_path,
        """
        import random
        x = random.random()  # reprolint: disable=D101
        y = random.random()
        """,
        select=["D101"],
    )
    assert len(findings) == 1
    assert findings[0].line == 4


def test_inline_pragma_disable_all(tmp_path):
    findings = lint_snippet(
        tmp_path,
        """
        import random
        x = random.Random(0)  # reprolint: disable=all
        """,
        select=["D102"],
    )
    assert findings == []


def test_file_level_pragma(tmp_path):
    findings = lint_snippet(
        tmp_path,
        """
        # reprolint: disable-file=D101
        import random
        x = random.random()
        y = random.random()
        """,
        select=["D101"],
    )
    assert findings == []


def test_pragma_does_not_suppress_other_rules(tmp_path):
    findings = lint_snippet(
        tmp_path,
        """
        import random
        x = random.Random(0)  # reprolint: disable=D101
        """,
        select=["D102"],
    )
    assert codes(findings) == ["D102"]


# ---------------------------------------------------------------------------
# C4xx / P5xx / O6xx — whole-program rules (multi-file fixtures)
# ---------------------------------------------------------------------------


def lint_tree(
    tmp_path: Path,
    files,
    select: Optional[Sequence[str]] = None,
) -> List[Finding]:
    """Write a {relpath: source} tree (with ``__init__.py`` chains for
    every package directory) and lint it whole-program."""
    for relpath, source in files.items():
        path = tmp_path / relpath
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source))
        parent = path.parent
        while parent != tmp_path:
            init = parent / "__init__.py"
            if not init.exists():
                init.write_text("")
            parent = parent.parent
    rules = select_rules(select) if select else None
    return run_lint([tmp_path], rules=rules, root=tmp_path).findings


STAGE_FIXTURE = {
    "pkg/helpers.py": """
        def crunch(payload):
            return payload
    """,
    "pkg/stages.py": """
        from pkg import helpers

        def _plan(world, products):
            return [("s0", None)]

        def _run(world, products, payload):
            return helpers.crunch(payload)

        def _merge(world, products, shards):
            return shards

        SPEC = StageSpec(
            name="alpha", plan=_plan, run=_run, merge=_merge,
        )
    """,
}


def test_c401_quiet_on_fully_resolvable_stage(tmp_path):
    findings = lint_tree(tmp_path, dict(STAGE_FIXTURE), select=["C401"])
    assert codes(findings) == []


def test_c401_fires_on_lambda_role(tmp_path):
    files = dict(STAGE_FIXTURE)
    files["pkg/stages.py"] = files["pkg/stages.py"].replace(
        "run=_run", "run=lambda w, p, s: None"
    )
    findings = lint_tree(tmp_path, files, select=["C401"])
    assert codes(findings) == ["C401"]
    assert "run=" in findings[0].message
    assert "cannot be computed" in findings[0].message


def test_c401_fires_on_unindexed_repro_import(tmp_path):
    files = dict(STAGE_FIXTURE)
    files["pkg/helpers.py"] = """
        from repro.vanished import thing

        def crunch(payload):
            return thing(payload)
    """
    findings = lint_tree(tmp_path, files, select=["C401"])
    assert codes(findings) == ["C401"]
    assert "repro.vanished" in findings[0].message


def test_c401_pragma_disable(tmp_path):
    files = dict(STAGE_FIXTURE)
    files["pkg/stages.py"] = files["pkg/stages.py"].replace(
        "SPEC = StageSpec(",
        "SPEC = StageSpec(  # reprolint: disable=C401",
    ).replace("run=_run", "run=lambda w, p, s: None")
    findings = lint_tree(tmp_path, files, select=["C401"])
    assert codes(findings) == []


def test_c402_fires_on_exempt_without_version_bump(tmp_path):
    files = dict(STAGE_FIXTURE)
    files["pkg/stages.py"] = files["pkg/stages.py"].replace(
        "from pkg import helpers",
        "from pkg import helpers  # reprolint: footprint-exempt",
    )
    findings = lint_tree(tmp_path, files, select=["C402"])
    assert codes(findings) == ["C402"]
    assert "pkg.helpers" in findings[0].message


def test_c402_quiet_when_version_bumped(tmp_path):
    files = dict(STAGE_FIXTURE)
    files["pkg/stages.py"] = files["pkg/stages.py"].replace(
        "from pkg import helpers",
        "from pkg import helpers  # reprolint: footprint-exempt",
    ).replace('name="alpha",', 'name="alpha", version="2",')
    findings = lint_tree(tmp_path, files, select=["C402"])
    assert codes(findings) == []


def test_p501_fires_on_global_in_run_path_helper(tmp_path):
    files = dict(STAGE_FIXTURE)
    files["pkg/helpers.py"] = """
        _CACHE = None

        def crunch(payload):
            global _CACHE
            _CACHE = payload
            return payload
    """
    findings = lint_tree(tmp_path, files, select=["P501"])
    assert codes(findings) == ["P501"]
    assert "run path of: alpha" in findings[0].message
    assert "crunch" in findings[0].message


def test_p501_quiet_off_the_run_path(tmp_path):
    files = dict(STAGE_FIXTURE)
    files["pkg/helpers.py"] = """
        _CACHE = None

        def crunch(payload):
            return payload

        def warm_up():
            global _CACHE
            _CACHE = object()
    """
    findings = lint_tree(tmp_path, files, select=["P501"])
    assert codes(findings) == []


def test_p501_pragma_disable(tmp_path):
    files = dict(STAGE_FIXTURE)
    files["pkg/helpers.py"] = """
        _CACHE = None

        def crunch(payload):
            global _CACHE  # reprolint: disable=P501
            _CACHE = payload
            return payload
    """
    findings = lint_tree(tmp_path, files, select=["P501"])
    assert codes(findings) == []


def test_p502_fires_on_module_container_mutation(tmp_path):
    files = dict(STAGE_FIXTURE)
    files["pkg/helpers.py"] = """
        SEEN = []
        TABLE = {}

        def crunch(payload):
            SEEN.append(payload)
            TABLE[payload] = 1
            return payload
    """
    findings = lint_tree(tmp_path, files, select=["P502"])
    assert codes(findings) == ["P502", "P502"]
    assert "SEEN.append" in findings[0].message


def test_p502_quiet_on_local_container(tmp_path):
    files = dict(STAGE_FIXTURE)
    files["pkg/helpers.py"] = """
        def crunch(payload):
            seen = []
            seen.append(payload)
            table = {}
            table[payload] = 1
            return payload
    """
    findings = lint_tree(tmp_path, files, select=["P502"])
    assert codes(findings) == []


def test_p503_fires_on_wall_clock_in_run_path(tmp_path):
    files = dict(STAGE_FIXTURE)
    files["pkg/helpers.py"] = """
        import time

        def crunch(payload):
            return time.time()
    """
    findings = lint_tree(tmp_path, files, select=["P503"])
    assert codes(findings) == ["P503"]
    assert "time.time" in findings[0].message


def test_p503_fires_on_environ_read_outside_patrolled_packages(tmp_path):
    files = dict(STAGE_FIXTURE)
    files["pkg/helpers.py"] = """
        import os

        def crunch(payload):
            return os.environ.get("HOME")
    """
    findings = lint_tree(tmp_path, files, select=["P503"])
    assert codes(findings) == ["P503"]


OBS_FIXTURE = {
    "pkg/obs/names.py": """
        REQUESTS = "requests.total"
        LATENCY = "latency.seconds"

        _METRIC_DECLS = (
            (REQUESTS, "counter", ("country",), "total requests"),
            (LATENCY, "histogram", (), "request latency"),
        )

        SPAN_NAMES = (
            "engine.run",
            "stage:*",
        )
    """,
    "pkg/obs/metrics.py": """
        def inc(name, amount=1, **labels):
            return (name, amount, labels)
    """,
}


def obs_tree(main_source: str):
    files = dict(OBS_FIXTURE)
    files["pkg/main.py"] = main_source
    return files


def test_o601_quiet_on_declared_constant(tmp_path):
    findings = lint_tree(tmp_path, obs_tree("""
        from pkg.obs import metrics, names

        def go():
            metrics.inc(names.REQUESTS, country="DE")
    """), select=["O601"])
    assert codes(findings) == []


def test_o601_fires_on_undeclared_literal(tmp_path):
    findings = lint_tree(tmp_path, obs_tree("""
        from pkg.obs import metrics

        def go():
            metrics.inc("requests.bogus")
    """), select=["O601"])
    assert codes(findings) == ["O601"]
    assert "requests.bogus" in findings[0].message


def test_o601_fires_on_dynamic_name_at_strict_site(tmp_path):
    findings = lint_tree(tmp_path, obs_tree("""
        from pkg.obs import metrics

        def go(name):
            metrics.inc(name)
    """), select=["O601"])
    assert codes(findings) == ["O601"]
    assert "dynamic" in findings[0].message


def test_o601_quiet_on_unrelated_observe_method(tmp_path):
    # PassiveDNSDatabase.observe(fqdn, ...) style duck-typed collision:
    # a dynamic first argument on an unproven receiver must not fire.
    findings = lint_tree(tmp_path, obs_tree("""
        def go(db, fqdn, address):
            db.observe(fqdn, address)
    """), select=["O601"])
    assert codes(findings) == []


def test_o601_pragma_disable(tmp_path):
    findings = lint_tree(tmp_path, obs_tree("""
        from pkg.obs import metrics

        def go():
            metrics.inc("requests.bogus")  # reprolint: disable=O601
    """), select=["O601"])
    assert codes(findings) == []


def test_o602_fires_on_label_mismatch(tmp_path):
    findings = lint_tree(tmp_path, obs_tree("""
        from pkg.obs import metrics, names

        def go():
            metrics.inc(names.REQUESTS, region="EU")
    """), select=["O602"])
    assert codes(findings) == ["O602"]
    assert "country" in findings[0].message and "region" in findings[0].message


def test_o602_quiet_on_exact_labels_and_amount_kwarg(tmp_path):
    findings = lint_tree(tmp_path, obs_tree("""
        from pkg.obs import metrics, names

        def go():
            metrics.inc(names.REQUESTS, amount=3, country="DE")
    """), select=["O602"])
    assert codes(findings) == []


def test_o603_fires_on_undeclared_span(tmp_path):
    findings = lint_tree(tmp_path, obs_tree("""
        def go(tracer):
            with tracer.span("engine.shutdown"):
                pass
    """), select=["O603"])
    assert codes(findings) == ["O603"]
    assert "engine.shutdown" in findings[0].message


def test_o603_wildcard_admits_fstring_prefix(tmp_path):
    findings = lint_tree(tmp_path, obs_tree("""
        def go(tracer, name):
            with tracer.span(f"stage:{name}"):
                pass
    """), select=["O603"])
    assert codes(findings) == []


def test_o603_fires_on_unmatched_fstring_prefix(tmp_path):
    findings = lint_tree(tmp_path, obs_tree("""
        def go(tracer, name):
            with tracer.span(f"phase:{name}"):
                pass
    """), select=["O603"])
    assert codes(findings) == ["O603"]


def test_obs_rules_quiet_without_catalog_module(tmp_path):
    findings = lint_tree(tmp_path, {
        "pkg/main.py": """
            def go(registry):
                registry.counter("anything.goes")
        """,
    }, select=["O601", "O602", "O603"])
    assert codes(findings) == []


# ---------------------------------------------------------------------------
# The repo itself must be clean
# ---------------------------------------------------------------------------


def test_repo_tree_is_lint_clean():
    repo_root = Path(__file__).resolve().parent.parent
    source_tree = repo_root / "src" / "repro"
    if not source_tree.exists():  # pragma: no cover - exotic layouts
        pytest.skip("source tree not present")
    # The same roster `make lint` checks: the package plus the scripts
    # and benchmarks that ride in CI, against an empty baseline.
    paths = [source_tree] + [
        extra
        for extra in (repo_root / "scripts", repo_root / "benchmarks")
        if extra.exists()
    ]
    result = run_lint(paths, root=repo_root)
    assert result.findings == [], [
        f"{f.location()}: {f.rule} {f.message}" for f in result.findings
    ]
