"""Tests for repro.netbase.allocator and repro.netbase.asn."""

import pytest

from repro.errors import AllocationError, ReproError
from repro.netbase.addr import IPAddress, Prefix
from repro.netbase.allocator import AddressPlan, PrefixPool, PrefixRecord
from repro.netbase.asn import ASRegistry, AutonomousSystem


class TestPrefixPool:
    def test_sequential_addresses(self):
        pool = PrefixPool(Prefix.parse("10.0.0.0/30"))
        addresses = [str(pool.allocate_address()) for _ in range(4)]
        assert addresses == ["10.0.0.0", "10.0.0.1", "10.0.0.2", "10.0.0.3"]
        with pytest.raises(AllocationError):
            pool.allocate_address()

    def test_prefix_allocation_aligned(self):
        pool = PrefixPool(Prefix.parse("10.0.0.0/24"))
        pool.allocate_address()  # cursor now unaligned
        sub = pool.allocate_prefix(26)
        assert str(sub) == "10.0.0.64/26"

    def test_prefix_allocation_shorter_than_pool_rejected(self):
        pool = PrefixPool(Prefix.parse("10.0.0.0/24"))
        with pytest.raises(AllocationError):
            pool.allocate_prefix(16)

    def test_exhaustion(self):
        pool = PrefixPool(Prefix.parse("10.0.0.0/25"))
        pool.allocate_prefix(25)
        with pytest.raises(AllocationError):
            pool.allocate_prefix(25)

    def test_remaining(self):
        pool = PrefixPool(Prefix.parse("10.0.0.0/24"))
        assert pool.remaining == 256
        pool.allocate_address()
        assert pool.remaining == 255


class TestAddressPlan:
    def test_create_and_lookup(self):
        plan = AddressPlan()
        record = plan.create_pool("DE", "hosting", "acme", length=24)
        address = plan.pool(record.prefix).allocate_address()
        found = plan.lookup(address)
        assert found is not None
        assert found.country == "DE"
        assert found.kind == "hosting"
        assert found.owner == "acme"

    def test_lookup_miss(self):
        plan = AddressPlan()
        assert plan.lookup(IPAddress.parse("200.0.0.1")) is None

    def test_pools_disjoint(self):
        plan = AddressPlan()
        first = plan.create_pool("DE", "hosting", "a", length=24)
        second = plan.create_pool("FR", "hosting", "b", length=24)
        assert not first.prefix.overlaps(second.prefix)

    def test_ipv6_pool(self):
        plan = AddressPlan()
        record = plan.create_pool("DE", "hosting", "a", length=112, version=6)
        address = plan.pool(record.prefix).allocate_address()
        assert address.version == 6
        assert plan.lookup(address).owner == "a"

    def test_records_filtering(self):
        plan = AddressPlan()
        plan.create_pool("DE", "hosting", "a", length=24)
        plan.create_pool("DE", "eyeball", "isp", length=24)
        plan.create_pool("FR", "hosting", "a", length=24)
        assert len(plan.records_for(country="DE")) == 2
        assert len(plan.records_for(kind="hosting")) == 2
        assert len(plan.records_for(owner="a", country="FR")) == 1

    def test_unknown_pool_prefix(self):
        plan = AddressPlan()
        with pytest.raises(AllocationError):
            plan.pool(Prefix.parse("9.9.9.0/24"))

    def test_invalid_kind_rejected(self):
        with pytest.raises(AllocationError):
            PrefixRecord(Prefix.parse("1.0.0.0/24"), "DE", "weird", "x")


class TestASRegistry:
    def test_register_and_get(self):
        registry = ASRegistry()
        asn = registry.register("acme-net", "hosting", "DE")
        assert registry.get(asn.number) is asn
        assert asn.number >= ASRegistry.FIRST_NUMBER

    def test_numbers_unique_and_increasing(self):
        registry = ASRegistry()
        first = registry.register("a", "hosting", "DE")
        second = registry.register("b", "eyeball", "FR")
        assert second.number == first.number + 1

    def test_unknown_number_raises(self):
        with pytest.raises(ReproError):
            ASRegistry().get(1)

    def test_find_returns_none(self):
        assert ASRegistry().find(1) is None

    def test_by_kind(self):
        registry = ASRegistry()
        registry.register("a", "hosting", "DE")
        registry.register("b", "eyeball", "FR")
        assert [a.name for a in registry.by_kind("eyeball")] == ["b"]
        with pytest.raises(ReproError):
            registry.by_kind("weird")

    def test_invalid_kind(self):
        with pytest.raises(ReproError):
            AutonomousSystem(1, "x", "weird", "DE")

    def test_invalid_number(self):
        with pytest.raises(ReproError):
            AutonomousSystem(0, "x", "hosting", "DE")

    def test_extend_rejects_duplicates(self):
        registry = ASRegistry()
        asn = registry.register("a", "hosting", "DE")
        with pytest.raises(ReproError):
            registry.extend([asn])

    def test_extend_bumps_next_number(self):
        registry = ASRegistry()
        external = AutonomousSystem(
            ASRegistry.FIRST_NUMBER + 10, "ext", "transit", "US"
        )
        registry.extend([external])
        fresh = registry.register("after", "hosting", "DE")
        assert fresh.number == external.number + 1
