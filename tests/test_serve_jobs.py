"""Unit tests for :mod:`repro.serve.jobs` and the facade progress hook.

The engine itself is stubbed (``repro.runtime.facade.run_study`` is
monkeypatched — :meth:`JobManager._execute` resolves it at call time),
so these tests exercise the queueing, lifecycle, event and metric
semantics in milliseconds; the real engine-under-the-service path is
locked by ``make serve-smoke``.
"""

from __future__ import annotations

import asyncio
import threading

import pytest

from repro.config import WorldConfig
from repro.errors import ExecutionError, ServeError
from repro.obs import names as obs_names
from repro.serve.jobs import JobManager, JobQueueFullError, job_id_for
from repro.serve.schemas import validate_event


class FakeRun:
    """The slice of :class:`RuntimeRun` the job summary consumes."""

    def __init__(self, hits, misses):
        self.cache_hits = hits
        self.cache_misses = misses
        self.ledger_record = {"run_id": "deadbeef", "seq": 0}

    def table2_counts(self):
        return {"total": {"total_requests": 25825}}

    def eu28_destination_regions(self):
        return {"EU 28": 91.9}


def fake_run_study_factory(seen=None):
    """A ``run_study`` double: cold on first digest sighting, warm after.

    Opens one streamed span (``stage:fake``) and one that must stay off
    the stream (``shard:0``) so the span filter is exercised too.
    """
    seen = seen if seen is not None else set()

    def fake_run_study(config, workers=1, cache_dir=None, tracer=None):
        with tracer.span("stage:fake", shards=1):
            with tracer.span("shard:0"):
                pass
        digest = config.digest()
        warm = digest in seen
        seen.add(digest)
        return FakeRun(hits=61 if warm else 0, misses=0 if warm else 61)

    return fake_run_study


async def wait_for(predicate, timeout=10.0):
    deadline = asyncio.get_running_loop().time() + timeout
    while not predicate():
        if asyncio.get_running_loop().time() > deadline:
            raise AssertionError("condition not reached in time")
        await asyncio.sleep(0.01)


def run_manager(test, monkeypatch, run_study=None, **kwargs):
    """Drive an async test body against a started manager."""
    monkeypatch.setattr(
        "repro.runtime.facade.run_study",
        run_study or fake_run_study_factory(),
    )

    async def go():
        manager = JobManager(cache_dir="unused", **kwargs)
        await manager.start()
        try:
            return await test(manager)
        finally:
            await manager.stop()

    return asyncio.run(go())


class TestValidation:
    def test_rejects_non_positive_limits(self):
        with pytest.raises(ServeError):
            JobManager(cache_dir="x", job_limit=0)
        with pytest.raises(ServeError):
            # maxsize<=0 would mean *unbounded* in asyncio, the
            # opposite of the backpressure contract.
            JobManager(cache_dir="x", queue_limit=0)

    def test_submit_before_start_fails(self):
        with pytest.raises(ServeError):
            JobManager(cache_dir="x").submit({"preset": "small"})


class TestJobIds:
    def test_deterministic_and_distinct(self):
        digest = WorldConfig.small().digest()
        assert job_id_for(digest, 0) == job_id_for(digest, 0)
        assert job_id_for(digest, 0) != job_id_for(digest, 1)
        assert job_id_for(digest, 0) != job_id_for("other", 0)


class TestLifecycle:
    def test_cold_then_warm_job(self, monkeypatch):
        async def test(manager):
            cold = manager.submit({"preset": "small"})
            await wait_for(lambda: cold.terminal)
            warm = manager.submit({"preset": "small"})
            await wait_for(lambda: warm.terminal)
            return cold, warm, manager.counts(), manager.warm_hit_rate

        cold, warm, counts, warm_hit_rate = run_manager(test, monkeypatch)
        assert (cold.state, warm.state) == ("done", "done")
        assert cold.result["warm_hit_rate"] == 0.0
        assert warm.result["warm_hit_rate"] == 1.0
        assert warm_hit_rate == 1.0
        assert counts == {"queued": 0, "running": 0, "done": 2, "failed": 0}
        assert warm.result["ledger"] == {"run_id": "deadbeef", "seq": 0}

    def test_event_stream_shape(self, monkeypatch):
        async def test(manager):
            job = manager.submit({"preset": "small"})
            await wait_for(lambda: job.terminal)
            return job

        job = run_manager(test, monkeypatch)
        for event in job.events:
            validate_event(event)
        names = [event["event"] for event in job.events]
        # queued, started, the serve:job + stage:fake span pairs
        # (nested: starts then ends inner-first), then terminal.
        assert names == [
            "job:queued", "job:start",
            "span:start", "span:start", "span:end", "span:end",
            "job:done",
        ]
        spans = [
            event["data"]["span"]
            for event in job.events
            if event["event"].startswith("span:")
        ]
        # shard:0 is filtered off the stream.
        assert "shard:0" not in spans
        assert spans == ["serve:job", "stage:fake", "stage:fake", "serve:job"]
        assert [event["seq"] for event in job.events] == list(range(7))
        ends = [e for e in job.events if e["event"] == "span:end"]
        assert all("wall_s" in e["data"] for e in ends)
        assert job.events[-1]["data"]["state"] == "done"

    def test_subscriber_sees_live_events(self, monkeypatch):
        async def test(manager):
            job = manager.submit({"preset": "small"})
            queue = manager.subscribe(job)
            received = list(job.events)
            while not received or received[-1]["event"] != "job:done":
                received.append(await asyncio.wait_for(queue.get(), 10))
            manager.unsubscribe(job, queue)
            return job, received

        job, received = run_manager(test, monkeypatch)
        assert received == job.events

    def test_failed_job_is_terminal_not_fatal(self, monkeypatch):
        def exploding(config, workers=1, cache_dir=None, tracer=None):
            raise ExecutionError("shard 3 exploded")

        async def test(manager):
            job = manager.submit({"preset": "small"})
            await wait_for(lambda: job.terminal)
            # The manager survives: a fresh submission still works.
            ok = manager.submit({"preset": "small", "seed": 8})
            return job, ok, manager.registry

        job, ok, registry = run_manager(test, monkeypatch, run_study=exploding)
        assert job.state == "failed"
        assert job.error == "shard 3 exploded"
        assert job.events[-1]["event"] == "job:done"
        assert job.events[-1]["data"]["error"] == "shard 3 exploded"
        assert "error" in job.to_payload()
        assert ok.state in ("queued", "running", "failed")
        completed = registry.counter(
            obs_names.SERVE_JOBS_COMPLETED, outcome="failed"
        )
        assert completed.value == 1

    def test_full_queue_rejects_without_phantom_job(self, monkeypatch):
        gate = threading.Event()

        def blocking(config, workers=1, cache_dir=None, tracer=None):
            gate.wait(timeout=30)
            return FakeRun(hits=0, misses=61)

        async def test(manager):
            first = manager.submit({"preset": "small"})
            await wait_for(lambda: first.state == "running")
            second = manager.submit({"preset": "small", "seed": 8})
            with pytest.raises(JobQueueFullError):
                manager.submit({"preset": "small", "seed": 9})
            before = dict(manager.jobs)
            gate.set()
            await wait_for(lambda: second.terminal)
            return first, second, before, manager.registry

        first, second, before, registry = run_manager(
            test, monkeypatch, run_study=blocking,
            job_limit=1, queue_limit=1,
        )
        # The rejected submission claimed no seq, created no job.
        assert set(before) == {first.job_id, second.job_id}
        assert (first.seq, second.seq) == (0, 1)
        rejected = registry.counter(obs_names.SERVE_JOBS_REJECTED)
        assert rejected.value == 1

    def test_invalid_submission_never_occupies_capacity(self, monkeypatch):
        async def test(manager):
            with pytest.raises(ServeError):
                manager.submit({"preset": "gigantic"})
            assert manager.jobs == {}
            job = manager.submit({"preset": "small"})
            assert job.seq == 0
            await wait_for(lambda: job.terminal)
            return job

        assert run_manager(test, monkeypatch).state == "done"


class TestFacadeProgressHook:
    def test_progress_wraps_run_in_a_callback_tracer(self, monkeypatch):
        # The facade's wiring: progress=... with no tracer must trace
        # the run through a CallbackTracer so span events reach the
        # callback.  The engine is stubbed; the real traced-run path is
        # tier-1 elsewhere (test_runtime_determinism) and serve-smoke.
        from repro.obs.trace import CallbackTracer
        from repro.runtime import facade

        captured = {}

        class FakeEngine:
            def __init__(self, workers=1, cache_dir=None, profile_hz=None):
                pass

            def run(self, config, targets, tracer=None):
                captured["tracer"] = tracer
                with tracer.span("run"):
                    pass
                return "result"

        monkeypatch.setattr(facade, "ExecutionEngine", FakeEngine)
        events = []
        run = facade.run_study(
            WorldConfig.small(),
            progress=lambda phase, span: events.append((phase, span.name)),
        )
        assert isinstance(captured["tracer"], CallbackTracer)
        assert events == [("start", "run"), ("end", "run")]
        assert run.result == "result"

    def test_explicit_tracer_wins_over_progress(self, monkeypatch):
        from repro.obs import TickClock, Tracer
        from repro.runtime import facade

        captured = {}

        class FakeEngine:
            def __init__(self, workers=1, cache_dir=None, profile_hz=None):
                pass

            def run(self, config, targets, tracer=None):
                captured["tracer"] = tracer
                return "result"

        monkeypatch.setattr(facade, "ExecutionEngine", FakeEngine)
        tracer = Tracer(TickClock())
        facade.run_study(
            WorldConfig.small(),
            tracer=tracer,
            progress=lambda phase, span: None,
        )
        assert captured["tracer"] is tracer
