"""Cross-thread isolation of the ambient metrics/tracing stacks.

The serve layer runs one study per worker thread, each under its own
``collecting``/``tracing`` scope.  The ambient stacks are
thread-local, so concurrent scopes must never observe each other —
the regression these tests pin down (reprolint T1003 caught the
original module-global stacks).
"""

from __future__ import annotations

import threading

from repro.obs import metrics
from repro.obs.metrics import MetricsRegistry, collecting
from repro.obs.trace import Tracer, current_tracer, tracing


def test_collecting_scopes_are_thread_local():
    registries = {}
    barrier = threading.Barrier(2)

    def work(name: str) -> None:
        registry = MetricsRegistry()
        registries[name] = registry
        with collecting(registry):
            barrier.wait()  # both scopes provably open at once
            for _ in range(50):
                metrics.inc("events", worker=name)
            barrier.wait()

    threads = [
        threading.Thread(target=work, args=(name,)) for name in ("a", "b")
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    for name in ("a", "b"):
        registry = registries[name]
        assert len(registry) == 1
        assert registry.value("events", worker=name) == 50


def test_ambient_stack_empty_on_fresh_thread():
    seen = {}

    def probe() -> None:
        seen["active"] = metrics.active()
        seen["current"] = metrics.current()

    registry = MetricsRegistry()
    with collecting(registry):
        thread = threading.Thread(target=probe)
        thread.start()
        thread.join()
    assert seen == {"active": False, "current": None}


def test_tracing_scopes_are_thread_local():
    tracers = {}
    barrier = threading.Barrier(2)

    def work(name: str) -> None:
        tracer = Tracer()
        tracers[name] = tracer
        with tracing(tracer):
            barrier.wait()
            assert current_tracer() is tracer
            with tracer.span(f"stage-{name}"):
                pass
            barrier.wait()

    threads = [
        threading.Thread(target=work, args=(name,)) for name in ("a", "b")
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    for name in ("a", "b"):
        spans = tracers[name].rows()
        assert [row["name"] for row in spans] == [f"stage-{name}"]


def test_concurrent_instrument_creation_loses_nothing():
    registry = MetricsRegistry()
    barrier = threading.Barrier(8)

    def work(index: int) -> None:
        barrier.wait()
        for i in range(25):
            registry.counter("events", worker=index, slot=i).inc()

    threads = [
        threading.Thread(target=work, args=(index,)) for index in range(8)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    assert len(registry) == 8 * 25
    assert registry.sum_counters("events") == 8 * 25
