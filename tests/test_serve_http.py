"""Unit tests for the service's transport: HTTP parsing, routing, SSE.

The parser half runs against hand-fed ``asyncio.StreamReader`` byte
streams — no sockets — so every malformed-wire path is exercised
deterministically.
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.errors import ServeError
from repro.serve.http import (
    HttpError,
    Request,
    Router,
    json_response,
    read_request,
    response_head,
)
from repro.serve.sse import (
    decode_events,
    encode_comment,
    encode_event,
)


def parse(raw: bytes, **kwargs):
    """Run :func:`read_request` over a pre-fed stream."""
    async def go():
        reader = asyncio.StreamReader()
        reader.feed_data(raw)
        reader.feed_eof()
        return await read_request(reader, **kwargs)

    return asyncio.run(go())


class TestReadRequest:
    def test_simple_get(self):
        request = parse(b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n")
        assert request.method == "GET"
        assert request.path == "/healthz"
        assert request.headers["host"] == "x"
        assert request.body == b""

    def test_query_and_percent_decoding(self):
        request = parse(b"GET /runs%2Fx?a=1&b=&c=two%20words HTTP/1.1\r\n\r\n")
        assert request.path == "/runs/x"
        assert request.query == {"a": "1", "b": "", "c": "two words"}

    def test_body_via_content_length(self):
        body = b'{"preset": "small"}'
        raw = (
            b"POST /studies HTTP/1.1\r\n"
            + f"Content-Length: {len(body)}\r\n\r\n".encode()
            + body
        )
        request = parse(raw)
        assert request.json() == {"preset": "small"}

    def test_immediate_eof_is_none_not_an_error(self):
        assert parse(b"") is None

    @pytest.mark.parametrize("raw, status", [
        (b"GARBAGE\r\n\r\n", 400),
        (b"GET /x NOTHTTP\r\n\r\n", 400),
        (b"GET /x HTTP/1.1\r\nbroken header line\r\n\r\n", 400),
        (b"GET /x HTTP/1.1\r\nContent-Length: ten\r\n\r\n", 400),
        (b"GET /x HTTP/1.1\r\nContent-Length: -5\r\n\r\n", 400),
        (b"POST /x HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc", 400),
        (b"GET /x HTTP/1.1\r\nHost: x\r\n", 400),
    ])
    def test_malformed_requests_raise_with_status(self, raw, status):
        with pytest.raises(HttpError) as excinfo:
            parse(raw)
        assert excinfo.value.status == status

    def test_oversized_body_is_413(self):
        with pytest.raises(HttpError) as excinfo:
            parse(
                b"POST /x HTTP/1.1\r\nContent-Length: 100\r\n\r\n" + b"x" * 100,
                max_body=10,
            )
        assert excinfo.value.status == 413


class TestResponses:
    def test_json_response_has_correct_content_length(self):
        raw = json_response(200, {"ok": True})
        head, _, body = raw.partition(b"\r\n\r\n")
        assert b"HTTP/1.1 200 OK" in head
        assert f"Content-Length: {len(body)}".encode() in head
        assert json.loads(body) == {"ok": True}

    def test_response_head_sets_connection_close(self):
        head = response_head(200, content_type="text/event-stream")
        assert b"Connection: close" in head
        assert b"text/event-stream" in head
        assert head.endswith(b"\r\n\r\n")

    def test_empty_body_json_is_400(self):
        with pytest.raises(HttpError) as excinfo:
            Request(method="POST", path="/x").json()
        assert excinfo.value.status == 400

    def test_malformed_body_json_is_400(self):
        with pytest.raises(HttpError) as excinfo:
            Request(method="POST", path="/x", body=b"{nope").json()
        assert excinfo.value.status == 400


def handler(name):
    async def h(*args):
        return name
    h.__name__ = name
    return h


class TestRouter:
    def build(self):
        router = Router()
        # Literal-suffix routes registered first, as the server does.
        router.add("GET", "/studies/{job_id}/events", handler("events"))
        router.add("GET", "/studies/{job_id}", handler("study"))
        router.add("GET", "/runs", handler("runs"))
        router.add("GET", "/runs/{a}/diff/{b}", handler("diff"))
        router.add("GET", "/runs/{selector}/check", handler("check"))
        router.add("GET", "/runs/{selector}", handler("run"))
        router.add("PUT", "/baseline", handler("baseline"))
        return router

    def test_literal_match(self):
        h, captures, pattern = self.build().match("GET", "/runs")
        assert (h.__name__, captures, pattern) == ("runs", {}, "/runs")

    def test_captures(self):
        h, captures, _ = self.build().match("GET", "/runs/0/diff/latest~1")
        assert h.__name__ == "diff"
        assert captures == {"a": "0", "b": "latest~1"}

    def test_literal_suffix_beats_capture(self):
        h, captures, _ = self.build().match("GET", "/runs/latest/check")
        assert (h.__name__, captures) == ("check", {"selector": "latest"})
        h, captures, _ = self.build().match("GET", "/studies/abc/events")
        assert (h.__name__, captures) == ("events", {"job_id": "abc"})

    def test_unknown_path_is_404(self):
        with pytest.raises(HttpError) as excinfo:
            self.build().match("GET", "/nope")
        assert excinfo.value.status == 404

    def test_wrong_method_is_405_listing_allowed(self):
        with pytest.raises(HttpError) as excinfo:
            self.build().match("POST", "/baseline")
        assert excinfo.value.status == 405
        assert "PUT" in str(excinfo.value)

    def test_pattern_must_be_rooted(self):
        with pytest.raises(ServeError):
            Router().add("GET", "runs", handler("x"))


class TestSse:
    def payload(self, seq=0):
        return {
            "schema": "repro.serve/event/v1",
            "event": "span:end",
            "job_id": "abc123",
            "seq": seq,
            "data": {"span": "stage:panel", "wall_s": 0.41},
        }

    def test_encode_decode_round_trip(self):
        stream = (
            encode_comment("hello")
            + encode_event(self.payload(0))
            + encode_event(self.payload(1))
        )
        assert decode_events(stream.decode("utf-8")) == [
            self.payload(0), self.payload(1),
        ]

    def test_frame_shape(self):
        frame = encode_event(self.payload(3)).decode("utf-8")
        lines = frame.split("\n")
        assert lines[0] == "id: 3"
        assert lines[1] == "event: span:end"
        assert lines[2].startswith("data: {")
        assert frame.endswith("\n\n")

    def test_encode_requires_event_and_seq(self):
        with pytest.raises(ServeError):
            encode_event({"event": "job:done"})
        with pytest.raises(ServeError):
            encode_event({"seq": 0})

    def test_multiline_comment_rejected(self):
        with pytest.raises(ServeError):
            encode_comment("two\nlines")

    @pytest.mark.parametrize("raw", [
        "event: job:done\n\n",            # no data field
        "data: {broken\n\n",              # data not JSON
        "data: [1, 2]\n\n",               # data not an object
    ])
    def test_malformed_streams_rejected(self, raw):
        with pytest.raises(ServeError):
            decode_events(raw)

    def test_comments_and_blank_frames_skipped(self):
        assert decode_events(": warm-up\n\n\n\n") == []
