"""Tests for repro.util.rng."""

import random

import pytest
from hypothesis import given, strategies as st

from repro.util.rng import (
    RngStreams,
    WeightedSampler,
    chunked,
    derive_seed,
    poisson,
    sample_without_replacement,
    weighted_choice,
    zipf_weights,
)


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(42, "panel") == derive_seed(42, "panel")

    def test_name_sensitivity(self):
        assert derive_seed(42, "panel") != derive_seed(42, "netflow")

    def test_seed_sensitivity(self):
        assert derive_seed(1, "panel") != derive_seed(2, "panel")


class TestRngStreams:
    def test_same_name_returns_same_stream(self):
        streams = RngStreams(7)
        assert streams.get("a") is streams.get("a")

    def test_different_names_are_independent(self):
        first = RngStreams(7).get("a").random()
        second = RngStreams(7).get("b").random()
        assert first != second

    def test_streams_reproducible_across_instances(self):
        a = RngStreams(7).get("x").random()
        b = RngStreams(7).get("x").random()
        assert a == b

    def test_creation_order_does_not_matter(self):
        one = RngStreams(7)
        one.get("a")
        value_b_after_a = one.get("b").random()
        two = RngStreams(7)
        value_b_first = two.get("b").random()
        assert value_b_after_a == value_b_first

    def test_spawn_independent_of_parent(self):
        parent = RngStreams(7)
        child = parent.spawn("sub")
        assert parent.get("a").random() != child.get("a").random()

    def test_fork_is_fresh_each_time(self):
        streams = RngStreams(7)
        first = streams.fork("user-1")
        first.random()
        second = streams.fork("user-1")
        # A fresh fork restarts the sequence.
        assert second.random() == RngStreams(7).fork("user-1").random()


class TestWeightedChoice:
    def test_single_item(self):
        rng = random.Random(0)
        assert weighted_choice(rng, ["only"], [1.0]) == "only"

    def test_zero_weight_item_never_chosen(self):
        rng = random.Random(0)
        picks = {
            weighted_choice(rng, ["a", "b"], [0.0, 1.0]) for _ in range(200)
        }
        assert picks == {"b"}

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            weighted_choice(random.Random(0), [], [])

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            weighted_choice(random.Random(0), ["a"], [1.0, 2.0])

    def test_nonpositive_total_raises(self):
        with pytest.raises(ValueError):
            weighted_choice(random.Random(0), ["a"], [0.0])

    def test_roughly_proportional(self):
        rng = random.Random(1)
        counts = {"a": 0, "b": 0}
        for _ in range(4000):
            counts[weighted_choice(rng, ["a", "b"], [3.0, 1.0])] += 1
        ratio = counts["a"] / counts["b"]
        assert 2.3 < ratio < 3.9


class TestWeightedSampler:
    def test_matches_weighted_choice_distribution(self):
        sampler = WeightedSampler(["a", "b", "c"], [1.0, 2.0, 7.0])
        rng = random.Random(3)
        counts = {"a": 0, "b": 0, "c": 0}
        for _ in range(5000):
            counts[sampler.sample(rng)] += 1
        assert counts["c"] > counts["b"] > counts["a"]
        assert 0.62 < counts["c"] / 5000 < 0.78

    def test_zero_weight_entries_skipped(self):
        sampler = WeightedSampler(["a", "b"], [0.0, 1.0])
        rng = random.Random(0)
        assert all(sampler.sample(rng) == "b" for _ in range(100))

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            WeightedSampler([], [])

    def test_rejects_negative_weight(self):
        with pytest.raises(ValueError):
            WeightedSampler(["a"], [-1.0])

    def test_rejects_zero_total(self):
        with pytest.raises(ValueError):
            WeightedSampler(["a", "b"], [0.0, 0.0])

    def test_len(self):
        assert len(WeightedSampler(["a", "b"], [1, 1])) == 2


class TestZipfWeights:
    def test_first_rank_heaviest(self):
        weights = zipf_weights(10)
        assert weights[0] == max(weights)
        assert weights == sorted(weights, reverse=True)

    def test_exponent_zero_uniform(self):
        assert zipf_weights(5, exponent=0.0) == [1.0] * 5

    def test_empty(self):
        assert zipf_weights(0) == []

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            zipf_weights(-1)


class TestPoisson:
    def test_zero_mean(self):
        assert poisson(random.Random(0), 0.0) == 0

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            poisson(random.Random(0), -1.0)

    def test_mean_small_lambda(self):
        rng = random.Random(5)
        draws = [poisson(rng, 3.0) for _ in range(4000)]
        assert 2.8 < sum(draws) / len(draws) < 3.2

    def test_mean_large_lambda(self):
        rng = random.Random(5)
        draws = [poisson(rng, 100.0) for _ in range(2000)]
        assert 97 < sum(draws) / len(draws) < 103

    def test_cap(self):
        rng = random.Random(5)
        assert all(poisson(rng, 50.0, cap=10) <= 10 for _ in range(100))


class TestSampleWithoutReplacement:
    def test_distinct(self):
        rng = random.Random(0)
        sample = sample_without_replacement(rng, list(range(10)), 5)
        assert len(sample) == len(set(sample)) == 5

    def test_oversample_clamped(self):
        rng = random.Random(0)
        assert len(sample_without_replacement(rng, [1, 2], 10)) == 2


class TestChunked:
    def test_exact_division(self):
        assert list(chunked([1, 2, 3, 4], 2)) == [[1, 2], [3, 4]]

    def test_remainder(self):
        assert list(chunked([1, 2, 3], 2)) == [[1, 2], [3]]

    def test_bad_size(self):
        with pytest.raises(ValueError):
            list(chunked([1], 0))


@given(st.integers(), st.text(max_size=30))
def test_derive_seed_is_stable_property(seed, name):
    assert derive_seed(seed, name) == derive_seed(seed, name)
    assert 0 <= derive_seed(seed, name) < (1 << 64)


@given(
    st.lists(st.floats(min_value=0.01, max_value=100), min_size=1, max_size=20),
    st.integers(min_value=0, max_value=2**31),
)
def test_weighted_sampler_always_returns_member(weights, seed):
    items = list(range(len(weights)))
    sampler = WeightedSampler(items, weights)
    rng = random.Random(seed)
    for _ in range(10):
        assert sampler.sample(rng) in items
