"""Tests for the inter-tracker collaboration analysis."""

import pytest

from repro.core.classify import ClassificationResult, ClassificationStage
from repro.core.collaboration import CollaborationAnalyzer, HandOff
from repro.netbase.addr import IPAddress
from repro.web.organizations import ServiceRole
from repro.web.requests import ThirdPartyRequest


def make_request(url, referrer, ip_text, truth_country="DE"):
    return ThirdPartyRequest(
        first_party="site.example",
        url=url,
        referrer=referrer,
        ip=IPAddress.parse(ip_text),
        user_id=1,
        user_country="DE",
        day=1.0,
        https=True,
        truth_role=ServiceRole.COOKIE_SYNC,
        truth_org="org",
        truth_country=truth_country,
        chain_depth=1,
    )


def locator(mapping):
    return lambda ip: mapping.get(str(ip))


class TestHandOff:
    def test_cross_border_detection(self):
        hand_off = HandOff("a.example", "b.example", "DE", "US")
        assert hand_off.crosses_country
        assert hand_off.leaves_gdpr

    def test_within_country(self):
        hand_off = HandOff("a.example", "b.example", "DE", "DE")
        assert not hand_off.crosses_country
        assert not hand_off.leaves_gdpr

    def test_intra_eu_crossing_stays_in_gdpr(self):
        hand_off = HandOff("a.example", "b.example", "DE", "FR")
        assert hand_off.crosses_country
        assert not hand_off.leaves_gdpr

    def test_unknown_location(self):
        hand_off = HandOff("a.example", "b.example", None, "US")
        assert not hand_off.crosses_country
        assert not hand_off.leaves_gdpr


def chain_classification():
    """root (DE) → mid (US) → leaf (DE); plus an orphan."""
    root = make_request(
        "https://sync.a.example/usermatch?uid=1",
        "https://site.example/",
        "1.0.0.1",
    )
    mid = make_request(
        "https://cs.b.example/p?uid=1", root.url, "1.0.0.2"
    )
    leaf = make_request(
        "https://m.c.example/q?uid=1", mid.url, "1.0.0.3"
    )
    orphan = make_request(
        "https://x.d.example/r?uid=1", "https://other.example/", "1.0.0.4"
    )
    requests = [root, mid, leaf, orphan]
    stages = [ClassificationStage.KEYWORD, ClassificationStage.REFERRER,
              ClassificationStage.REFERRER, ClassificationStage.KEYWORD]
    return ClassificationResult(requests=requests, stages=stages)


LOCATIONS = {
    "1.0.0.1": "DE", "1.0.0.2": "US", "1.0.0.3": "DE", "1.0.0.4": "FR",
}


class TestCollaborationAnalyzer:
    def test_hand_offs_extracted_from_chains(self):
        analyzer = CollaborationAnalyzer(
            chain_classification(), locator(LOCATIONS)
        )
        hand_offs = analyzer.hand_offs()
        pairs = {(h.source_domain, h.target_domain) for h in hand_offs}
        assert pairs == {("a.example", "b.example"),
                         ("b.example", "c.example")}

    def test_first_party_referrers_excluded(self):
        analyzer = CollaborationAnalyzer(
            chain_classification(), locator(LOCATIONS)
        )
        domains = {h.source_domain for h in analyzer.hand_offs()}
        assert "site.example" not in domains
        assert "other.example" not in domains

    def test_graph_weights(self):
        analyzer = CollaborationAnalyzer(
            chain_classification(), locator(LOCATIONS)
        )
        graph = analyzer.graph()
        assert graph["a.example"]["b.example"]["weight"] == 1
        assert graph.number_of_edges() == 2

    def test_geography(self):
        analyzer = CollaborationAnalyzer(
            chain_classification(), locator(LOCATIONS)
        )
        # DE→US and US→DE: both cross a border, one leaves GDPR.
        assert analyzer.cross_border_share_pct() == pytest.approx(100.0)
        assert analyzer.gdpr_exit_share_pct() == pytest.approx(50.0)

    def test_summary_keys(self):
        analyzer = CollaborationAnalyzer(
            chain_classification(), locator(LOCATIONS)
        )
        summary = analyzer.summary()
        assert summary["hand_offs"] == 2
        assert summary["domains"] == 3
        assert summary["components"] == 1
        assert summary["giant_component_share"] == pytest.approx(1.0)

    def test_empty_log(self):
        analyzer = CollaborationAnalyzer(
            ClassificationResult(requests=[], stages=[]),
            locator({}),
        )
        assert analyzer.hand_offs() == []
        assert analyzer.n_components() == 0
        assert analyzer.giant_component_share() == 0.0
        assert analyzer.cross_border_share_pct() == 0.0

    def test_on_study(self, small_study):
        """The simulated RTB ecosystem produces a rich, mostly-connected
        collaboration graph with substantial cross-border hand-offs."""
        analyzer = CollaborationAnalyzer(
            small_study.classification, small_study.geolocation.reference
        )
        summary = analyzer.summary()
        assert summary["hand_offs"] > 1000
        assert summary["domains"] > 20
        assert summary["giant_component_share"] > 0.5
        assert 10.0 < summary["cross_border_share_pct"] <= 100.0
        hubs = analyzer.hubs(5)
        assert hubs and hubs[0][1] >= hubs[-1][1]
        top = analyzer.top_collaborations(5)
        assert all(weight >= 1 for _, _, weight in top)
