"""Tests for the web-ecosystem build: organizations, deployment,
publishers, and panel users — run against the shared small world."""

from collections import Counter

import pytest

from repro.dnssim.authority import SelectionPolicy
from repro.errors import ConfigError
from repro.web.organizations import (
    DeploymentProfile,
    EU_TRACKER_HOME_WEIGHTS,
    OrganizationFactory,
    OrgKind,
    ServiceRole,
)
from repro.web.publishers import SENSITIVE_CATEGORIES
from repro.web.users import users_by_country


class TestOrganizationFactory:
    def test_counts_match_config(self, small_world):
        config = small_world.config.ecosystem
        kinds = Counter(o.kind for o in small_world.organizations)
        assert kinds[OrgKind.HYPERSCALER] == config.n_hyperscalers
        assert kinds[OrgKind.AD_EXCHANGE] == config.n_ad_exchanges
        assert kinds[OrgKind.DSP] == config.n_dsps
        assert kinds[OrgKind.CLEAN] == config.n_clean_orgs
        assert (
            kinds[OrgKind.TRACKER]
            == config.n_eu_trackers
            + config.n_us_trackers
            + config.n_resteu_trackers
            + config.n_asia_trackers
        )

    def test_domains_globally_unique(self, small_world):
        domains = [d for o in small_world.organizations for d in o.domains]
        assert len(domains) == len(set(domains))

    def test_every_org_has_domains(self, small_world):
        assert all(o.domains for o in small_world.organizations)

    def test_hyperscalers_are_us_seated_global(self, small_world):
        for org in small_world.organizations:
            if org.kind is OrgKind.HYPERSCALER:
                assert org.legal_country == "US"
                assert org.deployment is DeploymentProfile.GLOBAL_DENSE
                assert org.dns_policy is SelectionPolicy.NEAREST

    def test_clean_orgs_not_tracking(self, small_world):
        for org in small_world.organizations:
            assert org.is_tracking == (org.kind is not OrgKind.CLEAN)

    def test_proportional_quota_guarantees_coverage(self):
        homes = OrganizationFactory._proportional_quota(
            EU_TRACKER_HOME_WEIGHTS, 60
        )
        assert len(homes) == 60
        counts = Counter(homes)
        # Large scenes get many orgs, small panel countries at least one.
        assert counts["DE"] >= 10
        assert counts["GR"] >= 1

    def test_proportional_quota_exact_total(self):
        for n in (1, 7, 13, 54):
            homes = OrganizationFactory._proportional_quota(
                EU_TRACKER_HOME_WEIGHTS, n
            )
            assert len(homes) == n


class TestFleet:
    def test_every_fqdn_has_endpoints(self, small_world):
        for deployed in small_world.fleet.fqdns():
            assert deployed.service.endpoints

    def test_home_endpoint_first_for_home_policy(self, small_world):
        fleet = small_world.fleet
        for deployed in fleet.fqdns():
            if deployed.service.policy is SelectionPolicy.HOME:
                org = fleet.org(deployed.org_name)
                endpoint_countries = {
                    e.country for e in deployed.service.endpoints
                }
                if org.legal_country in endpoint_countries:
                    assert (
                        deployed.service.endpoints[0].country
                        == org.legal_country
                    )

    def test_server_ips_unique_and_indexed(self, small_world):
        fleet = small_world.fleet
        servers = fleet.servers()
        assert len({s.ip for s in servers}) == len(servers)
        for server in servers[:50]:
            assert fleet.server_for_ip(server.ip) is server

    def test_zones_cover_all_fqdns(self, small_world):
        fleet = small_world.fleet
        for deployed in fleet.fqdns():
            zone = fleet.authorities.zone_for(deployed.fqdn)
            assert deployed.fqdn in zone

    def test_address_plan_knows_every_server(self, small_world):
        for server in small_world.fleet.servers()[:200]:
            record = small_world.plan.lookup(server.ip)
            assert record is not None
            assert record.country == server.country
            assert record.kind in ("hosting", "cloud")

    def test_cloud_tenant_servers_in_published_ranges(self, small_world):
        clouds = small_world.clouds
        cloud_servers = [
            s for s in small_world.fleet.servers() if s.cloud_provider
        ]
        assert cloud_servers, "some organizations should rent cloud servers"
        for server in cloud_servers[:100]:
            provider = clouds.provider_of_ip(server.ip)
            assert provider is not None
            assert provider.name == server.cloud_provider
            assert provider.has_pop(server.country)

    def test_roles_match_org_kind(self, small_world):
        fleet = small_world.fleet
        for deployed in fleet.fqdns():
            org = fleet.org(deployed.org_name)
            if org.kind is OrgKind.CLEAN:
                assert deployed.role in (
                    ServiceRole.CLEAN_WIDGET, ServiceRole.CDN,
                )
            else:
                assert deployed.role is not ServiceRole.CLEAN_WIDGET

    def test_sync_hubs_serve_many_domains(self, small_world):
        """Fig. 4/5 mechanics: some IPs host cookie-sync FQDNs of many
        registrable domains."""
        fleet = small_world.fleet
        domains_per_ip = Counter()
        for deployed in fleet.fqdns_by_role(ServiceRole.COOKIE_SYNC):
            for server in deployed.service.endpoints:
                domains_per_ip[server.ip] = domains_per_ip[server.ip]
        per_ip_domains = {}
        for deployed in fleet.fqdns_by_role(ServiceRole.COOKIE_SYNC):
            for server in deployed.service.endpoints:
                per_ip_domains.setdefault(server.ip, set()).add(
                    deployed.domain
                )
        assert max(len(v) for v in per_ip_domains.values()) >= 3

    def test_unknown_lookups_raise(self, small_world):
        with pytest.raises(ConfigError):
            small_world.fleet.org("nope")
        with pytest.raises(ConfigError):
            small_world.fleet.fqdn("nope.example")


class TestPublishers:
    def test_count(self, small_world):
        assert (
            len(small_world.publishers)
            == small_world.config.ecosystem.n_publishers
        )

    def test_sensitive_share_close_to_config(self, small_world):
        share = sum(
            1 for p in small_world.publishers if p.is_sensitive
        ) / len(small_world.publishers)
        target = small_world.config.ecosystem.sensitive_publisher_share
        assert abs(share - target) < 0.05

    def test_partners_exist_in_fleet(self, small_world):
        fleet = small_world.fleet
        for publisher in small_world.publishers[:100]:
            for fqdn in (
                publisher.ad_partners
                + publisher.analytics_partners
                + publisher.clean_partners
            ):
                assert fleet.find_fqdn(fqdn) is not None

    def test_sensitive_categories_valid(self, small_world):
        for publisher in small_world.publishers:
            if publisher.sensitive_category is not None:
                assert publisher.sensitive_category in SENSITIVE_CATEGORIES

    def test_topics_within_bounds(self, small_world):
        for publisher in small_world.publishers:
            assert 1 <= len(publisher.topics) <= 15

    def test_domains_unique(self, small_world):
        domains = [p.domain for p in small_world.publishers]
        assert len(domains) == len(set(domains))

    def test_clean_partners_are_clean_orgs(self, small_world):
        fleet = small_world.fleet
        for publisher in small_world.publishers[:50]:
            for fqdn in publisher.clean_partners:
                org = fleet.org(fleet.fqdn(fqdn).org_name)
                assert org.kind is OrgKind.CLEAN


class TestPanelUsers:
    def test_total_count(self, small_world):
        assert len(small_world.users) == small_world.config.panel.n_users

    def test_eu28_counts_exact(self, small_world):
        by_country = users_by_country(small_world.users)
        for country, expected in (
            small_world.config.panel.eu28_user_counts.items()
        ):
            assert len(by_country.get(country, [])) == expected

    def test_user_ids_unique(self, small_world):
        ids = [u.user_id for u in small_world.users]
        assert len(ids) == len(set(ids))

    def test_users_in_registry_countries(self, small_world):
        for user in small_world.users:
            assert user.country in small_world.registry

    def test_activity_positive(self, small_world):
        assert all(u.activity > 0 for u in small_world.users)
