"""Tests for the TTL-respecting resolver cache and the redirection
propagation model."""

import pytest

from repro.dnssim.authority import ClientSite
from repro.dnssim.cache import (
    CachingResolver,
    propagation_profile,
    redirection_propagation,
)
from repro.errors import DNSError
from repro.netbase.addr import IPAddress


class FakeAuthority:
    """Answer source that counts queries and can be repointed."""

    def __init__(self, ttl=300):
        self.ttl = ttl
        self.queries = 0
        self.current = self._endpoint("1.0.0.1", "DE")

    @staticmethod
    def _endpoint(ip_text, country):
        from dataclasses import dataclass

        @dataclass(frozen=True)
        class E:
            ip: IPAddress
            country: str
            lat: float
            lon: float

        return E(IPAddress.parse(ip_text), country, 50.0, 8.0)

    def __call__(self, fqdn, client):
        self.queries += 1
        return self.current, self.ttl

    def redirect(self, ip_text, country):
        self.current = self._endpoint(ip_text, country)


SITE = ClientSite("DE", 50.11, 8.68)


class TestCachingResolver:
    def test_hit_within_ttl(self):
        authority = FakeAuthority(ttl=300)
        resolver = CachingResolver(authority)
        first = resolver.resolve("t.example", SITE, now_seconds=0.0)
        second = resolver.resolve("t.example", SITE, now_seconds=299.0)
        assert first is second
        assert authority.queries == 1
        assert resolver.stats.hits == 1
        assert resolver.stats.hit_rate == pytest.approx(0.5)

    def test_expiry_refetches(self):
        authority = FakeAuthority(ttl=300)
        resolver = CachingResolver(authority)
        resolver.resolve("t.example", SITE, now_seconds=0.0)
        resolver.resolve("t.example", SITE, now_seconds=301.0)
        assert authority.queries == 2
        assert resolver.stats.expirations == 1

    def test_redirection_visible_only_after_ttl(self):
        """The paper's Sect. 5.1 mechanics: a redirection takes effect
        once cached answers expire."""
        authority = FakeAuthority(ttl=300)
        resolver = CachingResolver(authority)
        before = resolver.resolve("t.example", SITE, now_seconds=0.0)
        authority.redirect("1.0.0.9", "FR")
        still_cached = resolver.resolve("t.example", SITE, now_seconds=100.0)
        after = resolver.resolve("t.example", SITE, now_seconds=400.0)
        assert still_cached is before
        assert after.country == "FR"

    def test_per_country_keying(self):
        authority = FakeAuthority()
        resolver = CachingResolver(authority)
        resolver.resolve("t.example", SITE, 0.0)
        resolver.resolve("t.example", ClientSite("FR", 48.86, 2.35), 0.0)
        assert authority.queries == 2

    def test_negative_ttl_rejected(self):
        authority = FakeAuthority(ttl=-1)
        resolver = CachingResolver(authority)
        with pytest.raises(DNSError):
            resolver.resolve("t.example", SITE, 0.0)

    def test_flush(self):
        authority = FakeAuthority()
        resolver = CachingResolver(authority)
        resolver.resolve("t.example", SITE, 0.0)
        resolver.flush()
        resolver.resolve("t.example", SITE, 0.0)
        assert authority.queries == 2


class TestRedirectionPropagation:
    def test_deadline_zero(self):
        assert redirection_propagation([300], 0.0) == 0.0

    def test_full_after_ttl(self):
        assert redirection_propagation([300], 300.0) == 1.0
        assert redirection_propagation([300], 10_000.0) == 1.0

    def test_uniform_refresh_model(self):
        assert redirection_propagation([300], 150.0) == pytest.approx(0.5)

    def test_mixed_ttls_average(self):
        # The paper's examples: 300s (google-like) and 7200s (facebook-like).
        share = redirection_propagation([300, 7200], 300.0)
        assert share == pytest.approx((1.0 + 300 / 7200) / 2)

    def test_zero_ttl_immediate(self):
        assert redirection_propagation([0], 1.0) == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            redirection_propagation([300], -1.0)
        with pytest.raises(ValueError):
            redirection_propagation([-5], 1.0)
        assert redirection_propagation([], 100.0) == 0.0

    def test_profile_monotone(self, small_world):
        services = [
            d.service for d in small_world.fleet.tracking_fqdns()[:200]
        ]
        profile = propagation_profile(services)
        shares = [share for _, share in profile]
        assert shares == sorted(shares)
        assert 0.0 <= shares[0] <= shares[-1] <= 1.0
        # Within two hours most tracking FQDNs' clients are redirected
        # ("from seconds to a few hours").
        two_hours = dict(profile)[7200]
        assert two_hours > 0.8


class TestChainDepths:
    def test_depths_recorded(self, small_study):
        depths = [r.chain_depth for r in small_study.visit_log.requests]
        assert min(depths) == 0
        assert max(depths) >= 3  # sync cascades are multi-hop
