"""Integration tests for continuous profiling through the runtime.

One profiled cold run (2 process workers, shared cache) and one
profiled warm replay are shared module-wide; the assertions are
structural — which stages carry profiles, which gauges land in the
ledger, which spans carry worker pids — plus the replay lock: a warm
run must report the cold run's profile *exactly*, the property the
``profile-smoke`` CI job gates end to end on the medium preset.
"""

from __future__ import annotations

import os

import pytest

from repro import WorldConfig
from repro.obs import Profile, Tracer, ledger_path, load_ledger, validate_manifest
from repro.obs.names import PROFILE_SELF_S
from repro.runtime import run_study
from repro.runtime.engine import _unwrap_envelope, _wrap_envelope

PROFILE_HZ = 200.0


@pytest.fixture(scope="module")
def engine_config():
    return WorldConfig.small()


@pytest.fixture(scope="module")
def cache_dir(tmp_path_factory):
    return str(tmp_path_factory.mktemp("profile-cache"))


@pytest.fixture(scope="module")
def cold_run(engine_config, cache_dir):
    return run_study(
        engine_config, workers=2, cache_dir=cache_dir,
        tracer=Tracer(), profile_hz=PROFILE_HZ,
    )


@pytest.fixture(scope="module")
def warm_run(engine_config, cache_dir, cold_run):
    return run_study(
        engine_config, workers=1, cache_dir=cache_dir,
        tracer=Tracer(), profile_hz=PROFILE_HZ,
    )


def profile_metrics(record):
    return {
        key: entry for key, entry in record["metrics"].items()
        if key.startswith(PROFILE_SELF_S)
    }


class TestProfiledRun:
    def test_every_stage_owns_a_profile(self, cold_run):
        stages = {stage["stage"] for stage in cold_run.manifest["stages"]}
        assert set(cold_run.profiles) == stages
        assert all(
            isinstance(profile, Profile)
            for profile in cold_run.profiles.values()
        )

    def test_report_covers_every_stage_with_totals(self, cold_run):
        report = cold_run.profile_report()
        assert report["schema"] == "repro.obs/profile-report/v1"
        assert report["hz"] == PROFILE_HZ
        assert set(report["stages"]) == set(cold_run.profiles)
        for stage in report["stages"].values():
            assert stage["self_s"]["_total"] == pytest.approx(
                stage["seconds"]
            )

    def test_manifest_carries_the_report_and_validates(self, cold_run):
        manifest = cold_run.manifest
        validate_manifest(manifest)
        assert manifest["profiles"] == cold_run.profile_report()

    def test_ledger_record_folds_profile_gauges(self, cold_run):
        record = cold_run.ledger_record
        assert record["profile_hz"] == PROFILE_HZ
        gauges = profile_metrics(record)
        for stage in cold_run.profiles:
            key = f"{PROFILE_SELF_S}{{func=_total,stage={stage}}}"
            assert gauges[key]["kind"] == "gauge"
            assert gauges[key]["value"] >= 0.0

    def test_worker_spans_grafted_with_real_pids(self, cold_run):
        spans = cold_run.result.tracer.spans
        worker = [
            span for span in spans
            if span.pid is not None and span.name.startswith("stage:")
        ]
        assert worker, "no grafted worker stage spans"
        # Multi-shard stages fan out to pool processes; single-shard
        # stages run inline and stamp the engine's own pid.
        assert any(span.pid != os.getpid() for span in worker)
        assert all(span.tid is not None for span in worker)
        # Grafted trees hang under their stage's execute span.
        for span in worker:
            assert span.parent is not None
            assert spans[span.parent].name == "execute"

    def test_profiling_does_not_change_the_study(
        self, engine_config, cold_run
    ):
        plain = run_study(engine_config, workers=1)
        assert plain.profile_report() is None
        assert plain.profiles == {}
        assert plain.table2_counts() == cold_run.table2_counts()


class TestWarmReplay:
    def test_warm_run_replays_the_cold_profile_exactly(
        self, cold_run, warm_run
    ):
        assert warm_run.profile_report() == cold_run.profile_report()
        assert warm_run.merged_profile() == cold_run.merged_profile()

    def test_ledger_gauges_have_zero_drift(
        self, cache_dir, cold_run, warm_run
    ):
        records = load_ledger(ledger_path(cache_dir))
        cold_record, warm_record = records[0], records[1]
        assert profile_metrics(warm_record) == profile_metrics(cold_record)

    def test_warm_worker_spans_are_replayed(self, warm_run):
        # Even a 1-worker warm run grafts the cold run's worker spans
        # out of the cache envelopes, pids intact.
        pids = {
            span.pid
            for span in warm_run.result.tracer.spans
            if span.pid is not None and span.name.startswith("stage:")
        }
        assert len(pids) >= 2


class TestEnvelopeCompat:
    def test_legacy_raw_artifact_unwraps_empty(self):
        assert _unwrap_envelope({"rows": [1, 2]}) == (
            {"rows": [1, 2]}, {}, [], None,
        )

    def test_metrics_only_envelope_unwraps_without_spans_or_profile(self):
        envelope = _wrap_envelope("artifact", {"k": 1})
        assert "spans" not in envelope and "profile" not in envelope
        assert _unwrap_envelope(envelope) == ("artifact", {"k": 1}, [], None)

    def test_full_envelope_round_trips(self):
        profile = Profile()
        profile.add_stack((("f", "a/b.py", 1),), 10)
        envelope = _wrap_envelope(
            "artifact", {"k": 1},
            spans=[{"name": "stage:x"}], profile=profile.to_dict(),
        )
        artifact, metrics, spans, payload = _unwrap_envelope(envelope)
        assert (artifact, metrics) == ("artifact", {"k": 1})
        assert spans == [{"name": "stage:x"}]
        assert Profile.from_dict(payload) == profile
