"""scripts/bench_to_ledger.py: folding bench + lint timings into the ledger."""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import pytest

from repro.obs.ledger import load_ledger


@pytest.fixture(scope="module")
def bench_to_ledger():
    script = (
        Path(__file__).resolve().parent.parent
        / "scripts"
        / "bench_to_ledger.py"
    )
    spec = importlib.util.spec_from_file_location("bench_to_ledger", script)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


BENCH_REPORT = {
    "benchmarks": [{
        "name": "test_engine_small",
        "stats": {"min": 0.9, "median": 1.0, "mean": 1.1, "max": 1.4},
    }],
}


def test_bench_record_without_lint_report(bench_to_ledger, tmp_path, capsys):
    report = tmp_path / "bench.json"
    report.write_text(json.dumps(BENCH_REPORT))
    ledger = tmp_path / "ledger.jsonl"
    assert bench_to_ledger.main([str(report), str(ledger)]) == 0
    (record,) = load_ledger(ledger)
    assert record["kind"] == "bench"
    assert not any(
        key.startswith("lint.time_s") for key in record["metrics"]
    )


def test_lint_report_folds_wall_time_gauge(bench_to_ledger, tmp_path):
    report = tmp_path / "bench.json"
    report.write_text(json.dumps(BENCH_REPORT))
    lint_report = tmp_path / "dataflow-report.json"
    lint_report.write_text(json.dumps({
        "schema": "repro.lint/dataflow/v1", "time_s": 7.25,
    }))
    ledger = tmp_path / "ledger.jsonl"
    assert bench_to_ledger.main([
        str(report), str(ledger), "--lint-report", str(lint_report),
    ]) == 0
    (record,) = load_ledger(ledger)
    entry = record["metrics"]["lint.time_s{family=total}"]
    assert entry == {"kind": "gauge", "value": 7.25}


def test_lint_report_folds_per_family_gauges(bench_to_ledger, tmp_path):
    report = tmp_path / "bench.json"
    report.write_text(json.dumps(BENCH_REPORT))
    lint_report = tmp_path / "dataflow-report.json"
    lint_report.write_text(json.dumps({
        "schema": "repro.lint/dataflow/v1",
        "time_s": 7.25,
        "family_time_s": {"D": 1.5, "Q": 0.25, "T": 2.0},
    }))
    ledger = tmp_path / "ledger.jsonl"
    assert bench_to_ledger.main([
        str(report), str(ledger), "--lint-report", str(lint_report),
    ]) == 0
    (record,) = load_ledger(ledger)
    metrics = record["metrics"]
    assert metrics["lint.time_s{family=total}"]["value"] == 7.25
    assert metrics["lint.time_s{family=D}"]["value"] == 1.5
    assert metrics["lint.time_s{family=T}"]["value"] == 2.0
    assert metrics["lint.time_s{family=Q}"]["value"] == 0.25


def test_lint_report_malformed_family_entry_is_an_error(
    bench_to_ledger, tmp_path, capsys
):
    report = tmp_path / "bench.json"
    report.write_text(json.dumps(BENCH_REPORT))
    lint_report = tmp_path / "dataflow-report.json"
    lint_report.write_text(json.dumps({
        "schema": "repro.lint/dataflow/v1",
        "time_s": 7.25,
        "family_time_s": {"T": "fast"},
    }))
    ledger = tmp_path / "ledger.jsonl"
    assert bench_to_ledger.main([
        str(report), str(ledger), "--lint-report", str(lint_report),
    ]) == 1
    assert "family" in capsys.readouterr().err
    assert not ledger.exists()


def test_lint_report_without_time_s_is_an_error(
    bench_to_ledger, tmp_path, capsys
):
    report = tmp_path / "bench.json"
    report.write_text(json.dumps(BENCH_REPORT))
    lint_report = tmp_path / "dataflow-report.json"
    lint_report.write_text(json.dumps({"schema": "repro.lint/dataflow/v1"}))
    ledger = tmp_path / "ledger.jsonl"
    assert bench_to_ledger.main([
        str(report), str(ledger), "--lint-report", str(lint_report),
    ]) == 1
    assert "time_s" in capsys.readouterr().err
    assert not ledger.exists()
