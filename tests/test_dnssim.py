"""Tests for repro.dnssim: records, authority, resolver, passive DNS."""

import random
from dataclasses import dataclass

import pytest
from hypothesis import given, strategies as st

from repro.dnssim.authority import (
    AuthorityDirectory,
    ClientSite,
    FqdnService,
    SelectionPolicy,
    Zone,
    zone_apex_of,
)
from repro.dnssim.passive import PassiveDNSDatabase, PassiveRecord
from repro.dnssim.records import DNSAnswer, ResourceRecord, RRType
from repro.dnssim.resolver import (
    PublicResolver,
    RecursiveResolver,
    default_public_resolvers,
)
from repro.errors import DNSError, NXDomainError
from repro.netbase.addr import IPAddress


@dataclass(frozen=True)
class FakeEndpoint:
    ip: IPAddress
    country: str
    lat: float
    lon: float


def endpoint(ip_text: str, country: str, lat: float, lon: float):
    return FakeEndpoint(IPAddress.parse(ip_text), country, lat, lon)


BERLIN = ClientSite("DE", 52.52, 13.41)
MADRID = ClientSite("ES", 40.42, -3.70)
SAO_PAULO = ClientSite("BR", -23.55, -46.63)

DE_SERVER = endpoint("1.0.0.1", "DE", 52.5, 13.4)
ES_SERVER = endpoint("1.0.0.2", "ES", 40.4, -3.7)
US_SERVER = endpoint("1.0.0.3", "US", 38.9, -77.0)


class TestRecords:
    def test_rrtype_for_address(self):
        assert RRType.for_address(IPAddress.parse("1.2.3.4")) is RRType.A
        assert RRType.for_address(IPAddress.parse("::1")) is RRType.AAAA

    def test_resource_record_validation(self):
        with pytest.raises(DNSError):
            ResourceRecord("x.example", RRType.A, "1.2.3.4", -1)
        with pytest.raises(DNSError):
            ResourceRecord("UPPER.example", RRType.A, "1.2.3.4", 60)

    def test_answer_rtype(self):
        answer = DNSAnswer(
            "a.example", IPAddress.parse("1.2.3.4"), 300, "DE", "DE"
        )
        assert answer.rtype is RRType.A


class TestFqdnService:
    def test_requires_endpoints(self):
        with pytest.raises(DNSError):
            FqdnService(fqdn="a.example", endpoints=[])

    def test_weights_length_checked(self):
        with pytest.raises(DNSError):
            FqdnService(
                fqdn="a.example", endpoints=[DE_SERVER], weights=[1.0, 2.0]
            )

    def test_nearest_picks_closest(self):
        service = FqdnService(
            fqdn="a.example",
            endpoints=[DE_SERVER, ES_SERVER, US_SERVER],
            policy=SelectionPolicy.NEAREST,
        )
        assert service.select(BERLIN) is DE_SERVER
        assert service.select(MADRID) is ES_SERVER

    def test_home_picks_first(self):
        service = FqdnService(
            fqdn="a.example",
            endpoints=[ES_SERVER, DE_SERVER],
            policy=SelectionPolicy.HOME,
        )
        assert service.select(BERLIN) is ES_SERVER

    def test_round_robin_rotates(self):
        service = FqdnService(
            fqdn="a.example",
            endpoints=[DE_SERVER, ES_SERVER],
            policy=SelectionPolicy.ROUND_ROBIN,
        )
        picks = [service.select(BERLIN) for _ in range(4)]
        assert picks == [DE_SERVER, ES_SERVER, DE_SERVER, ES_SERVER]

    def test_weighted_geofence_keeps_continent(self):
        service = FqdnService(
            fqdn="a.example",
            endpoints=[DE_SERVER, ES_SERVER, US_SERVER],
            policy=SelectionPolicy.WEIGHTED,
        )
        rng = random.Random(0)
        picks = [service.select(BERLIN, rng) for _ in range(300)]
        us_share = sum(1 for p in picks if p is US_SERVER) / len(picks)
        # The geofence keeps most (but not all) answers in Europe.
        assert us_share < (1 - service.GEOFENCE_PROBABILITY) * 0.6 + 0.1

    def test_weighted_uncovered_continent_fences_to_nearest(self):
        service = FqdnService(
            fqdn="a.example",
            endpoints=[DE_SERVER, ES_SERVER, US_SERVER],
            policy=SelectionPolicy.WEIGHTED,
        )
        rng = random.Random(1)
        picks = [service.select(SAO_PAULO, rng) for _ in range(300)]
        us_share = sum(1 for p in picks if p is US_SERVER) / len(picks)
        # South America has no endpoint; fenced answers ride the nearest
        # continent (North America).
        assert us_share > 0.6

    def test_countries_sorted_unique(self):
        service = FqdnService(
            fqdn="a.example", endpoints=[US_SERVER, DE_SERVER, DE_SERVER]
        )
        assert service.countries() == ["DE", "US"]


class TestZone:
    def _zone(self):
        zone = Zone("example.com", owner="acme")
        zone.add_service(
            FqdnService(fqdn="ads.example.com", endpoints=[DE_SERVER])
        )
        return zone

    def test_membership(self):
        zone = self._zone()
        assert "ads.example.com" in zone
        assert len(zone) == 1

    def test_outside_zone_rejected(self):
        zone = self._zone()
        with pytest.raises(DNSError):
            zone.add_service(
                FqdnService(fqdn="ads.other.com", endpoints=[DE_SERVER])
            )

    def test_missing_name(self):
        with pytest.raises(NXDomainError):
            self._zone().service("nope.example.com")

    def test_answer(self):
        server, ttl = self._zone().answer("ads.example.com", BERLIN)
        assert server is DE_SERVER
        assert ttl == 300

    def test_apex_derivation(self):
        assert zone_apex_of("a.b.example.com") == "example.com"
        with pytest.raises(DNSError):
            zone_apex_of("nodots")


class TestAuthorityDirectory:
    def test_routing_and_nxdomain(self):
        zone = Zone("example.com", owner="acme")
        zone.add_service(
            FqdnService(fqdn="ads.example.com", endpoints=[DE_SERVER])
        )
        directory = AuthorityDirectory([zone])
        assert directory.zone_for("ads.example.com") is zone
        with pytest.raises(NXDomainError):
            directory.zone_for("x.unknown.net")

    def test_duplicate_zone_rejected(self):
        zone = Zone("example.com", owner="acme")
        directory = AuthorityDirectory([zone])
        with pytest.raises(DNSError):
            directory.add(Zone("example.com", owner="other"))


class TestPublicResolver:
    def test_site_for_picks_nearest(self):
        resolver = PublicResolver(
            "r", sites=(ClientSite("US", 38.9, -77.0),
                        ClientSite("NL", 52.37, 4.9)),
        )
        assert resolver.site_for(BERLIN).country == "NL"
        assert resolver.site_for(ClientSite("CA", 45.4, -75.7)).country == "US"

    def test_empty_sites_rejected(self):
        with pytest.raises(DNSError):
            PublicResolver("r", sites=())

    def test_defaults_exist(self):
        resolvers = default_public_resolvers()
        assert len(resolvers) == 3
        assert all(r.sites for r in resolvers)


class TestRecursiveResolver:
    def _setup(self):
        zone = Zone("example.com", owner="acme")
        zone.add_service(
            FqdnService(
                fqdn="ads.example.com",
                endpoints=[DE_SERVER, US_SERVER],
                policy=SelectionPolicy.NEAREST,
            )
        )
        directory = AuthorityDirectory([zone])
        pdns = PassiveDNSDatabase()
        return directory, pdns

    def test_resolution_and_pdns_observation(self):
        directory, pdns = self._setup()
        resolver = RecursiveResolver(directory, [pdns])
        answer = resolver.resolve("ads.example.com", BERLIN, at=3.0)
        assert answer.server_country == "DE"
        assert answer.resolver_country == "DE"
        record = pdns.record("ads.example.com", answer.address)
        assert record is not None and record.first_seen == 3.0

    def test_public_resolver_changes_vantage(self):
        directory, pdns = self._setup()
        public = PublicResolver("r", sites=(ClientSite("US", 38.9, -77.0),))
        resolver = RecursiveResolver(directory, [pdns], public_resolver=public)
        answer = resolver.resolve("ads.example.com", BERLIN, at=0.0)
        assert answer.resolver_country == "US"
        assert answer.server_country == "US"

    def test_nxdomain(self):
        directory, _ = self._setup()
        resolver = RecursiveResolver(directory)
        with pytest.raises(NXDomainError):
            resolver.resolve("x.unknown.net", BERLIN, 0.0)


class TestPassiveDNS:
    def test_windows_widen(self):
        pdns = PassiveDNSDatabase()
        ip = IPAddress.parse("1.0.0.1")
        pdns.observe("a.example.com", ip, 5.0)
        pdns.observe("a.example.com", ip, 2.0)
        pdns.observe("a.example.com", ip, 9.0)
        record = pdns.record("a.example.com", ip)
        assert (record.first_seen, record.last_seen) == (2.0, 9.0)
        assert record.observations == 3

    def test_forward_and_reverse(self):
        pdns = PassiveDNSDatabase()
        a, b = IPAddress.parse("1.0.0.1"), IPAddress.parse("1.0.0.2")
        pdns.observe("a.example.com", a, 1.0)
        pdns.observe("a.example.com", b, 2.0)
        pdns.observe("b.other.net", a, 3.0)
        assert {r.address for r in pdns.forward("a.example.com")} == {a, b}
        assert {r.name for r in pdns.reverse(a)} == {
            "a.example.com", "b.other.net",
        }

    def test_window_filtering(self):
        pdns = PassiveDNSDatabase()
        ip = IPAddress.parse("1.0.0.1")
        pdns.observe("a.example.com", ip, 10.0)
        assert pdns.forward("a.example.com", window=(0.0, 5.0)) == []
        assert len(pdns.forward("a.example.com", window=(5.0, 15.0))) == 1

    def test_bad_window_raises(self):
        record = PassiveRecord("a", IPAddress.parse("1.0.0.1"), 1, 2, 1)
        with pytest.raises(DNSError):
            record.active_during(5.0, 1.0)

    def test_active_at(self):
        record = PassiveRecord("a", IPAddress.parse("1.0.0.1"), 1.0, 2.0, 1)
        assert record.active_at(1.5)
        assert not record.active_at(3.0)

    def test_domains_behind_uses_tld1(self):
        pdns = PassiveDNSDatabase()
        ip = IPAddress.parse("1.0.0.1")
        pdns.observe("sync.a.example", ip, 1.0)
        pdns.observe("px.a.example", ip, 1.0)
        pdns.observe("x.b.example", ip, 1.0)
        assert pdns.domains_behind(ip) == {"a.example", "b.example"}

    def test_merge(self):
        first, second = PassiveDNSDatabase(), PassiveDNSDatabase()
        ip = IPAddress.parse("1.0.0.1")
        first.observe("a.example.com", ip, 5.0)
        second.observe("a.example.com", ip, 1.0)
        second.observe("b.example.com", ip, 2.0)
        first.merge(second)
        record = first.record("a.example.com", ip)
        assert (record.first_seen, record.last_seen) == (1.0, 5.0)
        assert len(first.reverse(ip)) == 2

    def test_empty_name_rejected(self):
        with pytest.raises(DNSError):
            PassiveDNSDatabase().observe("", IPAddress.parse("1.0.0.1"), 0.0)


@given(
    st.lists(
        st.tuples(
            st.sampled_from(["a.x.com", "b.x.com", "c.y.net"]),
            st.integers(min_value=0, max_value=3),
            st.floats(min_value=0, max_value=300),
        ),
        min_size=1,
        max_size=60,
    )
)
def test_pdns_window_consistency_property(observations):
    """first_seen <= last_seen, and both are observed timestamps."""
    pdns = PassiveDNSDatabase()
    per_pair = {}
    for name, ip_index, at in observations:
        ip = IPAddress.v4(ip_index)
        pdns.observe(name, ip, at)
        per_pair.setdefault((name, ip), []).append(at)
    for (name, ip), times in per_pair.items():
        record = pdns.record(name, ip)
        assert record.first_seen == min(times)
        assert record.last_seen == max(times)
        assert record.observations == len(times)
