"""Tests for the baseline geolocators and their relation to the main
engine's accuracy."""

import pytest

from repro.errors import GeolocationError
from repro.geoloc.baselines import CBGLocator, ShortestPingLocator
from repro.netbase.addr import IPAddress


@pytest.fixture(scope="module")
def locators(small_study):
    world = small_study.world
    shortest = ShortestPingLocator(
        mesh=world.probes,
        oracle=world.oracle,
        config=world.config.geolocation,
        streams=world.streams.spawn("bl-sp"),
    )
    cbg = CBGLocator(
        mesh=world.probes,
        oracle=world.oracle,
        registry=world.registry,
        config=world.config.geolocation,
        streams=world.streams.spawn("bl-cbg"),
    )
    return shortest, cbg


def _accuracy(locate, servers):
    correct = sum(1 for s in servers if locate(s.ip) == s.country)
    return correct / len(servers)


class TestBaselines:
    def test_shortest_ping_reasonable_but_imperfect(
        self, small_study, locators
    ):
        shortest, _ = locators
        servers = small_study.world.fleet.servers()[:150]
        accuracy = _accuracy(shortest.locate, servers)
        assert 0.4 < accuracy < 1.0

    def test_cbg_beats_nothing_burger(self, small_study, locators):
        _, cbg = locators
        servers = small_study.world.fleet.servers()[:150]
        accuracy = _accuracy(cbg.locate, servers)
        assert accuracy > 0.5

    def test_main_engine_at_least_matches_baselines(
        self, small_study, locators
    ):
        """The paper's tool choice: the inference engine should not be
        worse than the classic techniques it builds on."""
        shortest, cbg = locators
        servers = small_study.world.fleet.servers()[:150]
        engine_accuracy = _accuracy(
            small_study.world.ipmap.locate, servers
        )
        assert engine_accuracy >= _accuracy(shortest.locate, servers) - 0.02
        assert engine_accuracy >= _accuracy(cbg.locate, servers) - 0.02

    def test_caching(self, small_study, locators):
        shortest, cbg = locators
        address = small_study.world.fleet.servers()[0].ip
        assert shortest.locate(address) == shortest.locate(address)
        assert cbg.locate(address) == cbg.locate(address)

    def test_unknown_address_raises(self, small_study, locators):
        shortest, cbg = locators
        ghost = IPAddress.parse("203.0.113.9")
        with pytest.raises(GeolocationError):
            shortest.locate(ghost)
        with pytest.raises(GeolocationError):
            cbg.locate(ghost)
