"""The execution-context analysis and the T rule family.

Engine tests build a :class:`ProgramModel` over small fixture trees and
probe the context map directly; rule tests run the same fixtures
through the real lint framework (fixture + pragma pair per rule); a
copied-tree regression plants a lock-free cross-thread mutation inside
the live ``repro.serve.jobs`` worker body and demands a T1003 finding
whose witness chain names the write site; and a report tripwire
validates the ``repro.lint/concurrency/v1`` document shape.
"""

from __future__ import annotations

import re
import shutil
import textwrap
from pathlib import Path
from typing import List, Optional, Sequence

from repro.lint import Finding, run_lint, select_rules
from repro.lint.concurrency import (
    CONCURRENCY_SCHEMA,
    CONTEXTS,
    ContextAnalysis,
    concurrency_for_model,
)
from repro.lint.program import ProgramModel
from repro.runtime.footprint import default_root


def write_tree(tmp_path: Path, files) -> Path:
    for relpath, source in files.items():
        path = tmp_path / relpath
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source))
        parent = path.parent
        while parent != tmp_path:
            init = parent / "__init__.py"
            if not init.exists():
                init.write_text("")
            parent = parent.parent
    return tmp_path


def analysis_for(tmp_path: Path, files) -> ContextAnalysis:
    write_tree(tmp_path, files)
    model = ProgramModel.from_paths([tmp_path], root=tmp_path)
    return ContextAnalysis(model)


def lint_tree(
    tmp_path: Path, files, select: Optional[Sequence[str]] = None
) -> List[Finding]:
    write_tree(tmp_path, files)
    rules = select_rules(select) if select else None
    return run_lint([tmp_path], rules=rules, root=tmp_path).findings


def codes(findings: Sequence[Finding]) -> List[str]:
    return [finding.rule for finding in findings]


# ---------------------------------------------------------------------------
# the context map
# ---------------------------------------------------------------------------

OFFLOAD_FIXTURE = {
    "pkg/serveish.py": """
        import asyncio

        async def handler():
            loop = asyncio.get_running_loop()
            return await loop.run_in_executor(None, job)

        def job():
            return helper()

        def helper():
            return 1

        def main():
            return job()
    """,
}


def test_offload_target_gains_thread_context(tmp_path):
    analysis = analysis_for(tmp_path, OFFLOAD_FIXTURE)
    contexts = analysis.contexts()
    assert "thread" in contexts[("pkg.serveish", "job")]
    assert "thread" in contexts[("pkg.serveish", "helper")]
    # handler itself runs on the loop, not the executor thread.
    assert "thread" not in contexts[("pkg.serveish", "handler")]
    assert "async" in contexts[("pkg.serveish", "handler")]


def test_main_context_propagates_along_plain_calls(tmp_path):
    analysis = analysis_for(tmp_path, OFFLOAD_FIXTURE)
    contexts = analysis.contexts()
    assert "main" in contexts[("pkg.serveish", "job")]
    assert "main" in contexts[("pkg.serveish", "helper")]


def test_async_body_not_inherited_by_sync_callers(tmp_path):
    files = {
        "pkg/mix.py": """
            async def coro():
                return 1

            def main():
                return coro()
        """,
    }
    analysis = analysis_for(tmp_path, files)
    contexts = analysis.contexts()
    assert contexts[("pkg.mix", "coro")] == {"async"}


def test_thread_target_via_threading_thread(tmp_path):
    files = {
        "pkg/threads.py": """
            import threading

            def main():
                worker = threading.Thread(target=body, name="w")
                worker.start()

            def body():
                return 1
        """,
    }
    analysis = analysis_for(tmp_path, files)
    assert "thread" in analysis.contexts()[("pkg.threads", "body")]


def test_stage_run_seeds_shard_context(tmp_path):
    files = {
        "pkg/stages.py": """
            from pkg.graph import StageSpec

            def _plan(world, config):
                return [("all", None)]

            def _run(world, products, key, payload):
                return crunch(payload)

            def _merge(world, products, shards):
                return shards

            def crunch(payload):
                return payload

            SPEC = StageSpec(name="alpha", plan=_plan, run=_run, merge=_merge)
        """,
        "pkg/graph.py": """
            class StageSpec:
                def __init__(self, name, plan, run, merge):
                    self.name = name
        """,
    }
    analysis = analysis_for(tmp_path, files)
    contexts = analysis.contexts()
    assert "shard" in contexts[("pkg.stages", "_run")]
    assert "shard" in contexts[("pkg.stages", "crunch")]


def test_witness_chain_renders_file_line_hops(tmp_path):
    analysis = analysis_for(tmp_path, OFFLOAD_FIXTURE)
    chain = analysis.chain("thread", ("pkg.serveish", "helper"))
    assert len(chain) >= 2
    for hop in chain:
        assert re.match(r"\S+\.py:\d+ ", hop), hop
    assert "helper" in chain[-1] or "job" in chain[-1]


# ---------------------------------------------------------------------------
# T1001 — blocking call directly in an async def
# ---------------------------------------------------------------------------

T1001_FIXTURE = {
    "pkg/handlers.py": """
        import time

        async def handler():
            time.sleep(0.5)
            return 1
    """,
}


def test_t1001_fires_on_sleep_in_async_def(tmp_path):
    findings = lint_tree(tmp_path, T1001_FIXTURE, select=["T1001"])
    assert codes(findings) == ["T1001"]
    assert "time.sleep" in findings[0].message
    assert "handler" in findings[0].message


def test_t1001_quiet_after_executor_offload(tmp_path):
    files = {
        "pkg/handlers.py": """
            import asyncio
            import time

            def pause():
                time.sleep(0.5)

            async def handler():
                loop = asyncio.get_running_loop()
                await loop.run_in_executor(None, pause)
        """,
    }
    findings = lint_tree(tmp_path, files, select=["T1001"])
    assert codes(findings) == []


def test_t1001_pragma_disable(tmp_path):
    files = dict(T1001_FIXTURE)
    files["pkg/handlers.py"] = files["pkg/handlers.py"].replace(
        "time.sleep(0.5)",
        "time.sleep(0.5)  # reprolint: disable=T1001",
    )
    findings = lint_tree(tmp_path, files, select=["T1001"])
    assert codes(findings) == []


# ---------------------------------------------------------------------------
# T1002 — blocking call reachable from async context
# ---------------------------------------------------------------------------

T1002_FIXTURE = {
    "pkg/loader.py": """
        def load():
            with open("config.json") as handle:
                return handle.read()

        async def handler():
            return load()
    """,
}


def test_t1002_fires_with_witness_chain(tmp_path):
    findings = lint_tree(tmp_path, T1002_FIXTURE, select=["T1002"])
    assert codes(findings) == ["T1002"]
    finding = findings[0]
    assert "witness:" in finding.message
    assert "open" in finding.message
    assert f"pkg/loader.py:{finding.line}" in finding.message


def test_t1002_quiet_when_call_is_offloaded(tmp_path):
    files = {
        "pkg/loader.py": """
            import asyncio

            def load():
                with open("config.json") as handle:
                    return handle.read()

            async def handler():
                loop = asyncio.get_running_loop()
                return await loop.run_in_executor(None, load)
        """,
    }
    findings = lint_tree(tmp_path, files, select=["T1002"])
    assert codes(findings) == []


def test_t1002_pragma_disable(tmp_path):
    files = dict(T1002_FIXTURE)
    files["pkg/loader.py"] = files["pkg/loader.py"].replace(
        'with open("config.json") as handle:',
        'with open("config.json") as handle:'
        "  # reprolint: disable=T1002",
    )
    findings = lint_tree(tmp_path, files, select=["T1002"])
    assert codes(findings) == []


# ---------------------------------------------------------------------------
# T1003 — cross-context shared-state write without a lock witness
# ---------------------------------------------------------------------------

T1003_FIXTURE = {
    "pkg/state.py": """
        import asyncio

        CACHE = {}

        def main():
            CACHE["main"] = 1
            return run()

        async def handler():
            loop = asyncio.get_running_loop()
            await loop.run_in_executor(None, job)

        def job():
            CACHE["job"] = 2

        def run():
            return CACHE
    """,
}


def test_t1003_fires_on_lock_free_cross_context_write(tmp_path):
    findings = lint_tree(tmp_path, T1003_FIXTURE, select=["T1003"])
    assert "T1003" in codes(findings)
    assert any("CACHE" in finding.message for finding in findings)
    assert all("witness:" in finding.message for finding in findings)


def test_t1003_quiet_with_lock_witness(tmp_path):
    files = {
        "pkg/state.py": """
            import asyncio
            import threading

            CACHE = {}
            _LOCK = threading.Lock()

            def main():
                with _LOCK:
                    CACHE["main"] = 1

            async def handler():
                loop = asyncio.get_running_loop()
                await loop.run_in_executor(None, job)

            def job():
                with _LOCK:
                    CACHE["job"] = 2
        """,
    }
    findings = lint_tree(tmp_path, files, select=["T1003"])
    assert codes(findings) == []


def test_t1003_quiet_without_thread_context(tmp_path):
    files = {
        "pkg/state.py": """
            CACHE = {}

            def main():
                CACHE["main"] = 1
        """,
    }
    findings = lint_tree(tmp_path, files, select=["T1003"])
    assert codes(findings) == []


def test_t1003_pragma_disable(tmp_path):
    files = dict(T1003_FIXTURE)
    files["pkg/state.py"] = files["pkg/state.py"].replace(
        'CACHE["job"] = 2',
        'CACHE["job"] = 2  # reprolint: disable=T1003',
    ).replace(
        'CACHE["main"] = 1',
        'CACHE["main"] = 1  # reprolint: disable=T1003',
    )
    findings = lint_tree(tmp_path, files, select=["T1003"])
    assert codes(findings) == []


def test_t1003_sees_global_declared_rebind(tmp_path):
    # Regression for the analyzer gap that hid ``global X; X = ...``
    # writes behind the local-name scan (the _FORK_CONTEXT shape).
    files = {
        "pkg/forkctx.py": """
            import asyncio

            _CONTEXT = None

            async def handler():
                loop = asyncio.get_running_loop()
                await loop.run_in_executor(None, job)

            def job():
                global _CONTEXT
                _CONTEXT = object()
        """,
    }
    findings = lint_tree(tmp_path, files, select=["T1003"])
    assert "T1003" in codes(findings)
    assert any("_CONTEXT" in finding.message for finding in findings)


# ---------------------------------------------------------------------------
# T1004 — event-loop API touched from thread context
# ---------------------------------------------------------------------------

T1004_FIXTURE = {
    "pkg/loops.py": """
        import asyncio

        async def handler():
            loop = asyncio.get_running_loop()
            await loop.run_in_executor(None, job, loop)

        def job(loop):
            loop.call_soon(print)
    """,
}


def test_t1004_fires_on_call_soon_from_thread(tmp_path):
    findings = lint_tree(tmp_path, T1004_FIXTURE, select=["T1004"])
    assert codes(findings) == ["T1004"]
    assert "call_soon" in findings[0].message
    assert "call_soon_threadsafe" in findings[0].message


def test_t1004_quiet_on_threadsafe_hop(tmp_path):
    files = {
        "pkg/loops.py": """
            import asyncio

            async def handler():
                loop = asyncio.get_running_loop()
                await loop.run_in_executor(None, job, loop)

            def job(loop):
                loop.call_soon_threadsafe(print)
        """,
    }
    findings = lint_tree(tmp_path, files, select=["T1004"])
    assert codes(findings) == []


def test_t1004_pragma_disable(tmp_path):
    files = dict(T1004_FIXTURE)
    files["pkg/loops.py"] = files["pkg/loops.py"].replace(
        "loop.call_soon(print)",
        "loop.call_soon(print)  # reprolint: disable=T1004",
    )
    findings = lint_tree(tmp_path, files, select=["T1004"])
    assert codes(findings) == []


# ---------------------------------------------------------------------------
# T1005 — raw concurrent file write outside the atomic helpers
# ---------------------------------------------------------------------------

T1005_FIXTURE = {
    "pkg/writer.py": """
        import asyncio

        async def handler():
            loop = asyncio.get_running_loop()
            await loop.run_in_executor(None, dump)

        def dump():
            with open("out.txt", "w") as handle:
                handle.write("x")
    """,
}


def test_t1005_fires_on_raw_concurrent_write(tmp_path):
    findings = lint_tree(tmp_path, T1005_FIXTURE, select=["T1005"])
    assert codes(findings) == ["T1005"]
    assert "witness:" in findings[0].message


def test_t1005_quiet_inside_sanctioned_io_module(tmp_path):
    files = {
        "pkg/io/files.py": T1005_FIXTURE["pkg/writer.py"],
    }
    findings = lint_tree(tmp_path, files, select=["T1005"])
    assert codes(findings) == []


def test_t1005_quiet_on_read_mode_open(tmp_path):
    files = {
        "pkg/writer.py": """
            import asyncio

            async def handler():
                loop = asyncio.get_running_loop()
                await loop.run_in_executor(None, slurp)

            def slurp():
                with open("out.txt") as handle:
                    return handle.read()
        """,
    }
    findings = lint_tree(tmp_path, files, select=["T1005"])
    assert codes(findings) == []


def test_t1005_pragma_disable(tmp_path):
    files = dict(T1005_FIXTURE)
    files["pkg/writer.py"] = files["pkg/writer.py"].replace(
        'with open("out.txt", "w") as handle:',
        'with open("out.txt", "w") as handle:'
        "  # reprolint: disable=T1005",
    )
    findings = lint_tree(tmp_path, files, select=["T1005"])
    assert codes(findings) == []


# ---------------------------------------------------------------------------
# copied-tree T1003 regression (mirrors the S701 copied-tree lock)
# ---------------------------------------------------------------------------


def test_copied_tree_planted_cross_thread_mutation_is_caught(tmp_path):
    target = tmp_path / "repro"
    shutil.copytree(default_root(), target)
    jobs = target / "serve" / "jobs.py"
    source = jobs.read_text()
    # Plant a module-level dict and a lock-free write inside the job
    # worker body (thread context).
    anchor = "    def _execute(self"
    start = source.index(anchor)
    head = source.index("\n", source.index(":", start)) + 1
    indent = "        "
    planted = (
        source[:start]
        + source[start:head]
        + f"{indent}_SEEN[id(self)] = True\n"
        + source[head:]
        + "\n_SEEN = {}\n"
    )
    jobs.write_text(planted)
    findings = run_lint(
        [target], rules=select_rules(["T1003"]), root=target.parent
    ).findings
    assert findings, "planted lock-free cross-thread write was not detected"
    seen = [f for f in findings if "_SEEN" in f.message]
    assert seen, [f.message for f in findings]
    finding = seen[0]
    assert finding.path == "repro/serve/jobs.py"
    # The witness chain must name the write site itself.
    assert f"repro/serve/jobs.py:{finding.line}" in finding.message
    assert "witness:" in finding.message


# ---------------------------------------------------------------------------
# the live tree is T/Q-clean
# ---------------------------------------------------------------------------


def test_live_tree_has_no_t_family_findings():
    root = default_root()
    findings = run_lint(
        [root],
        rules=select_rules(["T"]),
        root=root.parent,
    ).findings
    assert findings == [], [f.message for f in findings]


# ---------------------------------------------------------------------------
# report document
# ---------------------------------------------------------------------------


def test_report_json_shape(tmp_path):
    analysis = analysis_for(
        tmp_path,
        {**T1002_FIXTURE, "pkg/loops.py": T1004_FIXTURE["pkg/loops.py"]},
    )
    report = analysis.report_json()
    assert report["schema"] == CONCURRENCY_SCHEMA
    assert set(report["seeds"]) == set(CONTEXTS)
    assert report["summary"]["findings"] == len(report["findings"])
    assert report["findings"], "fixture should produce findings"
    for entry in report["findings"]:
        assert re.match(r"\S+\.py:\d+$", entry["site"]), entry["site"]
        assert entry["chain"], entry
        for hop in entry["chain"]:
            assert re.match(r"\S+\.py:\d+ ", hop), hop
        assert entry["rule"].startswith("T")
        assert entry["context"] in CONTEXTS


def test_report_json_live_tree_validates():
    report = concurrency_for_model(
        ProgramModel.from_paths([default_root()], root=default_root().parent)
    ).report_json()
    assert report["schema"] == CONCURRENCY_SCHEMA
    assert report["findings"] == []
    assert report["summary"]["functions"] > 100
    # Context classification must have found all four context kinds.
    assert all(report["seeds"].get(context) for context in ("main", "async"))
    assert report["costs"], "live tree must carry stage cost footprints"
