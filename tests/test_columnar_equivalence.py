"""The zero-drift property: object path == columnar streaming path.

The columnar record path is a performance representation, never a
second semantics — on the same request log, the streaming path
(cohorted tables through ``classify_table`` +
``ConfinementAccumulator``) must produce exactly the headline numbers
the per-record object path produces, for any cohort geometry and any
chunk size.  These tests pin that across three world seeds and the
chunk-boundary edge cases (empty stream, cohort smaller than the
chunk, non-divisible chunk sizes).

Both paths share one prebuilt, call-order-independent locator: the
equivalence property is about the record path, not about the active
geolocation engine (whose serial draws are order-dependent by design).
"""

import pytest

from repro import Study, WorldConfig
from repro.core.stream import (
    StreamingRecordPath,
    headlines_object,
    iter_panel_cohorts,
)
from repro.datasets.builder import build_world
from repro.web.columns import REQUEST_SCHEMA, request_table


def _user_cohorts(requests, cohort_users):
    """Slice a request log into blocks of ``cohort_users`` users."""
    by_user = {}
    for request in requests:
        by_user.setdefault(request.user_id, []).append(request)
    users = sorted(by_user)
    for lo in range(0, len(users), cohort_users):
        yield [
            request
            for user in users[lo:lo + cohort_users]
            for request in by_user[user]
        ]


@pytest.mark.parametrize("seed", [7, 11, 23])
def test_headlines_identical_across_paths(seed, synthetic_locate):
    study = Study(world=build_world(WorldConfig.small(seed=seed)))
    requests = study.visit_log.requests
    classifier = study.classifier
    want = headlines_object(classifier, synthetic_locate, requests)
    assert want.n_requests == len(requests) > 0
    assert 0 < want.n_tracking < want.n_requests

    # Sweep cohort geometry (users per cohort) and chunk geometry
    # (rows per kernel chunk), including non-divisible sizes and a
    # chunk far larger than any cohort.
    for cohort_users, chunk_rows in ((7, 777), (40, 10**6), (1, 3)):
        path = StreamingRecordPath(
            classifier, synthetic_locate, chunk_rows=chunk_rows
        )
        for block in _user_cohorts(requests, cohort_users):
            path.consume(request_table(block))
        assert path.headlines() == want, (seed, cohort_users, chunk_rows)


def test_empty_stream_headlines(small_study, synthetic_locate):
    path = StreamingRecordPath(small_study.classifier, synthetic_locate)
    headlines = path.headlines()
    assert headlines.n_requests == 0
    assert headlines.n_tracking == 0
    assert headlines.national_confinement == {}
    assert headlines.destination_shares == {}

    # An explicitly empty cohort mid-stream is also a no-op.
    path.consume(request_table([]))
    assert path.headlines() == headlines


def test_iter_panel_cohorts_streams_the_whole_panel(small_world):
    seen_users = set()
    n_rows = 0
    keys = []
    for key, table in iter_panel_cohorts(small_world, 15):
        keys.append(key)
        assert table.schema is REQUEST_SCHEMA
        n_rows += len(table)
        seen_users.update(table.column("user_id"))
    # 40 users in cohorts of 15 -> 15/15/10.
    assert keys == ["users[0:15]", "users[15:30]", "users[30:40]"]
    assert seen_users == {user.user_id for user in small_world.users}
    assert n_rows > 0


def test_iter_panel_cohorts_is_cohort_deterministic(small_world):
    first = [
        (key, list(table.iter_rows()))
        for key, table in iter_panel_cohorts(small_world, 15)
    ]
    second = [
        (key, list(table.iter_rows()))
        for key, table in iter_panel_cohorts(small_world, 15)
    ]
    assert first == second
