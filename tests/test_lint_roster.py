"""Tripwire: the rule-family roster, docs, and registered codes agree.

``repro.lint.RULE_FAMILIES`` is the single source of truth for which
families exist.  Adding a rule in a new family (or retiring one) must
update the roster *and* the docs/linting.md family table in the same
change — these tests fail otherwise.
"""

from __future__ import annotations

import re
from pathlib import Path

from repro.lint import RULE_FAMILIES, all_rules

DOCS = Path(__file__).resolve().parent.parent / "docs" / "linting.md"


def test_registered_codes_use_only_rostered_families():
    assert {rule.code[0] for rule in all_rules()} == set(RULE_FAMILIES)


def test_every_family_has_at_least_one_rule():
    lived_in = {rule.code[0] for rule in all_rules()}
    assert set(RULE_FAMILIES) <= lived_in


def test_docs_family_table_matches_roster():
    text = DOCS.read_text()
    # Family table rows look like `| T | concurrency context | ... |`.
    documented = {
        match.group(1): match.group(2).strip()
        for match in re.finditer(
            r"^\| ([A-Z]) \| ([^|]+) \|", text, re.MULTILINE
        )
    }
    assert documented == RULE_FAMILIES


def test_docs_mention_every_rule_code():
    text = DOCS.read_text()
    for rule in all_rules():
        assert rule.code in text, rule.code


def test_rule_codes_are_unique_and_well_formed():
    codes = [rule.code for rule in all_rules()]
    assert len(set(codes)) == len(codes)
    for code in codes:
        assert re.fullmatch(r"[A-Z]\d{3,4}", code), code
