"""Tests for the streaming scale path: cohort partitioning, the
synthetic cohort source, throughput telemetry, and the scale-report
ledger bridge in ``scripts/bench_to_ledger.py``."""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import pytest

from repro.core.stream import StreamingRecordPath, SyntheticCohortSource
from repro.errors import ColumnarError
from repro.obs import metrics as obs_metrics
from repro.obs import names as obs_names
from repro.obs.clock import TickClock
from repro.obs.ledger import load_ledger
from repro.obs.metrics import MetricsRegistry
from repro.runtime.graph import partition_cohorts
from repro.util.rng import RngStreams
from repro.web.columns import request_table


@pytest.fixture(scope="module")
def bench_to_ledger():
    script = (
        Path(__file__).resolve().parent.parent
        / "scripts"
        / "bench_to_ledger.py"
    )
    spec = importlib.util.spec_from_file_location("bench_to_ledger", script)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestPartitionCohorts:
    def test_contiguous_cover(self):
        assert partition_cohorts(10, 4) == [(0, 4), (4, 8), (8, 10)]
        assert partition_cohorts(0, 4) == []

    def test_invalid_rejected(self):
        with pytest.raises(ColumnarError):
            partition_cohorts(10, 0)


class TestSyntheticCohortSource:
    @pytest.fixture(scope="class")
    def template(self, small_study):
        return request_table(small_study.visit_log.requests[:400])

    def test_n_requests(self, template):
        source = SyntheticCohortSource(template, RngStreams(3), 100, 5)
        assert source.n_requests == 500

    def test_cohorts_cover_and_rewrite_user_ids(self, template):
        source = SyntheticCohortSource(template, RngStreams(3), 100, 5)
        seen_users = set()
        n_rows = 0
        for key, table in source.cohorts(30):
            assert key.startswith("synth[")
            n_rows += len(table)
            seen_users.update(table.column("user_id"))
        assert n_rows == source.n_requests
        assert seen_users == set(range(100))

    def test_cohort_is_a_pure_function_of_bounds(self, template):
        # Same seed, same bounds => same rows, regardless of which
        # other cohorts were generated first (resumable sharding).
        a = SyntheticCohortSource(template, RngStreams(3), 100, 5)
        b = SyntheticCohortSource(template, RngStreams(3), 100, 5)
        a.cohort(0, 30)  # advance a's stream usage before the probe
        assert list(a.cohort(30, 60).iter_rows()) == list(
            b.cohort(30, 60).iter_rows()
        )

    def test_empty_template_rejected(self, template):
        with pytest.raises(ColumnarError):
            SyntheticCohortSource(request_table([]), RngStreams(3), 10, 5)

    def test_bad_params_rejected(self, template):
        with pytest.raises(ColumnarError):
            SyntheticCohortSource(template, RngStreams(3), 0, 5)
        with pytest.raises(ColumnarError):
            SyntheticCohortSource(template, RngStreams(3), 10, 0)


class TestStreamingTelemetry:
    def test_bad_chunk_rows_rejected(self, small_study, synthetic_locate):
        with pytest.raises(ColumnarError):
            StreamingRecordPath(
                small_study.classifier, synthetic_locate, chunk_rows=0
            )

    def test_tick_clock_yields_positive_throughput(
        self, small_study, synthetic_locate
    ):
        path = StreamingRecordPath(
            small_study.classifier,
            synthetic_locate,
            clock=TickClock(step=0.5),
        )
        path.consume(request_table(small_study.visit_log.requests[:500]))
        rates = path.throughput()
        assert set(rates) == {"classify", "confine"}
        assert all(rate > 0 for rate in rates.values())
        stats = path.stage_stats()
        assert stats["classify"]["rows"] == 500.0
        assert stats["classify"]["wall_s"] == 0.5
        assert stats["classify"]["flows_per_s"] == 1000.0

    def test_null_clock_reports_zero_rates(
        self, small_study, synthetic_locate
    ):
        path = StreamingRecordPath(small_study.classifier, synthetic_locate)
        path.consume(request_table(small_study.visit_log.requests[:100]))
        assert path.throughput() == {"classify": 0.0, "confine": 0.0}

    def test_gauges_published_under_collection_scope(
        self, small_study, synthetic_locate
    ):
        registry = MetricsRegistry()
        path = StreamingRecordPath(
            small_study.classifier,
            synthetic_locate,
            clock=TickClock(step=0.5),
        )
        with obs_metrics.collecting(registry):
            path.consume(request_table(small_study.visit_log.requests[:500]))
        assert registry.value(
            obs_names.PIPELINE_FLOWS_PER_S, stage="classify"
        ) == 1000.0
        assert registry.value(
            obs_names.PIPELINE_FLOWS_PER_S, stage="confine"
        ) > 0


SCALE_REPORT = {
    "schema": "repro.columnar/scale/v1",
    "config": {
        "users": 1000,
        "requests_per_user": 5,
        "cohort_size": 100,
        "chunk_rows": 4096,
        "seed": 7,
        "numpy": False,
    },
    "stages": {
        "generate": {"rows": 5000.0, "wall_s": 0.5, "flows_per_s": 10000.0},
        "classify": {"rows": 5000.0, "wall_s": 0.25, "flows_per_s": 20000.0},
        "confine": {"rows": 5000.0, "wall_s": 0.1, "flows_per_s": 50000.0},
    },
    "max_rss_mb": 88.5,
    "peak_cohort_mb": 4.25,
    "headlines": {
        "n_requests": 5000,
        "n_tracking": 3200,
        "region_confinement_pct": 90.7,
    },
}


class TestScaleReportToLedger:
    def test_scale_report_folds_throughput_gauges(
        self, bench_to_ledger, tmp_path
    ):
        report = tmp_path / "scale.json"
        report.write_text(json.dumps(SCALE_REPORT))
        ledger = tmp_path / "ledger.jsonl"
        assert bench_to_ledger.main([
            str(ledger), "--scale-report", str(report),
        ]) == 0
        (record,) = load_ledger(ledger)
        assert record["kind"] == "bench"
        metrics = record["metrics"]
        assert metrics["pipeline.flows_per_s{stage=classify}"] == {
            "kind": "gauge", "value": 20000.0,
        }
        assert metrics["pipeline.flows_per_s{stage=generate}"] == {
            "kind": "gauge", "value": 10000.0,
        }
        assert metrics["pipeline.max_rss_mb"] == {
            "kind": "gauge", "value": 88.5,
        }

    def test_scale_report_combines_with_bench_report(
        self, bench_to_ledger, tmp_path
    ):
        bench = tmp_path / "bench.json"
        bench.write_text(json.dumps({
            "benchmarks": [{
                "name": "test_engine_small",
                "stats": {"min": 0.9, "median": 1.0, "mean": 1.1, "max": 1.4},
            }],
        }))
        report = tmp_path / "scale.json"
        report.write_text(json.dumps(SCALE_REPORT))
        ledger = tmp_path / "ledger.jsonl"
        assert bench_to_ledger.main([
            str(bench), str(ledger), "--scale-report", str(report),
        ]) == 0
        (record,) = load_ledger(ledger)
        metrics = record["metrics"]
        assert "bench.time_s{benchmark=test_engine_small,stat=median}" in metrics
        assert "pipeline.max_rss_mb" in metrics

    def test_bad_schema_rejected(self, bench_to_ledger, tmp_path, capsys):
        report = tmp_path / "scale.json"
        payload = dict(SCALE_REPORT, schema="something/else/v9")
        report.write_text(json.dumps(payload))
        ledger = tmp_path / "ledger.jsonl"
        assert bench_to_ledger.main([
            str(ledger), "--scale-report", str(report),
        ]) == 1
        assert "scale report carries schema" in capsys.readouterr().err
        assert not ledger.exists()

    def test_no_sources_at_all_is_an_error(self, bench_to_ledger, tmp_path):
        with pytest.raises(SystemExit):
            bench_to_ledger.main([str(tmp_path / "ledger.jsonl")])
