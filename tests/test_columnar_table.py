"""Tests for repro.columnar: schemas, packed tables, geometry, accel."""

from array import array

import pytest

from repro.columnar import (
    HAVE_NUMPY,
    ColumnKind,
    ColumnSpec,
    ColumnarTable,
    DictColumn,
    Schema,
    chunk_bounds,
    cohort_bounds,
)
from repro.columnar import accel
from repro.errors import ColumnarError


# ---------------------------------------------------------------------------
# schema
# ---------------------------------------------------------------------------

class TestSchema:
    def test_kinds_have_portable_typecodes(self):
        # 'I'/'Q' are fixed 4/8 bytes where it matters; 'L' (8 bytes on
        # Linux) must never be used for U32.
        assert array(ColumnKind.U32.typecode).itemsize == 4
        assert array(ColumnKind.U64.typecode).itemsize == 8
        assert array(ColumnKind.U16.typecode).itemsize == 2
        assert array(ColumnKind.U8.typecode).itemsize == 1

    def test_packed_vs_object_kinds(self):
        assert ColumnKind.F64.is_packed
        assert not ColumnKind.STR.is_packed
        assert not ColumnKind.DICT.is_packed

    def test_of_and_lookup(self):
        schema = Schema.of(("a", ColumnKind.U8), ("b", ColumnKind.STR))
        assert schema.names == ("a", "b")
        assert len(schema) == 2
        assert "a" in schema and "z" not in schema
        assert schema.index_of("b") == 1
        assert schema.spec("a").kind is ColumnKind.U8

    def test_duplicate_column_rejected(self):
        with pytest.raises(ColumnarError):
            Schema.of(("a", ColumnKind.U8), ("a", ColumnKind.U8))

    def test_bad_identifier_rejected(self):
        with pytest.raises(ColumnarError):
            ColumnSpec("not an identifier", ColumnKind.U8)

    def test_unknown_column_rejected(self):
        schema = Schema.of(("a", ColumnKind.U8))
        with pytest.raises(ColumnarError):
            schema.spec("missing")
        with pytest.raises(ColumnarError):
            schema.index_of("missing")


# ---------------------------------------------------------------------------
# dictionary column
# ---------------------------------------------------------------------------

class TestDictColumn:
    def test_codes_are_stable_per_value(self):
        column = DictColumn()
        assert column.append("x") == 0
        assert column.append("y") == 1
        assert column.append("x") == 0
        assert list(column.codes) == [0, 1, 0]
        assert column.n_values == 2
        assert column.values() == ("x", "y")

    def test_code_of_and_value_of(self):
        column = DictColumn()
        column.append("x")
        assert column.code_of("x") == 0
        assert column.code_of("missing") is None
        assert column.value_of(0) == "x"
        with pytest.raises(ColumnarError):
            column.value_of(1)


# ---------------------------------------------------------------------------
# table
# ---------------------------------------------------------------------------

SCHEMA = Schema.of(
    ("label", ColumnKind.DICT),
    ("url", ColumnKind.STR),
    ("count", ColumnKind.U32),
    ("score", ColumnKind.F64),
    ("flag", ColumnKind.BOOL),
)

ROWS = [
    ("a", "http://a/1", 3, 0.5, True),
    ("b", "http://b/1", 1, 1.5, False),
    ("a", "http://a/2", 7, 2.5, True),
]


class TestColumnarTable:
    def test_round_trip_rows(self):
        table = ColumnarTable.from_rows(SCHEMA, ROWS)
        assert len(table) == 3
        assert [table.row(i) for i in range(3)] == ROWS
        assert list(table.iter_rows()) == ROWS

    def test_columns_are_packed(self):
        table = ColumnarTable.from_rows(SCHEMA, ROWS)
        counts = table.column("count")
        assert isinstance(counts, array) and counts.typecode == "I"
        assert list(counts) == [3, 1, 7]
        # BOOL coerces to 0/1 bytes.
        assert list(table.column("flag")) == [1, 0, 1]
        # DICT stores codes + a value table.
        label = table.column("label")
        assert list(label.codes) == [0, 1, 0]
        assert table.cell("label", 2) == "a"

    def test_arity_mismatch_rejected(self):
        table = ColumnarTable(SCHEMA)
        with pytest.raises(ColumnarError):
            table.append(("a", "http://a", 1, 0.0))

    def test_unknown_column_rejected(self):
        table = ColumnarTable.from_rows(SCHEMA, ROWS)
        with pytest.raises(ColumnarError):
            table.column("missing")

    def test_nbytes_counts_packed_storage(self):
        table = ColumnarTable.from_rows(SCHEMA, ROWS)
        assert table.nbytes() > 0

    def test_iter_chunks_covers_exactly(self):
        table = ColumnarTable.from_rows(SCHEMA, ROWS * 5)  # 15 rows
        bounds = list(table.iter_chunks(4))
        assert bounds == [(0, 4), (4, 8), (8, 12), (12, 15)]


# ---------------------------------------------------------------------------
# geometry
# ---------------------------------------------------------------------------

class TestGeometry:
    def test_cohorts_cover_contiguously(self):
        assert cohort_bounds(10, 3) == [(0, 3), (3, 6), (6, 9), (9, 10)]
        assert cohort_bounds(10, 10) == [(0, 10)]
        assert cohort_bounds(10, 100) == [(0, 10)]

    def test_empty_world_yields_no_cohorts(self):
        assert cohort_bounds(0, 5) == []

    def test_invalid_geometry_rejected(self):
        with pytest.raises(ColumnarError):
            cohort_bounds(10, 0)
        with pytest.raises(ColumnarError):
            cohort_bounds(-1, 5)
        with pytest.raises(ColumnarError):
            list(chunk_bounds(10, 0))
        with pytest.raises(ColumnarError):
            list(chunk_bounds(-1, 5))

    def test_chunks_cover_exactly(self):
        assert list(chunk_bounds(7, 3)) == [(0, 3), (3, 6), (6, 7)]
        assert list(chunk_bounds(0, 3)) == []


# ---------------------------------------------------------------------------
# accel: numpy and fallback must agree bit for bit
# ---------------------------------------------------------------------------

CODES = array("I", [0, 2, 1, 2, 2, 0, 3, 1, 2, 0])
MASK = array("B", [1, 0, 1, 1, 0, 0, 1, 0, 1, 1])


def _both_paths(monkeypatch, fn, *args):
    """Run an accel function on the active path and the pure fallback."""
    fast = fn(*args)
    monkeypatch.setattr(accel, "HAVE_NUMPY", False)
    slow = fn(*args)
    return fast, slow


class TestAccel:
    def test_count_codes(self, monkeypatch):
        fast, slow = _both_paths(monkeypatch, accel.count_codes, CODES, 4)
        assert fast == slow == (3, 2, 4, 1)

    def test_tally_pairs(self, monkeypatch):
        fast, slow = _both_paths(
            monkeypatch, accel.tally_pairs, CODES, list(MASK), 4, 2
        )
        assert dict(fast) == dict(slow)
        assert sum(fast.values()) == len(CODES)

    def test_tally_pairs_misaligned(self):
        with pytest.raises(ColumnarError):
            accel.tally_pairs(CODES, [0, 1], 4, 2)

    def test_masked_count(self, monkeypatch):
        fast, slow = _both_paths(monkeypatch, accel.masked_count, MASK)
        assert fast == slow == 6

    def test_nonzero_mask(self, monkeypatch):
        fast, slow = _both_paths(monkeypatch, accel.nonzero_mask, CODES)
        assert list(fast) == list(slow) == [0, 1, 1, 1, 1, 0, 1, 1, 1, 0]

    def test_and_masks(self, monkeypatch):
        fast, slow = _both_paths(
            monkeypatch, accel.and_masks, MASK, accel.nonzero_mask(CODES)
        )
        assert list(fast) == list(slow)

    def test_and_masks_misaligned(self):
        with pytest.raises(ColumnarError):
            accel.and_masks(MASK, [1])

    def test_select_where(self, monkeypatch):
        fast, slow = _both_paths(monkeypatch, accel.select_where, CODES, MASK)
        assert list(fast) == list(slow) == [0, 1, 2, 3, 2, 0]

    def test_select_where_misaligned(self):
        with pytest.raises(ColumnarError):
            accel.select_where(CODES, [1])

    def test_map_codes(self, monkeypatch):
        lookup = [10, 20, 30, 40]
        fast, slow = _both_paths(monkeypatch, accel.map_codes, CODES, lookup)
        assert list(fast) == list(slow) == [lookup[c] for c in CODES]

    def test_probe_is_a_constant(self):
        # The probe is an interpreter property: flipping it at runtime
        # (as these tests do) changes speed only, never results.
        assert isinstance(HAVE_NUMPY, bool)
