"""Tests for repro.cloud.providers."""

import pytest

from repro.cloud.providers import CloudCatalog, CloudProvider, default_providers
from repro.errors import ConfigError
from repro.netbase.allocator import AddressPlan


class TestCloudProvider:
    def test_nine_default_providers(self):
        assert len(default_providers()) == 9

    def test_has_pop(self):
        aws = next(p for p in default_providers() if p.name == "aws")
        assert aws.has_pop("IE")
        assert not aws.has_pop("CY")

    def test_no_pops_rejected(self):
        with pytest.raises(ConfigError):
            CloudProvider("x", "X", "US", ())

    def test_duplicate_pops_rejected(self):
        with pytest.raises(ConfigError):
            CloudProvider("x", "X", "US", ("DE", "DE"))


class TestCloudCatalog:
    def test_union_excludes_cyprus(self):
        """Table 6's shape: no public-cloud PoP in Cyprus."""
        union = CloudCatalog().union_pop_countries()
        assert "CY" not in union
        for covered in ("DK", "GR", "RO", "IT", "GB", "ES", "DE"):
            assert covered in union

    def test_providers_in(self):
        catalog = CloudCatalog()
        names = {p.name for p in catalog.providers_in("DK")}
        assert names  # at least one provider covers Denmark
        assert all(catalog.get(n).has_pop("DK") for n in names)

    def test_unknown_provider(self):
        with pytest.raises(ConfigError):
            CloudCatalog().get("nimbus")

    def test_duplicate_provider_rejected(self):
        aws = default_providers()[0]
        with pytest.raises(ConfigError):
            CloudCatalog([aws, aws])

    def test_allocation_requires_plan(self):
        with pytest.raises(ConfigError):
            CloudCatalog().allocate_address("aws", "IE")

    def test_allocation_and_range_membership(self):
        catalog = CloudCatalog()
        plan = AddressPlan()
        catalog.attach_plan(plan)
        address = catalog.allocate_address("aws", "IE")
        provider = catalog.provider_of_ip(address)
        assert provider is not None and provider.name == "aws"
        assert any(
            address in prefix for prefix in catalog.published_ranges("aws")
        )
        # The plan knows the pool's true country.
        assert plan.lookup(address).country == "IE"

    def test_allocation_outside_footprint_rejected(self):
        catalog = CloudCatalog()
        catalog.attach_plan(AddressPlan())
        with pytest.raises(ConfigError):
            catalog.allocate_address("aws", "CY")

    def test_provider_of_ip_non_cloud(self):
        catalog = CloudCatalog()
        plan = AddressPlan()
        catalog.attach_plan(plan)
        record = plan.create_pool("DE", "hosting", "acme", length=24)
        own = plan.pool(record.prefix).allocate_address()
        assert catalog.provider_of_ip(own) is None

    def test_published_ranges_cover_every_pop(self):
        catalog = CloudCatalog()
        catalog.attach_plan(AddressPlan())
        for provider in catalog.providers():
            ranges = catalog.published_ranges(provider.name)
            assert len(ranges) == len(provider.pop_countries)
