"""Unit tests for :mod:`repro.obs.ledger` — records, corruption, selectors.

Everything runs against hand-built records on tmp_path ledgers; the
integration with real engine runs is locked in
``test_runtime_determinism.py`` and ``make diff-smoke``.
"""

from __future__ import annotations

import json

import pytest

from repro.errors import ObservabilityError, ReproError
from repro.obs import (
    LEDGER_FILENAME,
    LEDGER_SCHEMA,
    append_record,
    ledger_path,
    load_ledger,
    read_baseline,
    select_record,
    validate_record,
    write_baseline,
)
from repro.obs.ledger import run_id_for
from repro.obs.persist import (
    append_jsonl_line,
    count_jsonl_lines,
    read_jsonl_lines,
)


def make_run_payload(digest="abc123", seed=7, value=25825):
    """A minimal valid ``kind="run"`` payload (pre-identity-stamping)."""
    return {
        "schema": LEDGER_SCHEMA,
        "kind": "run",
        "config": {"digest": digest, "seed": seed},
        "workers": 2,
        "salts": {"panel": "s-panel", "classification": "s-classify"},
        "footprints": {"panel": "f-panel"},
        "stages": [
            {
                "stage": "panel",
                "shards": 8,
                "cache_hits": 0,
                "cache_misses": 8,
                "wall_s": 1.25,
                "cpu_s": 1.0,
                "metric_keys": ["web.requests{stage=panel}"],
            },
        ],
        "metrics": {
            "web.requests{stage=panel}": {"kind": "counter", "value": value},
        },
        "world_build_s": 0.5,
    }


class TestRunId:
    def test_deterministic_and_seq_sensitive(self):
        payload = make_run_payload()
        assert run_id_for(payload, 0) == run_id_for(payload, 0)
        assert run_id_for(payload, 0) != run_id_for(payload, 1)
        assert run_id_for(make_run_payload(value=1), 0) != run_id_for(
            make_run_payload(value=2), 0
        )

    def test_key_order_does_not_matter(self):
        forward = {"a": 1, "b": 2}
        backward = {"b": 2, "a": 1}
        assert run_id_for(forward, 3) == run_id_for(backward, 3)


class TestAppendAndLoad:
    def test_round_trip(self, tmp_path):
        path = ledger_path(tmp_path)
        assert path.endswith(LEDGER_FILENAME)
        first = append_record(path, make_run_payload(value=1))
        second = append_record(path, make_run_payload(value=2))
        assert (first["seq"], second["seq"]) == (0, 1)
        assert first["run_id"] != second["run_id"]
        assert load_ledger(path) == [first, second]

    def test_stale_identity_fields_are_restamped(self, tmp_path):
        path = ledger_path(tmp_path)
        payload = make_run_payload()
        payload["run_id"] = "stale"
        payload["seq"] = 99
        record = append_record(path, payload)
        assert record["seq"] == 0
        assert record["run_id"] == run_id_for(
            {k: v for k, v in record.items() if k != "run_id"}, 0
        )

    def test_append_rejects_invalid_payload(self, tmp_path):
        path = ledger_path(tmp_path)
        broken = make_run_payload()
        del broken["config"]
        with pytest.raises(ObservabilityError):
            append_record(path, broken)
        # A rejected append writes nothing.
        assert count_jsonl_lines(path) == 0

    def test_concurrent_appends_get_unique_dense_seqs(self, tmp_path):
        # Concurrent serve jobs append to one ledger from threads of
        # one process; the append lock serializes the count-stamp-write
        # critical section, so every record gets a unique seq and the
        # journal stays dense and loadable.
        import threading

        path = ledger_path(tmp_path)
        barrier = threading.Barrier(8)

        def appender(worker):
            barrier.wait()
            for i in range(10):
                append_record(path, make_run_payload(value=worker * 100 + i))

        threads = [
            threading.Thread(target=appender, args=(worker,))
            for worker in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        records = load_ledger(path)
        assert [record["seq"] for record in records] == list(range(80))
        assert len({record["run_id"] for record in records}) == 80

    def test_missing_ledger_raises_cleanly(self, tmp_path):
        # The CLI catches this and renders "repro obs: cannot read ..."
        # instead of a traceback — absence is an error, not an empty list.
        with pytest.raises(ObservabilityError) as excinfo:
            load_ledger(ledger_path(tmp_path))
        assert "cannot read" in str(excinfo.value)


class TestValidation:
    @pytest.mark.parametrize(
        "mutation",
        [
            lambda r: r.pop("metrics"),
            lambda r: r.pop("config"),
            lambda r: r.update(schema="repro.obs/ledger/v0"),
            lambda r: r.update(kind="mystery"),
            lambda r: r.update(seq=True),
            lambda r: r.update(seq=-1),
            lambda r: r.update(workers="four"),
            lambda r: r["config"].pop("digest"),
            lambda r: r["stages"][0].pop("cpu_s"),
            lambda r: r["stages"][0].pop("metric_keys"),
            lambda r: r["stages"][0].update(cache_hits="lots"),
            lambda r: r["stages"].append("not-a-mapping"),
        ],
    )
    def test_broken_records_rejected(self, mutation):
        record = make_run_payload()
        record["seq"] = 0
        record["run_id"] = "deadbeef"
        mutation(record)
        with pytest.raises(ObservabilityError):
            validate_record(record)

    def test_bench_records_need_no_stages(self):
        validate_record({
            "schema": LEDGER_SCHEMA,
            "kind": "bench",
            "run_id": "deadbeef",
            "seq": 0,
            "metrics": {},
        })

    def test_extra_keys_are_forward_compatible(self):
        record = make_run_payload()
        record["seq"] = 0
        record["run_id"] = "deadbeef"
        record["future_field"] = {"anything": True}
        validate_record(record)


class TestCorruption:
    def test_corrupt_line_reports_number_not_jsondecodeerror(self, tmp_path):
        path = ledger_path(tmp_path)
        append_record(path, make_run_payload())
        with open(path, "a", encoding="utf-8") as handle:
            handle.write("{this is not json}\n")
        with pytest.raises(ObservabilityError) as excinfo:
            load_ledger(path)
        assert "line 2" in str(excinfo.value)
        assert not isinstance(excinfo.value, json.JSONDecodeError)
        # The whole taxonomy stays inside ReproError.
        assert isinstance(excinfo.value, ReproError)

    def test_truncated_last_line(self, tmp_path):
        path = ledger_path(tmp_path)
        append_record(path, make_run_payload())
        full = json.dumps(make_run_payload())
        with open(path, "a", encoding="utf-8") as handle:
            handle.write(full[: len(full) // 2])  # crash mid-append
        with pytest.raises(ObservabilityError) as excinfo:
            load_ledger(path)
        assert "line 2" in str(excinfo.value)

    def test_valid_json_invalid_record_names_line(self, tmp_path):
        path = ledger_path(tmp_path)
        append_record(path, make_run_payload())
        append_jsonl_line(path, {"schema": LEDGER_SCHEMA, "kind": "run"})
        with pytest.raises(ObservabilityError) as excinfo:
            load_ledger(path)
        assert "line 2" in str(excinfo.value)

    def test_non_object_line_rejected(self, tmp_path):
        path = ledger_path(tmp_path)
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("[1, 2, 3]\n")
        with pytest.raises(ObservabilityError) as excinfo:
            list(read_jsonl_lines(path))
        assert "line 1" in str(excinfo.value)


class TestSelectors:
    def build_ledger(self, tmp_path, n=3):
        path = ledger_path(tmp_path)
        return path, [
            append_record(path, make_run_payload(value=i)) for i in range(n)
        ]

    def test_latest_and_latest_n(self, tmp_path):
        _, records = self.build_ledger(tmp_path)
        assert select_record(records, "latest") == records[-1]
        assert select_record(records, "latest~1") == records[-2]
        assert select_record(records, "latest~2") == records[0]

    def test_latest_n_past_start(self, tmp_path):
        _, records = self.build_ledger(tmp_path)
        with pytest.raises(ObservabilityError):
            select_record(records, "latest~3")
        with pytest.raises(ObservabilityError):
            select_record(records, "latest~x")

    def test_seq_selector(self, tmp_path):
        _, records = self.build_ledger(tmp_path)
        assert select_record(records, "1") == records[1]
        with pytest.raises(ObservabilityError):
            select_record(records, "9")

    def test_run_id_prefix(self, tmp_path):
        _, records = self.build_ledger(tmp_path)
        target = records[1]
        assert select_record(records, target["run_id"][:8]) == target
        with pytest.raises(ObservabilityError):
            select_record(records, "zzzz")
        with pytest.raises(ObservabilityError):
            select_record(records, "")  # prefix of every id: ambiguous

    def test_baseline_falls_back_to_first(self, tmp_path):
        _, records = self.build_ledger(tmp_path)
        assert select_record(records, "baseline") == records[0]

    def test_baseline_pointer_round_trip(self, tmp_path):
        path, records = self.build_ledger(tmp_path)
        assert read_baseline(path) is None
        write_baseline(path, records[1]["run_id"])
        assert read_baseline(path) == records[1]["run_id"]
        resolved = select_record(
            records, "baseline", baseline_id=read_baseline(path)
        )
        assert resolved == records[1]

    def test_baseline_pointer_to_unknown_run(self, tmp_path):
        _, records = self.build_ledger(tmp_path)
        with pytest.raises(ObservabilityError):
            select_record(records, "baseline", baseline_id="gone")

    def test_corrupt_baseline_pointer(self, tmp_path):
        path, records = self.build_ledger(tmp_path)
        write_baseline(path, records[0]["run_id"])
        with open(f"{path}.baseline", "w", encoding="utf-8") as handle:
            handle.write("{broken")
        with pytest.raises(ObservabilityError):
            read_baseline(path)

    def test_empty_ledger(self):
        with pytest.raises(ObservabilityError):
            select_record([], "latest")
