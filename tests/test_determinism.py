"""Whole-system determinism: the same seed must reproduce the identical
world and study products; a different seed must not."""

import pytest

from repro import Study, WorldConfig
from repro.datasets.builder import build_world


@pytest.fixture(scope="module")
def twin_worlds():
    config = WorldConfig.small(seed=4242)
    return build_world(config), build_world(WorldConfig.small(seed=4242))


class TestSameSeed:
    def test_organizations_identical(self, twin_worlds):
        first, second = twin_worlds
        assert first.organizations == second.organizations

    def test_server_addresses_identical(self, twin_worlds):
        first, second = twin_worlds
        assert [s.ip for s in first.fleet.servers()] == [
            s.ip for s in second.fleet.servers()
        ]

    def test_publishers_identical(self, twin_worlds):
        first, second = twin_worlds
        assert first.publishers == second.publishers

    def test_users_identical(self, twin_worlds):
        first, second = twin_worlds
        assert first.users == second.users

    def test_filter_lists_identical(self, twin_worlds):
        first, second = twin_worlds
        assert (
            first.easylist.anchor_domains()
            == second.easylist.anchor_domains()
        )
        assert (
            first.easyprivacy.anchor_domains()
            == second.easyprivacy.anchor_domains()
        )

    def test_pdns_contents_identical(self, twin_worlds):
        first, second = twin_worlds
        assert len(first.pdns) == len(second.pdns)
        assert list(first.pdns.names()) == list(second.pdns.names())

    def test_probe_mesh_identical(self, twin_worlds):
        first, second = twin_worlds
        assert first.probes.probes() == second.probes.probes()

    def test_study_products_identical(self, twin_worlds):
        first, second = twin_worlds
        study_a, study_b = Study(world=first), Study(world=second)
        assert (
            study_a.visit_log.third_party_requests()
            == study_b.visit_log.third_party_requests()
        )
        assert study_a.classification.stages == study_b.classification.stages
        assert (
            study_a.inventory.addresses() == study_b.inventory.addresses()
        )

    def test_geolocation_identical(self, twin_worlds):
        first, second = twin_worlds
        sample = first.fleet.servers()[:30]
        for server in sample:
            assert first.ipmap.locate(server.ip) == second.ipmap.locate(
                server.ip
            )


class TestDifferentSeed:
    def test_worlds_differ(self):
        first = build_world(WorldConfig.small(seed=1))
        second = build_world(WorldConfig.small(seed=2))
        assert [s.ip for s in first.fleet.servers()] != [
            s.ip for s in second.fleet.servers()
        ]
        assert first.organizations != second.organizations

    def test_headline_shape_stable_across_seeds(self):
        """The calibrated shape must not be a single-seed artifact."""
        from repro.geodata.regions import Region

        for seed in (11, 22):
            study = Study(WorldConfig.small(seed=seed))
            ipmap = study.eu28_destination_regions("RIPE IPmap")
            maxmind = study.eu28_destination_regions("MaxMind")
            assert ipmap[Region.EU28.value] > 70.0
            assert (
                maxmind[Region.EU28.value] < ipmap[Region.EU28.value] - 15.0
            )
