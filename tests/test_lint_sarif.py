"""SARIF 2.1.0 export: document shape, suppressions, validation, CLI."""

from __future__ import annotations

import json
import textwrap

import pytest

from repro.errors import LintError
from repro.lint import Finding, all_rules
from repro.lint.cli import main
from repro.lint.sarif import (
    SARIF_SCHEMA_URI,
    SARIF_VERSION,
    TOOL_NAME,
    build_sarif,
    validate_sarif,
)


def finding(rule: str = "D101", line: int = 4) -> Finding:
    return Finding(
        path="pkg/mod.py",
        line=line,
        col=2,
        rule=rule,
        message="uses random without a seed",
        snippet="x = random.random()",
    )


def test_document_shape_round_trips_through_json():
    document = build_sarif([finding()], rules=all_rules())
    reparsed = json.loads(json.dumps(document))
    validate_sarif(reparsed)
    assert reparsed["$schema"] == SARIF_SCHEMA_URI
    assert reparsed["version"] == SARIF_VERSION
    (run,) = reparsed["runs"]
    assert run["tool"]["driver"]["name"] == TOOL_NAME
    (result,) = run["results"]
    assert result["ruleId"] == "D101"
    assert result["message"]["text"] == "uses random without a seed"
    location = result["locations"][0]["physicalLocation"]
    assert location["artifactLocation"]["uri"] == "pkg/mod.py"
    assert location["region"] == {"startLine": 4, "startColumn": 3}


def test_rules_table_lists_every_executed_rule_once():
    rules = all_rules()
    document = build_sarif([], rules=rules)
    descriptors = document["runs"][0]["tool"]["driver"]["rules"]
    ids = [descriptor["id"] for descriptor in descriptors]
    assert ids == sorted({rule.code for rule in rules})
    # ruleIndex points back into the descriptor table.
    document = build_sarif([finding()], rules=rules)
    (result,) = document["runs"][0]["results"]
    assert ids[result["ruleIndex"]] == "D101"


def test_partial_fingerprints_match_baseline_identity():
    document = build_sarif([finding()])
    (result,) = document["runs"][0]["results"]
    assert result["partialFingerprints"]["reprolint/v1"] == (
        "D101|pkg/mod.py|x = random.random()"
    )


def test_baselined_findings_carry_suppressions():
    document = build_sarif(
        [finding("D101")], grandfathered=[finding("E201", line=9)]
    )
    validate_sarif(document)
    results = document["runs"][0]["results"]
    by_rule = {result["ruleId"]: result for result in results}
    assert "suppressions" not in by_rule["D101"]
    (suppression,) = by_rule["E201"]["suppressions"]
    assert suppression["kind"] == "external"


@pytest.mark.parametrize("mutate, fragment", [
    (lambda d: d.update(version="2.0.0"), "version"),
    (lambda d: d.update(runs=[]), "runs"),
    (
        lambda d: d["runs"][0]["tool"]["driver"].pop("name"),
        "tool.driver.name",
    ),
    (
        lambda d: d["runs"][0]["results"][0].pop("ruleId"),
        "ruleId",
    ),
    (
        lambda d: d["runs"][0]["results"][0].update(message={}),
        "message",
    ),
    (
        lambda d: d["runs"][0]["results"][0].update(locations=[]),
        "location",
    ),
    (
        lambda d: d["runs"][0]["results"][0]["locations"][0][
            "physicalLocation"
        ]["region"].update(startLine=0),
        "startLine",
    ),
])
def test_validate_rejects_malformed_documents(mutate, fragment):
    document = build_sarif([finding()], rules=all_rules())
    mutate(document)
    with pytest.raises(LintError, match=fragment):
        validate_sarif(document)


def test_validate_rejects_duplicate_rule_ids():
    document = build_sarif([], rules=all_rules())
    rules = document["runs"][0]["tool"]["driver"]["rules"]
    rules.append(dict(rules[0]))
    with pytest.raises(LintError, match="duplicate"):
        validate_sarif(document)


def test_validate_rejects_results_naming_unknown_rules():
    document = build_sarif([finding("Z999")], rules=all_rules())
    with pytest.raises(LintError, match="unknown rule"):
        validate_sarif(document)


def test_cli_sarif_export_end_to_end(tmp_path, monkeypatch, capsys):
    monkeypatch.chdir(tmp_path)
    target = tmp_path / "pkg"
    target.mkdir()
    (target / "__init__.py").write_text("")
    (target / "mod.py").write_text(textwrap.dedent(
        """
        import random

        x = random.random()
        """
    ))
    out = tmp_path / "reprolint.sarif"
    assert main(["pkg", "--sarif", str(out)]) == 1
    document = json.loads(out.read_text())
    validate_sarif(document)
    results = document["runs"][0]["results"]
    assert any(result["ruleId"].startswith("D") for result in results)


def test_cli_sarif_on_clean_tree_is_empty_but_valid(
    tmp_path, monkeypatch, capsys
):
    monkeypatch.chdir(tmp_path)
    target = tmp_path / "pkg"
    target.mkdir()
    (target / "__init__.py").write_text("")
    (target / "mod.py").write_text("VALUE = 1\n")
    out = tmp_path / "reprolint.sarif"
    assert main(["pkg", "--sarif", str(out)]) == 0
    document = json.loads(out.read_text())
    validate_sarif(document)
    assert document["runs"][0]["results"] == []
    assert document["runs"][0]["tool"]["driver"]["rules"]
