"""Tests for repro.geodata: countries, regions, distance/latency model."""

import math
import random

import pytest
from hypothesis import given, strategies as st

from repro.errors import GeoDataError
from repro.geodata.countries import (
        Country,
    CountryRegistry,
    default_registry)
from repro.geodata.distance import (
                great_circle_km,
    min_rtt_ms,
    propagation_floor_ms,
    rtt_upper_bound_km)
from repro.geodata.regions import (
    Region,
    in_gdpr_jurisdiction,
    region_of,
    region_of_country,
    same_country,
    same_region,
)


class TestCountryRegistry:
    def test_eu28_has_28_members(self):
        assert len(default_registry().eu28()) == 28

    def test_uk_is_eu28_in_2018(self):
        assert default_registry().get("GB").eu28 is True

    def test_switzerland_not_eu28(self):
        assert default_registry().get("CH").eu28 is False
        assert default_registry().get("CH").continent == "EU"

    def test_unknown_code_raises(self):
        with pytest.raises(GeoDataError):
            default_registry().get("XX")

    def test_find_returns_none_for_unknown(self):
        assert default_registry().find("XX") is None

    def test_contains(self):
        assert "DE" in default_registry()
        assert "XX" not in default_registry()

    def test_iteration_sorted(self):
        codes = [c.iso2 for c in default_registry()]
        assert codes == sorted(codes)

    def test_in_continent(self):
        na = default_registry().in_continent("NA")
        assert all(c.continent == "NA" for c in na)
        assert any(c.iso2 == "US" for c in na)

    def test_in_unknown_continent_raises(self):
        with pytest.raises(GeoDataError):
            default_registry().in_continent("XX")

    def test_duplicate_country_rejected(self):
        country = default_registry().get("DE")
        with pytest.raises(GeoDataError):
            CountryRegistry([country, country])

    def test_country_validation_continent(self):
        with pytest.raises(GeoDataError):
            Country("ZZ", "Z", "XX", False, 1.0, 1.0, 0.0, 0.0)

    def test_country_validation_eu28_must_be_europe(self):
        with pytest.raises(GeoDataError):
            Country("ZZ", "Z", "NA", True, 1.0, 1.0, 0.0, 0.0)

    def test_country_validation_infra_range(self):
        with pytest.raises(GeoDataError):
            Country("ZZ", "Z", "EU", False, 1.0, 150.0, 0.0, 0.0)

    def test_jitter_radius_small_country_small(self):
        registry = default_registry()
        assert (
            registry.get("CY").jitter_radius_deg
            < registry.get("DE").jitter_radius_deg
        )
        assert registry.get("US").jitter_radius_deg <= 1.5

    def test_infra_index_ordering_matches_paper_narrative(self):
        registry = default_registry()
        # Germany/UK/Netherlands dense; Cyprus/Greece sparse.
        assert registry.get("DE").infra_index > registry.get("GR").infra_index
        assert registry.get("GB").infra_index > registry.get("CY").infra_index


class TestRegions:
    def test_eu28_region(self):
        assert region_of_country("DE") is Region.EU28

    def test_rest_of_europe(self):
        assert region_of_country("CH") is Region.REST_EUROPE
        assert region_of_country("RU") is Region.REST_EUROPE

    def test_continent_regions(self):
        assert region_of_country("US") is Region.NORTH_AMERICA
        assert region_of_country("BR") is Region.SOUTH_AMERICA
        assert region_of_country("JP") is Region.ASIA
        assert region_of_country("ZA") is Region.AFRICA
        assert region_of_country("AU") is Region.OCEANIA

    def test_none_maps_to_unknown(self):
        assert region_of_country(None) is Region.UNKNOWN

    def test_unknown_code_raises(self):
        with pytest.raises(GeoDataError):
            region_of_country("XX")

    def test_region_of_matches_region_of_country(self):
        for country in default_registry():
            assert region_of(country) is region_of_country(country.iso2)

    def test_same_country(self):
        assert same_country("DE", "DE")
        assert not same_country("DE", "FR")
        assert not same_country(None, None)

    def test_same_region(self):
        assert same_region("DE", "FR")
        assert not same_region("DE", "CH")  # EU28 vs rest-of-Europe!
        assert not same_region("DE", None)

    def test_gdpr_jurisdiction(self):
        assert in_gdpr_jurisdiction("GB")
        assert not in_gdpr_jurisdiction("CH")
        assert not in_gdpr_jurisdiction(None)


class TestDistance:
    def test_zero_distance(self):
        assert great_circle_km(50, 10, 50, 10) == pytest.approx(0.0)

    def test_known_distance_berlin_paris(self):
        # Berlin (52.52, 13.41) to Paris (48.86, 2.35) is about 880 km.
        distance = great_circle_km(52.52, 13.41, 48.86, 2.35)
        assert 850 < distance < 910

    def test_antipodal_is_half_circumference(self):
        distance = great_circle_km(0, 0, 0, 180)
        assert distance == pytest.approx(math.pi * 6371.0, rel=1e-3)

    def test_symmetry(self):
        assert great_circle_km(10, 20, 30, 40) == pytest.approx(
            great_circle_km(30, 40, 10, 20)
        )

    def test_propagation_floor(self):
        assert propagation_floor_ms(200.0) == pytest.approx(2.0)
        with pytest.raises(ValueError):
            propagation_floor_ms(-1)

    def test_rtt_upper_bound_inverts_floor(self):
        distance = 1234.0
        assert rtt_upper_bound_km(
            propagation_floor_ms(distance)
        ) == pytest.approx(distance)
        with pytest.raises(ValueError):
            rtt_upper_bound_km(-1)

    def test_min_rtt_deterministic_without_rng(self):
        assert min_rtt_ms(1000.0) == min_rtt_ms(1000.0)

    def test_min_rtt_never_below_floor(self):
        rng = random.Random(0)
        for _ in range(200):
            distance = rng.uniform(0, 15000)
            rtt = min_rtt_ms(distance, rng)
            assert rtt >= propagation_floor_ms(distance)


@given(
    st.floats(min_value=-90, max_value=90),
    st.floats(min_value=-180, max_value=180),
    st.floats(min_value=-90, max_value=90),
    st.floats(min_value=-180, max_value=180),
)
def test_distance_bounds_property(lat1, lon1, lat2, lon2):
    distance = great_circle_km(lat1, lon1, lat2, lon2)
    assert 0 <= distance <= math.pi * 6371.0 + 1e-6


@given(
    st.floats(min_value=0, max_value=20000),
    st.integers(min_value=0, max_value=2**31),
)
def test_rtt_upper_bound_always_covers_true_distance(distance, seed):
    """The hard bound derived from any sampled RTT contains the truth."""
    rng = random.Random(seed)
    rtt = min_rtt_ms(distance, rng)
    assert rtt_upper_bound_km(rtt) >= distance - 1e-9
