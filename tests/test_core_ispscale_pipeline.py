"""Tests for the ISP-scale study (Sect. 7) and the end-to-end pipeline."""

import pytest

from repro.config import WorldConfig
from repro.core.ispscale import TABLE8_REGIONS
from repro.core.pipeline import Study
from repro.errors import PipelineError
from repro.geodata.regions import Region


class TestISPScaleStudy:
    def test_snapshot_report_shape(self, small_study):
        report = small_study.isp_study.run_snapshot("DE-Broadband", "April 4")
        assert report.isp_name == "DE-Broadband"
        assert report.sampled_tracking_flows > 0
        assert report.estimated_tracking_flows == (
            report.sampled_tracking_flows
            * small_study.config.isp.sampling_rate
        )

    def test_region_shares_sum_to_100(self, small_study):
        report = small_study.isp_study.run_snapshot("HU", "Nov 8")
        assert sum(report.region_shares.values()) == pytest.approx(
            100.0, abs=0.5
        )
        assert set(report.region_shares) >= set(TABLE8_REGIONS)

    def test_most_flows_join_as_tracking(self, small_study):
        """Background (clean) flows must not match the tracker list."""
        config = small_study.config.isp
        report = small_study.isp_study.run_snapshot("DE-Mobile", "May 16")
        budget = config.sampled_flows["DE-Mobile"]
        assert report.sampled_tracking_flows <= budget + 5
        # The bulk of the tracking budget matched; the shortfall is
        # endpoints whose passive-DNS windows lapsed (the paper's
        # conservative validity rule drops those too).
        assert report.sampled_tracking_flows > 0.65 * budget

    def test_eu28_confinement_high(self, small_study):
        """Table 8's headline: EU28 confinement between ~3/4 and ~19/20."""
        for isp in ("DE-Broadband", "DE-Mobile", "HU"):
            report = small_study.isp_study.run_snapshot(isp, "April 4")
            assert report.region_shares["EU 28"] > 65.0

    def test_encrypted_share_matches_paper(self, small_study):
        report = small_study.isp_study.run_snapshot("DE-Broadband", "June 20")
        assert 70.0 < report.encrypted_share_pct < 95.0
        assert report.web_share_pct > 99.0

    def test_top_destinations_with_rest_bucket(self, small_study):
        report = small_study.isp_study.run_snapshot("PL", "April 4")
        top = report.top_destinations(5)
        assert len(top) <= 6
        shares = [share for _, share in top]
        assert shares[:-1] == sorted(shares[:-1], reverse=True) or len(top) <= 2
        total = sum(share for _, share in top)
        assert total == pytest.approx(100.0, abs=1.0)

    def test_run_all_grid(self, small_study):
        grid = small_study.isp_study.run_all(["Nov 8", "June 20"])
        assert len(grid) == 4 * 2
        assert ("HU", "June 20") in grid

    def test_hungary_flows_terminate_in_austria(self, small_study):
        """Fig. 12(d): Vienna is the Hungarian ISP's dominant sink."""
        report = small_study.isp_study.run_snapshot("HU", "April 4")
        top = report.top_destinations(3)
        assert top[0][0] in ("Austria", "Hungary")


class TestStudyPipeline:
    def test_stage_caching(self, small_study):
        assert small_study.visit_log is small_study.visit_log
        assert small_study.classification is small_study.classification
        assert small_study.inventory is small_study.inventory
        assert small_study.localization is small_study.localization
        assert small_study.sensitive is small_study.sensitive
        assert small_study.isp_study is small_study.isp_study

    def test_conflicting_constructor_args_rejected(self, small_world):
        with pytest.raises(PipelineError):
            Study(config=WorldConfig.small(seed=99), world=small_world)

    def test_reuses_prebuilt_world(self, small_world):
        study = Study(world=small_world)
        assert study.world is small_world
        assert study.config is small_world.config

    def test_tracking_requests_subset_of_log(self, small_study):
        tracking = small_study.tracking_requests()
        assert 0 < len(tracking) < small_study.visit_log.third_party_requests()

    def test_inventory_covers_tracking_flows(self, small_study):
        inventory = small_study.inventory
        for request in small_study.tracking_requests()[:200]:
            assert request.ip in inventory

    def test_eu28_shares_sum_to_100(self, small_study):
        for tool in ("RIPE IPmap", "MaxMind", "ip-api"):
            shares = small_study.eu28_destination_regions(tool)
            assert sum(shares.values()) == pytest.approx(100.0, abs=0.1)

    def test_headline_flip_direction(self, small_study):
        """Fig. 7: the commercial database must flip the takeaway —
        IPmap says confined in EU28, MaxMind says leaked to N. America."""
        ipmap = small_study.eu28_destination_regions("RIPE IPmap")
        maxmind = small_study.eu28_destination_regions("MaxMind")
        assert ipmap[Region.EU28.value] > 60.0
        assert maxmind[Region.EU28.value] < ipmap[Region.EU28.value] - 20.0
        assert (
            maxmind.get(Region.NORTH_AMERICA.value, 0.0)
            > ipmap.get(Region.NORTH_AMERICA.value, 0.0)
        )

    def test_confinement_unknown_tool_raises(self, small_study):
        with pytest.raises(KeyError):
            small_study.confinement("GeoGuesser")


class TestAnalysisArtifacts:
    def test_all_tables_render(self, small_study):
        from repro.analysis import tables as T

        for builder in (T.table1, T.table2, T.table5, T.table6, T.table7,
                        T.table9):
            artifact = builder(small_study)
            assert isinstance(artifact["text"], str) and artifact["text"]

    def test_table3_and_4(self, small_study):
        from repro.analysis.tables import table3, table4

        t3 = table3(small_study, max_ips=300)
        assert t3["n_ips"] <= 300
        t4 = table4(small_study)
        assert len(t4["providers"]) == 3

    def test_table8_grid(self, small_study):
        from repro.analysis.tables import table8

        artifact = table8(small_study, snapshots=["April 4"])
        assert len(artifact["reports"]) == 4

    def test_all_figures_render(self, small_study):
        from repro.analysis import figures as F

        for builder in (F.figure2, F.figure3, F.figure4, F.figure5,
                        F.figure6, F.figure7, F.figure8, F.figure9,
                        F.figure10, F.figure11):
            artifact = builder(small_study)
            assert isinstance(artifact["text"], str) and artifact["text"]

    def test_figure12(self, small_study):
        from repro.analysis.figures import figure12

        artifact = figure12(small_study)
        assert set(artifact["reports"]) == {
            "DE-Broadband", "DE-Mobile", "PL", "HU",
        }

    def test_experiment_summary_complete(self, small_study):
        from repro.analysis.report import PAPER_VALUES, experiment_summary

        measured = experiment_summary(small_study)
        assert set(measured) == set(PAPER_VALUES)
        assert all(isinstance(v, float) for v in measured.values())

    def test_paper_vs_measured_renders(self, small_study):
        from repro.analysis.report import paper_vs_measured

        block = paper_vs_measured(small_study)
        assert "f7_ipmap_eu28_pct" in block
