"""Tests for the localization what-if analysis (Sect. 5, Tables 5/6)."""

import pytest

from repro.core.localization import LocalizationScenario


@pytest.fixture(scope="module")
def small_study_module(small_study):
    return small_study


@pytest.fixture(scope="module")
def analyzer(small_study_module):
    return small_study_module.localization


@pytest.fixture(scope="module")
def tracking(small_study_module):
    return small_study_module.tracking_requests()


class TestScenarioOrdering:
    def test_scenarios_are_monotone(self, analyzer, tracking):
        """Each scenario can only add reachable countries, so confinement
        is non-decreasing along the paper's scenario chain."""
        outcomes = {
            scenario: analyzer.evaluate(tracking, scenario)
            for scenario in LocalizationScenario
        }
        default = outcomes[LocalizationScenario.DEFAULT]
        fqdn = outcomes[LocalizationScenario.REDIRECT_FQDN]
        tld = outcomes[LocalizationScenario.REDIRECT_TLD]
        mirror = outcomes[LocalizationScenario.POP_MIRRORING]
        combined = outcomes[LocalizationScenario.REDIRECT_TLD_PLUS_MIRRORING]
        migration = outcomes[LocalizationScenario.CLOUD_MIGRATION]
        for metric in ("country_pct", "region_pct"):
            assert getattr(fqdn, metric) >= getattr(default, metric)
            assert getattr(tld, metric) >= getattr(fqdn, metric)
            assert getattr(mirror, metric) >= getattr(default, metric)
            assert getattr(combined, metric) >= getattr(tld, metric)
            assert getattr(combined, metric) >= getattr(mirror, metric)
            assert getattr(migration, metric) >= getattr(combined, metric)

    def test_redirection_has_real_potential(self, analyzer, tracking):
        """The paper's core what-if finding: TLD redirection adds
        substantially to national confinement."""
        default = analyzer.evaluate(tracking, LocalizationScenario.DEFAULT)
        tld = analyzer.evaluate(tracking, LocalizationScenario.REDIRECT_TLD)
        assert tld.country_pct - default.country_pct > 5.0

    def test_scenario_table_order(self, analyzer, tracking):
        outcomes = analyzer.scenario_table(tracking)
        assert [o.scenario for o in outcomes] == [
            LocalizationScenario.DEFAULT,
            LocalizationScenario.REDIRECT_FQDN,
            LocalizationScenario.REDIRECT_TLD,
            LocalizationScenario.POP_MIRRORING,
            LocalizationScenario.REDIRECT_TLD_PLUS_MIRRORING,
        ]
        assert all(o.n_flows == outcomes[0].n_flows for o in outcomes)

    def test_improvement_over(self, analyzer, tracking):
        outcomes = analyzer.scenario_table(tracking)
        d_country, d_region = outcomes[2].improvement_over(outcomes[0])
        assert d_country >= 0 and d_region >= 0


class TestObservedMaps:
    def test_fqdn_subset_of_tld(self, analyzer, small_study_module):
        from repro.web.requests import tld1_of

        for record in small_study_module.inventory.records()[:200]:
            for fqdn in record.fqdns:
                assert analyzer.observed_fqdn_countries(fqdn) <= (
                    analyzer.observed_tld_countries(tld1_of(fqdn))
                )

    def test_unknown_fqdn_empty(self, analyzer):
        assert analyzer.observed_fqdn_countries("nope.example") == set()

    def test_mirrored_superset_of_observed(self, analyzer, small_study_module):
        from repro.web.requests import tld1_of

        tlds = {
            tld1_of(f)
            for r in small_study_module.inventory.records()[:100]
            for f in r.fqdns
        }
        for tld in tlds:
            assert analyzer.observed_tld_countries(tld) <= (
                analyzer.mirrored_countries(tld)
            )

    def test_cloud_tenancy_detected(self, analyzer, small_study_module):
        """At least some tracking TLDs are detected as cloud tenants via
        their published-range IPs."""
        from repro.web.requests import tld1_of

        tlds = {
            tld1_of(f)
            for r in small_study_module.inventory.records()
            for f in r.fqdns
        }
        assert any(analyzer.cloud_tenancy(tld) for tld in tlds)


class TestPerCountry:
    def test_rows_have_expected_fields(self, analyzer, tracking):
        rows = analyzer.per_country_improvements(tracking)
        assert rows
        for row in rows:
            assert 0 <= row["mirroring_improvement_pct"] <= 100
            assert 0 <= row["migration_improvement_pct"] <= 100
            assert isinstance(row["cloud_coverage"], bool)

    def test_cyprus_gains_nothing_from_migration(self, analyzer, tracking):
        """Table 6: no public cloud covers Cyprus."""
        rows = {
            row["country"]: row
            for row in analyzer.per_country_improvements(tracking)
        }
        if "CY" in rows:
            assert rows["CY"]["cloud_coverage"] is False
            assert rows["CY"]["migration_improvement_pct"] == 0.0

    def test_small_covered_countries_gain_most(self, analyzer, tracking):
        """Table 6's shape: migration gains are largest where TLD
        redirection achieves least (DK/GR/RO-like countries)."""
        rows = analyzer.per_country_improvements(tracking)
        covered = [r for r in rows if r["cloud_coverage"]]
        assert covered
        top = covered[0]
        assert top["migration_improvement_pct"] >= (
            covered[-1]["migration_improvement_pct"]
        )
