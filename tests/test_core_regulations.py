"""Tests for the multi-regulation monitor."""

import pytest

from repro.core.regulations import (
    Regulation,
    RegulationMonitor,
    builtin_regulations,
)
from repro.netbase.addr import IPAddress
from repro.web.organizations import ServiceRole
from repro.web.requests import ThirdPartyRequest


def make_request(user_country, ip_text, first_party="site.example"):
    return ThirdPartyRequest(
        first_party=first_party,
        url="https://t.x.example/p?uid=1",
        referrer="https://site.example/",
        ip=IPAddress.parse(ip_text),
        user_id=1,
        user_country=user_country,
        day=1.0,
        https=True,
        truth_role=ServiceRole.COOKIE_SYNC,
        truth_org="org",
        truth_country="DE",
        chain_depth=1,
    )


LOCATIONS = {"1.0.0.1": "DE", "1.0.0.2": "US", "1.0.0.3": None}


def locate(ip):
    return LOCATIONS.get(str(ip))


class TestRegulation:
    def test_protected_origins_default_to_jurisdiction(self):
        regulation = Regulation("X", jurisdiction=frozenset({"DE"}))
        assert regulation.protected_origins() == frozenset({"DE"})

    def test_builtins_include_gdpr(self):
        names = {r.name for r in builtin_regulations()}
        assert "GDPR" in names
        gdpr = next(r for r in builtin_regulations() if r.name == "GDPR")
        assert len(gdpr.jurisdiction) == 28
        assert "GB" in gdpr.jurisdiction


class TestRegulationMonitor:
    def test_jurisdiction_confinement(self):
        monitor = RegulationMonitor(locate)
        regulation = Regulation("DE-law", jurisdiction=frozenset({"DE"}))
        requests = [
            make_request("DE", "1.0.0.1"),   # in scope, inside
            make_request("DE", "1.0.0.2"),   # in scope, outside
            make_request("FR", "1.0.0.1"),   # out of scope (origin)
        ]
        report = monitor.evaluate(requests, regulation)
        assert report.in_scope_flows == 2
        assert report.inside_jurisdiction == 1
        assert report.confinement_pct == pytest.approx(50.0)

    def test_unknown_destinations_counted(self):
        monitor = RegulationMonitor(locate)
        regulation = Regulation("DE-law", jurisdiction=frozenset({"DE"}))
        report = monitor.evaluate([make_request("DE", "1.0.0.3")], regulation)
        assert report.unknown_destination == 1
        assert report.confinement_pct == 0.0

    def test_category_scope_requires_sensitive_study(self):
        monitor = RegulationMonitor(locate, sensitive=None)
        scoped = Regulation(
            "scoped",
            jurisdiction=frozenset({"DE"}),
            category_scope=frozenset({"health"}),
        )
        report = monitor.evaluate([make_request("DE", "1.0.0.1")], scoped)
        assert report.in_scope_flows == 0

    def test_investigable_threshold(self):
        monitor = RegulationMonitor(locate)
        regulation = Regulation("DE-law", jurisdiction=frozenset({"DE"}))
        confident = monitor.evaluate(
            [make_request("DE", "1.0.0.1")] * 3, regulation
        )
        assert confident.investigable

    def test_on_study(self, small_study):
        monitor = RegulationMonitor(
            small_study.geolocation.reference,
            sensitive=small_study.sensitive,
            registry=small_study.world.registry,
        )
        reports = monitor.evaluate_all(small_study.tracking_requests())
        assert set(reports) == {
            "GDPR", "BDSG (DE national scope)",
            "COPPA-like (children, US)", "Health-records (EU28)",
        }
        gdpr = reports["GDPR"]
        assert gdpr.in_scope_flows > 0
        # The paper's headline: GDPR-scoped flows are largely confined.
        assert gdpr.confinement_pct > 70.0
        # The national scope is far narrower than the EU-wide one.
        national = reports["BDSG (DE national scope)"]
        if national.in_scope_flows:
            assert national.confinement_pct < gdpr.confinement_pct
