"""Integration tests for :class:`repro.serve.StudyServer` over real HTTP.

One server on an ephemeral port, shared module-wide; the engine is
stubbed (fast, deterministic — see ``test_serve_jobs``) but everything
above it is real: the hand-rolled HTTP parser over a live socket, the
router, the SSE stream, the ledger handlers against a real ledger
file, the request log.  The full engine-under-the-service contract is
``make serve-smoke``.
"""

from __future__ import annotations

import http.client
import json
import threading

import pytest

from repro.obs import (
    LEDGER_SCHEMA,
    PROMETHEUS_CONTENT_TYPE,
    append_record,
    ledger_path,
    parse_prometheus_text,
    validate_speedscope,
)
from repro.serve import StudyServer, decode_events


class FakeRun:
    def __init__(self, hits, misses, ledger_record):
        self.cache_hits = hits
        self.cache_misses = misses
        self.ledger_record = ledger_record

    def table2_counts(self):
        return {"total": {"total_requests": 25825}}

    def eu28_destination_regions(self):
        return {"EU 28": 91.9}


def run_payload(config):
    """A minimal valid ledger payload mirroring what the engine appends."""
    return {
        "schema": LEDGER_SCHEMA,
        "kind": "run",
        "config": {"digest": config.digest(), "seed": config.seed},
        "workers": 1,
        "salts": {"panel": "s-panel"},
        "footprints": {"panel": "f-panel"},
        "stages": [{
            "stage": "panel",
            "shards": 1,
            "cache_hits": 0,
            "cache_misses": 1,
            "wall_s": 0.5,
            "cpu_s": 0.5,
            "metric_keys": ["web.requests{stage=panel}"],
        }],
        "metrics": {
            "web.requests{stage=panel}": {"kind": "counter", "value": 25825},
        },
        "world_build_s": 0.1,
    }


@pytest.fixture(scope="module")
def server(tmp_path_factory):
    cache_dir = str(tmp_path_factory.mktemp("serve-cache"))
    log_path = str(tmp_path_factory.mktemp("serve-log") / "log.jsonl")
    seen = set()

    def fake_run_study(config, workers=1, cache_dir=None, tracer=None):
        # Real ledger semantics: every run appends one record, exactly
        # like the engine — the /runs handlers read the real file.
        with tracer.span("stage:fake"):
            pass
        warm = config.digest() in seen
        seen.add(config.digest())
        record = append_record(ledger_path(cache_dir), run_payload(config))
        return FakeRun(
            hits=1 if warm else 0,
            misses=0 if warm else 1,
            ledger_record=record,
        )

    mp = pytest.MonkeyPatch()
    mp.setattr("repro.runtime.facade.run_study", fake_run_study)
    server = StudyServer(
        cache_dir=cache_dir, port=0, workers=1, log_path=log_path
    )
    ready = threading.Event()
    thread = threading.Thread(
        target=server.run,
        kwargs={"on_ready": lambda _server: ready.set()},
        daemon=True,
    )
    thread.start()
    assert ready.wait(timeout=30), "server did not become ready"
    try:
        yield server
    finally:
        server.request_stop()
        thread.join(timeout=30)
        assert not thread.is_alive(), "server did not shut down"
        mp.undo()


def request(server, method, path, body=None):
    conn = http.client.HTTPConnection("127.0.0.1", server.port, timeout=30)
    try:
        headers = {"Content-Type": "application/json"} if body else {}
        conn.request(method, path, body=body, headers=headers)
        response = conn.getresponse()
        return response.status, response.read().decode("utf-8")
    finally:
        conn.close()


def submit_and_finish(server, body):
    status, text = request(server, "POST", "/studies", json.dumps(body))
    assert status == 202, text
    job = json.loads(text)
    assert job["schema"] == "repro.serve/job/v1"
    # The SSE stream blocks until the job is terminal, so reading it to
    # EOF doubles as the completion wait.
    status, raw = request(server, "GET", f"/studies/{job['job_id']}/events")
    assert status == 200
    return job, decode_events(raw)


class TestService:
    def test_healthz(self, server):
        status, text = request(server, "GET", "/healthz")
        assert status == 200
        payload = json.loads(text)
        assert payload["status"] == "ok"
        assert payload["cache_dir"] == server.cache_dir

    def test_unknown_route_404_and_wrong_method_405(self, server):
        assert request(server, "GET", "/nope")[0] == 404
        assert request(server, "POST", "/healthz")[0] == 405

    def test_malformed_submission_is_400(self, server):
        assert request(server, "POST", "/studies", "{broken")[0] == 400
        status, text = request(
            server, "POST", "/studies", json.dumps({"preset": "gigantic"})
        )
        assert status == 400
        assert "unknown preset" in json.loads(text)["error"]

    def test_unknown_job_is_404(self, server):
        assert request(server, "GET", "/studies/zzz")[0] == 404
        assert request(server, "GET", "/studies/zzz/events")[0] == 404

    def test_cold_warm_cycle_end_to_end(self, server):
        cold_job, cold_events = submit_and_finish(server, {"preset": "small"})
        warm_job, warm_events = submit_and_finish(server, {"preset": "small"})

        assert cold_events[0]["event"] == "job:queued"
        assert cold_events[-1]["event"] == "job:done"
        assert cold_events[-1]["data"]["state"] == "done"
        assert warm_events[-1]["data"]["warm_hit_rate"] == 1.0
        assert (
            cold_events[-1]["data"]["headline"]
            == warm_events[-1]["data"]["headline"]
        )

        # Job documents reflect the terminal state and the result.
        status, text = request(server, "GET", f"/studies/{warm_job['job_id']}")
        assert status == 200
        document = json.loads(text)
        assert document["state"] == "done"
        assert document["result"]["warm_hit_rate"] == 1.0

        # The listing carries both, oldest first.
        status, text = request(server, "GET", "/studies")
        jobs = json.loads(text)["jobs"]
        assert [j["job_id"] for j in jobs[:2]] == [
            cold_job["job_id"], warm_job["job_id"],
        ]

        # /metrics aggregates the same story.
        status, text = request(server, "GET", "/metrics")
        metrics = json.loads(text)
        assert metrics["warm_hit_rate"] == 1.0
        assert metrics["jobs"]["failed"] == 0

        # Both runs appended real ledger records, servable over HTTP.
        status, text = request(server, "GET", "/runs")
        assert status == 200
        runs = json.loads(text)["runs"]
        assert [r["seq"] for r in runs] == list(range(len(runs)))

        status, text = request(server, "GET", "/runs/latest")
        assert status == 200
        assert json.loads(text)["kind"] == "run"

        status, text = request(server, "GET", "/runs/0/diff/1")
        assert status == 200
        diff = json.loads(text)
        assert diff["schema"] == "repro.obs/diff/v1"
        assert diff["unexplained"] == []

        status, text = request(
            server, "PUT", "/baseline", json.dumps({"selector": "0"})
        )
        assert status == 200
        assert json.loads(text)["seq"] == 0
        status, text = request(server, "GET", "/runs/baseline")
        assert json.loads(text)["seq"] == 0

    def test_unresolvable_selector_is_404(self, server):
        submit_and_finish(server, {"preset": "small"})
        assert request(server, "GET", "/runs/zzzzzz")[0] == 404

    def test_check_without_budgets_is_400(self, server):
        submit_and_finish(server, {"preset": "small"})
        status, text = request(server, "GET", "/runs/latest/check")
        assert status == 400
        assert "budgets" in json.loads(text)["error"]

    def test_request_log_records_routes_not_just_paths(self, server):
        import time

        request(server, "GET", "/healthz")
        # The log line lands after the response bytes the client waits
        # on, so poll briefly rather than race the server's append.
        deadline = time.monotonic() + 10
        healthz = []
        while not healthz and time.monotonic() < deadline:
            with open(server.log_path, "r", encoding="utf-8") as handle:
                entries = [
                    json.loads(line) for line in handle if line.strip()
                ]
            healthz = [
                e for e in entries
                if e["path"] == "/healthz" and e["method"] == "GET"
            ]
            if not healthz:
                time.sleep(0.05)
        assert healthz, "GET /healthz never reached the request log"
        assert healthz[-1] == {
            "method": "GET", "path": "/healthz",
            "route": "/healthz", "status": 200,
        }


def request_with_headers(server, path, headers=None):
    """Like :func:`request`, but with request headers and the response
    Content-Type returned."""
    conn = http.client.HTTPConnection("127.0.0.1", server.port, timeout=30)
    try:
        conn.request("GET", path, headers=headers or {})
        response = conn.getresponse()
        return (
            response.status,
            response.getheader("Content-Type"),
            response.read().decode("utf-8"),
        )
    finally:
        conn.close()


class TestMetricsNegotiationAndProfile:
    def test_metrics_default_is_json(self, server):
        status, content_type, text = request_with_headers(server, "/metrics")
        assert status == 200
        assert content_type.startswith("application/json")
        assert "metrics" in json.loads(text)

    def test_metrics_format_prometheus(self, server):
        status, content_type, text = request_with_headers(
            server, "/metrics?format=prometheus"
        )
        assert status == 200
        assert content_type.startswith(PROMETHEUS_CONTENT_TYPE)
        samples = parse_prometheus_text(text)
        assert any(
            series.startswith("serve_http_requests") for series in samples
        )

    def test_metrics_accept_header_negotiates_prometheus(self, server):
        status, content_type, text = request_with_headers(
            server, "/metrics", headers={"Accept": "text/plain"}
        )
        assert status == 200
        assert content_type.startswith(PROMETHEUS_CONTENT_TYPE)
        parse_prometheus_text(text)
        # An explicit format wins over Accept.
        status, content_type, _ = request_with_headers(
            server, "/metrics?format=json", headers={"Accept": "text/plain"}
        )
        assert content_type.startswith("application/json")

    def test_metrics_unknown_format_is_400(self, server):
        status, _, text = request_with_headers(server, "/metrics?format=xml")
        assert status == 400
        assert "format" in json.loads(text)["error"]

    def test_profile_returns_valid_speedscope(self, server):
        status, content_type, text = request_with_headers(
            server, "/profile?seconds=0.2&hz=200"
        )
        assert status == 200
        assert content_type.startswith("application/json")
        document = json.loads(text)
        validate_speedscope(document)
        # The server sampled *itself*: its own serve loop is on a stack.
        frames = {
            frame["file"] for frame in document["shared"]["frames"]
        }
        assert any("repro/serve" in file for file in frames)

    @pytest.mark.parametrize("query", [
        "seconds=0", "seconds=31", "seconds=abc", "hz=0", "hz=20000",
    ])
    def test_profile_bounds_are_400(self, server, query):
        status, _, text = request_with_headers(server, f"/profile?{query}")
        assert status == 400, text
