"""Tests for the browsing simulation: RTB chains, the browser extension
simulator, and the filter lists."""

import random

import pytest

from repro.errors import ClassificationError
from repro.web.filterlists import FilterList, FilterRule, RuleAction
from repro.web.organizations import OrgKind, ServiceRole
from repro.web.requests import (
        build_url,
    tld1_of,
    url_args,
    url_fqdn,
    url_has_args)
from repro.web.rtb import RTBEngine, TRACKING_KEYWORDS


class TestRequestHelpers:
    def test_tld1(self):
        assert tld1_of("a.b.example.com") == "example.com"
        assert tld1_of("example.com") == "example.com"
        with pytest.raises(ClassificationError):
            tld1_of("nodots")

    def test_build_url_sorted_args(self):
        url = build_url("x.example", "p", {"b": "2", "a": "1"})
        assert url == "https://x.example/p?a=1&b=2"

    def test_build_url_http(self):
        assert build_url("x.example", "/p", None, https=False).startswith(
            "http://"
        )

    def test_url_fqdn(self):
        assert url_fqdn("https://x.example/p?a=1") == "x.example"
        with pytest.raises(ClassificationError):
            url_fqdn("not-a-url")

    def test_url_has_args(self):
        assert url_has_args("https://x.example/p?a=1")
        assert not url_has_args("https://x.example/p")

    def test_url_args(self):
        assert url_args("https://x.example/p?a=1&b=2") == {"a": "1", "b": "2"}


class TestRTBEngine:
    @pytest.fixture()
    def engine(self, small_world):
        return RTBEngine(
            small_world.fleet,
            small_world.config.browsing,
            small_world.streams.spawn("test-rtb"),
        )

    def _publisher(self, small_world, sensitive=None):
        candidates = [
            p
            for p in small_world.publishers
            if p.sensitive_category == sensitive
        ]
        return candidates[0]

    def test_chain_starts_with_initial_ad_call(self, small_world, engine):
        publisher = self._publisher(small_world)
        chain = engine.ad_slot_chain(
            publisher, publisher.ad_partners[0], "u001", random.Random(0)
        )
        assert chain[0].fqdn == publisher.ad_partners[0]
        assert chain[0].parent is None

    def test_chain_parents_are_earlier_requests(self, small_world, engine):
        publisher = self._publisher(small_world)
        rng = random.Random(1)
        for _ in range(20):
            chain = engine.ad_slot_chain(
                publisher, publisher.ad_partners[0], "u001", rng
            )
            for index, spec in enumerate(chain):
                if spec.parent is not None:
                    assert 0 <= spec.parent < index

    def test_descendants_carry_identifier_args(self, small_world, engine):
        publisher = self._publisher(small_world)
        rng = random.Random(2)
        sync_specs = []
        for _ in range(30):
            chain = engine.ad_slot_chain(
                publisher, publisher.ad_partners[0], "u007", rng
            )
            sync_specs.extend(
                s for s in chain if s.role is ServiceRole.COOKIE_SYNC
            )
        assert sync_specs
        assert all("uid" in spec.args for spec in sync_specs)

    def test_some_sync_paths_carry_keywords(self, small_world, engine):
        publisher = self._publisher(small_world)
        rng = random.Random(3)
        paths = []
        for _ in range(50):
            chain = engine.ad_slot_chain(
                publisher, publisher.ad_partners[0], "u007", rng
            )
            paths.extend(
                s.path for s in chain if s.role is ServiceRole.COOKIE_SYNC
            )
        keyword_hits = sum(
            1
            for path in paths
            if any(k in path for k in TRACKING_KEYWORDS)
        )
        assert 0 < keyword_hits < len(paths)  # some but not all

    def test_local_affinity_prefers_local_trackers(self, small_world, engine):
        """German publishers' matching traffic leans on German-homed
        organizations more than Cypriot publishers' does."""
        fleet = small_world.fleet
        assert engine.local_share("DE") > engine.local_share("CY")

    def test_analytics_request_shape(self, small_world, engine):
        publisher = self._publisher(small_world)
        spec = engine.analytics_request(
            publisher.analytics_partners[0], "u001", random.Random(0)
        )
        assert spec.role in (
            ServiceRole.ANALYTICS_TAG, ServiceRole.TRACKING_PIXEL,
        )
        assert spec.parent is None
        assert "uid" in spec.args

    def test_clean_request_mostly_argless(self, small_world, engine):
        publisher = self._publisher(small_world)
        rng = random.Random(4)
        specs = [
            engine.clean_request(publisher.clean_partners[0], rng)
            for _ in range(100)
        ]
        argless = sum(1 for s in specs if not s.args)
        assert argless > 60


class TestVisitLog:
    def test_table1_statistics_consistent(self, small_study):
        log = small_study.visit_log
        assert log.n_users() == len(small_study.world.users)
        assert log.first_party_requests() == len(log.visits)
        assert log.third_party_requests() == len(log.requests)
        assert 0 < log.first_party_domains() <= len(
            small_study.world.publishers
        )

    def test_https_share_near_config(self, small_study):
        assert abs(small_study.visit_log.https_share() - 0.834) < 0.03

    def test_requests_reference_real_servers(self, small_study):
        fleet = small_study.world.fleet
        for request in small_study.visit_log.requests[:300]:
            server = fleet.server_for_ip(request.ip)
            assert server is not None
            assert server.country == request.truth_country
            # truth_org is the FQDN owner; the serving server may belong
            # to a shared sync hub operated by an ad exchange.
            assert fleet.fqdn(request.fqdn).org_name == request.truth_org
            assert server in fleet.fqdn(request.fqdn).service.endpoints

    def test_requests_within_panel_window(self, small_study):
        days = small_study.config.panel.days
        for request in small_study.visit_log.requests[:300]:
            assert 0.0 <= request.day <= days

    def test_referrers_are_first_party_or_chain_urls(self, small_study):
        log = small_study.visit_log
        urls = {r.url for r in log.requests}
        first_parties = {f"https://{v.publisher_domain}/" for v in log.visits}
        for request in log.requests[:500]:
            assert request.referrer in urls or request.referrer in first_parties

    def test_pdns_saw_every_panel_mapping(self, small_study):
        pdns = small_study.world.pdns
        for request in small_study.visit_log.requests[:200]:
            assert pdns.record(request.fqdn, request.ip) is not None

    def test_deterministic_rerun(self, small_config, small_study):
        """The same seed reproduces the identical panel log."""
        from repro import Study

        other = Study(small_config)
        first = small_study.visit_log
        second = other.visit_log
        assert first.third_party_requests() == second.third_party_requests()
        assert first.requests[0] == second.requests[0]
        assert first.requests[-1] == second.requests[-1]


class TestFilterRules:
    def test_parse_anchor(self):
        rule = FilterRule.parse("||tracker.example^$third-party")
        assert rule.anchor_domain == "tracker.example"
        assert rule.third_party_only

    def test_parse_substring(self):
        rule = FilterRule.parse("/cookiesync.")
        assert rule.substring == "/cookiesync."

    def test_parse_exception(self):
        rule = FilterRule.parse("@@||good.example^")
        assert rule.action is RuleAction.ALLOW

    def test_parse_rejects_comment(self):
        with pytest.raises(ClassificationError):
            FilterRule.parse("! comment")

    def test_parse_rejects_unknown_option(self):
        with pytest.raises(ClassificationError):
            FilterRule.parse("||x.example^$popup")

    def test_resource_type_options_tolerated(self):
        rule = FilterRule.parse("||x.example^$image,third-party")
        assert rule.anchor_domain == "x.example"

    def test_anchor_matches_subdomains_only_at_boundaries(self):
        rule = FilterRule.parse("||ads.example^")
        assert rule.matches("https://ads.example/x", "ads.example")
        assert rule.matches("https://sub.ads.example/x", "sub.ads.example")
        assert not rule.matches("https://badads.example/x", "badads.example")


class TestFilterList:
    def _list(self):
        filter_list = FilterList("test")
        filter_list.add_lines(
            [
                "! easylist-style comment",
                "",
                "||ads.example^",
                "/adserve/",
                "@@||ads.example^$third-party",
            ]
        )
        return filter_list

    def test_exception_overrides_block(self):
        filter_list = self._list()
        assert not filter_list.matches("https://ads.example/x", "ads.example")

    def test_substring_match(self):
        filter_list = self._list()
        assert filter_list.matches(
            "https://other.example/adserve/banner", "other.example"
        )

    def test_len_counts_rules(self):
        assert len(self._list()) == 3

    def test_anchor_domains_listing(self):
        assert self._list().anchor_domains() == ["ads.example"]

    def test_generated_lists_cover_hyperscalers(self, small_world):
        hyper_domains = [
            d
            for o in small_world.organizations
            if o.kind is OrgKind.HYPERSCALER
            for d in o.domains
        ]
        covered = set(small_world.easylist.anchor_domains())
        assert all(domain in covered for domain in hyper_domains)

    def test_generated_lists_undercover_dmps(self, small_world):
        """The curation gap: DMP domains are mostly absent from the lists."""
        dmp_domains = [
            d
            for o in small_world.organizations
            if o.kind is OrgKind.DMP
            for d in o.domains
        ]
        covered = set(small_world.easyprivacy.anchor_domains()) | set(
            small_world.easylist.anchor_domains()
        )
        uncovered_share = sum(
            1 for d in dmp_domains if d not in covered
        ) / len(dmp_domains)
        assert uncovered_share > 0.6

    def test_clean_orgs_never_listed(self, small_world):
        clean_domains = {
            d
            for o in small_world.organizations
            if o.kind is OrgKind.CLEAN
            for d in o.domains
        }
        covered = set(small_world.easylist.anchor_domains()) | set(
            small_world.easyprivacy.anchor_domains()
        )
        assert not clean_domains & covered
