"""Unit tests for :mod:`repro.obs` — clocks, spans, metrics, manifests.

Everything here runs against deterministic clocks and hand-built
registries; the integration with the runtime engine is locked separately
in ``test_runtime_determinism.py``.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.errors import ObservabilityError, ReproError
from repro.obs import (
    MANIFEST_SCHEMA,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullClock,
    NullTracer,
    SystemClock,
    TickClock,
    Tracer,
    collecting,
    current_tracer,
    inc,
    load_manifest,
    observe,
    set_gauge,
    tracing,
    validate_manifest,
    write_manifest,
)
from repro.obs.metrics import base_name, metric_key


class TestClocks:
    def test_null_clock_reads_zero(self):
        clock = NullClock()
        assert clock.wall() == 0.0 and clock.cpu() == 0.0

    def test_system_clock_is_monotonic(self):
        clock = SystemClock()
        a, b = clock.wall(), clock.wall()
        assert b >= a
        assert clock.cpu() >= 0.0

    def test_tick_clock_advances_per_read(self):
        clock = TickClock(step=0.5)
        assert clock.wall() == 0.0
        assert clock.cpu() == 0.5
        assert clock.wall() == 1.0


class TestSpans:
    def test_nesting_parent_and_depth(self):
        tracer = Tracer(TickClock())
        with tracer.span("run"):
            with tracer.span("stage:panel", shard="users[0:8]"):
                pass
            with tracer.span("stage:classification"):
                with tracer.span("execute"):
                    pass
        names = [s.name for s in tracer.spans]
        assert names == [
            "run", "stage:panel", "stage:classification", "execute",
        ]
        run, panel, classification, execute = tracer.spans
        assert run.parent is None and run.depth == 0
        assert panel.parent == 0 and panel.depth == 1
        assert classification.parent == 0
        assert execute.parent == classification.index and execute.depth == 2
        assert panel.attrs == {"shard": "users[0:8]"}

    def test_tick_clock_durations_are_deterministic(self):
        tracer = Tracer(TickClock())
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        rows = tracer.rows()
        # Re-running the identical structure reproduces identical rows.
        tracer2 = Tracer(TickClock())
        with tracer2.span("outer"):
            with tracer2.span("inner"):
                pass
        assert rows == tracer2.rows()
        assert rows[0]["wall_s"] > rows[1]["wall_s"] > 0

    def test_exception_still_closes_span(self):
        tracer = Tracer(TickClock())
        with pytest.raises(ValueError):
            with tracer.span("doomed"):
                raise ValueError("boom")
        assert tracer.spans[0].wall_end > tracer.spans[0].wall_start

    def test_flame_report_shape(self):
        tracer = Tracer(TickClock())
        with tracer.span("run"):
            with tracer.span("stage:panel", shards=8):
                pass
        report = tracer.report()
        lines = report.splitlines()
        assert lines[0].startswith("run")
        assert lines[1].startswith("  stage:panel  shards=8")
        assert lines[0].rstrip().endswith("100.0%")

    def test_empty_tracer_report(self):
        assert Tracer(TickClock()).report() == "(no spans recorded)"

    def test_find(self):
        tracer = Tracer(TickClock())
        with tracer.span("a"):
            with tracer.span("b"):
                pass
        with tracer.span("a"):
            pass
        assert len(tracer.find("a")) == 2 and len(tracer.find("b")) == 1

    def test_null_tracer_records_nothing(self):
        tracer = NullTracer()
        with tracer.span("anything", key="value") as span:
            span.attrs["more"] = 1  # callers may write attrs freely
        assert tracer.rows() == []
        assert tracer.report() == "(tracing disabled)"
        assert not tracer.enabled

    def test_ambient_default_is_null(self):
        assert not current_tracer().enabled

    def test_ambient_install_and_restore(self):
        tracer = Tracer(TickClock())
        with tracing(tracer):
            assert current_tracer() is tracer
            with current_tracer().span("ambient"):
                pass
        assert not current_tracer().enabled
        assert tracer.spans[0].name == "ambient"


class TestInstruments:
    def test_counter_monotonic(self):
        counter = Counter()
        counter.inc()
        counter.inc(4)
        assert counter.value == 5
        with pytest.raises(ObservabilityError):
            counter.inc(-1)

    def test_gauge_merges_by_max(self):
        low, high = Gauge(), Gauge()
        low.set(2)
        high.set(9)
        low.merge(high)
        assert low.value == 9

    def test_histogram_buckets_and_stats(self):
        histogram = Histogram(buckets=(1.0, 2.0))
        for value in (0.5, 1.5, 99.0):
            histogram.observe(value)
        assert histogram.counts == [1, 1, 1]
        assert histogram.count == 3
        assert histogram.min == 0.5 and histogram.max == 99.0
        assert histogram.mean == pytest.approx(101.0 / 3)

    def test_histogram_rejects_bad_bounds(self):
        with pytest.raises(ObservabilityError):
            Histogram(buckets=(2.0, 1.0))
        with pytest.raises(ObservabilityError):
            Histogram(buckets=(1.0, 1.0))

    def test_histogram_merge_requires_equal_bounds(self):
        with pytest.raises(ObservabilityError):
            Histogram(buckets=(1.0,)).merge(Histogram(buckets=(2.0,)))

    def test_metric_key_sorts_labels(self):
        assert metric_key("x", {"b": 1, "a": 2}) == "x{a=2,b=1}"
        assert base_name("x{a=2,b=1}") == "x"
        assert base_name("plain") == "plain"
        with pytest.raises(ObservabilityError):
            metric_key("", {})

    def test_errors_are_repro_errors(self):
        assert issubclass(ObservabilityError, ReproError)


class TestRegistry:
    def build(self):
        registry = MetricsRegistry()
        registry.counter("flows", stage="list").inc(10)
        registry.counter("flows", stage="referrer").inc(3)
        registry.gauge("depth").set(4)
        registry.histogram("margin", buckets=(0.5, 0.9)).observe(0.95)
        return registry

    def test_round_trip(self):
        registry = self.build()
        snapshot = registry.to_dict()
        json.dumps(snapshot)  # must be JSON-able
        assert MetricsRegistry.from_dict(snapshot).to_dict() == snapshot

    def test_sum_counters_folds_labels(self):
        assert self.build().sum_counters("flows") == 13
        assert self.build().sum_counters("absent") == 0

    def test_merge_is_commutative(self):
        a, b = self.build(), MetricsRegistry()
        b.counter("flows", stage="list").inc(7)
        b.histogram("margin", buckets=(0.5, 0.9)).observe(0.2)
        ab = MetricsRegistry().merge(a).merge(b)
        ba = MetricsRegistry().merge(b).merge(a)
        assert ab.to_dict() == ba.to_dict()
        assert ab.sum_counters("flows") == 20

    def test_merge_accepts_snapshot_dicts(self):
        merged = MetricsRegistry().merge(self.build().to_dict())
        assert merged.to_dict() == self.build().to_dict()

    def test_kind_conflict_rejected(self):
        registry = self.build()
        with pytest.raises(ObservabilityError):
            registry.gauge("flows", stage="list")
        with pytest.raises(ObservabilityError):
            MetricsRegistry.from_dict(
                {"x": {"kind": "mystery", "value": 1}}
            )

    def test_value_accessor(self):
        registry = self.build()
        assert registry.value("flows", stage="list") == 10
        assert registry.value("nothing") == 0


class TestAmbientCollection:
    def test_helpers_are_noops_without_scope(self):
        # Must not raise, must not create hidden global state.
        inc("orphan")
        observe("orphan.h", 1.0)
        set_gauge("orphan.g", 2.0)

    def test_helpers_write_into_active_registry(self):
        registry = MetricsRegistry()
        with collecting(registry):
            inc("hits", 2, stage="panel")
            observe("margin", 0.75)
            set_gauge("level", 3)
        assert registry.value("hits", stage="panel") == 2
        assert registry.value("margin")["count"] == 1
        assert registry.value("level") == 3

    def test_scopes_nest_and_restore(self):
        outer, inner = MetricsRegistry(), MetricsRegistry()
        with collecting(outer):
            inc("n")
            with collecting(inner):
                inc("n")
            inc("n")
        assert outer.value("n") == 2 and inner.value("n") == 1


def minimal_manifest():
    return {
        "schema": MANIFEST_SCHEMA,
        "config": {"digest": "abc", "seed": 7},
        "workers": 2,
        "salts": {"panel": "f00"},
        "stages": [
            {
                "stage": "panel",
                "shards": 2,
                "shard_keys": ["users[0:1]", "users[1:2]"],
                "cache_hits": 1,
                "cache_misses": 1,
                "wall_s": 0.25,
                "records_in": {},
                "records_out": {"requests": 10},
            }
        ],
        "metrics": {},
        "spans": [],
        "seed_lineage": {"seed": 7, "streams": {"runtime:ipmap": 1}},
    }


class TestManifest:
    def test_valid_manifest_passes(self):
        validate_manifest(minimal_manifest())

    @pytest.mark.parametrize(
        "mutation",
        [
            lambda m: m.pop("spans"),
            lambda m: m.pop("seed_lineage"),
            lambda m: m.update(schema="repro.obs/manifest/v0"),
            lambda m: m.update(workers="four"),
            lambda m: m["stages"][0].pop("records_out"),
            lambda m: m["stages"][0].update(cache_hits=5),
            lambda m: m["config"].pop("digest"),
        ],
    )
    def test_broken_manifests_rejected(self, mutation):
        manifest = minimal_manifest()
        mutation(manifest)
        with pytest.raises(ObservabilityError):
            validate_manifest(manifest)

    def test_write_load_round_trip(self, tmp_path):
        path = tmp_path / "nested" / "manifest.json"
        write_manifest(minimal_manifest(), path)
        assert load_manifest(path) == minimal_manifest()
        # Atomic write leaves no temp droppings behind.
        assert os.listdir(path.parent) == ["manifest.json"]

    def test_write_rejects_invalid(self, tmp_path):
        broken = minimal_manifest()
        del broken["metrics"]
        target = tmp_path / "manifest.json"
        with pytest.raises(ObservabilityError):
            write_manifest(broken, target)
        assert not target.exists()

    def test_load_rejects_garbage(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        with pytest.raises(ObservabilityError):
            load_manifest(path)
        with pytest.raises(ObservabilityError):
            load_manifest(tmp_path / "absent.json")


class TestNamesCatalog:
    def test_every_declared_metric_is_indexed(self):
        from repro.obs import names

        assert set(names.METRICS) == {
            decl[0] for decl in names._METRIC_DECLS
        }

    def test_metric_labels_lookup(self):
        from repro.obs import names

        assert names.metric_labels(names.CLASSIFY_FLOWS) == ("stage",)
        assert names.metric_labels(names.IPMAP_CAMPAIGNS) == ()
        with pytest.raises(ObservabilityError):
            names.metric_labels("no.such.metric")

    def test_duplicate_metric_declaration_rejected(self, monkeypatch):
        from repro.obs import names

        decl = names._METRIC_DECLS[0]
        monkeypatch.setattr(
            names, "_METRIC_DECLS", names._METRIC_DECLS + (decl,)
        )
        with pytest.raises(ObservabilityError, match="duplicate metric"):
            names._build_index()

    def test_duplicate_span_declaration_rejected(self, monkeypatch):
        from repro.obs import names

        monkeypatch.setattr(
            names, "SPAN_NAMES", names.SPAN_NAMES + (names.SPAN_RUN,)
        )
        with pytest.raises(ObservabilityError, match="duplicate span"):
            names._build_index()

    def test_span_catalog_covers_engine_stage_family(self):
        from repro.obs import names

        assert "stage:*" in names.SPAN_NAMES


class TestHistogramQuantile:
    def test_empty_histogram_reports_zero(self):
        assert Histogram().quantile(0.5) == 0.0

    def test_out_of_range_q_rejected(self):
        histogram = Histogram()
        histogram.observe(1.0)
        with pytest.raises(ObservabilityError):
            histogram.quantile(-0.1)
        with pytest.raises(ObservabilityError):
            histogram.quantile(1.5)

    def test_single_sample_pins_every_quantile(self):
        histogram = Histogram()
        histogram.observe(0.4)
        for q in (0.0, 0.5, 1.0):
            assert histogram.quantile(q) == 0.4

    def test_uniform_samples_interpolate(self):
        histogram = Histogram(buckets=(1.0, 2.0, 3.0, 4.0))
        for value in (0.5, 1.5, 2.5, 3.5):
            histogram.observe(value)
        # Each bucket holds one sample; the median falls on the
        # boundary between the second and third buckets.
        assert histogram.quantile(0.5) == pytest.approx(2.0)
        assert histogram.quantile(0.25) == pytest.approx(1.0)

    def test_result_clamped_to_observed_range(self):
        histogram = Histogram(buckets=(10.0,))
        for value in (2.0, 3.0, 4.0):
            histogram.observe(value)
        assert histogram.quantile(0.0) >= histogram.min
        assert histogram.quantile(1.0) <= histogram.max

    def test_edges_tightened_by_min_max(self):
        # All samples land in the overflow bucket; without the recorded
        # max the upper edge would be unbounded.
        histogram = Histogram(buckets=(1.0,))
        for value in (5.0, 6.0, 7.0):
            histogram.observe(value)
        assert 5.0 <= histogram.quantile(0.5) <= 7.0

    def test_skewed_distribution_orders_quantiles(self):
        histogram = Histogram()
        for value in [0.05] * 90 + [5.0] * 10:
            histogram.observe(value)
        p50, p95 = histogram.quantile(0.5), histogram.quantile(0.95)
        assert p50 < 0.1 < p95

    def test_registry_histograms_accessor(self):
        registry = MetricsRegistry()
        registry.counter("hits").inc()
        registry.histogram("lat", stage="b").observe(1.0)
        registry.histogram("lat", stage="a").observe(2.0)
        keys = [key for key, _ in registry.histograms()]
        assert keys == ["lat{stage=a}", "lat{stage=b}"]  # sorted, no counter
