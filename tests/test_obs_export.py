"""Unit tests for :mod:`repro.obs.export` — Chrome trace-event export.

The exporter runs against deterministic :class:`TickClock` tracers, so
timestamps and durations are exact; the validator is additionally
exercised on hand-built documents the exporter would never emit (B/E
pairs, metadata events, broken orderings).
"""

from __future__ import annotations

import json

import pytest

from repro.errors import ObservabilityError
from repro.obs import (
    TRACE_EVENTS_SCHEMA,
    TickClock,
    Tracer,
    load_trace_events,
    trace_document,
    trace_events,
    validate_trace_events,
    write_trace_events,
)


def make_tracer():
    tracer = Tracer(TickClock(step=0.5))
    with tracer.span("run", digest="abc"):
        with tracer.span("stage:panel", shard="users[0:8]"):
            pass
        with tracer.span("stage:classification"):
            pass
    return tracer


class TestExport:
    def test_one_complete_event_per_span(self):
        tracer = make_tracer()
        events = trace_events(tracer.spans)
        assert [e["name"] for e in events] == [
            "run", "stage:panel", "stage:classification",
        ]
        assert all(e["ph"] == "X" for e in events)
        assert [e["cat"] for e in events] == ["run", "stage", "stage"]

    def test_timestamps_rebased_integer_microseconds(self):
        events = trace_events(make_tracer().spans)
        assert events[0]["ts"] == 0  # rebased to the first span's start
        for event in events:
            assert isinstance(event["ts"], int) and event["ts"] >= 0
            assert isinstance(event["dur"], int) and event["dur"] >= 0
        timestamps = [e["ts"] for e in events]
        assert timestamps == sorted(timestamps)

    def test_args_carry_attrs_depth_and_cpu(self):
        events = trace_events(make_tracer().spans)
        assert events[0]["args"]["digest"] == "abc"
        assert events[1]["args"]["shard"] == "users[0:8]"
        assert events[1]["args"]["depth"] == 1
        assert "cpu_ms" in events[0]["args"]

    def test_empty_tracer_exports_no_events(self):
        assert trace_events(Tracer(TickClock()).spans) == []

    def test_negative_duration_span_rejected(self):
        tracer = make_tracer()
        tracer.spans[1].wall_end = tracer.spans[1].wall_start - 1.0
        with pytest.raises(ObservabilityError):
            trace_events(tracer.spans)

    def test_document_schema_marker(self):
        document = trace_document(make_tracer().spans)
        assert document["otherData"]["schema"] == TRACE_EVENTS_SCHEMA
        assert document["displayTimeUnit"] == "ms"

    def test_write_load_round_trip(self, tmp_path):
        path = tmp_path / "events.json"
        count = write_trace_events(make_tracer().spans, path)
        assert count == 3
        payload = load_trace_events(path)
        assert len(payload["traceEvents"]) == 3
        # The written document is plain JSON any viewer can parse.
        assert json.loads(path.read_text())["traceEvents"]

    def test_load_rejects_garbage(self, tmp_path):
        path = tmp_path / "events.json"
        path.write_text("{not json")
        with pytest.raises(ObservabilityError):
            load_trace_events(path)
        with pytest.raises(ObservabilityError):
            load_trace_events(tmp_path / "absent.json")


def event(ph="X", ts=0, dur=1, name="s", pid=1, tid=1, **extra):
    payload = {"name": name, "ph": ph, "ts": ts, "pid": pid, "tid": tid}
    if ph == "X":
        payload["dur"] = dur
    payload.update(extra)
    return payload


class TestValidator:
    def test_array_form_is_legal(self):
        validate_trace_events([event(ts=0), event(ts=5)])

    def test_b_e_pairs_balance(self):
        validate_trace_events([
            {"name": "a", "ph": "B", "ts": 0, "pid": 1, "tid": 1},
            {"name": "b", "ph": "B", "ts": 1, "pid": 1, "tid": 1},
            {"name": "b", "ph": "E", "ts": 2, "pid": 1, "tid": 1},
            {"name": "a", "ph": "E", "ts": 3, "pid": 1, "tid": 1},
        ])

    def test_metadata_events_skip_timestamp_contract(self):
        validate_trace_events([
            {"name": "process_name", "ph": "M", "pid": 1},
            event(ts=0),
        ])

    @pytest.mark.parametrize(
        "payload,message",
        [
            (42, "object or array"),
            ({"displayTimeUnit": "ms"}, "traceEvents"),
            (["not-a-mapping"], "mapping"),
            ([event(ph="Q")], "phase"),
            ([event(ts=-1)], "non-negative integer 'ts'"),
            ([event(ts=1.5)], "non-negative integer 'ts'"),
            ([event(ts=True)], "non-negative integer 'ts'"),
            ([event(ts=10), event(ts=5)], "timestamp ordering"),
            ([event(dur=None)], "dur"),
            (
                [{"name": "a", "ph": "E", "ts": 0, "pid": 1, "tid": 1}],
                "no open 'B'",
            ),
            (
                [
                    {"name": "a", "ph": "B", "ts": 0, "pid": 1, "tid": 1},
                    {"name": "b", "ph": "E", "ts": 1, "pid": 1, "tid": 1},
                ],
                "does not match",
            ),
            (
                [{"name": "a", "ph": "B", "ts": 0, "pid": 1, "tid": 1}],
                "unbalanced",
            ),
        ],
    )
    def test_rejections(self, payload, message):
        with pytest.raises(ObservabilityError) as excinfo:
            validate_trace_events(payload)
        assert message in str(excinfo.value)

    def test_b_e_tracks_are_independent(self):
        # An E on one track must not close a B on another.
        with pytest.raises(ObservabilityError):
            validate_trace_events([
                {"name": "a", "ph": "B", "ts": 0, "pid": 1, "tid": 1},
                {"name": "a", "ph": "E", "ts": 1, "pid": 1, "tid": 2},
            ])
