"""Unit tests for :mod:`repro.obs.export` — Chrome trace-event export.

The exporter runs against deterministic :class:`TickClock` tracers, so
timestamps and durations are exact; the validator is additionally
exercised on hand-built documents the exporter would never emit (B/E
pairs, metadata events, broken orderings).
"""

from __future__ import annotations

import json

import pytest

from repro.errors import ObservabilityError
from repro.obs import (
    PROMETHEUS_CONTENT_TYPE,
    TRACE_EVENTS_SCHEMA,
    MetricsRegistry,
    TickClock,
    Tracer,
    load_trace_events,
    parse_prometheus_text,
    prometheus_text,
    trace_document,
    trace_events,
    validate_trace_events,
    write_trace_events,
)


def make_tracer():
    tracer = Tracer(TickClock(step=0.5))
    with tracer.span("run", digest="abc"):
        with tracer.span("stage:panel", shard="users[0:8]"):
            pass
        with tracer.span("stage:classification"):
            pass
    return tracer


class TestExport:
    def test_one_complete_event_per_span(self):
        tracer = make_tracer()
        events = trace_events(tracer.spans)
        assert [e["name"] for e in events] == [
            "run", "stage:panel", "stage:classification",
        ]
        assert all(e["ph"] == "X" for e in events)
        assert [e["cat"] for e in events] == ["run", "stage", "stage"]

    def test_timestamps_rebased_integer_microseconds(self):
        events = trace_events(make_tracer().spans)
        assert events[0]["ts"] == 0  # rebased to the first span's start
        for event in events:
            assert isinstance(event["ts"], int) and event["ts"] >= 0
            assert isinstance(event["dur"], int) and event["dur"] >= 0
        timestamps = [e["ts"] for e in events]
        assert timestamps == sorted(timestamps)

    def test_args_carry_attrs_depth_and_cpu(self):
        events = trace_events(make_tracer().spans)
        assert events[0]["args"]["digest"] == "abc"
        assert events[1]["args"]["shard"] == "users[0:8]"
        assert events[1]["args"]["depth"] == 1
        assert "cpu_ms" in events[0]["args"]

    def test_empty_tracer_exports_no_events(self):
        assert trace_events(Tracer(TickClock()).spans) == []

    def test_negative_duration_span_rejected(self):
        tracer = make_tracer()
        tracer.spans[1].wall_end = tracer.spans[1].wall_start - 1.0
        with pytest.raises(ObservabilityError):
            trace_events(tracer.spans)

    def test_document_schema_marker(self):
        document = trace_document(make_tracer().spans)
        assert document["otherData"]["schema"] == TRACE_EVENTS_SCHEMA
        assert document["displayTimeUnit"] == "ms"

    def test_write_load_round_trip(self, tmp_path):
        path = tmp_path / "events.json"
        count = write_trace_events(make_tracer().spans, path)
        assert count == 3
        payload = load_trace_events(path)
        assert len(payload["traceEvents"]) == 3
        # The written document is plain JSON any viewer can parse.
        assert json.loads(path.read_text())["traceEvents"]

    def test_load_rejects_garbage(self, tmp_path):
        path = tmp_path / "events.json"
        path.write_text("{not json")
        with pytest.raises(ObservabilityError):
            load_trace_events(path)
        with pytest.raises(ObservabilityError):
            load_trace_events(tmp_path / "absent.json")


def event(ph="X", ts=0, dur=1, name="s", pid=1, tid=1, **extra):
    payload = {"name": name, "ph": ph, "ts": ts, "pid": pid, "tid": tid}
    if ph == "X":
        payload["dur"] = dur
    payload.update(extra)
    return payload


class TestValidator:
    def test_array_form_is_legal(self):
        validate_trace_events([event(ts=0), event(ts=5)])

    def test_b_e_pairs_balance(self):
        validate_trace_events([
            {"name": "a", "ph": "B", "ts": 0, "pid": 1, "tid": 1},
            {"name": "b", "ph": "B", "ts": 1, "pid": 1, "tid": 1},
            {"name": "b", "ph": "E", "ts": 2, "pid": 1, "tid": 1},
            {"name": "a", "ph": "E", "ts": 3, "pid": 1, "tid": 1},
        ])

    def test_metadata_events_skip_timestamp_contract(self):
        validate_trace_events([
            {"name": "process_name", "ph": "M", "pid": 1},
            event(ts=0),
        ])

    @pytest.mark.parametrize(
        "payload,message",
        [
            (42, "object or array"),
            ({"displayTimeUnit": "ms"}, "traceEvents"),
            (["not-a-mapping"], "mapping"),
            ([event(ph="Q")], "phase"),
            ([event(ts=-1)], "non-negative integer 'ts'"),
            ([event(ts=1.5)], "non-negative integer 'ts'"),
            ([event(ts=True)], "non-negative integer 'ts'"),
            ([event(ts=10), event(ts=5)], "timestamp ordering"),
            ([event(dur=None)], "dur"),
            (
                [{"name": "a", "ph": "E", "ts": 0, "pid": 1, "tid": 1}],
                "no open 'B'",
            ),
            (
                [
                    {"name": "a", "ph": "B", "ts": 0, "pid": 1, "tid": 1},
                    {"name": "b", "ph": "E", "ts": 1, "pid": 1, "tid": 1},
                ],
                "does not match",
            ),
            (
                [{"name": "a", "ph": "B", "ts": 0, "pid": 1, "tid": 1}],
                "unbalanced",
            ),
        ],
    )
    def test_rejections(self, payload, message):
        with pytest.raises(ObservabilityError) as excinfo:
            validate_trace_events(payload)
        assert message in str(excinfo.value)

    def test_b_e_tracks_are_independent(self):
        # An E on one track must not close a B on another.
        with pytest.raises(ObservabilityError):
            validate_trace_events([
                {"name": "a", "ph": "B", "ts": 0, "pid": 1, "tid": 1},
                {"name": "a", "ph": "E", "ts": 1, "pid": 1, "tid": 2},
            ])


class TestWorkerTracks:
    def make_stitched_tracer(self):
        """A tracer whose later spans carry grafted worker identities."""
        tracer = make_tracer()
        tracer.spans[1].pid, tracer.spans[1].tid = 4001, 11
        tracer.spans[2].pid, tracer.spans[2].tid = 4002, 12
        return tracer

    def test_stamped_spans_keep_their_own_tracks(self):
        events = trace_events(self.make_stitched_tracer().spans)
        by_name = {
            event["name"]: event for event in events if event["ph"] == "X"
        }
        assert by_name["run"]["pid"] == 1 and by_name["run"]["tid"] == 1
        assert by_name["stage:panel"]["pid"] == 4001
        assert by_name["stage:panel"]["tid"] == 11
        assert by_name["stage:classification"]["pid"] == 4002

    def test_multi_pid_traces_lead_with_process_name_metadata(self):
        events = trace_events(self.make_stitched_tracer().spans)
        metadata = [event for event in events if event["ph"] == "M"]
        assert [event["name"] for event in metadata] == ["process_name"] * 3
        labels = {
            event["pid"]: event["args"]["name"] for event in metadata
        }
        assert labels == {
            1: "engine", 4001: "worker 4001", 4002: "worker 4002",
        }
        assert events[: len(metadata)] == metadata  # metadata leads

    def test_single_track_traces_carry_no_metadata(self):
        events = trace_events(make_tracer().spans)
        assert all(event["ph"] == "X" for event in events)

    def test_stitched_document_validates(self):
        validate_trace_events(trace_document(self.make_stitched_tracer().spans))

    def test_validator_orders_timestamps_per_track_not_globally(self):
        # Interleaved tracks each restart at ts 0 — legal.
        validate_trace_events([
            {"name": "a", "ph": "X", "ts": 50, "dur": 1, "pid": 1, "tid": 1},
            {"name": "b", "ph": "X", "ts": 0, "dur": 1, "pid": 2, "tid": 1},
            {"name": "c", "ph": "X", "ts": 60, "dur": 1, "pid": 1, "tid": 1},
            {"name": "d", "ph": "X", "ts": 5, "dur": 1, "pid": 2, "tid": 1},
        ])
        # ...but a regression *within* one track is not.
        with pytest.raises(ObservabilityError, match="on track"):
            validate_trace_events([
                {"name": "a", "ph": "X", "ts": 9, "dur": 1, "pid": 2, "tid": 1},
                {"name": "b", "ph": "X", "ts": 8, "dur": 1, "pid": 2, "tid": 1},
            ])


class TestPrometheus:
    def build_registry(self):
        registry = MetricsRegistry()
        registry.counter("classify.flows", stage="list").inc(10)
        registry.counter("classify.flows", stage="none").inc(3)
        registry.gauge("serve.warm_hit_rate").set(0.5)
        registry.histogram(
            "ipmap.country_agreement", buckets=(0.5, 0.9)
        ).observe(0.95)
        return registry

    def test_content_type_is_the_prometheus_text_version(self):
        assert PROMETHEUS_CONTENT_TYPE == "text/plain; version=0.0.4"

    def test_counters_and_gauges_round_trip(self):
        text = prometheus_text(self.build_registry().to_dict())
        samples = parse_prometheus_text(text)
        assert samples['classify_flows{stage="list"}'] == 10.0
        assert samples['classify_flows{stage="none"}'] == 3.0
        assert samples["serve_warm_hit_rate"] == 0.5

    def test_histograms_expand_cumulatively(self):
        text = prometheus_text(self.build_registry().to_dict())
        samples = parse_prometheus_text(text)
        assert samples['ipmap_country_agreement_bucket{le="0.5"}'] == 0.0
        assert samples['ipmap_country_agreement_bucket{le="0.9"}'] == 0.0
        assert samples['ipmap_country_agreement_bucket{le="+Inf"}'] == 1.0
        assert samples["ipmap_country_agreement_sum"] == 0.95
        assert samples["ipmap_country_agreement_count"] == 1.0

    def test_type_lines_and_catalog_help(self):
        lines = prometheus_text(self.build_registry().to_dict()).splitlines()
        assert "# TYPE classify_flows counter" in lines
        assert "# TYPE serve_warm_hit_rate gauge" in lines
        assert "# TYPE ipmap_country_agreement histogram" in lines
        # Catalog-declared metrics carry their description as HELP.
        assert any(
            line.startswith("# HELP classify_flows ") for line in lines
        )

    def test_empty_snapshot_is_empty_text(self):
        assert prometheus_text({}) == ""
        assert parse_prometheus_text("") == {}

    def test_unknown_kind_rejected(self):
        with pytest.raises(ObservabilityError, match="unknown kind"):
            prometheus_text({"x": {"kind": "meter", "value": 1}})

    def test_parser_rejects_non_numeric_values(self):
        with pytest.raises(ObservabilityError, match="non-numeric"):
            parse_prometheus_text("metric abc")
