"""Unit tests for the whole-program model (repro.lint.program).

Fixture trees are synthetic packages written to tmp_path; every test
builds a real :class:`ProgramModel` from the filesystem, so the module
index, import resolution, call graph, reachability and footprint logic
are exercised end to end.
"""

from __future__ import annotations

import textwrap
from pathlib import Path
from typing import Dict

from repro.lint.program import (
    ProgramModel,
    node_source,
    resolve_relative_import,
)


def build_model(tmp_path: Path, files: Dict[str, str]) -> ProgramModel:
    """Write ``files`` (relpath -> source) and model the tree."""
    for relpath, source in files.items():
        path = tmp_path / relpath
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source))
        parent = path.parent
        while parent != tmp_path.parent and parent != parent.parent:
            init = parent / "__init__.py"
            if parent == tmp_path:
                break
            if not init.exists():
                init.write_text("")
            parent = parent.parent
    return ProgramModel.from_paths([tmp_path], root=tmp_path)


# ---------------------------------------------------------------------------
# import resolution
# ---------------------------------------------------------------------------


def test_resolve_relative_import_module_and_package():
    assert resolve_relative_import("pkg.sub.mod", False, 1, "other") == (
        "pkg.sub.other"
    )
    assert resolve_relative_import("pkg.sub.mod", False, 2, "x") == "pkg.x"
    # a package counts as its own base: `from . import x` in
    # pkg/sub/__init__.py is pkg.sub.x
    assert resolve_relative_import("pkg.sub", True, 1, "x") == "pkg.sub.x"
    # over-deep relativity degrades to None, never raises
    assert resolve_relative_import("pkg", False, 5, "x") is None


def test_relative_imports_resolve_to_edges(tmp_path):
    model = build_model(tmp_path, {
        "pkg/a.py": """
            from . import b
            from .sub import c
        """,
        "pkg/b.py": "X = 1\n",
        "pkg/sub/c.py": "Y = 2\n",
    })
    info = model.modules["pkg.a"]
    assert "pkg.b" in info.imports_toplevel
    assert "pkg.sub.c" in info.imports_toplevel


def test_from_import_alias_binds_origin_symbol(tmp_path):
    model = build_model(tmp_path, {
        "pkg/helpers.py": """
            def work():
                return 1
        """,
        "pkg/main.py": """
            from pkg.helpers import work as w

            def caller():
                return w()
        """,
    })
    fn = model.function(("pkg.main", "caller"))
    callees = [c.callee for c in fn.calls]
    assert callees[0].kind == "function"
    assert (callees[0].module, callees[0].qualname) == ("pkg.helpers", "work")


def test_import_cycle_does_not_hang(tmp_path):
    model = build_model(tmp_path, {
        "pkg/a.py": """
            import pkg.b

            def fa():
                return pkg.b.fb()
        """,
        "pkg/b.py": """
            import pkg.a

            def fb():
                return pkg.a.fa()
        """,
    })
    reached, unresolved = model.transitive_imports("pkg.a")
    assert "pkg.b" in reached
    assert not unresolved
    # the call graph closure over the cycle terminates too
    reach = model.reachable([("pkg.a", "fa")])
    assert ("pkg.b", "fb") in reach.functions
    assert ("pkg.a", "fa") in reach.functions


def test_missing_repro_import_is_recorded(tmp_path):
    model = build_model(tmp_path, {
        "pkg/a.py": """
            from repro.nowhere import thing
        """,
    })
    assert "repro.nowhere" in model.modules["pkg.a"].missing_imports


# ---------------------------------------------------------------------------
# call resolution
# ---------------------------------------------------------------------------


def test_module_attr_call_resolves(tmp_path):
    model = build_model(tmp_path, {
        "pkg/util.py": """
            def helper():
                return 1
        """,
        "pkg/main.py": """
            from pkg import util

            def go():
                return util.helper()
        """,
    })
    fn = model.function(("pkg.main", "go"))
    callee = fn.calls[0].callee
    assert callee.kind == "function"
    assert (callee.module, callee.qualname) == ("pkg.util", "helper")


def test_constructed_local_method_dispatch(tmp_path):
    model = build_model(tmp_path, {
        "pkg/svc.py": """
            class Service:
                def ping(self):
                    return self.pong()

                def pong(self):
                    return 1
        """,
        "pkg/main.py": """
            from pkg.svc import Service

            def go():
                s = Service()
                return s.ping()
        """,
    })
    fn = model.function(("pkg.main", "go"))
    kinds = {(c.callee.kind, c.callee.qualname) for c in fn.calls}
    assert ("class", "Service") in kinds
    assert ("function", "Service.ping") in kinds
    # self.pong() inside ping resolves through self-dispatch
    ping = model.function(("pkg.svc", "Service.ping"))
    assert ping.calls[0].callee.qualname == "Service.pong"


def test_return_annotation_infers_local_type(tmp_path):
    model = build_model(tmp_path, {
        "pkg/svc.py": """
            class Engine:
                def start(self):
                    return 1

            def make_engine() -> Engine:
                return Engine()
        """,
        "pkg/main.py": """
            from pkg.svc import make_engine

            def go():
                engine = make_engine()
                return engine.start()
        """,
    })
    fn = model.function(("pkg.main", "go"))
    resolved = {c.callee.qualname for c in fn.calls}
    assert "Engine.start" in resolved


def test_base_class_method_lookup(tmp_path):
    model = build_model(tmp_path, {
        "pkg/svc.py": """
            class Base:
                def shared(self):
                    return 1

            class Child(Base):
                def own(self):
                    return self.shared()
        """,
    })
    own = model.function(("pkg.svc", "Child.own"))
    callee = own.calls[0].callee
    assert callee.kind == "function"
    assert callee.qualname == "Base.shared"


def test_dynamic_calls_degrade_to_unknown(tmp_path):
    model = build_model(tmp_path, {
        "pkg/main.py": """
            def go(factory, table):
                factory()()
                table["key"]()
                x = unknown_name
                return x.method()
        """,
    })
    fn = model.function(("pkg.main", "go"))
    assert fn.calls, "calls must still be recorded"
    assert {c.callee.kind for c in fn.calls} == {"unknown"}


def test_reached_class_reaches_all_methods(tmp_path):
    model = build_model(tmp_path, {
        "pkg/svc.py": """
            class Thing:
                def a(self):
                    return 1

                def b(self):
                    return 2
        """,
        "pkg/main.py": """
            from pkg.svc import Thing

            def go():
                return Thing()
        """,
    })
    reach = model.reachable([("pkg.main", "go")])
    qualnames = {qualname for _, qualname in reach.functions}
    # constructing Thing conservatively reaches every method
    assert {"Thing.a", "Thing.b"} <= qualnames
    assert ("pkg.svc", "Thing") in reach.classes


def test_reachability_parents_give_path(tmp_path):
    model = build_model(tmp_path, {
        "pkg/main.py": """
            def a():
                return b()

            def b():
                return c()

            def c():
                return 1
        """,
    })
    reach = model.reachable([("pkg.main", "a")])
    assert reach.path_to(("pkg.main", "c")) == ["a", "b", "c"]


# ---------------------------------------------------------------------------
# footprints
# ---------------------------------------------------------------------------


def _stage_tree() -> Dict[str, str]:
    return {
        "pkg/stages.py": """
            from pkg import work

            def plan(world, products):
                return [("s0", None)]

            def run(world, products, payload):
                return work.crunch()

            def merge(world, products, shards):
                return shards

            def unrelated():
                return 0
        """,
        "pkg/work.py": """
            from pkg import deep

            def crunch():
                return deep.core()
        """,
        "pkg/deep.py": """
            def core():
                return 1
        """,
        "pkg/island.py": """
            def lonely():
                return 2
        """,
    }


def test_footprint_covers_transitive_modules(tmp_path):
    model = build_model(tmp_path, _stage_tree())
    seeds = [("pkg.stages", "plan"), ("pkg.stages", "run"),
             ("pkg.stages", "merge")]
    fp = model.footprint(seeds)
    assert fp.stage_modules == ("pkg.stages",)
    assert "pkg.work" in fp.modules
    assert "pkg.deep" in fp.modules  # via pkg.work's import closure
    assert "pkg.island" not in fp.modules
    assert not fp.missing


def test_footprint_changes_on_cross_module_helper_edit(tmp_path):
    files = _stage_tree()
    before = build_model(tmp_path / "v1", files)
    files["pkg/deep.py"] = """
        def core():
            return 99  # changed helper body
    """
    after = build_model(tmp_path / "v2", files)
    seeds = [("pkg.stages", "run")]
    assert before.footprint(seeds).salt != after.footprint(seeds).salt


def test_footprint_ignores_unrelated_sibling_edit(tmp_path):
    files = _stage_tree()
    before = build_model(tmp_path / "v1", files)
    files["pkg/stages.py"] = files["pkg/stages.py"].replace(
        "return 0", "return 123"
    )
    after = build_model(tmp_path / "v2", files)
    seeds = [("pkg.stages", "plan"), ("pkg.stages", "run"),
             ("pkg.stages", "merge")]
    # `unrelated` is in the stage module but not reachable from the
    # seeds: per-definition granularity keeps the salt stable.
    assert before.footprint(seeds).salt == after.footprint(seeds).salt


def test_footprint_exempt_pragma(tmp_path):
    files = _stage_tree()
    files["pkg/stages.py"] = files["pkg/stages.py"].replace(
        "from pkg import work",
        "from pkg import work  # reprolint: footprint-exempt",
    )
    model = build_model(tmp_path, files)
    fp = model.footprint([("pkg.stages", "run")])
    assert "pkg.work" in fp.exempted
    assert "pkg.work" not in fp.modules


def test_footprint_reports_missing_repro_modules(tmp_path):
    model = build_model(tmp_path, {
        "pkg/stages.py": """
            import repro.not_there

            def run(world, products, payload):
                return repro.not_there.helper()
        """,
    })
    fp = model.footprint([("pkg.stages", "run")])
    assert any("repro.not_there" in name for name in fp.missing)


# ---------------------------------------------------------------------------
# stage discovery / constants / export
# ---------------------------------------------------------------------------


def test_discover_stages_resolves_seeds_and_version(tmp_path):
    model = build_model(tmp_path, {
        "pkg/graph.py": """
            class StageSpec:
                def __init__(self, **kw):
                    pass
        """,
        "pkg/stages.py": """
            from pkg.graph import StageSpec

            def _plan(world, products):
                return []

            def _run(world, products, payload):
                return None

            def _merge(world, products, shards):
                return None

            SPEC = StageSpec(
                name="alpha", version="3", plan=_plan, run=_run,
                merge=_merge,
            )
            BAD = StageSpec(
                name="beta", plan=lambda w, p: [], run=_run, merge=_merge,
            )
        """,
    })
    decls = {decl.name: decl for decl in model.discover_stages()}
    alpha = decls["alpha"]
    assert alpha.version == "3" and alpha.version_explicit
    assert set(alpha.seeds) == {"plan", "run", "merge"}
    assert alpha.seeds["run"] == ("pkg.stages", "_run")
    beta = decls["beta"]
    assert not beta.version_explicit and beta.version == "1"
    assert [role for role, _ in beta.unresolved] == ["plan"]


def test_resolve_string_through_constants(tmp_path):
    import ast

    model = build_model(tmp_path, {
        "pkg/names.py": 'NAME = "metric.one"\n',
        "pkg/main.py": """
            from pkg import names
            from pkg.names import NAME as LOCAL
        """,
    })
    info = model.modules["pkg.main"]
    attr = ast.parse("names.NAME", mode="eval").body
    assert model.resolve_string(info, attr) == "metric.one"
    name = ast.parse("LOCAL", mode="eval").body
    assert model.resolve_string(info, name) == "metric.one"
    dynamic = ast.parse("some_variable", mode="eval").body
    assert model.resolve_string(info, dynamic) is None


def test_static_prefix_of_fstring():
    import ast

    literal = ast.parse('"stage:fixed"', mode="eval").body
    assert ProgramModel.static_prefix(literal) == "stage:fixed"
    joined = ast.parse('f"stage:{name}"', mode="eval").body
    assert ProgramModel.static_prefix(joined) == "stage:"
    call = ast.parse("make_name()", mode="eval").body
    assert ProgramModel.static_prefix(call) is None


def test_node_source_slices_definition(tmp_path):
    model = build_model(tmp_path, {
        "pkg/mod.py": """
            import functools

            @functools.lru_cache()
            def decorated():
                return 1
        """,
    })
    fn = model.function(("pkg.mod", "decorated"))
    assert fn.source.startswith("@functools.lru_cache()")
    assert fn.source.rstrip().endswith("return 1")


def test_graph_json_shape(tmp_path):
    model = build_model(tmp_path, _stage_tree())
    graph = model.graph_json()
    assert graph["schema"] == "repro.lint/program-graph/v1"
    assert "pkg.stages" in graph["modules"]
    assert "pkg.work" in graph["modules"]["pkg.stages"]["imports"]
    run_calls = graph["functions"]["pkg.stages:run"]["calls"]
    assert any(
        call["kind"] == "function" and call["target"] == "pkg.work:crunch"
        for call in run_calls
    )
