"""Tests for repro.util.sankey."""

import pytest
from hypothesis import given, strategies as st

from repro.util.sankey import Sankey


class TestSankey:
    def test_empty(self):
        sankey = Sankey()
        assert sankey.total == 0
        assert sankey.origins() == []
        assert sankey.origin_shares("x") == {}
        assert sankey.destination_shares() == {}

    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError):
            Sankey().add("a", "b", -1.0)

    def test_accumulation(self):
        sankey = Sankey()
        sankey.add("EU", "EU", 3)
        sankey.add("EU", "NA")
        sankey.add("EU", "EU", 1)
        assert sankey.edge("EU", "EU") == 4
        assert sankey.origin_total("EU") == 5

    def test_origin_shares_sum_to_100(self):
        sankey = Sankey()
        sankey.add("EU", "EU", 17)
        sankey.add("EU", "NA", 3)
        shares = sankey.origin_shares("EU")
        assert sum(shares.values()) == pytest.approx(100.0)
        assert shares["EU"] == pytest.approx(85.0)

    def test_confinement(self):
        sankey = Sankey()
        sankey.add("EU", "EU", 9)
        sankey.add("EU", "NA", 1)
        assert sankey.confinement("EU") == pytest.approx(90.0)
        assert sankey.confinement("NA") == 0.0

    def test_destination_shares(self):
        sankey = Sankey()
        sankey.add("a", "x", 1)
        sankey.add("b", "x", 1)
        sankey.add("b", "y", 2)
        shares = sankey.destination_shares()
        assert shares["x"] == pytest.approx(50.0)
        assert shares["y"] == pytest.approx(50.0)

    def test_top_destinations_ordering(self):
        sankey = Sankey()
        sankey.add("o", "big", 10)
        sankey.add("o", "small", 1)
        sankey.add("o", "mid", 5)
        top = sankey.top_destinations("o", 2)
        assert [d for d, _ in top] == ["big", "mid"]

    def test_top_destinations_tie_breaks_alphabetical(self):
        sankey = Sankey()
        sankey.add("o", "b", 1)
        sankey.add("o", "a", 1)
        assert [d for d, _ in sankey.top_destinations("o", 2)] == ["a", "b"]

    def test_merge(self):
        first = Sankey()
        first.add("a", "b", 1)
        second = Sankey()
        second.add("a", "b", 2)
        second.add("x", "y", 1)
        first.merge(second)
        assert first.edge("a", "b") == 3
        assert first.edge("x", "y") == 1

    def test_rows_sorted(self):
        sankey = Sankey()
        sankey.add("b", "z", 1)
        sankey.add("a", "z", 1)
        assert sankey.rows() == [("a", "z", 1.0), ("b", "z", 1.0)]


@given(
    st.lists(
        st.tuples(
            st.sampled_from(["a", "b", "c"]),
            st.sampled_from(["x", "y", "z"]),
            st.floats(min_value=0, max_value=1000),
        ),
        max_size=60,
    )
)
def test_flow_conservation_property(edges):
    """Total inflow equals total outflow equals the grand total."""
    sankey = Sankey()
    for origin, destination, weight in edges:
        sankey.add(origin, destination, weight)
    out_total = sum(sankey.origin_total(o) for o in sankey.origins())
    in_total = sum(sankey.destination_total(d) for d in sankey.destinations())
    assert out_total == pytest.approx(sankey.total)
    assert in_total == pytest.approx(sankey.total)
