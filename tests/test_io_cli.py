"""Tests for repro.io serialization and the CLI."""

import json

import pytest

from repro.cli import build_parser, main
from repro.errors import ReproError
from repro.io import (
    inventory_from_json,
    inventory_to_json,
    requests_from_jsonl,
    requests_to_jsonl,
    sankey_to_csv,
    summary_to_json,
)
from repro.util.sankey import Sankey


class TestRequestLogRoundtrip:
    def test_roundtrip_lossless(self, small_study, tmp_path):
        requests = small_study.visit_log.requests[:200]
        path = tmp_path / "requests.jsonl"
        count = requests_to_jsonl(requests, path)
        assert count == 200
        loaded = requests_from_jsonl(path)
        assert loaded == requests

    def test_blank_lines_skipped(self, small_study, tmp_path):
        requests = small_study.visit_log.requests[:3]
        path = tmp_path / "requests.jsonl"
        requests_to_jsonl(requests, path)
        path.write_text(path.read_text() + "\n\n")
        assert len(requests_from_jsonl(path)) == 3

    def test_malformed_record_reports_line(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"first_party": "x"}\n')
        with pytest.raises(ReproError, match="bad.jsonl:1"):
            requests_from_jsonl(path)


class TestInventoryRoundtrip:
    def test_roundtrip(self, small_study, tmp_path):
        inventory = small_study.inventory
        path = tmp_path / "inventory.json"
        inventory_to_json(inventory, path)
        loaded = inventory_from_json(path)
        assert len(loaded) == len(inventory)
        assert loaded.addresses() == inventory.addresses()
        original = inventory.records()[0]
        copy = loaded.record(original.address)
        assert copy.fqdns == original.fqdns
        assert copy.window == original.window
        assert copy.domains_behind == original.domains_behind
        assert loaded.additional_share_pct() == pytest.approx(
            inventory.additional_share_pct()
        )

    def test_version_check(self, tmp_path):
        path = tmp_path / "inventory.json"
        path.write_text(json.dumps({"format_version": 99, "records": []}))
        with pytest.raises(ReproError, match="unsupported"):
            inventory_from_json(path)


class TestOtherWriters:
    def test_sankey_csv(self, tmp_path):
        sankey = Sankey()
        sankey.add("EU 28", "EU 28", 9)
        sankey.add("EU 28", "N. America", 1)
        path = tmp_path / "sankey.csv"
        assert sankey_to_csv(sankey, path) == 2
        lines = path.read_text().strip().splitlines()
        assert lines[0] == "origin,destination,weight"
        assert len(lines) == 3

    def test_summary_json(self, tmp_path):
        path = tmp_path / "summary.json"
        summary_to_json({"b": 2.0, "a": 1.0}, path)
        assert json.loads(path.read_text()) == {"a": 1.0, "b": 2.0}


class TestCLI:
    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_table_command(self, capsys):
        assert main(["--preset", "small", "table", "1"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "350" not in out  # small preset has 40 users

    def test_figure_command(self, capsys):
        assert main(["--preset", "small", "figure", "7"]) == 0
        assert "RIPE IPmap" in capsys.readouterr().out

    def test_world_command(self, capsys):
        assert main(["--preset", "small", "world"]) == 0
        out = capsys.readouterr().out
        assert "panel users:     40" in out

    def test_seed_override(self, capsys):
        assert main(["--preset", "small", "--seed", "99", "world"]) == 0
        assert "seed:            99" in capsys.readouterr().out

    def test_export_command(self, tmp_path, capsys):
        target = tmp_path / "out"
        assert main(["--preset", "small", "export", str(target)]) == 0
        assert (target / "requests.jsonl").exists()
        assert (target / "tracker_ips.json").exists()
        assert (target / "continent_sankey.csv").exists()
        assert (target / "summary.json").exists()

    def test_invalid_table_number(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table", "42"])

    def test_run_command_flags_exist(self, tmp_path):
        # The flags the runtime/observability docs advertise must parse —
        # this is the docs-drift tripwire for `repro run`.
        args = build_parser().parse_args([
            "--preset", "small", "run",
            "--workers", "4",
            "--cache-dir", str(tmp_path / "cache"),
            "--metrics-out", str(tmp_path / "metrics.json"),
            "--trace", str(tmp_path / "trace.json"),
            "--trace-events", str(tmp_path / "events.json"),
            "--json",
        ])
        assert args.workers == 4
        assert args.trace == tmp_path / "trace.json"
        assert args.trace_events == tmp_path / "events.json"
        assert args.cache_dir == tmp_path / "cache"

    def test_obs_subcommands_parse(self, tmp_path):
        # The `repro obs` family the ledger docs advertise (docs/ledger.md).
        parser = build_parser()
        args = parser.parse_args(["obs", "list"])
        assert args.obs_command == "list"
        args = parser.parse_args(["obs", "show"])
        assert args.selector == "latest"
        args = parser.parse_args([
            "obs", "--cache-dir", str(tmp_path),
            "diff", "baseline", "latest",
            "--json", "--out", str(tmp_path / "diff.json"),
        ])
        assert (args.run_a, args.run_b) == ("baseline", "latest")
        args = parser.parse_args([
            "obs", "--ledger", str(tmp_path / "ledger.jsonl"),
            "check", "--budgets", str(tmp_path / "budgets.json"),
        ])
        assert args.run == "latest"
        args = parser.parse_args(["obs", "baseline", "latest~1"])
        assert args.selector == "latest~1"

    def test_profile_flags_and_subcommand_parse(self, tmp_path):
        # The profiling surface docs/observability.md advertises.
        args = build_parser().parse_args([
            "--preset", "small", "run",
            "--profile", str(tmp_path / "profile.json"),
            "--profile-hz", "200",
            "--profile-report", str(tmp_path / "report.json"),
        ])
        assert args.profile == tmp_path / "profile.json"
        assert args.profile_hz == 200.0
        assert args.profile_report == tmp_path / "report.json"
        args = build_parser().parse_args([
            "obs", "profile", str(tmp_path / "profile.json"), "--top", "3",
        ])
        assert args.obs_command == "profile"
        assert args.top == 3 and not args.flame
        args = build_parser().parse_args([
            "obs", "profile", str(tmp_path / "profile.json"), "--flame",
        ])
        assert args.flame

    def test_obs_profile_missing_file_degrades_gracefully(
        self, tmp_path, capsys
    ):
        status = main(["obs", "profile", str(tmp_path / "absent.json")])
        assert status == 1
        assert capsys.readouterr().err.startswith("repro obs:")

    def test_serve_command_flags_exist(self, tmp_path):
        # The flags the service docs advertise must parse — the
        # docs-drift tripwire for `repro serve` (docs/service.md).
        args = build_parser().parse_args([
            "serve",
            "--host", "0.0.0.0",
            "--port", "0",
            "--cache-dir", str(tmp_path / "cache"),
            "--workers", "4",
            "--jobs", "2",
            "--queue-limit", "16",
            "--budgets", str(tmp_path / "budgets.json"),
            "--log", str(tmp_path / "server-log.jsonl"),
        ])
        assert args.command == "serve"
        assert (args.host, args.port) == ("0.0.0.0", 0)
        assert args.cache_dir == tmp_path / "cache"
        assert (args.workers, args.jobs, args.queue_limit) == (4, 2, 16)
        assert args.budgets == tmp_path / "budgets.json"
        assert args.log == tmp_path / "server-log.jsonl"

    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.port == 8377
        assert args.host == "127.0.0.1"
        assert (args.workers, args.jobs, args.queue_limit) == (1, 1, 8)
        assert args.budgets is None and args.log is None

    def test_obs_missing_ledger_degrades_gracefully(self, tmp_path, capsys):
        # No traceback, exit code 1, a one-line friendly message.
        status = main([
            "obs", "--cache-dir", str(tmp_path / "absent"), "diff", "latest",
        ])
        assert status == 1
        captured = capsys.readouterr()
        assert captured.err.startswith("repro obs:")


class TestCLIReporting:
    def test_summary_command_outputs_json(self, capsys):
        from repro.cli import main

        assert main(["--preset", "small", "summary"]) == 0
        captured = capsys.readouterr()
        payload = json.loads(captured.out)
        assert "f7_ipmap_eu28_pct" in payload
        # The human-readable comparison goes to stderr.
        assert "paper" in captured.err

    def test_report_command_contains_all_artifacts(self, capsys):
        from repro.cli import main

        assert main(["--preset", "small", "report"]) == 0
        out = capsys.readouterr().out
        assert "Table 5" in out and "Figure 12" in out
