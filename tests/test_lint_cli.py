"""End-to-end tests for ``python -m repro.lint``: exit codes, reporters,
rule selection, and the baseline round-trip."""

from __future__ import annotations

import json
import textwrap
from pathlib import Path

import pytest

from repro.lint import load_baseline, partition, run_lint, write_baseline
from repro.lint.cli import main

DIRTY = textwrap.dedent(
    """
    import random

    x = random.random()

    def f(n):
        raise ValueError("bad")
    """
)

CLEAN = textwrap.dedent(
    """
    from repro.errors import ValidationError

    def f(n):
        if n < 0:
            raise ValidationError("bad")
        return n
    """
)


@pytest.fixture()
def project(tmp_path, monkeypatch):
    """A temp project dir the CLI runs inside (baseline paths are
    resolved relative to the cwd)."""
    monkeypatch.chdir(tmp_path)
    return tmp_path


def write(project: Path, relpath: str, source: str) -> Path:
    path = project / relpath
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(source)
    return path


def test_exit_zero_on_clean_tree(project, capsys):
    write(project, "pkg/clean.py", CLEAN)
    assert main(["pkg"]) == 0
    out = capsys.readouterr().out
    assert "0 finding(s)" in out


def test_exit_one_and_text_report_on_findings(project, capsys):
    write(project, "pkg/dirty.py", DIRTY)
    assert main(["pkg"]) == 1
    out = capsys.readouterr().out
    assert "pkg/dirty.py" in out
    assert "D101" in out and "E201" in out


def test_json_report(project, capsys):
    write(project, "pkg/dirty.py", DIRTY)
    assert main(["pkg", "--format", "json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["ok"] is False
    assert payload["files_checked"] == 1
    rules = {finding["rule"] for finding in payload["findings"]}
    assert {"D101", "E201"} <= rules


def test_select_restricts_rules(project, capsys):
    write(project, "pkg/dirty.py", DIRTY)
    assert main(["pkg", "--select", "E"]) == 1
    out = capsys.readouterr().out
    assert "E201" in out
    assert "D101" not in out


def test_select_unknown_rule_is_usage_error(project, capsys):
    write(project, "pkg/clean.py", CLEAN)
    assert main(["pkg", "--select", "Z999"]) == 2


def test_missing_path_is_usage_error(project):
    assert main(["no/such/dir"]) == 2


def test_list_rules(project, capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for code in ("D101", "D102", "D103", "D104", "D105", "E201", "E202", "E203", "A301", "A302"):
        assert code in out


def test_write_baseline_then_clean_exit(project, capsys):
    write(project, "pkg/dirty.py", DIRTY)
    assert main(["pkg", "--write-baseline"]) == 0
    assert (project / ".reprolint-baseline.json").exists()
    # Grandfathered findings no longer fail the run ...
    assert main(["pkg"]) == 0
    out = capsys.readouterr().out
    assert "baselined" in out
    # ... but --no-baseline still reports them.
    assert main(["pkg", "--no-baseline"]) == 1


def test_baseline_survives_line_shifts(project):
    path = write(project, "pkg/dirty.py", DIRTY)
    assert main(["pkg", "--write-baseline"]) == 0
    path.write_text("# a new leading comment\n" + path.read_text())
    assert main(["pkg"]) == 0


def test_new_finding_breaks_through_baseline(project, capsys):
    path = write(project, "pkg/dirty.py", DIRTY)
    assert main(["pkg", "--write-baseline"]) == 0
    path.write_text(DIRTY + "\ny = random.choice([1, 2])\n")
    assert main(["pkg"]) == 1
    out = capsys.readouterr().out
    assert "random.choice" in out


def test_stale_baseline_entries_reported(project, capsys):
    path = write(project, "pkg/dirty.py", DIRTY)
    assert main(["pkg", "--write-baseline"]) == 0
    path.write_text(CLEAN)
    assert main(["pkg"]) == 0
    out = capsys.readouterr().out
    assert "stale baseline entry" in out


def test_malformed_baseline_is_usage_error(project, capsys):
    write(project, "pkg/clean.py", CLEAN)
    (project / ".reprolint-baseline.json").write_text("{not json")
    assert main(["pkg"]) == 2
    assert "malformed baseline" in capsys.readouterr().err


def test_baseline_roundtrip_api(tmp_path):
    source_dir = tmp_path / "pkg"
    source_dir.mkdir()
    (source_dir / "dirty.py").write_text(DIRTY)
    findings = run_lint([source_dir], root=tmp_path).findings
    assert findings
    baseline_path = tmp_path / "baseline.json"
    write_baseline(baseline_path, findings)
    baseline = load_baseline(baseline_path)
    new, grandfathered, stale = partition(findings, baseline)
    assert new == []
    assert len(grandfathered) == len(findings)
    assert stale == []


def test_missing_baseline_file_is_empty(tmp_path):
    assert load_baseline(tmp_path / "absent.json") == {}


# ---------------------------------------------------------------------------
# --rule / --family / --graph-json
# ---------------------------------------------------------------------------


def test_rule_flag_restricts_to_single_code(project, capsys):
    write(project, "pkg/dirty.py", DIRTY)
    assert main(["pkg", "--rule", "E201", "--no-baseline"]) == 1
    out = capsys.readouterr().out
    assert "E201" in out
    assert "D101" not in out


def test_family_flag_selects_prefix(project, capsys):
    write(project, "pkg/dirty.py", DIRTY)
    assert main(["pkg", "--family", "D", "--no-baseline"]) == 1
    out = capsys.readouterr().out
    assert "D101" in out
    assert "E201" not in out


def test_rule_and_family_flags_combine(project, capsys):
    write(project, "pkg/dirty.py", DIRTY)
    assert main(["pkg", "--family", "D", "--rule", "E201",
                 "--no-baseline"]) == 1
    out = capsys.readouterr().out
    assert "D101" in out
    assert "E201" in out


def test_family_flag_unknown_prefix_is_usage_error(project, capsys):
    write(project, "pkg/dirty.py", DIRTY)
    assert main(["pkg", "--family", "Z9"]) == 2
    assert "no rules match" in capsys.readouterr().err


def test_graph_json_writes_program_graph(project, capsys):
    write(project, "pkg/__init__.py", "")
    write(project, "pkg/clean.py", CLEAN)
    assert main(["pkg", "--graph-json", "graph.json"]) == 0
    graph = json.loads((project / "graph.json").read_text())
    assert graph["schema"] == "repro.lint/program-graph/v1"
    assert "pkg.clean" in graph["modules"]
    assert "pkg.clean:f" in graph["functions"]


def test_graph_json_to_stdout(project, capsys):
    write(project, "pkg/__init__.py", "")
    write(project, "pkg/clean.py", CLEAN)
    assert main(["pkg", "--graph-json", "-"]) == 0
    out = capsys.readouterr().out
    payload = out[: out.rindex("}") + 1]
    start = payload.index("{")
    graph = json.loads(payload[start:])
    assert graph["schema"] == "repro.lint/program-graph/v1"


# ---------------------------------------------------------------------------
# --jobs / --dataflow-json / --update-baseline / time_s
# ---------------------------------------------------------------------------


def json_findings(project, argv, capsys):
    code = main(argv + ["--format", "json", "--no-baseline"])
    payload = json.loads(capsys.readouterr().out)
    return code, payload


def test_jobs_matches_serial_findings(project, capsys):
    write(project, "pkg/dirty.py", DIRTY)
    write(project, "pkg/other.py", DIRTY.replace("f(n)", "g(n)"))
    serial_code, serial = json_findings(project, ["pkg"], capsys)
    jobs_code, parallel = json_findings(
        project, ["pkg", "--jobs", "2"], capsys
    )
    assert serial_code == jobs_code == 1
    assert parallel["findings"] == serial["findings"]


def test_jobs_zero_means_cpu_count(project, capsys):
    write(project, "pkg/clean.py", CLEAN)
    assert main(["pkg", "--jobs", "0"]) == 0


def test_reports_carry_wall_time(project, capsys):
    write(project, "pkg/clean.py", CLEAN)
    assert main(["pkg", "--format", "json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert isinstance(payload["time_s"], float)
    assert payload["time_s"] >= 0.0
    assert main(["pkg"]) == 0
    assert " in " in capsys.readouterr().out


def test_dataflow_json_writes_report(project, capsys):
    write(project, "pkg/__init__.py", "")
    write(project, "pkg/clean.py", CLEAN)
    assert main(["pkg", "--dataflow-json", "dataflow.json"]) == 0
    report = json.loads((project / "dataflow.json").read_text())
    assert report["schema"] == "repro.lint/dataflow/v1"
    assert isinstance(report["time_s"], float)
    assert set(report["summary"]) >= {
        "modules", "functions", "entrypoints", "stages", "taints",
    }


def test_update_baseline_drops_stale_entries(project, capsys):
    path = write(project, "pkg/dirty.py", DIRTY)
    assert main(["pkg", "--write-baseline"]) == 0
    path.write_text(CLEAN)
    assert main(["pkg", "--update-baseline"]) == 0
    out = capsys.readouterr().out
    assert "dropped" in out
    # The rewritten baseline has no stale entries left to report.
    assert main(["pkg"]) == 0
    assert "stale baseline entry" not in capsys.readouterr().out


def test_update_baseline_does_not_absorb_new_findings(project, capsys):
    path = write(project, "pkg/dirty.py", DIRTY)
    assert main(["pkg", "--write-baseline"]) == 0
    path.write_text(DIRTY + "\ny = random.choice([1, 2])\n")
    assert main(["pkg", "--update-baseline"]) == 1
    # The new finding still fails the next plain run.
    assert main(["pkg"]) == 1


def test_update_baseline_on_clean_tree_writes_empty_baseline(project):
    path = write(project, "pkg/dirty.py", DIRTY)
    assert main(["pkg", "--write-baseline"]) == 0
    path.write_text(CLEAN)
    assert main(["pkg", "--update-baseline"]) == 0
    baseline = load_baseline(project / ".reprolint-baseline.json")
    assert baseline == {}


def test_update_baseline_conflicts_with_no_baseline(project, capsys):
    write(project, "pkg/clean.py", CLEAN)
    assert main(["pkg", "--update-baseline", "--no-baseline"]) == 2
    assert main(["pkg", "--update-baseline", "--write-baseline"]) == 2
