"""The interprocedural dataflow engine and the S/X/I rule families.

Engine tests build a :class:`ProgramModel` over small fixture trees and
probe the escape/lineage/I-O analyses directly; rule tests run the same
fixtures through the real lint framework; and two regression locks tie
the analysis to the shipped tree — a copied-tree test that plants a raw
``random.Random`` inside ``panel_run`` and demands an S701 finding with
a witness chain (mirroring the footprint-salt copied-tree test), and a
report tripwire that cross-checks the ``repro.lint/dataflow/v1``
document against the live CLI parser and the stage roster.
"""

from __future__ import annotations

import argparse
import shutil
import textwrap
from pathlib import Path
from typing import List, Optional, Sequence

from repro.lint import Finding, run_lint, select_rules
from repro.lint.dataflow import (
    DATAFLOW_SCHEMA,
    DataflowAnalysis,
    dataflow_for_model,
)
from repro.lint.program import ProgramModel
from repro.runtime.footprint import default_root, program_model
from repro.runtime.stages import STAGE_NAMES


def write_tree(tmp_path: Path, files) -> Path:
    """Write a {relpath: source} tree with ``__init__.py`` chains."""
    for relpath, source in files.items():
        path = tmp_path / relpath
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source))
        parent = path.parent
        while parent != tmp_path:
            init = parent / "__init__.py"
            if not init.exists():
                init.write_text("")
            parent = parent.parent
    return tmp_path


def analysis_for(tmp_path: Path, files) -> DataflowAnalysis:
    write_tree(tmp_path, files)
    model = ProgramModel.from_paths([tmp_path], root=tmp_path)
    return DataflowAnalysis(model)


def lint_tree(
    tmp_path: Path, files, select: Optional[Sequence[str]] = None
) -> List[Finding]:
    write_tree(tmp_path, files)
    rules = select_rules(select) if select else None
    return run_lint([tmp_path], rules=rules, root=tmp_path).findings


def codes(findings: Sequence[Finding]) -> List[str]:
    return [finding.rule for finding in findings]


# ---------------------------------------------------------------------------
# fixture building blocks
# ---------------------------------------------------------------------------

RNG_MODULE = {
    "pkg/util/rng.py": """
        import random

        def seeded_rng(seed, name):
            return random.Random((seed, name))

        def fixed_rng(seed=0):
            return random.Random(seed)
    """,
}


def stage_tree(helper_source: str, run_body: str = "helpers.crunch(payload)"):
    """A one-stage fixture whose ``run`` calls ``helpers.crunch``."""
    files = dict(RNG_MODULE)
    files["pkg/helpers.py"] = helper_source
    files["pkg/stages.py"] = f"""
        from pkg import helpers

        def _plan(world, products):
            return [("s0", None)]

        def _run(world, products, payload):
            return {run_body}

        def _merge(world, products, shards):
            return shards

        SPEC = StageSpec(
            name="alpha", plan=_plan, run=_run, merge=_merge,
        )
    """
    return files


# ---------------------------------------------------------------------------
# escape analysis (engine level)
# ---------------------------------------------------------------------------


def test_escape_set_subtracts_enclosing_handlers(tmp_path):
    df = analysis_for(tmp_path, {
        "pkg/mod.py": """
            def guarded():
                try:
                    raise ValueError("caught")
                except ValueError:
                    return None

            def unguarded():
                raise ValueError("free")

            def wrong_handler():
                try:
                    raise ValueError("still free")
                except KeyError:
                    return None
        """,
    })
    escapes = df.escapes()
    assert escapes[("pkg.mod", "guarded")] == {}
    assert set(escapes[("pkg.mod", "unguarded")]) == {"ValueError"}
    assert set(escapes[("pkg.mod", "wrong_handler")]) == {"ValueError"}


def test_escape_handler_body_and_finally_are_unprotected(tmp_path):
    df = analysis_for(tmp_path, {
        "pkg/mod.py": """
            def in_finally():
                try:
                    return 1
                except ValueError:
                    return 2
                finally:
                    raise ValueError("finally is outside the guard")
        """,
    })
    assert set(df.escapes()[("pkg.mod", "in_finally")]) == {"ValueError"}


def test_escape_propagates_along_the_call_graph(tmp_path):
    df = analysis_for(tmp_path, {
        "pkg/mod.py": """
            def leaf():
                raise KeyError("deep")

            def caller():
                return leaf()

            def catcher():
                try:
                    return leaf()
                except KeyError:
                    return None
        """,
    })
    escapes = df.escapes()
    origin = escapes[("pkg.mod", "caller")]["KeyError"]
    assert origin.kind == "call"
    assert origin.callee == ("pkg.mod", "leaf")
    assert escapes[("pkg.mod", "catcher")] == {}


def test_escape_base_class_handler_catches_subclass(tmp_path):
    df = analysis_for(tmp_path, {
        "pkg/mod.py": """
            def handled():
                try:
                    raise KeyError("lookup")
                except Exception:
                    return None
        """,
    })
    assert df.escapes()[("pkg.mod", "handled")] == {}


def test_escape_bare_reraise_escapes_the_caught_types(tmp_path):
    df = analysis_for(tmp_path, {
        "pkg/mod.py": """
            def reraises():
                try:
                    return 1
                except (OSError, KeyError):
                    raise
        """,
    })
    assert set(df.escapes()[("pkg.mod", "reraises")]) == {
        "OSError", "KeyError",
    }


def test_escape_control_exceptions_are_excluded(tmp_path):
    df = analysis_for(tmp_path, {
        "pkg/mod.py": """
            def exits():
                raise SystemExit(2)
        """,
    })
    assert df.escapes()[("pkg.mod", "exits")] == {}


def test_witness_chain_walks_from_entry_to_raise_site(tmp_path):
    df = analysis_for(tmp_path, {
        "pkg/cli.py": """
            def work():
                raise ValueError("boom")

            def main(argv=None):
                work()
                return 0
        """,
    })
    chain = df.witness_chain(("pkg.cli", "main"), "ValueError")
    assert len(chain) == 2
    assert chain[0].startswith("pkg/cli.py:") and "work()" in chain[0]
    assert chain[1].startswith("pkg/cli.py:") and "raise ValueError" in chain[1]


def test_entrypoints_cover_cli_subcommands_and_stage_runs(tmp_path):
    files = stage_tree("""
        def crunch(payload):
            return payload
    """)
    files["pkg/cli.py"] = """
        import argparse

        def main(argv=None):
            parser = argparse.ArgumentParser()
            commands = parser.add_subparsers(dest="command")
            commands.add_parser("report")
            commands.add_parser("run")
            return 0
    """
    df = analysis_for(tmp_path, files)
    entries = df.entrypoints()
    assert "cli:pkg.cli" in entries
    assert entries["cli:pkg.cli:report"]["subcommand"] == "report"
    assert "cli:pkg.cli:run" in entries
    assert entries["stage:alpha:run"]["kind"] == "stage"


# ---------------------------------------------------------------------------
# lineage trees (engine level)
# ---------------------------------------------------------------------------


def test_stage_lineage_records_reachable_derivations(tmp_path):
    df = analysis_for(tmp_path, stage_tree("""
        from pkg.util.rng import seeded_rng

        def crunch(payload):
            rng = seeded_rng(payload, "alpha:crunch")
            return rng.random()
    """))
    tree = df.stage_lineages()["alpha"]
    assert tree["root"] == "pkg.stages:_run"
    assert tree["digest"]
    streams = [s for s in tree["streams"] if s["api"] == "seeded_rng"]
    assert streams and streams[0]["name"] == "alpha:crunch"
    assert streams[0]["literal"] is True
    assert streams[0]["chain"][0] == "pkg.stages:_run"


def test_lineage_digest_survives_line_drift(tmp_path):
    helper = """
        from pkg.util.rng import seeded_rng

        def crunch(payload):
            rng = seeded_rng(payload, "alpha:crunch")
            return rng.random()
    """
    before = analysis_for(
        tmp_path / "a", stage_tree(helper)
    ).stage_lineages()["alpha"]
    drifted = stage_tree(helper)
    drifted["pkg/helpers.py"] = "# a new leading comment\n" + textwrap.dedent(
        drifted["pkg/helpers.py"]
    )
    after = analysis_for(
        tmp_path / "b", drifted
    ).stage_lineages()["alpha"]
    assert before["digest"] == after["digest"]


def test_lineage_digest_moves_when_a_stream_changes(tmp_path):
    base = """
        from pkg.util.rng import seeded_rng

        def crunch(payload):
            rng = seeded_rng(payload, "alpha:crunch")
            return rng.random()
    """
    before = analysis_for(
        tmp_path / "a", stage_tree(base)
    ).stage_lineages()["alpha"]
    after = analysis_for(
        tmp_path / "b",
        stage_tree(base.replace("alpha:crunch", "alpha:renamed")),
    ).stage_lineages()["alpha"]
    assert before["digest"] != after["digest"]


# ---------------------------------------------------------------------------
# S-rules
# ---------------------------------------------------------------------------


def test_s701_fires_on_raw_rng_in_run_path_helper(tmp_path):
    findings = lint_tree(tmp_path, stage_tree("""
        import random

        def crunch(payload):
            rng = random.Random(0)
            return rng.random()
    """), select=["S701"])
    assert codes(findings) == ["S701"]
    finding = findings[0]
    assert finding.path == "pkg/helpers.py"
    assert "stage 'alpha'" in finding.message
    assert "witness:" in finding.message
    assert "pkg.stages:_run -> pkg.helpers:crunch" in finding.message
    assert f"pkg/helpers.py:{finding.line}" in finding.message


def test_s701_quiet_on_derived_rng(tmp_path):
    findings = lint_tree(tmp_path, stage_tree("""
        from pkg.util.rng import seeded_rng

        def crunch(payload):
            return seeded_rng(payload, "alpha:crunch").random()
    """), select=["S701"])
    assert findings == []


def test_s701_pragma_disable(tmp_path):
    findings = lint_tree(tmp_path, stage_tree("""
        import random

        def crunch(payload):
            rng = random.Random(0)  # reprolint: disable=S701
            return rng.random()
    """), select=["S701"])
    assert findings == []


def test_s702_fires_on_double_spent_stream_name(tmp_path):
    files = dict(RNG_MODULE)
    files["pkg/consumers.py"] = """
        from pkg.util.rng import seeded_rng

        def one(seed):
            return seeded_rng(seed, "panel:dup")

        def two(seed):
            return seeded_rng(seed, "panel:dup")
    """
    findings = lint_tree(tmp_path, files, select=["S702"])
    assert codes(findings) == ["S702", "S702"]
    assert "panel:dup" in findings[0].message
    assert "2 sites" in findings[0].message


def test_s702_quiet_on_distinct_stream_names(tmp_path):
    files = dict(RNG_MODULE)
    files["pkg/consumers.py"] = """
        from pkg.util.rng import seeded_rng

        def one(seed):
            return seeded_rng(seed, "panel:one")

        def two(seed):
            return seeded_rng(seed, "panel:two")
    """
    assert lint_tree(tmp_path, files, select=["S702"]) == []


def test_s703_fires_outside_tests_and_stays_quiet_inside(tmp_path):
    files = dict(RNG_MODULE)
    files["pkg/lib.py"] = """
        from pkg.util.rng import fixed_rng

        def sample():
            return fixed_rng().random()
    """
    files["tests/test_lib.py"] = """
        from pkg.util.rng import fixed_rng

        def test_sample():
            assert fixed_rng().random() is not None
    """
    findings = lint_tree(tmp_path, files, select=["S703"])
    assert codes(findings) == ["S703"]
    assert findings[0].path == "pkg/lib.py"


def test_s704_fires_when_a_run_returns_the_rng(tmp_path):
    findings = lint_tree(tmp_path, stage_tree(
        """
        def crunch(payload):
            return payload
        """,
        run_body="_draw(payload)",
    ) | {
        "pkg/stages.py": """
            from pkg.util.rng import seeded_rng

            def _plan(world, products):
                return [("s0", None)]

            def _run(world, products, payload):
                rng = seeded_rng(payload, "alpha:run")
                return rng

            def _merge(world, products, shards):
                return shards

            SPEC = StageSpec(
                name="alpha", plan=_plan, run=_run, merge=_merge,
            )
        """,
    }, select=["S704"])
    assert codes(findings) == ["S704"]
    assert "returns the RNG bound to 'rng'" in findings[0].message


# ---------------------------------------------------------------------------
# X-rules
# ---------------------------------------------------------------------------


def test_x801_fires_on_builtin_escaping_a_stage_run(tmp_path):
    findings = lint_tree(tmp_path, stage_tree("""
        def crunch(payload):
            if payload is None:
                raise KeyError("missing payload")
            return payload
    """), select=["X801"])
    assert codes(findings) == ["X801"]
    assert "builtin KeyError" in findings[0].message
    assert "stage:alpha:run" in findings[0].message
    assert "witness:" in findings[0].message


def test_x801_quiet_when_wrapped_into_the_taxonomy(tmp_path):
    findings = lint_tree(tmp_path, stage_tree("""
        from repro.errors import ValidationError

        def crunch(payload):
            try:
                return payload["key"]
            except KeyError as exc:
                raise ValidationError("missing payload") from exc
    """), select=["X801"])
    assert findings == []


def test_x802_fires_on_cli_main_with_escapes(tmp_path):
    findings = lint_tree(tmp_path, {
        "pkg/cli.py": """
            def work():
                raise ValueError("boom")

            def main(argv=None):
                work()
                return 0
        """,
    }, select=["X802"])
    assert codes(findings) == ["X802"]
    assert "raw traceback" in findings[0].message
    assert "ValueError" in findings[0].message


def test_x802_quiet_when_main_catches_at_top_level(tmp_path):
    findings = lint_tree(tmp_path, {
        "pkg/cli.py": """
            def work():
                raise ValueError("boom")

            def main(argv=None):
                try:
                    work()
                except ValueError:
                    return 1
                return 0
        """,
    }, select=["X802"])
    assert findings == []


def test_x803_fires_on_unchained_wrap(tmp_path):
    findings = lint_tree(tmp_path, {
        "pkg/mod.py": """
            from repro.errors import ValidationError

            def f(payload):
                try:
                    return payload["key"]
                except KeyError:
                    raise ValidationError("missing key")
        """,
    }, select=["X803"])
    assert codes(findings) == ["X803"]
    assert "'from'" in findings[0].message


def test_x803_quiet_on_chained_wrap_and_bare_reraise(tmp_path):
    findings = lint_tree(tmp_path, {
        "pkg/mod.py": """
            from repro.errors import ValidationError

            def f(payload):
                try:
                    return payload["key"]
                except KeyError as exc:
                    raise ValidationError("missing key") from exc

            def g(payload):
                try:
                    return payload["key"]
                except KeyError:
                    raise
        """,
    }, select=["X803"])
    assert findings == []


# ---------------------------------------------------------------------------
# I-rules
# ---------------------------------------------------------------------------


def test_i901_fires_on_raw_open_in_run_path(tmp_path):
    findings = lint_tree(tmp_path, stage_tree("""
        def crunch(payload):
            with open("artifact.json") as handle:
                return handle.read()
    """), select=["I901"])
    assert codes(findings) == ["I901"]
    assert "stage 'alpha'" in findings[0].message
    assert "witness:" in findings[0].message


def test_i901_quiet_in_sanctioned_io_module(tmp_path):
    files = stage_tree("""
        from pkg.io.files import load

        def crunch(payload):
            return load(payload)
    """)
    files["pkg/io/files.py"] = """
        def load(path):
            with open(path) as handle:
                return handle.read()
    """
    assert lint_tree(tmp_path, files, select=["I901"]) == []


def test_i902_fires_on_subprocess_anywhere(tmp_path):
    findings = lint_tree(tmp_path, {
        "pkg/mod.py": """
            import subprocess

            def shell(cmd):
                return subprocess.run(cmd)
        """,
    }, select=["I902"])
    assert codes(findings) == ["I902"]
    assert "hermetic" in findings[0].message


def test_i902_quiet_in_test_code(tmp_path):
    findings = lint_tree(tmp_path, {
        "tests/test_mod.py": """
            import subprocess

            def test_shell():
                assert subprocess.run(["true"]) is not None
        """,
    }, select=["I902"])
    assert findings == []


SOCKET_SERVER = """
    import socket

    def listen(host, port):
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.bind((host, port))
        return sock
"""


def test_i902_serve_carveout_sanctions_socket_in_serve_modules(tmp_path):
    # The one scoped exemption: the serve layer may bind its listening
    # socket (docs/service.md).
    findings = lint_tree(tmp_path, {
        "pkg/serve/server.py": SOCKET_SERVER,
    }, select=["I902"])
    assert findings == []


def test_i902_still_fires_on_socket_outside_serve(tmp_path):
    # The carve-out is scoped to serve modules — socket anywhere else
    # is still a raw-I/O finding.
    findings = lint_tree(tmp_path, {
        "pkg/core/net.py": SOCKET_SERVER,
    }, select=["I902"])
    assert codes(findings) == ["I902"]
    assert "socket" in findings[0].message


def test_i902_still_fires_on_subprocess_in_serve(tmp_path):
    # ... and scoped to the socket family — subprocess stays banned
    # even inside the serve layer.
    findings = lint_tree(tmp_path, {
        "pkg/serve/worker.py": """
            import subprocess

            def shell(cmd):
                return subprocess.run(cmd)
        """,
    }, select=["I902"])
    assert codes(findings) == ["I902"]


def test_is_serve_module_matches_path_segments_only():
    from repro.lint.dataflow import is_serve_module

    assert is_serve_module("repro.serve.server")
    assert is_serve_module("pkg.serve")
    assert not is_serve_module("repro.core.observe")
    assert not is_serve_module("repro.serveur.mod")


# ---------------------------------------------------------------------------
# copied-tree S701 regression (mirrors the footprint-salt lock)
# ---------------------------------------------------------------------------


def test_planted_raw_rng_in_panel_run_yields_s701_with_witness(tmp_path):
    target = tmp_path / "edited" / "repro"
    shutil.copytree(default_root(), target)
    stages = target / "runtime" / "stages.py"
    source = stages.read_text()
    anchor = "    lo, hi = payload\n"
    start = source.index("def panel_run(")
    planted = source.index(anchor, start) + len(anchor)
    stages.write_text(
        "import random\n"
        + source[:planted]
        + "    _rogue = random.Random(0)\n"
        + source[planted:]
    )
    findings = run_lint(
        [target], rules=select_rules(["S701"]), root=target.parent
    ).findings
    assert findings, "planted random.Random(0) was not detected"
    panel = [f for f in findings if "'panel'" in f.message]
    assert panel, [f.message for f in findings]
    finding = panel[0]
    assert finding.path == "repro/runtime/stages.py"
    assert "witness:" in finding.message
    assert f"repro/runtime/stages.py:{finding.line}" in finding.message
    assert "repro.runtime.stages:panel_run" in finding.message


# ---------------------------------------------------------------------------
# report tripwire against the live tree
# ---------------------------------------------------------------------------


def test_dataflow_report_matches_cli_and_stage_roster():
    df = dataflow_for_model(program_model())
    report = df.report_json()
    assert report["schema"] == DATAFLOW_SCHEMA

    # Every live CLI subcommand must appear in the entrypoint map.
    from repro.cli import build_parser

    subparsers = next(
        action
        for action in build_parser()._actions
        if isinstance(action, argparse._SubParsersAction)
    )
    entry_keys = set(report["entrypoints"])
    assert "cli:repro.cli" in entry_keys
    for name in subparsers.choices:
        assert f"cli:repro.cli:{name}" in entry_keys, name

    # Every stage has a run entrypoint with a non-empty, fully wrapped
    # escape set and a lineage tree with digest and root.
    assert set(report["stages"]) == set(STAGE_NAMES)
    for name in STAGE_NAMES:
        record = report["entrypoints"][f"stage:{name}:run"]
        assert record["escapes"], name
        for exc_name, data in record["escapes"].items():
            assert data["category"] == "repro", (name, exc_name)
            assert data["witness"], (name, exc_name)
        lineage = report["stages"][name]["lineage"]
        assert lineage["digest"] and lineage["root"], name

    # The shipped tree carries no taints.
    assert report["taints"] == []
    assert report["summary"]["stages"] == len(STAGE_NAMES)
