"""The static loop-cost analysis and the Q rule family.

Engine tests probe :class:`CostAnalysis` directly over fixture trees
(nesting depth, record-axis detection, hazard sites, stage digests);
rule tests run the same fixtures through the lint framework with a
fixture + pragma pair per Q rule; and the digest tests lock the
structural properties the runtime relies on — stable under pure
line-shift edits, moved by a new nested record loop.
"""

from __future__ import annotations

import textwrap
from pathlib import Path
from typing import List, Optional, Sequence

from repro.lint import Finding, run_lint, select_rules
from repro.lint.cost import (
    CostAnalysis,
    RECORD_AXES,
    nesting_class,
)
from repro.lint.program import ProgramModel


def write_tree(tmp_path: Path, files) -> Path:
    for relpath, source in files.items():
        path = tmp_path / relpath
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source))
        parent = path.parent
        while parent != tmp_path:
            init = parent / "__init__.py"
            if not init.exists():
                init.write_text("")
            parent = parent.parent
    return tmp_path


def analysis_for(tmp_path: Path, files) -> CostAnalysis:
    write_tree(tmp_path, files)
    model = ProgramModel.from_paths([tmp_path], root=tmp_path)
    return CostAnalysis(model)


def lint_tree(
    tmp_path: Path, files, select: Optional[Sequence[str]] = None
) -> List[Finding]:
    write_tree(tmp_path, files)
    rules = select_rules(select) if select else None
    return run_lint([tmp_path], rules=rules, root=tmp_path).findings


def codes(findings: Sequence[Finding]) -> List[str]:
    return [finding.rule for finding in findings]


def stage_fixture(work_source: str) -> dict:
    """A one-stage tree whose run path reaches ``pkg.work.crunch``."""
    return {
        "pkg/graph.py": """
            class StageSpec:
                def __init__(self, name, plan, run, merge):
                    self.name = name
        """,
        "pkg/stages.py": """
            from pkg.graph import StageSpec
            from pkg import work

            def _plan(world, config):
                return [("all", None)]

            def _run(world, products, key, payload):
                return work.crunch(payload)

            def _merge(world, products, shards):
                return shards

            SPEC = StageSpec(name="alpha", plan=_plan, run=_run, merge=_merge)
        """,
        "pkg/work.py": work_source,
    }


# ---------------------------------------------------------------------------
# nesting depth and record axes
# ---------------------------------------------------------------------------


def test_nesting_class_labels():
    assert nesting_class(0) == "constant"
    assert nesting_class(1) == "linear"
    assert nesting_class(2) == "quadratic"
    assert nesting_class(3) == "polynomial"
    assert nesting_class(7) == "polynomial"


def test_base_axes_cover_paper_scales():
    for axis in ("users", "flows", "requests", "rows", "chunks"):
        assert axis in RECORD_AXES


def test_record_loop_nesting_depth(tmp_path):
    analysis = analysis_for(tmp_path, {
        "pkg/work.py": """
            def crunch(users):
                total = 0
                for user in users:
                    for flow in user.flows:
                        total += flow.n
                return total
        """,
    })
    cost = analysis.function_cost(("pkg.work", "crunch"))
    assert cost.nesting == 2
    assert cost.nesting_class == "quadratic"


def test_non_record_loops_cost_nothing(tmp_path):
    analysis = analysis_for(tmp_path, {
        "pkg/work.py": """
            def crunch(options):
                for option in options:
                    print(option)
        """,
    })
    cost = analysis.function_cost(("pkg.work", "crunch"))
    assert cost.nesting == 0
    assert cost.nesting_class == "constant"
    assert cost.hazards == ()


def test_comprehension_clauses_count_as_loops(tmp_path):
    analysis = analysis_for(tmp_path, {
        "pkg/work.py": """
            def crunch(users):
                return [u for u in users for f in u.flows]
        """,
    })
    assert analysis.function_cost(("pkg.work", "crunch")).nesting == 2


def test_shard_axis_values_extend_the_vocabulary(tmp_path):
    analysis = analysis_for(tmp_path, {
        "pkg/axes.py": """
            class ShardAxis:
                USER_BLOCKS = "user_blocks"
        """,
        "pkg/work.py": """
            def crunch(user_blocks):
                for block in user_blocks:
                    print(block)
        """,
    })
    assert "user_blocks" in analysis.record_axes()
    assert analysis.function_cost(("pkg.work", "crunch")).nesting == 1


# ---------------------------------------------------------------------------
# Q1101 — list membership inside a loop
# ---------------------------------------------------------------------------

Q1101_WORK = """
    DENSE = ["a", "b", "c"]

    def crunch(rows):
        found = []
        for row in rows:
            if row in DENSE:
                found.append(row)
        return found
"""


def test_q1101_fires_on_list_membership(tmp_path):
    findings = lint_tree(
        tmp_path, stage_fixture(Q1101_WORK), select=["Q1101"]
    )
    assert codes(findings) == ["Q1101"]
    assert "DENSE" in findings[0].message
    assert "alpha" in findings[0].message


def test_q1101_quiet_on_set_membership(tmp_path):
    work = Q1101_WORK.replace('["a", "b", "c"]', '{"a", "b", "c"}')
    findings = lint_tree(tmp_path, stage_fixture(work), select=["Q1101"])
    assert codes(findings) == []


def test_q1101_quiet_off_the_run_path(tmp_path):
    files = stage_fixture("def crunch(rows):\n    return rows\n")
    files["pkg/offpath.py"] = Q1101_WORK
    findings = lint_tree(tmp_path, files, select=["Q1101"])
    assert codes(findings) == []


def test_q1101_pragma_disable(tmp_path):
    work = Q1101_WORK.replace(
        "if row in DENSE:",
        "if row in DENSE:  # reprolint: disable=Q1101",
    )
    findings = lint_tree(tmp_path, stage_fixture(work), select=["Q1101"])
    assert codes(findings) == []


# ---------------------------------------------------------------------------
# Q1102 — string accumulation inside a loop
# ---------------------------------------------------------------------------

Q1102_WORK = """
    def crunch(rows):
        out = ""
        for row in rows:
            out += str(row)
        return out
"""


def test_q1102_fires_on_str_accumulation(tmp_path):
    findings = lint_tree(
        tmp_path, stage_fixture(Q1102_WORK), select=["Q1102"]
    )
    assert codes(findings) == ["Q1102"]
    assert "out" in findings[0].message


def test_q1102_quiet_on_numeric_accumulation(tmp_path):
    work = """
        def crunch(rows):
            total = 0
            for row in rows:
                total += row
            return total
    """
    findings = lint_tree(tmp_path, stage_fixture(work), select=["Q1102"])
    assert codes(findings) == []


def test_q1102_pragma_disable(tmp_path):
    work = Q1102_WORK.replace(
        "out += str(row)",
        "out += str(row)  # reprolint: disable=Q1102",
    )
    findings = lint_tree(tmp_path, stage_fixture(work), select=["Q1102"])
    assert codes(findings) == []


# ---------------------------------------------------------------------------
# Q1103 — nested loops over the same record axis
# ---------------------------------------------------------------------------

Q1103_WORK = """
    def crunch(users):
        out = []
        for a in users:
            for b in users:
                out.append((a, b))
        return out
"""


def test_q1103_fires_on_same_axis_nesting(tmp_path):
    findings = lint_tree(
        tmp_path, stage_fixture(Q1103_WORK), select=["Q1103"]
    )
    assert codes(findings) == ["Q1103"]
    assert "users" in findings[0].message


def test_q1103_quiet_on_distinct_axes(tmp_path):
    work = """
        def crunch(users):
            out = []
            for user in users:
                for flow in user.flows:
                    out.append(flow)
            return out
    """
    findings = lint_tree(tmp_path, stage_fixture(work), select=["Q1103"])
    assert codes(findings) == []


def test_q1103_pragma_disable(tmp_path):
    work = Q1103_WORK.replace(
        "for b in users:",
        "for b in users:  # reprolint: disable=Q1103",
    )
    findings = lint_tree(tmp_path, stage_fixture(work), select=["Q1103"])
    assert codes(findings) == []


# ---------------------------------------------------------------------------
# Q1104 — per-row allocation inside an iter_chunks consumer
# ---------------------------------------------------------------------------

Q1104_WORK = """
    def iter_chunks(table):
        return table

    def crunch(table):
        out = []
        for chunk in iter_chunks(table):
            for row in chunk.rows:
                out.append({"row": row})
        return out
"""


def test_q1104_fires_on_per_row_dict(tmp_path):
    findings = lint_tree(
        tmp_path, stage_fixture(Q1104_WORK), select=["Q1104"]
    )
    assert codes(findings) == ["Q1104"]
    assert "dict" in findings[0].message


def test_q1104_quiet_outside_chunk_loops(tmp_path):
    work = """
        def crunch(users):
            out = []
            for user in users:
                for flow in user.flows:
                    out.append({"flow": flow})
            return out
    """
    findings = lint_tree(tmp_path, stage_fixture(work), select=["Q1104"])
    assert codes(findings) == []


def test_q1104_pragma_disable(tmp_path):
    work = Q1104_WORK.replace(
        'out.append({"row": row})',
        'out.append({"row": row})  # reprolint: disable=Q1104',
    )
    findings = lint_tree(tmp_path, stage_fixture(work), select=["Q1104"])
    assert codes(findings) == []


# ---------------------------------------------------------------------------
# Q1105 — sequence rebind inside a loop
# ---------------------------------------------------------------------------

Q1105_WORK = """
    def crunch(rows):
        out = ()
        for row in rows:
            out = out + (row,)
        return out
"""


def test_q1105_fires_on_seq_rebind(tmp_path):
    findings = lint_tree(
        tmp_path, stage_fixture(Q1105_WORK), select=["Q1105"]
    )
    assert codes(findings) == ["Q1105"]
    assert "out" in findings[0].message


def test_q1105_pragma_disable(tmp_path):
    work = Q1105_WORK.replace(
        "out = out + (row,)",
        "out = out + (row,)  # reprolint: disable=Q1105",
    )
    findings = lint_tree(tmp_path, stage_fixture(work), select=["Q1105"])
    assert codes(findings) == []


# ---------------------------------------------------------------------------
# stage cost footprints and digests
# ---------------------------------------------------------------------------


def test_stage_cost_folds_run_path_functions(tmp_path):
    analysis = analysis_for(tmp_path, stage_fixture(Q1103_WORK))
    footprint = analysis.stage_cost("alpha")
    assert footprint is not None
    assert footprint["nesting"] == 2
    assert footprint["nesting_class"] == "quadratic"
    assert footprint["hazards"] >= 1
    assert "pkg.work:crunch" in footprint["functions"]
    assert len(footprint["digest"]) == 40


def test_stage_cost_digest_survives_line_shifts(tmp_path):
    files_a = stage_fixture(Q1103_WORK)
    tree_a = analysis_for(tmp_path / "a", files_a)
    files_b = dict(files_a)
    files_b["pkg/work.py"] = (
        "# a comment\n# another comment\n\n"
        + textwrap.dedent(files_b["pkg/work.py"])
    )
    tree_b = analysis_for(tmp_path / "b", files_b)
    assert (
        tree_a.stage_cost("alpha")["digest"]
        == tree_b.stage_cost("alpha")["digest"]
    )


def test_stage_cost_digest_moves_on_new_nested_loop(tmp_path):
    files_a = stage_fixture("""
        def crunch(users):
            out = []
            for user in users:
                out.append(user)
            return out
    """)
    tree_a = analysis_for(tmp_path / "a", files_a)
    files_b = stage_fixture("""
        def crunch(users):
            out = []
            for user in users:
                for flow in user.flows:
                    out.append(flow)
            return out
    """)
    tree_b = analysis_for(tmp_path / "b", files_b)
    cost_a = tree_a.stage_cost("alpha")
    cost_b = tree_b.stage_cost("alpha")
    assert cost_a["digest"] != cost_b["digest"]
    assert cost_a["nesting_class"] == "linear"
    assert cost_b["nesting_class"] == "quadratic"


def test_unknown_stage_has_no_footprint(tmp_path):
    analysis = analysis_for(tmp_path, stage_fixture(Q1103_WORK))
    assert analysis.stage_cost("missing") is None
