"""RNG lineage in manifests and ledger records.

The per-stage lineage trees are computed statically from the program
model, so they must be byte-identical across worker counts and across
cold/warm cache runs — any difference would mean the provenance layer
is leaking execution details into what is supposed to be a pure
code-shape digest.  The diff engine then treats a moved lineage digest
as a *code* cause, never drift.
"""

from __future__ import annotations

from repro import WorldConfig
from repro.obs.diff import diff_records, render_diff_text
from repro.runtime import run_study
from repro.runtime.stages import STAGE_NAMES


def lineage_digests(manifest) -> dict:
    return {
        name: tree["digest"]
        for name, tree in manifest["rng_lineage"].items()
    }


def test_manifest_lineage_covers_every_stage():
    run = run_study(WorldConfig.small(), workers=1)
    lineage = run.manifest["rng_lineage"]
    assert set(lineage) == set(STAGE_NAMES)
    for name, tree in lineage.items():
        assert tree["digest"], name
        assert tree["root"].startswith("repro.runtime.stages:"), name
        for stream in tree["streams"]:
            assert stream["api"] and stream["function"], name
    # Stages draw through distinct derivation shapes — digests differ.
    digests = lineage_digests(run.manifest)
    assert len(set(digests.values())) == len(digests)


def test_lineage_digests_invariant_across_worker_counts():
    config = WorldConfig.small()
    serial = run_study(config, workers=1)
    fanned = run_study(config, workers=4)
    assert lineage_digests(serial.manifest) == lineage_digests(
        fanned.manifest
    )


def test_lineage_digests_invariant_cold_vs_warm_cache(tmp_path):
    config = WorldConfig.small()
    cold = run_study(config, workers=1, cache_dir=str(tmp_path))
    warm = run_study(config, workers=1, cache_dir=str(tmp_path))
    assert lineage_digests(cold.manifest) == lineage_digests(warm.manifest)
    # The ledger record carries the digest map, shaped for diffing.
    for run in (cold, warm):
        record = run.result.ledger_record
        assert record is not None
        assert record["rng_lineage"] == lineage_digests(run.manifest)


def _record(salt: str, lineage: str, value: int) -> dict:
    return {
        "run_id": f"run-{salt}",
        "config": {"digest": "cfg", "seed": 7},
        "workers": 1,
        "salts": {"panel": salt},
        "footprints": {"panel": salt},
        "rng_lineage": {"panel": lineage},
        "stages": [{
            "stage": "panel",
            "shards": 1,
            "cache_hits": 0,
            "cache_misses": 1,
            "wall_s": 0.1,
            "cpu_s": 0.1,
            "metric_keys": ["panel.count"],
        }],
        "metrics": {"panel.count": {"kind": "counter", "value": value}},
    }


def test_diff_classifies_lineage_change_as_code_cause():
    diff = diff_records(
        _record("salt-a", "lineage-a", 1),
        _record("salt-b", "lineage-b", 2),
    )
    assert diff.changed_lineages == ("panel",)
    assert diff.unexplained() == []
    (delta,) = diff.deltas
    assert delta.classification == "code"
    assert "rng_lineage:panel" in delta.caused_by
    assert diff.to_dict()["changed_lineages"] == ["panel"]
    assert "changed RNG lineages: panel" in render_diff_text(diff)


def test_diff_without_lineage_sections_stays_backward_compatible():
    record_a = _record("salt", "lineage", 1)
    record_b = _record("salt", "lineage", 1)
    for record in (record_a, record_b):
        del record["rng_lineage"]
    diff = diff_records(record_a, record_b)
    assert diff.changed_lineages == ()
    assert diff.deltas == []


def test_diff_classifies_lint_wall_time_as_timing():
    record_a = _record("salt", "lineage", 1)
    record_b = _record("salt", "lineage", 1)
    record_a["metrics"]["lint.time_s"] = {"kind": "gauge", "value": 4.0}
    record_b["metrics"]["lint.time_s"] = {"kind": "gauge", "value": 9.0}
    diff = diff_records(record_a, record_b)
    (delta,) = diff.deltas
    assert delta.key == "lint.time_s"
    assert delta.classification == "timing"
    assert diff.unexplained() == []
