"""Tests for repro.netbase.addr (IP addresses and prefixes)."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import AddressError
from repro.netbase.addr import IPAddress, Prefix, prefix_key, summarize


class TestIPv4Parsing:
    def test_roundtrip(self):
        for text in ("0.0.0.0", "1.2.3.4", "255.255.255.255", "10.0.0.1"):
            assert str(IPAddress.parse(text)) == text

    def test_value(self):
        assert IPAddress.parse("1.0.0.0").value == 1 << 24
        assert IPAddress.parse("0.0.0.255").value == 255

    @pytest.mark.parametrize(
        "bad",
        ["1.2.3", "1.2.3.4.5", "256.1.1.1", "a.b.c.d", "01.2.3.4", "", "1..2.3"],
    )
    def test_malformed(self, bad):
        with pytest.raises(AddressError):
            IPAddress.parse(bad)


class TestIPv6Parsing:
    def test_full_form(self):
        address = IPAddress.parse("2001:db8:0:0:0:0:0:1")
        assert address.version == 6
        assert str(address) == "2001:db8::1"

    def test_compressed_roundtrip(self):
        for text in ("::", "::1", "2001:db8::", "2001:db8::1",
                     "fe80::1:2:3:4"):
            assert str(IPAddress.parse(text)) == text

    def test_longest_zero_run_compressed(self):
        address = IPAddress.parse("1:0:0:2:0:0:0:3")
        assert str(address) == "1:0:0:2::3"

    @pytest.mark.parametrize(
        "bad", ["1::2::3", ":::", "12345::", "1:2:3:4:5:6:7:8:9", "g::1"]
    )
    def test_malformed(self, bad):
        with pytest.raises(AddressError):
            IPAddress.parse(bad)


class TestIPAddress:
    def test_version_validation(self):
        with pytest.raises(AddressError):
            IPAddress(5, 0)

    def test_range_validation(self):
        with pytest.raises(AddressError):
            IPAddress(4, 1 << 32)
        with pytest.raises(AddressError):
            IPAddress(4, -1)

    def test_ordering(self):
        a = IPAddress.parse("1.2.3.4")
        b = IPAddress.parse("1.2.3.5")
        assert a < b

    def test_add_offset(self):
        assert str(IPAddress.parse("1.2.3.4") + 2) == "1.2.3.6"

    def test_int_conversion(self):
        assert int(IPAddress.v4(99)) == 99

    def test_hashable(self):
        assert len({IPAddress.v4(1), IPAddress.v4(1), IPAddress.v4(2)}) == 2


class TestPrefix:
    def test_parse_and_str(self):
        prefix = Prefix.parse("10.0.0.0/8")
        assert str(prefix) == "10.0.0.0/8"
        assert prefix.num_addresses == 1 << 24

    def test_host_bits_must_be_zero(self):
        with pytest.raises(AddressError):
            Prefix.parse("10.0.0.1/8")

    def test_of_masks_host_bits(self):
        prefix = Prefix.of(IPAddress.parse("10.1.2.3"), 16)
        assert str(prefix) == "10.1.0.0/16"

    def test_contains_address(self):
        prefix = Prefix.parse("10.0.0.0/8")
        assert IPAddress.parse("10.255.0.1") in prefix
        assert IPAddress.parse("11.0.0.0") not in prefix

    def test_contains_rejects_other_version(self):
        assert IPAddress.parse("::1") not in Prefix.parse("0.0.0.0/0")

    def test_contains_prefix(self):
        outer = Prefix.parse("10.0.0.0/8")
        inner = Prefix.parse("10.2.0.0/16")
        assert inner in outer
        assert outer not in inner

    def test_overlaps(self):
        a = Prefix.parse("10.0.0.0/8")
        b = Prefix.parse("10.1.0.0/16")
        c = Prefix.parse("11.0.0.0/8")
        assert a.overlaps(b) and b.overlaps(a)
        assert not a.overlaps(c)

    def test_first_last(self):
        prefix = Prefix.parse("10.0.0.0/30")
        assert str(prefix.first()) == "10.0.0.0"
        assert str(prefix.last()) == "10.0.0.3"

    def test_subnets(self):
        subnets = list(Prefix.parse("10.0.0.0/30").subnets(31))
        assert [str(s) for s in subnets] == ["10.0.0.0/31", "10.0.0.2/31"]

    def test_subnets_invalid_length(self):
        with pytest.raises(AddressError):
            list(Prefix.parse("10.0.0.0/24").subnets(16))
        with pytest.raises(AddressError):
            list(Prefix.parse("10.0.0.0/24").subnets(33))

    def test_supernet(self):
        assert str(Prefix.parse("10.1.0.0/16").supernet(8)) == "10.0.0.0/8"
        with pytest.raises(AddressError):
            Prefix.parse("10.0.0.0/8").supernet(16)

    def test_addresses_iteration(self):
        addresses = list(Prefix.parse("10.0.0.0/30").addresses())
        assert len(addresses) == 4
        assert str(addresses[-1]) == "10.0.0.3"

    def test_nth(self):
        prefix = Prefix.parse("10.0.0.0/24")
        assert str(prefix.nth(255)) == "10.0.0.255"
        with pytest.raises(AddressError):
            prefix.nth(256)
        with pytest.raises(AddressError):
            prefix.nth(-1)

    def test_ipv6_prefix(self):
        prefix = Prefix.parse("2001:db8::/32")
        assert IPAddress.parse("2001:db8::1") in prefix
        assert prefix.num_addresses == 1 << 96

    def test_missing_length(self):
        with pytest.raises(AddressError):
            Prefix.parse("10.0.0.0")

    def test_length_out_of_range(self):
        with pytest.raises(AddressError):
            Prefix.parse("10.0.0.0/33")


class TestHelpers:
    def test_summarize_drops_contained(self):
        prefixes = [
            Prefix.parse("10.0.0.0/8"),
            Prefix.parse("10.1.0.0/16"),
            Prefix.parse("11.0.0.0/8"),
        ]
        kept = summarize(prefixes)
        assert Prefix.parse("10.1.0.0/16") not in kept
        assert len(kept) == 2

    def test_prefix_key_sortable(self):
        a = prefix_key(Prefix.parse("10.0.0.0/8"))
        b = prefix_key(Prefix.parse("11.0.0.0/8"))
        assert a < b


@given(st.integers(min_value=0, max_value=(1 << 32) - 1))
def test_ipv4_text_roundtrip_property(value):
    address = IPAddress.v4(value)
    assert IPAddress.parse(str(address)) == address


@given(st.integers(min_value=0, max_value=(1 << 128) - 1))
def test_ipv6_text_roundtrip_property(value):
    address = IPAddress.v6(value)
    assert IPAddress.parse(str(address)) == address


@given(
    st.integers(min_value=0, max_value=(1 << 32) - 1),
    st.integers(min_value=0, max_value=32),
)
def test_prefix_contains_its_members_property(value, length):
    prefix = Prefix.of(IPAddress.v4(value), length)
    assert prefix.first() in prefix
    assert prefix.last() in prefix
    assert IPAddress.v4(value) in prefix
    # Subnet division covers exactly the prefix.
    if length <= 30:
        halves = list(prefix.subnets(min(32, length + 1)))
        assert sum(h.num_addresses for h in halves) == prefix.num_addresses
