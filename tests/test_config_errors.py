"""Tests for repro.config and the error hierarchy."""

import pytest

from repro import errors
from repro.config import (
    EcosystemConfig,
    ISPConfig,
    PanelConfig,
    SNAPSHOT_DAYS,
    WorldConfig,
)
from repro.errors import ConfigError


class TestPanelConfig:
    def test_defaults_are_consistent(self):
        config = PanelConfig()
        assert config.n_users == 350
        assert sum(config.users_per_region.values()) == 350
        assert sum(config.eu28_user_counts.values()) == 183

    def test_region_sum_validated(self):
        with pytest.raises(ConfigError):
            PanelConfig(n_users=10, users_per_region={"EU28": 5})

    def test_eu28_sum_validated(self):
        with pytest.raises(ConfigError):
            PanelConfig(
                n_users=5,
                users_per_region={"EU28": 5},
                eu28_user_counts={"DE": 3},
            )


class TestEcosystemConfig:
    def test_scaled_minimums(self):
        scaled = EcosystemConfig().scaled(0.01)
        assert scaled.n_hyperscalers >= 3
        assert scaled.n_publishers >= 1

    def test_scaled_proportional(self):
        scaled = EcosystemConfig().scaled(2.0)
        assert scaled.n_publishers == 2800
        assert scaled.n_dsps == 80

    def test_bad_factor(self):
        with pytest.raises(ConfigError):
            EcosystemConfig().scaled(0.0)


class TestISPConfig:
    def test_scaled_floor(self):
        scaled = ISPConfig().scaled(0.0001)
        assert all(v >= 200 for v in scaled.sampled_flows.values())
        assert scaled.background_flows >= 100

    def test_bad_factor(self):
        with pytest.raises(ConfigError):
            ISPConfig().scaled(-1)


class TestWorldConfig:
    def test_presets_construct(self):
        for preset in (WorldConfig.small(), WorldConfig.medium(),
                       WorldConfig.paper_scale()):
            assert preset.panel.n_users > 0

    def test_small_is_smaller_than_medium(self):
        small, medium = WorldConfig.small(), WorldConfig.medium()
        assert small.panel.n_users < medium.panel.n_users
        assert small.ecosystem.n_publishers < medium.ecosystem.n_publishers

    def test_snapshot_days_chronological(self):
        days = list(SNAPSHOT_DAYS.values())
        assert days == sorted(days)
        assert list(SNAPSHOT_DAYS) == ["Nov 8", "April 4", "May 16", "June 20"]


class TestErrorHierarchy:
    def test_all_derive_from_repro_error(self):
        for name in ("ConfigError", "AddressError", "AllocationError",
                     "GeoDataError", "DNSError", "NXDomainError",
                     "GeolocationError", "ClassificationError",
                     "NetFlowError", "PipelineError"):
            cls = getattr(errors, name)
            assert issubclass(cls, errors.ReproError)

    def test_specializations(self):
        assert issubclass(errors.AllocationError, errors.AddressError)
        assert issubclass(errors.NXDomainError, errors.DNSError)
