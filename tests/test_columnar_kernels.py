"""Tests for repro.core.kernels: vectorized classify + confinement."""

import pytest

from repro.columnar import ColumnarTable
from repro.core.classify import ClassificationStage
from repro.core.kernels import (
    STAGE_BY_CODE,
    STAGE_NONE,
    ConfinementAccumulator,
    classify_table,
    stage_counts,
)
from repro.errors import ColumnarError
from repro.web.columns import REQUEST_SCHEMA, request_table


class TestClassifyTable:
    def test_labels_match_object_path(self, small_study):
        requests = small_study.visit_log.requests
        table = request_table(requests)
        labels = classify_table(small_study.classifier, table)
        want = small_study.classification.stages
        assert len(labels) == len(want)
        assert all(
            STAGE_BY_CODE[code] is stage
            for code, stage in zip(labels, want)
        )

    def test_ablation_toggles_match_object_path(self, small_study):
        requests = small_study.visit_log.requests
        table = request_table(requests)
        for referrer, keyword in ((False, False), (True, False), (False, True)):
            labels = classify_table(
                small_study.classifier,
                table,
                enable_referrer_stage=referrer,
                enable_keyword_stage=keyword,
            )
            want = small_study.classifier.classify(
                requests,
                enable_referrer_stage=referrer,
                enable_keyword_stage=keyword,
            ).stages
            assert all(
                STAGE_BY_CODE[code] is stage
                for code, stage in zip(labels, want)
            )

    def test_empty_table(self, small_study):
        labels = classify_table(
            small_study.classifier, ColumnarTable(REQUEST_SCHEMA)
        )
        assert len(labels) == 0
        assert stage_counts(labels) == {stage: 0 for stage in STAGE_BY_CODE}

    def test_stage_counts_matches_labels(self, small_study):
        table = request_table(small_study.visit_log.requests)
        labels = classify_table(small_study.classifier, table)
        counts = stage_counts(labels)
        assert counts[ClassificationStage.NONE] == sum(
            1 for code in labels if code == STAGE_NONE
        )
        assert sum(counts.values()) == len(labels)
        assert counts == {
            stage: small_study.classification.stages.count(stage)
            for stage in ClassificationStage
        }


class TestConfinementAccumulator:
    def test_misaligned_labels_rejected(self, small_study, synthetic_locate):
        table = request_table(small_study.visit_log.requests[:10])
        accumulator = ConfinementAccumulator(synthetic_locate)
        with pytest.raises(ColumnarError):
            accumulator.absorb(table, [1, 0])

    def test_empty_cohort_is_a_noop(self, synthetic_locate):
        accumulator = ConfinementAccumulator(synthetic_locate)
        accumulator.absorb(ColumnarTable(REQUEST_SCHEMA), [])
        assert accumulator.n_rows == 0
        assert accumulator.n_tracking == 0
        assert accumulator.national_confinement() == {}
        assert accumulator.destination_shares() == {}

    def test_geolocation_memoized_per_distinct_address(self, small_study, synthetic_locate):
        calls = []

        def counting_locate(address):
            calls.append(address)
            return synthetic_locate(address)

        requests = small_study.visit_log.requests[:2000]
        table = request_table(requests)
        labels = classify_table(small_study.classifier, table)
        accumulator = ConfinementAccumulator(counting_locate)
        accumulator.absorb(table, labels, chunk_rows=100)
        accumulator.absorb(table, labels, chunk_rows=100)
        assert len(calls) == len(set(calls))  # one call per distinct IP

    def test_absorb_is_chunk_size_invariant(self, small_study, synthetic_locate):
        requests = small_study.visit_log.requests[:3000]
        table = request_table(requests)
        labels = classify_table(small_study.classifier, table)
        results = []
        for chunk_rows in (7, 500, 10**6):
            accumulator = ConfinementAccumulator(synthetic_locate)
            accumulator.absorb(table, labels, chunk_rows=chunk_rows)
            results.append((
                accumulator.n_tracking,
                sorted(accumulator.regions.rows()),
                sorted(accumulator.countries.rows()),
                accumulator.per_region_confinement(),
            ))
        assert results[0] == results[1] == results[2]
