"""Unit tests for :mod:`repro.obs.diff` — delta classification and budgets.

The classification matrix under test (see docs/ledger.md): config
changes own every delta; code changes are attributed to the owning
stages whose salts moved; cache-behaviour counters never count as
drift; ``bench.*`` is timing; anything left is unexplained drift.
"""

from __future__ import annotations

import json

import pytest

from repro.errors import ObservabilityError
from repro.obs import (
    BUDGETS_SCHEMA,
    check_budgets,
    diff_records,
    load_budgets,
    render_budget_text,
    render_diff_text,
)
from repro.obs.metrics import Histogram


def make_record(
    run_id="run-a",
    digest="abc123",
    salts=None,
    footprints=None,
    metrics=None,
    stages=None,
):
    """A diff-ready run record (identity fields included directly)."""
    if stages is None:
        stages = [
            {
                "stage": "panel",
                "shards": 8,
                "cache_hits": 0,
                "cache_misses": 8,
                "wall_s": 2.0,
                "cpu_s": 1.5,
                "metric_keys": ["web.requests"],
            },
            {
                "stage": "classification",
                "shards": 8,
                "cache_hits": 0,
                "cache_misses": 8,
                "wall_s": 1.0,
                "cpu_s": 0.8,
                "metric_keys": ["classify.flows{stage=list}"],
            },
        ]
    return {
        "schema": "repro.obs/ledger/v1",
        "kind": "run",
        "run_id": run_id,
        "seq": 0,
        "config": {"digest": digest, "seed": 7},
        "workers": 2,
        "salts": salts or {"panel": "s1", "classification": "s2"},
        "footprints": footprints if footprints is not None else {},
        "stages": stages,
        "metrics": metrics or {
            "web.requests": {"kind": "counter", "value": 100},
            "classify.flows{stage=list}": {"kind": "counter", "value": 40},
        },
    }


def counter(value):
    return {"kind": "counter", "value": value}


class TestClassification:
    def test_identical_records_have_no_deltas(self):
        diff = diff_records(make_record(), make_record(run_id="run-b"))
        assert diff.deltas == []
        assert diff.unchanged == 2
        assert diff.unexplained() == []
        assert not diff.config_changed
        assert "no unexplained drift" in render_diff_text(diff)

    def test_config_change_owns_every_delta(self):
        b = make_record(
            run_id="run-b",
            digest="def456",
            metrics={
                "web.requests": counter(200),
                "classify.flows{stage=list}": counter(80),
            },
        )
        diff = diff_records(make_record(), b)
        assert diff.config_changed
        assert {d.classification for d in diff.deltas} == {"config"}
        assert diff.unexplained() == []

    def test_code_change_attributed_to_owning_stage(self):
        a = make_record(footprints={"panel": "f1", "classification": "f2"})
        b = make_record(
            run_id="run-b",
            salts={"panel": "s1'", "classification": "s2"},
            footprints={"panel": "f1'", "classification": "f2"},
            metrics={
                "web.requests": counter(120),  # owned by panel
                "classify.flows{stage=list}": counter(40),  # unchanged
            },
        )
        diff = diff_records(a, b)
        assert diff.changed_salts == ("panel",)
        assert diff.changed_footprints == ("panel",)
        (delta,) = diff.deltas
        assert delta.classification == "code"
        assert delta.stages == ("panel",)
        assert delta.caused_by == ("panel",)
        assert diff.unexplained() == []

    def test_code_change_without_footprints_blames_salts(self):
        b = make_record(
            run_id="run-b",
            salts={"panel": "s1'", "classification": "s2"},
            metrics={
                "web.requests": counter(120),
                "classify.flows{stage=list}": counter(40),
            },
        )
        diff = diff_records(make_record(), b)
        (delta,) = diff.deltas
        assert delta.classification == "code"
        assert delta.caused_by == ("panel",)

    def test_delta_in_untouched_stage_is_drift(self):
        # panel's salt changed, but the delta belongs to classification
        # — a changed salt does not excuse other stages' metrics.
        b = make_record(
            run_id="run-b",
            salts={"panel": "s1'", "classification": "s2"},
            metrics={
                "web.requests": counter(100),
                "classify.flows{stage=list}": counter(99),
            },
        )
        diff = diff_records(make_record(), b)
        (delta,) = diff.deltas
        assert delta.classification == "drift"
        assert delta.stages == ("classification",)

    def test_same_config_same_salts_delta_is_drift(self):
        b = make_record(run_id="run-b", metrics={
            "web.requests": counter(101),
            "classify.flows{stage=list}": counter(40),
        })
        diff = diff_records(make_record(), b)
        (delta,) = diff.deltas
        assert delta.classification == "drift"
        assert diff.unexplained() == [delta]
        assert "UNEXPLAINED DRIFT" in render_diff_text(diff)

    def test_cache_counters_never_drift(self):
        extra = {
            "runtime.cache.hits{stage=panel}": counter(0),
            "runtime.cache.misses{stage=panel}": counter(8),
            "runtime.shards.executed{stage=panel}": counter(8),
        }
        warm = {
            "runtime.cache.hits{stage=panel}": counter(8),
            "runtime.cache.misses{stage=panel}": counter(0),
            "runtime.shards.executed{stage=panel}": counter(0),
        }
        base = make_record()["metrics"]
        a = make_record(metrics={**base, **extra})
        b = make_record(run_id="run-b", metrics={**base, **warm})
        diff = diff_records(a, b)
        assert {d.classification for d in diff.deltas} == {"cache"}
        # runtime.* metrics are attributed via their stage label.
        assert all(d.stages == ("panel",) for d in diff.deltas)
        assert diff.unexplained() == []

    def test_bench_metrics_are_timing(self):
        a = make_record(metrics={
            "bench.time_s{benchmark=t,stat=mean}": {
                "kind": "gauge", "value": 0.5,
            },
        })
        b = make_record(run_id="run-b", metrics={
            "bench.time_s{benchmark=t,stat=mean}": {
                "kind": "gauge", "value": 0.7,
            },
        })
        (delta,) = diff_records(a, b).deltas
        assert delta.classification == "timing"

    def test_metric_missing_on_one_side(self):
        b = make_record(run_id="run-b")
        del b["metrics"]["classify.flows{stage=list}"]
        diff = diff_records(make_record(), b)
        (delta,) = diff.deltas
        assert delta.b is None
        assert delta.classification == "drift"
        assert "(absent)" in render_diff_text(diff)

    def test_timings_section(self):
        b = make_record(run_id="run-b")
        b["stages"][0]["wall_s"] = 3.0
        diff = diff_records(make_record(), b)
        panel = next(t for t in diff.timings if t["stage"] == "panel")
        assert panel["wall_a_s"] == 2.0 and panel["wall_b_s"] == 3.0
        assert panel["wall_delta_pct"] == 50.0

    def test_to_dict_is_json_able(self):
        b = make_record(run_id="run-b", metrics={
            "web.requests": counter(101),
            "classify.flows{stage=list}": counter(40),
        })
        payload = diff_records(make_record(), b).to_dict()
        assert payload["schema"] == "repro.obs/diff/v1"
        assert payload["counts"]["drift"] == 1
        assert len(payload["unexplained"]) == 1
        json.dumps(payload)  # must serialize cleanly


class TestBudgets:
    def write(self, tmp_path, payload):
        path = tmp_path / "budgets.json"
        path.write_text(json.dumps(payload))
        return path

    def test_load_valid(self, tmp_path):
        path = self.write(tmp_path, {
            "schema": BUDGETS_SCHEMA,
            "metrics": {"web.requests": {"min": 1, "max": 1000}},
            "stage_wall_s": {"panel": {"max": 60.0}},
            "total_wall_s": {"max": 120.0},
        })
        assert load_budgets(path)["total_wall_s"] == {"max": 120.0}

    @pytest.mark.parametrize(
        "payload",
        [
            {"schema": "repro.obs/budgets/v0"},
            {"schema": BUDGETS_SCHEMA, "metrics": {"m": {}}},
            {"schema": BUDGETS_SCHEMA, "metrics": {"m": {"max": "big"}}},
            {"schema": BUDGETS_SCHEMA, "metrics": {"m": 5}},
            {"schema": BUDGETS_SCHEMA,
             "metrics": {"m": {"max": 1, "stat": "p9x"}}},
            {"schema": BUDGETS_SCHEMA, "stage_wall_s": "fast"},
            {"schema": BUDGETS_SCHEMA, "total_wall_s": {"stat": "mean"}},
        ],
    )
    def test_load_rejects_malformed(self, tmp_path, payload):
        path = self.write(tmp_path, payload)
        with pytest.raises(ObservabilityError):
            load_budgets(path)

    def test_load_rejects_garbage_file(self, tmp_path):
        path = tmp_path / "budgets.json"
        path.write_text("{nope")
        with pytest.raises(ObservabilityError):
            load_budgets(path)
        with pytest.raises(ObservabilityError):
            load_budgets(tmp_path / "absent.json")

    def test_within_budget_passes(self):
        budgets = {
            "schema": BUDGETS_SCHEMA,
            "metrics": {"web.requests": {"min": 100, "max": 100}},
            "stage_wall_s": {"panel": {"max": 10.0}},
            "total_wall_s": {"max": 10.0},
        }
        record = make_record()
        assert check_budgets(record, budgets) == []
        assert "budgets OK" in render_budget_text(record, [])

    def test_min_max_and_missing_violations(self):
        budgets = {
            "schema": BUDGETS_SCHEMA,
            "metrics": {
                "web.requests": {"min": 500},          # actual 100
                "classify.flows{stage=list}": {"max": 10},  # actual 40
                "never.recorded": {"min": 1},          # absent
            },
            "stage_wall_s": {"panel": {"max": 1.0}},   # actual 2.0
            "total_wall_s": {"max": 2.5},              # actual 3.0
        }
        record = make_record()
        violations = check_budgets(record, budgets)
        by_subject = {v.subject: v for v in violations}
        assert by_subject["web.requests"].bound == "min"
        assert by_subject["classify.flows{stage=list}"].bound == "max"
        assert by_subject["never.recorded"].kind == "missing"
        assert by_subject["stage:panel"].kind == "stage_wall_s"
        assert by_subject["total"].actual == 3.0
        text = render_budget_text(record, violations)
        assert "budget violations" in text
        assert "never.recorded: required by budget but absent" in text

    def test_histogram_stats(self):
        histogram = Histogram(buckets=(0.5, 1.0))
        for value in (0.2, 0.4, 0.6, 0.8, 2.0):
            histogram.observe(value)
        record = make_record(metrics={
            "lat": {"kind": "histogram", "value": histogram.to_value()},
        })
        budgets = {
            "schema": BUDGETS_SCHEMA,
            "metrics": {
                "lat": {"stat": "count", "min": 5, "max": 5},
            },
        }
        assert check_budgets(record, budgets) == []
        for stat, bound in (
            ("mean", {"max": 0.5}),       # mean 0.8
            ("max", {"max": 1.0}),        # max 2.0
            ("min", {"min": 0.3}),        # min 0.2
            ("p95", {"max": 0.5}),        # p95 well above 0.5
        ):
            budgets = {
                "schema": BUDGETS_SCHEMA,
                "metrics": {"lat": dict(bound, stat=stat)},
            }
            assert check_budgets(record, budgets), stat
