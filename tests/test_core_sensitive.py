"""Tests for the sensitive-category study (Sect. 6)."""

import pytest

from repro.core.sensitive import ExaminerPanel, SensitiveStudy
from repro.util.rng import RngStreams
from repro.web.publishers import SENSITIVE_CATEGORIES, Publisher


def make_publisher(domain, category=None, topics=("News",), country="DE"):
    return Publisher(
        domain=domain,
        country=country,
        popularity=1.0,
        topics=tuple(topics),
        sensitive_category=category,
        ad_partners=("ads.x.example",),
        analytics_partners=("m.x.example",),
        clean_partners=("w.x.example",),
    )


class TestExaminerPanel:
    def test_agreement_bounds_validated(self):
        with pytest.raises(ValueError):
            ExaminerPanel(RngStreams(0), n_examiners=2, required_agreement=3)

    def test_sensitive_sites_mostly_caught(self):
        panel = ExaminerPanel(RngStreams(1))
        publisher = make_publisher("p.example", "health", topics=("Health",))
        caught = sum(
            1 for _ in range(300) if panel.review(publisher) is not None
        )
        assert caught / 300 > 0.8

    def test_benign_sites_rarely_flagged(self):
        panel = ExaminerPanel(RngStreams(2))
        publisher = make_publisher("p.example", None)
        flagged = sum(
            1 for _ in range(500) if panel.review(publisher) is not None
        )
        assert flagged / 500 < 0.02

    def test_verdict_category_matches_truth(self):
        panel = ExaminerPanel(RngStreams(3), sensitivity=1.0)
        publisher = make_publisher("p.example", "gambling")
        assert panel.review(publisher) == "gambling"


class TestSensitiveFunnel:
    def _study(self, publishers):
        return SensitiveStudy(publishers, RngStreams(7))

    def test_tagger_catches_unmasked_topics(self):
        publishers = [
            make_publisher("a.example", "health", topics=("health", "News")),
        ]
        study = self._study(publishers)
        identified = study.identify(["a.example"])
        assert identified["a.example"].identified_by == "tagger"
        assert identified["a.example"].category == "health"

    def test_masked_category_refined_to_truth(self):
        """A pregnancy site tagged as "Health" is caught by the tagger
        (health is itself a sensitive term) and refined by inspection."""
        publishers = [
            make_publisher(
                "b.example", "pregnancy", topics=("Health", "News")
            ),
        ]
        study = self._study(publishers)
        identified = study.identify(["b.example"])
        assert identified["b.example"].identified_by == "tagger"
        assert identified["b.example"].category in ("pregnancy", "health")

    def test_manual_review_recovers_fully_masked(self):
        """A gambling site tagged only as "Games" escapes the tagger and
        is recovered by the examiner panel."""
        publishers = [
            make_publisher(
                "c.example", "gambling", topics=("Games", "News")
            ),
        ]
        study = self._study(publishers)
        identified = study.identify(["c.example"])
        if "c.example" in identified:
            assert identified["c.example"].identified_by == "manual"
            assert identified["c.example"].category == "gambling"

    def test_unknown_domains_skipped(self):
        study = self._study([make_publisher("a.example")])
        assert study.identify(["nope.example"]) == {}

    def test_identify_required_before_queries(self):
        study = self._study([make_publisher("a.example")])
        with pytest.raises(RuntimeError):
            study.identified_domains()


class TestOnStudy:
    def test_sensitive_share_in_band(self, small_study):
        share = small_study.sensitive.sensitive_share_pct(
            small_study.tracking_requests()
        )
        # Paper: 2.89%; the small world is noisy but stays low-single-digit.
        assert 0.2 < share < 15.0

    def test_category_shares_sum_to_100(self, small_study):
        shares = small_study.sensitive.category_shares(
            small_study.tracking_requests()
        )
        if shares:
            assert sum(shares.values()) == pytest.approx(100.0)
            assert set(shares) <= set(SENSITIVE_CATEGORIES)

    def test_identified_domains_mostly_truly_sensitive(self, small_study):
        publishers = {p.domain: p for p in small_study.world.publishers}
        identified = small_study.sensitive.identified_domains()
        if not identified:
            pytest.skip("no sensitive domains visited in this small world")
        truly = sum(
            1
            for domain in identified
            if publishers[domain].sensitive_category is not None
        )
        assert truly / len(identified) > 0.9

    def test_destination_regions_per_category(self, small_study):
        per_category = small_study.sensitive.category_destination_regions(
            small_study.tracking_requests(),
            small_study.geolocation.reference,
        )
        for shares in per_category.values():
            assert sum(shares.values()) == pytest.approx(100.0)

    def test_per_country_leakage_consistent(self, small_study):
        leakage = small_study.sensitive.per_country_leakage(
            small_study.tracking_requests(),
            small_study.geolocation.reference,
        )
        for country, (leaked, total) in leakage.items():
            assert 0 <= leaked <= total
            assert country in small_study.world.registry
