"""Tests for repro.util.tables."""

import pytest

from repro.util.tables import format_cell, percent, render_table


class TestFormatCell:
    def test_int_thousands_separator(self):
        assert format_cell(1234567) == "1,234,567"

    def test_float_two_decimals(self):
        assert format_cell(3.14159) == "3.14"

    def test_bool(self):
        assert format_cell(True) == "yes"
        assert format_cell(False) == "no"

    def test_string_passthrough(self):
        assert format_cell("x") == "x"


class TestRenderTable:
    def test_alignment(self):
        text = render_table(["name", "n"], [["a", 1], ["bbbb", 22]])
        lines = text.splitlines()
        assert len({len(line) for line in lines}) == 1  # all same width
        assert "| name" in lines[0]

    def test_title(self):
        text = render_table(["h"], [["v"]], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_row_width_mismatch(self):
        with pytest.raises(ValueError):
            render_table(["a", "b"], [["only-one"]])

    def test_empty_rows_ok(self):
        text = render_table(["a"], [])
        assert "| a" in text


def test_percent_formatting():
    assert percent(12.3456) == "12.35%"
    assert percent(12.3456, digits=1) == "12.3%"
