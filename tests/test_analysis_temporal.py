"""Tests for the temporal analysis and the table/figure builders'
internal consistency."""

import pytest

from repro.analysis.temporal import (
    TrendPoint,
    confinement_trend,
    discovery_curve,
    discovery_saturation_day,
    trend_stability,
)
from repro.core.tracker_ips import TrackerIPInventory, TrackerIPRecord
from repro.netbase.addr import IPAddress
from repro.web.organizations import ServiceRole
from repro.web.requests import ThirdPartyRequest


def make_request(day, ip_text="1.0.0.1", user_country="DE"):
    return ThirdPartyRequest(
        first_party="s.example",
        url="https://t.x.example/p?uid=1",
        referrer="https://s.example/",
        ip=IPAddress.parse(ip_text),
        user_id=1,
        user_country=user_country,
        day=day,
        https=True,
        truth_role=ServiceRole.COOKIE_SYNC,
        truth_org="o",
        truth_country="DE",
        chain_depth=0,
    )


class TestConfinementTrend:
    def test_bucketing(self):
        requests = [
            make_request(5.0, "0.0.0.2"),    # bucket 0, DE (even → confined)
            make_request(35.0, "0.0.0.3"),   # bucket 1, US
            make_request(36.0, "0.0.0.2"),   # bucket 1, DE
        ]
        locate = lambda ip: "DE" if ip.value % 2 == 0 else "US"
        points = confinement_trend(requests, locate, bucket_days=30.0)
        assert len(points) == 2
        assert points[0].n_flows == 1
        assert points[0].confinement_pct == 100.0
        assert points[1].confinement_pct == pytest.approx(50.0)

    def test_non_region_origins_excluded(self):
        requests = [make_request(1.0, user_country="BR")]
        points = confinement_trend(requests, lambda ip: "DE")
        assert points == []

    def test_bad_bucket(self):
        with pytest.raises(ValueError):
            confinement_trend([], lambda ip: None, bucket_days=0)

    def test_stability_metric(self):
        points = [
            TrendPoint(0, 30, 10, 90.0),
            TrendPoint(30, 60, 10, 84.0),
        ]
        assert trend_stability(points) == pytest.approx(6.0)
        assert trend_stability([]) == 0.0

    def test_on_study_stable_over_window(self, small_study):
        """The paper's observation: confinement does not move
        dramatically over the observation window."""
        points = confinement_trend(
            small_study.tracking_requests(),
            small_study.geolocation.reference,
            bucket_days=45.0,
        )
        assert len(points) >= 2
        assert trend_stability(points) < 12.0
        assert all(point.confinement_pct > 70.0 for point in points)


class TestDiscoveryCurve:
    def _inventory(self, first_seen_days):
        inventory = TrackerIPInventory()
        for index, day in enumerate(first_seen_days):
            record = TrackerIPRecord(address=IPAddress.v4(index + 1))
            record.widen_window(day, day + 1)
            inventory._records[record.address] = record  # noqa: SLF001
        return inventory

    def test_cumulative_monotone(self):
        curve = discovery_curve(self._inventory([1, 2, 20, 40, 41]), 15.0)
        counts = [count for _, count in curve]
        assert counts == sorted(counts)
        assert counts[-1] == 5

    def test_empty_inventory(self):
        assert discovery_curve(TrackerIPInventory()) == []
        assert discovery_saturation_day(TrackerIPInventory()) is None

    def test_saturation_day(self):
        inventory = self._inventory([1.0] * 95 + [100.0] * 5)
        assert discovery_saturation_day(
            inventory, coverage=0.95, bucket_days=15.0
        ) == 15.0

    def test_bad_args(self):
        with pytest.raises(ValueError):
            discovery_curve(TrackerIPInventory(), bucket_days=0)
        with pytest.raises(ValueError):
            discovery_saturation_day(TrackerIPInventory(), coverage=0.0)

    def test_on_study_saturates_before_window_end(self, small_study):
        """Most tracker IPs are known well before the panel window ends
        — the justification for the paper's fixed observation period."""
        day = discovery_saturation_day(small_study.inventory, coverage=0.9)
        assert day is not None
        from repro.datasets.builder import BACKGROUND_END_DAY

        assert day < BACKGROUND_END_DAY


class TestArtifactConsistency:
    def test_table2_totals_are_sums(self, small_study):
        from repro.analysis.tables import table2

        artifact = table2(small_study)
        assert artifact["total_requests"] == (
            artifact["abp_requests"] + artifact["semi_requests"]
        )

    def test_figure6_shares_sum(self, small_study):
        from repro.analysis.figures import figure6

        artifact = figure6(small_study)
        assert sum(
            artifact["destination_shares"].values()
        ) == pytest.approx(100.0)

    def test_figure9_shares_sum(self, small_study):
        from repro.analysis.figures import figure9

        artifact = figure9(small_study)
        if artifact["category_shares"]:
            assert sum(
                artifact["category_shares"].values()
            ) == pytest.approx(100.0)

    def test_table5_flow_counts_constant(self, small_study):
        from repro.analysis.tables import table5

        outcomes = table5(small_study)["outcomes"]
        assert len({o.n_flows for o in outcomes}) == 1

    def test_full_report_contains_every_artifact(self, small_study):
        from repro.analysis.report import full_report

        report = full_report(small_study)
        for marker in (
            "Table 1", "Table 2", "Table 3", "Table 4", "Table 5",
            "Table 6", "Table 7", "Table 8", "Table 9",
            "Figure 2", "Figure 3", "Figure 4", "Figure 5", "Figure 6",
            "Figure 7", "Figure 8", "Figure 9", "Figure 10", "Figure 11",
            "Figure 12", "Paper vs measured",
        ):
            assert marker in report
