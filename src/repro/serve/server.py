"""The study service: routes, transport and process lifecycle.

:class:`StudyServer` binds its listening socket explicitly (the one
socket the I902 carve-out sanctions — ``SO_REUSEADDR``, port ``0``
means "pick an ephemeral port", published as ``server.port`` once
bound) and hands it to ``asyncio.start_server``; every connection is
one request (``Connection: close``), parsed and answered by the
handlers below.

Endpoints (see ``docs/service.md`` for the full reference)::

    GET  /healthz                     liveness
    GET  /metrics                     job counts + registry snapshot
                                      (?format=prometheus or an Accept
                                      preferring text/plain switches to
                                      the Prometheus text exposition)
    GET  /profile?seconds=N           sample the service's own stacks
                                      for N seconds -> speedscope JSON
    POST /studies                     submit a config     -> 202 job
    GET  /studies                     all jobs, oldest first
    GET  /studies/{job_id}            one job document
    GET  /studies/{job_id}/events     SSE progress stream
    GET  /runs                        ledger summaries
    GET  /runs/{selector}             one ledger record
    GET  /runs/{a}/diff/{b}           classified metric deltas
    GET  /runs/{selector}/check       budgets gate (needs --budgets)
    PUT  /baseline                    point the baseline selector

Error taxonomy → status codes: :class:`~repro.serve.http.HttpError`
carries its own status; a full queue is 503; any other
:class:`~repro.errors.ServeError`/:class:`~repro.errors.ConfigError`
(bad submission) is 400; :class:`~repro.errors.ObservabilityError`
(missing ledger, unresolvable selector) is 404.  Handlers never leak
tracebacks onto the wire.

:meth:`StudyServer.run` is the blocking entry point the CLI uses; it
owns an event loop until :meth:`request_stop` (thread-safe) or
``KeyboardInterrupt`` ends it, then drains the job executor before the
loop closes.
"""

from __future__ import annotations

import asyncio
import os
import socket
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.errors import ConfigError, ObservabilityError, ServeError
from repro.obs import names as obs_names
from repro.obs.diff import (
    check_budgets,
    diff_records,
    load_budgets,
)
from repro.obs.ledger import (
    ledger_path,
    load_ledger,
    read_baseline,
    select_record,
    write_baseline,
)
from repro.obs.export import PROMETHEUS_CONTENT_TYPE, prometheus_text
from repro.obs.metrics import MetricsRegistry
from repro.obs.persist import append_jsonl_line
from repro.obs.profile import (
    DEFAULT_HZ,
    SamplingProfiler,
    speedscope_document,
)
from repro.serve.http import (
    HttpError,
    RawResponse,
    Request,
    Router,
    json_response,
    read_request,
    response_head,
)
from repro.serve.jobs import JobManager, JobQueueFullError
from repro.serve.sse import SSE_CONTENT_TYPE, encode_comment, encode_event


class StudyServer:
    """The always-on study service over one shared cache directory."""

    def __init__(
        self,
        cache_dir: str,
        host: str = "127.0.0.1",
        port: int = 0,
        workers: int = 1,
        job_limit: int = 1,
        queue_limit: int = 8,
        budgets: Optional[str] = None,
        log_path: Optional[str] = None,
    ) -> None:
        self.cache_dir = cache_dir
        self.host = host
        self.port = port
        self.budgets = budgets
        self.log_path = log_path
        self.registry = MetricsRegistry()
        self.jobs = JobManager(
            cache_dir=cache_dir,
            workers=workers,
            job_limit=job_limit,
            queue_limit=queue_limit,
            registry=self.registry,
        )
        self._server: Optional[asyncio.AbstractServer] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop_event: Optional[asyncio.Event] = None
        self._router = Router()
        # Literal-suffix routes first: registration order is match order.
        self._router.add("GET", "/healthz", self._get_healthz)
        self._router.add("GET", "/metrics", self._get_metrics)
        self._router.add("GET", "/profile", self._get_profile)
        self._router.add("POST", "/studies", self._post_studies)
        self._router.add("GET", "/studies", self._get_studies)
        self._router.add(
            "GET", "/studies/{job_id}/events", self._get_study_events
        )
        self._router.add("GET", "/studies/{job_id}", self._get_study)
        self._router.add("GET", "/runs", self._get_runs)
        self._router.add("GET", "/runs/{a}/diff/{b}", self._get_diff)
        self._router.add("GET", "/runs/{selector}/check", self._get_check)
        self._router.add("GET", "/runs/{selector}", self._get_run)
        self._router.add("PUT", "/baseline", self._put_baseline)
        self._streaming = {self._get_study_events}

    # -- lifecycle -------------------------------------------------------
    async def start(self) -> None:
        """Bind the socket, start the acceptor and the job workers."""
        await self.jobs.start()
        # The explicit socket (rather than host=/port= on start_server)
        # is deliberate: binding first means the ephemeral port is known
        # and published before the first connection, and the server owns
        # exactly one sanctioned network touchpoint.
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        try:
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            sock.bind((self.host, self.port))
        except OSError as exc:
            sock.close()
            raise ServeError(
                f"cannot bind {self.host}:{self.port}: {exc}"
            ) from exc
        sock.listen(128)
        sock.setblocking(False)
        self.port = sock.getsockname()[1]
        self._server = await asyncio.start_server(
            self._handle_connection, sock=sock
        )

    async def stop(self) -> None:
        """Stop accepting, then drain the job workers and executor."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.jobs.stop()

    def run(
        self, on_ready: Optional[Callable[["StudyServer"], None]] = None
    ) -> None:
        """Blocking entry point: serve until :meth:`request_stop`.

        ``on_ready`` fires on the loop thread once the socket is bound
        (``server.port`` is final) — the hook the CLI prints its
        "listening on" line from and the smoke harness unblocks on.
        """
        asyncio.run(self._serve(on_ready))

    async def _serve(
        self, on_ready: Optional[Callable[["StudyServer"], None]]
    ) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        await self.start()
        try:
            if on_ready is not None:
                on_ready(self)
            await self._stop_event.wait()
        finally:
            await self.stop()

    def request_stop(self) -> None:
        """Thread-safe shutdown signal for a :meth:`run` in flight."""
        if self._loop is None or self._stop_event is None:
            raise ServeError("server is not running")
        self._loop.call_soon_threadsafe(self._stop_event.set)

    # -- connection handling ---------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        route = "(unrouted)"
        status = 500
        request: Optional[Request] = None
        try:
            try:
                request = await read_request(reader)
                if request is None:
                    return
                handler, params, route = self._router.match(
                    request.method, request.path
                )
                self.registry.counter(
                    obs_names.SERVE_HTTP_REQUESTS, route=route
                ).inc()
                if handler in self._streaming:
                    status = await handler(request, params, writer)
                else:
                    status, payload = await handler(request, params)
                    if isinstance(payload, RawResponse):
                        writer.write(
                            response_head(
                                status,
                                content_type=payload.content_type,
                                content_length=len(payload.body),
                            )
                            + payload.body
                        )
                    else:
                        writer.write(json_response(status, payload))
            except HttpError as exc:
                status = exc.status
                writer.write(json_response(status, {"error": str(exc)}))
            except JobQueueFullError as exc:
                status = 503
                writer.write(json_response(status, {"error": str(exc)}))
            except (ConfigError, ServeError) as exc:
                status = 400
                writer.write(json_response(status, {"error": str(exc)}))
            except ObservabilityError as exc:
                status = 404
                writer.write(json_response(status, {"error": str(exc)}))
            await writer.drain()
            try:
                # The access log appends to a file: off the loop thread.
                await asyncio.get_running_loop().run_in_executor(
                    None, self._log, request, route, status
                )
            except asyncio.CancelledError:
                # Loop teardown can cancel the off-thread append after
                # the response went out; drop the log line rather than
                # end the task cancelled — asyncio's streams protocol
                # callback calls task.exception() on it and would spray
                # the cancellation as an unhandled-callback traceback.
                return
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                # The peer hanging up mid-close is its business.
                pass

    def _log(
        self, request: Optional[Request], route: str, status: int
    ) -> None:
        if self.log_path is None or request is None:
            return
        append_jsonl_line(self.log_path, {
            "method": request.method,
            "path": request.path,
            "route": route,
            "status": status,
        })

    # -- service handlers ------------------------------------------------
    async def _get_healthz(
        self, request: Request, params: Dict[str, str]
    ) -> Tuple[int, Any]:
        return 200, {
            "status": "ok",
            "cache_dir": self.cache_dir,
            "workers": self.jobs.workers,
            "job_limit": self.jobs.job_limit,
            "queue_limit": self.jobs.queue_limit,
        }

    async def _get_metrics(
        self, request: Request, params: Dict[str, str]
    ) -> Tuple[int, Any]:
        fmt = request.query.get("format")
        if fmt not in (None, "json", "prometheus"):
            raise HttpError(
                400,
                f"unknown metrics format {fmt!r} "
                "(expected 'json' or 'prometheus')",
            )
        accept = request.headers.get("accept", "")
        if fmt == "prometheus" or (
            fmt is None and "text/plain" in accept
        ):
            body = prometheus_text(self.registry.to_dict())
            return 200, RawResponse(
                body=body.encode("utf-8"),
                content_type=PROMETHEUS_CONTENT_TYPE,
            )
        counts = self.jobs.counts()
        return 200, {
            "jobs": counts,
            "warm_hit_rate": self.jobs.warm_hit_rate,
            "metrics": self.registry.to_dict(),
        }

    def _sample_profile(self, seconds: float, hz: float):
        """Blocking stack sampling — runs on the executor, never the
        loop thread, so the service keeps serving while it profiles
        itself (the sampler observes the loop thread among others)."""
        profiler = SamplingProfiler(hz=hz)
        return profiler.sample_for(seconds)

    async def _get_profile(
        self, request: Request, params: Dict[str, str]
    ) -> Tuple[int, Any]:
        try:
            seconds = float(request.query.get("seconds", "1"))
            hz = float(request.query.get("hz", str(DEFAULT_HZ)))
        except ValueError as exc:
            raise HttpError(
                400, f"seconds/hz must be numbers: {exc}"
            ) from exc
        if not 0 < seconds <= 30:
            raise HttpError(
                400, f"seconds must be in (0, 30], got {seconds}"
            )
        if not 0 < hz <= 10000:
            raise HttpError(400, f"hz must be in (0, 10000], got {hz}")
        profile = await asyncio.get_running_loop().run_in_executor(
            None, self._sample_profile, seconds, hz
        )
        return 200, speedscope_document(
            profile, name=f"repro serve ({seconds:g}s @ {hz:g}hz)"
        )

    # -- study handlers --------------------------------------------------
    async def _post_studies(
        self, request: Request, params: Dict[str, str]
    ) -> Tuple[int, Any]:
        job = self.jobs.submit(request.json())
        return 202, job.to_payload()

    async def _get_studies(
        self, request: Request, params: Dict[str, str]
    ) -> Tuple[int, Any]:
        return 200, {
            "jobs": [
                self.jobs.jobs[job_id].to_payload()
                for job_id in self.jobs.order
            ],
        }

    def _job_or_404(self, job_id: str):
        job = self.jobs.get(job_id)
        if job is None:
            raise HttpError(404, f"no job {job_id!r}")
        return job

    async def _get_study(
        self, request: Request, params: Dict[str, str]
    ) -> Tuple[int, Any]:
        return 200, self._job_or_404(params["job_id"]).to_payload()

    async def _get_study_events(
        self,
        request: Request,
        params: Dict[str, str],
        writer: asyncio.StreamWriter,
    ) -> int:
        """SSE: replay the job's history, then stream until terminal."""
        job = self._job_or_404(params["job_id"])
        writer.write(response_head(200, content_type=SSE_CONTENT_TYPE))
        writer.write(encode_comment(f"repro.serve events for job {job.job_id}"))
        queue = self.jobs.subscribe(job)
        try:
            # Subscribe-then-replay on the loop thread: no event can
            # land between the history snapshot and the live queue.
            seen = len(job.events)
            for event in job.events[:seen]:
                writer.write(encode_event(event))
            await writer.drain()
            terminal = any(
                event["event"] == "job:done" for event in job.events[:seen]
            )
            while not terminal:
                event = await queue.get()
                writer.write(encode_event(event))
                await writer.drain()
                terminal = event["event"] == "job:done"
        finally:
            self.jobs.unsubscribe(job, queue)
        return 200

    # -- ledger handlers -------------------------------------------------
    def _ledger(self) -> Tuple[str, List[Dict[str, Any]], Optional[str]]:
        """Blocking ledger read; handlers call it via ``run_in_executor``
        so the loop thread never touches the filesystem."""
        path = ledger_path(self.cache_dir)
        records = load_ledger(path)
        return path, records, read_baseline(path)

    async def _get_runs(
        self, request: Request, params: Dict[str, str]
    ) -> Tuple[int, Any]:
        path = ledger_path(self.cache_dir)
        if not os.path.exists(path):
            # A service that has not run anything yet has an empty
            # history, not a missing one.
            return 200, {"ledger": path, "baseline": None, "runs": []}
        _path, records, baseline_id = await asyncio.get_running_loop(
        ).run_in_executor(None, self._ledger)
        return 200, {
            "ledger": path,
            "baseline": baseline_id,
            "runs": [
                {
                    "seq": record["seq"],
                    "run_id": record["run_id"],
                    "kind": record["kind"],
                    "config_digest": record.get("config", {}).get("digest"),
                    "workers": record.get("workers"),
                    "wall_s": round(sum(
                        float(stage.get("wall_s", 0.0))
                        for stage in record.get("stages", ())
                    ), 6),
                }
                for record in records
            ],
        }

    async def _get_run(
        self, request: Request, params: Dict[str, str]
    ) -> Tuple[int, Any]:
        _path, records, baseline_id = await asyncio.get_running_loop(
        ).run_in_executor(None, self._ledger)
        return 200, select_record(records, params["selector"], baseline_id)

    async def _get_diff(
        self, request: Request, params: Dict[str, str]
    ) -> Tuple[int, Any]:
        _path, records, baseline_id = await asyncio.get_running_loop(
        ).run_in_executor(None, self._ledger)
        record_a = select_record(records, params["a"], baseline_id)
        record_b = select_record(records, params["b"], baseline_id)
        return 200, diff_records(record_a, record_b).to_dict()

    async def _get_check(
        self, request: Request, params: Dict[str, str]
    ) -> Tuple[int, Any]:
        if self.budgets is None:
            raise HttpError(
                400, "no budgets file configured (start with --budgets)"
            )
        loop = asyncio.get_running_loop()
        _path, records, baseline_id = await loop.run_in_executor(
            None, self._ledger
        )
        record = select_record(records, params["selector"], baseline_id)
        budgets = await loop.run_in_executor(
            None, load_budgets, self.budgets
        )
        violations = check_budgets(record, budgets)
        return 200, {
            "run_id": record["run_id"],
            "ok": not violations,
            "violations": [violation.to_dict() for violation in violations],
        }

    async def _put_baseline(
        self, request: Request, params: Dict[str, str]
    ) -> Tuple[int, Any]:
        body = request.json()
        if not isinstance(body, dict) or not isinstance(
            body.get("selector"), str
        ):
            raise HttpError(
                400, 'baseline body must be {"selector": "<record>"}'
            )
        loop = asyncio.get_running_loop()
        path, records, baseline_id = await loop.run_in_executor(
            None, self._ledger
        )
        record = select_record(records, body["selector"], baseline_id)
        await loop.run_in_executor(
            None, write_baseline, path, record["run_id"]
        )
        return 200, {"baseline": record["run_id"], "seq": record["seq"]}
