"""Hand-rolled HTTP/1.1 over asyncio streams.

``http.server`` is thread-per-request and hostile to SSE; frameworks
are off the table (the tree is stdlib-only).  What the service actually
needs from HTTP is small: parse one request from a stream pair, match
it against a handful of literal-and-capture route patterns, and render
a response — either a complete JSON document or a streamed event body.
This module is exactly that and nothing more; connections are
``Connection: close`` (one request per connection), which keeps the
parser single-shot and makes client EOF the end-of-stream signal SSE
consumers already expect.

Errors are :class:`repro.errors.HttpError` — a
:class:`~repro.errors.ServeError` carrying the status code (re-exported
here) — so transport failures stay inside the repo's exception taxonomy
while the server maps them onto the wire.
"""

from __future__ import annotations

import json
import urllib.parse
from asyncio import IncompleteReadError, LimitOverrunError, StreamReader
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Tuple

from repro.errors import HttpError, ServeError

__all__ = [
    "HttpError",
    "MAX_BODY_BYTES",
    "RawResponse",
    "Request",
    "Router",
    "STATUS_PHRASES",
    "json_response",
    "read_request",
    "response_head",
]

#: request bodies beyond this are rejected with 413
MAX_BODY_BYTES = 1 << 22

#: reason phrases for the statuses the service emits
STATUS_PHRASES = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


@dataclass
class Request:
    """One parsed HTTP request."""

    method: str
    path: str
    query: Dict[str, str] = field(default_factory=dict)
    headers: Dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    def json(self) -> Any:
        """The body as JSON (:class:`HttpError` 400 on malformed)."""
        if not self.body:
            raise HttpError(400, "request body is empty; expected JSON")
        try:
            return json.loads(self.body.decode("utf-8"))
        except (UnicodeDecodeError, ValueError) as exc:
            raise HttpError(
                400, f"request body is not valid JSON: {exc}"
            ) from exc


async def read_request(
    reader: StreamReader, max_body: int = MAX_BODY_BYTES
) -> "Request | None":
    """Parse one request off the stream; ``None`` on immediate EOF.

    Malformed request lines, unparseable headers, bad Content-Length
    and oversized bodies raise :class:`HttpError` with the appropriate
    4xx status.  A connection the peer closed before sending anything
    is a normal event, not an error.
    """
    try:
        start_line = await reader.readline()
    except (LimitOverrunError, ValueError) as exc:
        raise HttpError(400, f"request line too long: {exc}") from exc
    if not start_line:
        return None
    parts = start_line.decode("latin-1").strip().split()
    if len(parts) != 3 or not parts[2].startswith("HTTP/"):
        raise HttpError(400, f"malformed request line: {start_line!r}")
    method, target, _version = parts

    headers: Dict[str, str] = {}
    while True:
        line = await reader.readline()
        if not line:
            raise HttpError(400, "connection closed inside request headers")
        text = line.decode("latin-1").strip()
        if not text:
            break
        if ":" not in text:
            raise HttpError(400, f"malformed header line: {text!r}")
        name, value = text.split(":", 1)
        headers[name.strip().lower()] = value.strip()

    body = b""
    if "content-length" in headers:
        try:
            length = int(headers["content-length"])
        except ValueError as exc:
            raise HttpError(
                400, f"bad Content-Length {headers['content-length']!r}"
            ) from exc
        if length < 0:
            raise HttpError(400, f"bad Content-Length {length}")
        if length > max_body:
            raise HttpError(
                413, f"request body of {length} bytes exceeds {max_body}"
            )
        try:
            body = await reader.readexactly(length)
        except IncompleteReadError as exc:
            raise HttpError(
                400,
                f"connection closed inside request body "
                f"({len(exc.partial)}/{length} bytes)",
            ) from exc

    split = urllib.parse.urlsplit(target)
    query = dict(urllib.parse.parse_qsl(split.query, keep_blank_values=True))
    return Request(
        method=method.upper(),
        path=urllib.parse.unquote(split.path) or "/",
        query=query,
        headers=headers,
        body=body,
    )


def response_head(
    status: int,
    content_type: str = "application/json",
    content_length: "int | None" = None,
) -> bytes:
    """Status line + headers (+ blank line) for one response."""
    phrase = STATUS_PHRASES.get(status, "Unknown")
    lines = [
        f"HTTP/1.1 {status} {phrase}",
        f"Content-Type: {content_type}; charset=utf-8",
        "Connection: close",
        "Cache-Control: no-store",
    ]
    if content_length is not None:
        lines.append(f"Content-Length: {content_length}")
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")


@dataclass
class RawResponse:
    """A non-JSON handler payload: pre-encoded body + its content type.

    Handlers normally return ``(status, payload)`` with a JSON-able
    payload; returning ``(status, RawResponse(...))`` instead makes the
    server write the body verbatim under the given Content-Type — the
    Prometheus text exposition of ``GET /metrics`` rides on this.
    """

    body: bytes
    content_type: str


def json_response(status: int, payload: Any) -> bytes:
    """A complete JSON response (head + document)."""
    body = (
        json.dumps(payload, indent=1, sort_keys=True) + "\n"
    ).encode("utf-8")
    return response_head(status, content_length=len(body)) + body


#: a route pattern: literal segments and ``{name}`` captures
RoutePattern = Tuple[str, ...]


class Router:
    """Method + path-pattern dispatch over a fixed route table.

    Patterns are literal paths whose ``{name}`` segments capture one
    path segment each: ``/runs/{a}/diff/{b}`` matches ``/runs/0/diff/1``
    with ``{"a": "0", "b": "1"}``.  Literal segments always win over
    captures because patterns are matched in registration order and the
    route table registers its literal-suffix routes first.
    """

    def __init__(self) -> None:
        self._routes: List[Tuple[str, RoutePattern, str, Callable]] = []

    def add(self, method: str, pattern: str, handler: Callable) -> None:
        if not pattern.startswith("/"):
            raise ServeError(f"route pattern must start with '/': {pattern!r}")
        segments = tuple(pattern.strip("/").split("/")) if pattern != "/" else ()
        self._routes.append((method.upper(), segments, pattern, handler))

    def match(
        self, method: str, path: str
    ) -> Tuple[Callable, Dict[str, str], str]:
        """``(handler, captures, pattern)`` for one request target.

        Unknown paths are 404; a known path reached with the wrong
        method is 405 (listing the methods that would have worked).
        """
        segments = tuple(path.strip("/").split("/")) if path != "/" else ()
        allowed: List[str] = []
        for route_method, route_segments, pattern, handler in self._routes:
            captures = _match_segments(route_segments, segments)
            if captures is None:
                continue
            if route_method != method.upper():
                allowed.append(route_method)
                continue
            return handler, captures, pattern
        if allowed:
            raise HttpError(
                405,
                f"{method} not allowed on {path} "
                f"(allowed: {', '.join(sorted(set(allowed)))})",
            )
        raise HttpError(404, f"no route matches {path}")


def _match_segments(
    pattern: RoutePattern, segments: Tuple[str, ...]
) -> "Dict[str, str] | None":
    if len(pattern) != len(segments):
        return None
    captures: Dict[str, str] = {}
    for expected, actual in zip(pattern, segments):
        if expected.startswith("{") and expected.endswith("}"):
            if not actual:
                return None
            captures[expected[1:-1]] = actual
        elif expected != actual:
            return None
    return captures
