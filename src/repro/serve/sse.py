"""Server-Sent Events framing.

One event on the wire is a few ``field: value`` lines and a blank-line
terminator::

    id: 3
    event: span:end
    data: {"data":{"span":"stage:panel","wall_s":0.41},...}

:func:`encode_event` renders a ``repro.serve/event/v1`` payload (see
:mod:`repro.serve.schemas`) into that frame; :func:`decode_events` is
the exact inverse, used by the smoke/load clients and the tests so both
directions of the protocol live — and are locked — together.  The
``data`` field always carries the *whole* event payload as one compact
JSON object, so a consumer never needs the ``id``/``event`` lines to
reconstruct the event.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Mapping

from repro.errors import ServeError

#: the media type SSE responses must carry
SSE_CONTENT_TYPE = "text/event-stream"


def encode_event(payload: Mapping[str, Any]) -> bytes:
    """One SSE frame from a ``repro.serve/event/v1`` payload.

    The payload's ``event`` name becomes the ``event:`` field and its
    per-job sequence number the ``id:`` field; the full payload is the
    single-line ``data:`` field.  Compact JSON contains no raw
    newlines, so one ``data:`` line always suffices.
    """
    for key in ("event", "seq"):
        if key not in payload:
            raise ServeError(f"SSE payload is missing {key!r}")
    data = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return (
        f"id: {payload['seq']}\n"
        f"event: {payload['event']}\n"
        f"data: {data}\n\n"
    ).encode("utf-8")


def encode_comment(text: str) -> bytes:
    """An SSE comment frame (ignored by clients; keeps streams warm)."""
    if "\n" in text:
        raise ServeError("SSE comments must be single-line")
    return f": {text}\n\n".encode("utf-8")


def decode_events(raw: str) -> List[Dict[str, Any]]:
    """Parse an SSE stream back into its ``data`` payloads, in order.

    Comment frames are skipped.  A frame without a ``data`` field, or
    whose data is not a JSON object, raises :class:`ServeError` — the
    serve protocol always ships the full event payload in ``data``.
    """
    events: List[Dict[str, Any]] = []
    for frame in raw.split("\n\n"):
        lines = [line for line in frame.split("\n") if line]
        if not lines or all(line.startswith(":") for line in lines):
            continue
        data_lines = [
            line[len("data:"):].strip()
            for line in lines
            if line.startswith("data:")
        ]
        if not data_lines:
            raise ServeError(f"SSE frame carries no data field: {frame!r}")
        try:
            payload = json.loads("\n".join(data_lines))
        except ValueError as exc:
            raise ServeError(
                f"SSE data is not valid JSON: {exc}"
            ) from exc
        if not isinstance(payload, dict):
            raise ServeError(
                f"SSE data must be a JSON object, got "
                f"{type(payload).__name__}"
            )
        events.append(payload)
    return events
