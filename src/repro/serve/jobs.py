"""The job queue: bounded scheduling of studies onto the runtime engine.

One :class:`JobManager` owns a bounded ``asyncio.Queue`` of accepted
submissions, a fixed pool of worker coroutines (the concurrent-job
limit) and a thread-pool executor the blocking
:func:`repro.runtime.run_study` calls run on — each of which may fan
out further across the engine's *process* pool (``--workers``).  Every
job runs against the server's one shared content-addressed cache
directory, so a config the service has seen before replays warm no
matter which worker picks it up.

The lifecycle is a strict state machine::

    queued -> running -> done
                      -> failed

with the transitions published as ``repro.serve/event/v1`` events on
the job's stream: ``job:queued``, ``job:start``, then live
``span:start``/``span:end`` pairs sourced from a
:class:`~repro.obs.CallbackTracer` threaded into the engine (the
``serve:job`` wrapper span, the engine's ``run``/``world:build`` spans
and every ``stage:*`` span with its wall time), and finally the
terminal ``job:done`` carrying either the result summary — cache
hits/misses, the warm hit rate, the appended ledger record's identity,
headline study numbers — or the error message.

Job ids are deterministic: a content hash of the config digest and the
submission sequence number, no wall clock, no randomness — resubmitting
the same configs to a fresh server yields the same ids.

The engine runs on executor threads while subscribers live on the event
loop; the tracer callback hops events across with
``loop.call_soon_threadsafe``, the only cross-thread touchpoint.
"""

from __future__ import annotations

import asyncio
import hashlib
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.errors import ReproError, ServeError
from repro.obs import names as obs_names
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import CallbackTracer, Span
from repro.serve.schemas import (
    JOB_SCHEMA,
    config_from_payload,
    event_payload,
)

#: the lifecycle states, in order; the last two are terminal
JOB_STATES = ("queued", "running", "done", "failed")

#: span names forwarded onto a job's SSE stream (the engine's coarse
#: structure; per-shard detail stays out of the event feed)
_STREAMED_SPANS = ("serve:job", "run", "world:build")


class JobQueueFullError(ServeError):
    """Raised when a submission finds the bounded queue at capacity;
    the HTTP layer maps it to 503."""


def job_id_for(config_digest: str, seq: int) -> str:
    """Deterministic job identity: content hash of config + seq."""
    digest = hashlib.blake2b(digest_size=6)
    digest.update(f"{config_digest}#{seq}".encode("utf-8"))
    return digest.hexdigest()


def _streamed(name: str) -> bool:
    return name in _STREAMED_SPANS or name.startswith("stage:")


@dataclass
class Job:
    """One scheduled study and its event history."""

    job_id: str
    seq: int
    config: Any
    state: str = "queued"
    events: List[Dict[str, Any]] = field(default_factory=list)
    subscribers: List["asyncio.Queue[Dict[str, Any]]"] = field(
        default_factory=list
    )
    result: Optional[Dict[str, Any]] = None
    error: Optional[str] = None

    @property
    def terminal(self) -> bool:
        return self.state in ("done", "failed")

    def to_payload(self) -> Dict[str, Any]:
        """The job as a ``repro.serve/job/v1`` document."""
        payload: Dict[str, Any] = {
            "schema": JOB_SCHEMA,
            "job_id": self.job_id,
            "seq": self.seq,
            "state": self.state,
            "config": {
                "digest": self.config.digest(),
                "seed": self.config.seed,
            },
            "n_events": len(self.events),
        }
        if self.result is not None:
            payload["result"] = self.result
        if self.error is not None:
            payload["error"] = self.error
        return payload


class JobManager:
    """Bounded scheduling of submissions onto the runtime facade."""

    def __init__(
        self,
        cache_dir: str,
        workers: int = 1,
        job_limit: int = 1,
        queue_limit: int = 8,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        if job_limit < 1:
            raise ServeError(f"job_limit must be >= 1, got {job_limit}")
        if queue_limit < 1:
            # asyncio treats maxsize<=0 as unbounded; the service's
            # backpressure contract requires a real bound.
            raise ServeError(f"queue_limit must be >= 1, got {queue_limit}")
        self.cache_dir = cache_dir
        self.workers = workers
        self.job_limit = job_limit
        self.queue_limit = queue_limit
        self.registry = registry if registry is not None else MetricsRegistry()
        self.jobs: Dict[str, Job] = {}
        self.order: List[str] = []
        self.warm_hit_rate = 0.0
        self._seq = 0
        self._queue: "Optional[asyncio.Queue[Job]]" = None
        self._executor: Optional[ThreadPoolExecutor] = None
        self._tasks: List["asyncio.Task[None]"] = []
        self._loop: Optional[asyncio.AbstractEventLoop] = None

    # -- lifecycle -------------------------------------------------------
    async def start(self) -> None:
        """Create the queue and the worker pool on the running loop."""
        self._loop = asyncio.get_running_loop()
        self._queue = asyncio.Queue(maxsize=self.queue_limit)
        self._executor = ThreadPoolExecutor(
            max_workers=self.job_limit, thread_name_prefix="repro-serve-job"
        )
        self._tasks = [
            asyncio.ensure_future(self._worker())
            for _ in range(self.job_limit)
        ]

    async def stop(self) -> None:
        """Cancel the workers and drain the executor.

        The executor is shut down *before* the event loop goes away, so
        a tracer callback on a straggling engine thread can always land
        its ``call_soon_threadsafe`` handoff.
        """
        for task in self._tasks:
            task.cancel()
        for task in self._tasks:
            try:
                await task
            except asyncio.CancelledError:
                pass
        self._tasks = []
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    # -- submission ------------------------------------------------------
    def submit(self, payload: Any) -> Job:
        """Validate a submission and enqueue it; returns the new job.

        Raises :class:`~repro.errors.ServeError` (or
        :class:`~repro.errors.ConfigError`) on a bad payload and
        :class:`JobQueueFullError` when the bounded queue is full —
        validation happens *before* a queue slot is claimed, so a
        malformed body never occupies capacity.
        """
        if self._queue is None:
            raise ServeError("job manager is not started")
        config = config_from_payload(payload)
        job = Job(
            job_id=job_id_for(config.digest(), self._seq),
            seq=self._seq,
            config=config,
        )
        try:
            self._queue.put_nowait(job)
        except asyncio.QueueFull:
            self.registry.counter(obs_names.SERVE_JOBS_REJECTED).inc()
            raise JobQueueFullError(
                f"job queue is full ({self.queue_limit} waiting); retry later"
            ) from None
        self._seq += 1
        self.jobs[job.job_id] = job
        self.order.append(job.job_id)
        self.registry.counter(obs_names.SERVE_JOBS_SUBMITTED).inc()
        self._emit(job, "job:queued", {
            "state": job.state,
            "config_digest": job.config.digest(),
            "seed": job.config.seed,
        })
        self._refresh_gauges()
        return job

    def get(self, job_id: str) -> Optional[Job]:
        return self.jobs.get(job_id)

    def counts(self) -> Dict[str, int]:
        """Jobs per lifecycle state (all states present, zero-filled)."""
        counts = {state: 0 for state in JOB_STATES}
        for job in self.jobs.values():
            counts[job.state] += 1
        return counts

    # -- execution -------------------------------------------------------
    async def _worker(self) -> None:
        assert self._queue is not None
        while True:
            job = await self._queue.get()
            try:
                await self._run_job(job)
            finally:
                self._queue.task_done()

    async def _run_job(self, job: Job) -> None:
        assert self._loop is not None and self._executor is not None
        job.state = "running"
        self._refresh_gauges()
        self._emit(job, "job:start", {"state": job.state})
        loop = self._loop

        def progress(phase: str, span: Span) -> None:
            # Engine-thread side of the handoff; the loop outlives the
            # executor (see stop()), so the schedule always succeeds.
            if not _streamed(span.name):
                return
            data: Dict[str, Any] = {
                "span": span.name,
                "attrs": {key: span.attrs[key] for key in sorted(span.attrs)},
            }
            if phase == "end":
                data["wall_s"] = round(span.wall_s, 6)
            loop.call_soon_threadsafe(
                self._emit, job, f"span:{phase}", data
            )

        try:
            summary = await loop.run_in_executor(
                self._executor, self._execute, job, progress
            )
        except ReproError as exc:
            job.state = "failed"
            job.error = str(exc)
            self.registry.counter(
                obs_names.SERVE_JOBS_COMPLETED, outcome="failed"
            ).inc()
            self._emit(job, "job:done", {
                "state": job.state, "error": job.error,
            })
        else:
            job.state = "done"
            job.result = summary
            self.warm_hit_rate = summary["warm_hit_rate"]
            self.registry.counter(
                obs_names.SERVE_JOBS_COMPLETED, outcome="done"
            ).inc()
            self.registry.gauge(obs_names.SERVE_WARM_HIT_RATE).set(
                self.warm_hit_rate
            )
            self._emit(job, "job:done", dict(summary, state=job.state))
        self._refresh_gauges()

    def _execute(self, job: Job, progress: Any) -> Dict[str, Any]:
        """Run one study on an executor thread; returns the summary."""
        from repro.runtime.facade import run_study

        tracer = CallbackTracer(progress)
        with tracer.span(obs_names.SPAN_SERVE_JOB, job=job.job_id):
            run = run_study(
                job.config,
                workers=self.workers,
                cache_dir=self.cache_dir,
                tracer=tracer,
            )
        hits, misses = run.cache_hits, run.cache_misses
        probes = hits + misses
        summary: Dict[str, Any] = {
            "cache_hits": hits,
            "cache_misses": misses,
            "warm_hit_rate": round(hits / probes, 6) if probes else 0.0,
            "headline": {
                "table2_total": run.table2_counts()["total"],
                "eu28_destination_regions": run.eu28_destination_regions(),
            },
        }
        if run.ledger_record is not None:
            summary["ledger"] = {
                "run_id": run.ledger_record["run_id"],
                "seq": run.ledger_record["seq"],
            }
        return summary

    # -- events ----------------------------------------------------------
    def subscribe(self, job: Job) -> "asyncio.Queue[Dict[str, Any]]":
        """A queue receiving the job's *future* events (loop thread only;
        replay the ``job.events`` history first)."""
        queue: "asyncio.Queue[Dict[str, Any]]" = asyncio.Queue()
        job.subscribers.append(queue)
        return queue

    def unsubscribe(
        self, job: Job, queue: "asyncio.Queue[Dict[str, Any]]"
    ) -> None:
        if queue in job.subscribers:
            job.subscribers.remove(queue)

    def _emit(self, job: Job, event: str, data: Dict[str, Any]) -> None:
        payload = event_payload(event, job.job_id, len(job.events), data)
        job.events.append(payload)
        for queue in list(job.subscribers):
            queue.put_nowait(payload)

    def _refresh_gauges(self) -> None:
        counts = self.counts()
        self.registry.gauge(obs_names.SERVE_JOBS_QUEUED).set(counts["queued"])
        self.registry.gauge(obs_names.SERVE_JOBS_RUNNING).set(
            counts["running"]
        )
