"""The service's wire schemas: submissions, jobs and progress events.

Two document kinds cross the serve API:

* ``repro.serve/job/v1`` — one scheduled study: its deterministic
  ``job_id``, submission ``seq``, lifecycle ``state`` (see
  :data:`JOB_STATES` in :mod:`repro.serve.jobs`), the config identity
  it runs, and — once terminal — either a ``result`` summary or an
  ``error`` message;
* ``repro.serve/event/v1`` — one progress event on a job's SSE stream:
  the ``event`` name (``job:queued``/``job:start``/``span:start``/
  ``span:end``/``job:done``), its per-job ``seq`` and an event-specific
  ``data`` object.

A submission body (``POST /studies``) is deliberately *not* a full
:class:`~repro.config.WorldConfig` dump: it names a preset, optionally
a seed, and optionally sparse per-section field ``overrides``, which
:func:`config_from_payload` validates strictly (unknown sections,
unknown fields and type mismatches are :class:`~repro.errors.ServeError`
— a 400, never a crashed job) before the queue ever sees the job.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, Mapping, Tuple

from repro.config import WorldConfig
from repro.errors import ServeError

#: schema identifier of one scheduled study (submission + status bodies)
JOB_SCHEMA = "repro.serve/job/v1"

#: schema identifier of one SSE progress event
EVENT_SCHEMA = "repro.serve/event/v1"

#: submission presets; mirrors the CLI's --preset choices
PRESETS = {
    "small": WorldConfig.small,
    "medium": WorldConfig.medium,
    "paper": WorldConfig.paper_scale,
}

#: the keys a submission body may carry
SUBMISSION_KEYS = ("schema", "preset", "seed", "overrides")

#: config sections overridable per submission
OVERRIDE_SECTIONS = ("panel", "ecosystem", "browsing", "geolocation", "isp")

#: event names a job stream may emit, in lifecycle order (span events
#: repeat; ``job:done`` is the unique terminal event)
EVENT_NAMES = ("job:queued", "job:start", "span:start", "span:end", "job:done")


def _apply_overrides(
    section: Any, fields: Mapping[str, Any], name: str
) -> Any:
    """Sparse field overrides onto one frozen config section."""
    declared = {f.name: f for f in dataclasses.fields(section)}
    unknown = sorted(set(fields) - set(declared))
    if unknown:
        raise ServeError(
            f"unknown override field(s) in section {name!r}: "
            f"{', '.join(unknown)}"
        )
    coerced: Dict[str, Any] = {}
    for key, value in fields.items():
        current = getattr(section, key)
        if isinstance(current, bool) or isinstance(value, bool):
            ok = isinstance(current, bool) and isinstance(value, bool)
        elif isinstance(current, (int, float)):
            ok = isinstance(value, (int, float))
        else:
            ok = isinstance(value, type(current))
        if not ok:
            raise ServeError(
                f"override {name}.{key} must be "
                f"{type(current).__name__}-compatible, got "
                f"{type(value).__name__}"
            )
        # Keep int-typed knobs int: JSON has one number type, the
        # configs do not.
        if isinstance(current, int) and not isinstance(current, bool):
            value = int(value)
        coerced[key] = value
    return dataclasses.replace(section, **coerced)


def config_from_payload(payload: Any) -> WorldConfig:
    """A :class:`WorldConfig` from a ``POST /studies`` body, strictly.

    ``{"preset": "small", "seed": 7, "overrides": {"panel":
    {"visits_per_user": 20.0}}}`` — every part optional except that the
    body must be a JSON object.  Consistency checks the config sections
    themselves enforce (``__post_init__``) still apply and surface as
    :class:`~repro.errors.ConfigError`.
    """
    if not isinstance(payload, Mapping):
        raise ServeError(
            f"study submission must be a JSON object, got "
            f"{type(payload).__name__}"
        )
    unknown = sorted(set(payload) - set(SUBMISSION_KEYS))
    if unknown:
        raise ServeError(
            f"unknown submission key(s): {', '.join(unknown)} "
            f"(expected {', '.join(SUBMISSION_KEYS)})"
        )
    schema = payload.get("schema", JOB_SCHEMA)
    if schema != JOB_SCHEMA:
        raise ServeError(
            f"unsupported submission schema {schema!r} "
            f"(expected {JOB_SCHEMA!r})"
        )
    preset = payload.get("preset", "small")
    if preset not in PRESETS:
        raise ServeError(
            f"unknown preset {preset!r} "
            f"(expected one of {', '.join(sorted(PRESETS))})"
        )
    seed = payload.get("seed")
    if seed is not None and (not isinstance(seed, int) or isinstance(seed, bool)):
        raise ServeError(f"seed must be an integer, got {seed!r}")
    factory = PRESETS[preset]
    config = factory(seed=seed) if seed is not None else factory()

    overrides = payload.get("overrides", {})
    if not isinstance(overrides, Mapping):
        raise ServeError("overrides must be a JSON object keyed by section")
    unknown = sorted(set(overrides) - set(OVERRIDE_SECTIONS))
    if unknown:
        raise ServeError(
            f"unknown override section(s): {', '.join(unknown)} "
            f"(expected {', '.join(OVERRIDE_SECTIONS)})"
        )
    replacements: Dict[str, Any] = {}
    for name in OVERRIDE_SECTIONS:
        if name not in overrides:
            continue
        fields = overrides[name]
        if not isinstance(fields, Mapping):
            raise ServeError(f"override section {name!r} must be an object")
        replacements[name] = _apply_overrides(
            getattr(config, name), fields, name
        )
    if replacements:
        config = dataclasses.replace(config, **replacements)
    return config


def event_payload(
    event: str, job_id: str, seq: int, data: Mapping[str, Any]
) -> Dict[str, Any]:
    """One schema-stamped ``repro.serve/event/v1`` payload."""
    if event not in EVENT_NAMES:
        raise ServeError(
            f"unknown event name {event!r} (expected one of {EVENT_NAMES})"
        )
    return {
        "schema": EVENT_SCHEMA,
        "event": event,
        "job_id": job_id,
        "seq": seq,
        "data": dict(data),
    }


def validate_event(payload: Any) -> None:
    """Check one event payload against the v1 schema; raise on violation."""
    if not isinstance(payload, Mapping):
        raise ServeError(
            f"event must be a mapping, got {type(payload).__name__}"
        )
    for key, expected in (
        ("schema", str), ("event", str), ("job_id", str),
        ("seq", int), ("data", dict),
    ):
        if key not in payload:
            raise ServeError(f"event is missing {key!r}")
        if not isinstance(payload[key], expected) or isinstance(
            payload[key], bool
        ):
            raise ServeError(
                f"event field {key!r} must be {expected.__name__}, got "
                f"{type(payload[key]).__name__}"
            )
    if payload["schema"] != EVENT_SCHEMA:
        raise ServeError(
            f"unsupported event schema {payload['schema']!r} "
            f"(expected {EVENT_SCHEMA!r})"
        )
    if payload["event"] not in EVENT_NAMES:
        raise ServeError(f"unknown event name {payload['event']!r}")
    if payload["seq"] < 0:
        raise ServeError(f"event seq must be >= 0, got {payload['seq']}")


def config_identity(config: WorldConfig) -> Tuple[str, int]:
    """The (digest, seed) identity pair job payloads advertise."""
    return config.digest(), config.seed
