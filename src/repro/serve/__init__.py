"""repro.serve — the always-on study service.

The one-shot CLI answers "run this config once"; the service answers
"keep a warm cache and answer study requests for as long as I'm up".
It is a zero-dependency HTTP server hand-rolled over
``asyncio.start_server`` streams (no ``http.server``, no third-party
frameworks) wrapping three existing layers:

* **submissions** — ``POST /studies`` takes a world-config payload
  (schema ``repro.serve/job/v1``), schedules it on a bounded job queue
  and executes it through :func:`repro.runtime.run_study` against the
  server's shared content-addressed cache, so a re-submitted config
  replays warm;
* **progress** — ``GET /studies/<id>/events`` streams each job's
  lifecycle as Server-Sent Events (schema ``repro.serve/event/v1``)
  sourced live from the span tracer: stage start/finish, wall times,
  and the cache hit/miss outcome;
* **history** — the PR-5 run ledger is served over HTTP: ``GET /runs``,
  ``GET /runs/<selector>``, ``GET /runs/<a>/diff/<b>``,
  ``GET /runs/<selector>/check`` (budgets gate) and ``PUT /baseline``,
  plus ``GET /healthz`` and ``GET /metrics`` for liveness and the
  headline warm-cache hit-rate gauge.

Start it with ``repro serve --port P --cache-dir D --workers N``; see
``docs/service.md`` for the endpoint reference, the job state machine
and a curl walkthrough.

Layering: serve sits between the runtime facade and the CLI — it may
import config/obs/runtime, and only the CLI imports it.  It is also the
single package the I902 resource rule allows to open a listening
socket; everything beneath it stays hermetic.
"""

from repro.serve.http import HttpError, Request, Router, read_request
from repro.serve.jobs import Job, JobManager, JobQueueFullError
from repro.serve.schemas import (
    EVENT_SCHEMA,
    JOB_SCHEMA,
    config_from_payload,
    event_payload,
    validate_event,
)
from repro.serve.server import StudyServer
from repro.serve.sse import SSE_CONTENT_TYPE, decode_events, encode_event

__all__ = [
    "HttpError",
    "Request",
    "Router",
    "read_request",
    "Job",
    "JobManager",
    "JobQueueFullError",
    "EVENT_SCHEMA",
    "JOB_SCHEMA",
    "config_from_payload",
    "event_payload",
    "validate_event",
    "StudyServer",
    "SSE_CONTENT_TYPE",
    "decode_events",
    "encode_event",
]
