"""Empirical distribution helpers used by the figure-regeneration code.

The paper's Figures 2 and 4 are CDFs over per-website request counts and
per-IP domain counts.  :class:`EmpiricalCDF` provides the exact,
right-continuous empirical CDF with evaluation, quantiles, and a compact
``points()`` export suitable for plotting or for the benchmark harness to
print series.
"""

from __future__ import annotations

import bisect
import math
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.errors import ValidationError


class EmpiricalCDF:
    """Right-continuous empirical CDF of a finite sample.

    >>> cdf = EmpiricalCDF([1, 2, 2, 4])
    >>> cdf.evaluate(2)
    0.75
    >>> cdf.quantile(0.5)
    2
    """

    def __init__(self, sample: Iterable[float]) -> None:
        values = sorted(float(v) for v in sample)
        if not values:
            raise ValidationError("EmpiricalCDF requires a non-empty sample")
        self._values = values
        self._n = len(values)

    def __len__(self) -> int:
        return self._n

    @property
    def min(self) -> float:
        return self._values[0]

    @property
    def max(self) -> float:
        return self._values[-1]

    def mean(self) -> float:
        return sum(self._values) / self._n

    def evaluate(self, x: float) -> float:
        """Return ``P(X <= x)``."""
        return bisect.bisect_right(self._values, x) / self._n

    def quantile(self, q: float) -> float:
        """Return the smallest x with ``P(X <= x) >= q`` (inverse CDF)."""
        if not 0.0 <= q <= 1.0:
            raise ValidationError("quantile level must be within [0, 1]")
        if q == 0.0:
            return self._values[0]
        index = max(0, min(self._n - 1, math.ceil(q * self._n) - 1))
        return self._values[index]

    def median(self) -> float:
        return self.quantile(0.5)

    def points(self) -> List[Tuple[float, float]]:
        """Return the (x, F(x)) step points at each distinct sample value."""
        out: List[Tuple[float, float]] = []
        previous = None
        for index, value in enumerate(self._values):
            if value != previous:
                if out and previous is not None:
                    out[-1] = (previous, index / self._n)
                out.append((value, (index + 1) / self._n))
                previous = value
            else:
                out[-1] = (value, (index + 1) / self._n)
        return out

    def summary(self) -> Dict[str, float]:
        """Return a compact numeric summary used by harness printouts."""
        return {
            "n": float(self._n),
            "min": self.min,
            "p25": self.quantile(0.25),
            "median": self.median(),
            "p75": self.quantile(0.75),
            "p90": self.quantile(0.90),
            "max": self.max,
            "mean": self.mean(),
        }


def histogram(sample: Sequence[float], edges: Sequence[float]) -> List[int]:
    """Count samples in half-open bins ``[edges[i], edges[i+1])``.

    The final bin is closed on the right so ``max(sample)`` is counted.
    """
    if len(edges) < 2:
        raise ValidationError("need at least two bin edges")
    if sorted(edges) != list(edges):
        raise ValidationError("bin edges must be sorted")
    counts = [0] * (len(edges) - 1)
    lo, hi = edges[0], edges[-1]
    for value in sample:
        if value < lo or value > hi:
            continue
        if value == hi:
            counts[-1] += 1
            continue
        index = bisect.bisect_right(edges, value) - 1
        counts[index] += 1
    return counts


def share_table(counts: Dict[str, float]) -> Dict[str, float]:
    """Normalize a mapping of label → count into label → percentage.

    Returns an empty mapping when the total is zero rather than dividing
    by zero; callers print "no data" in that case.
    """
    total = float(sum(counts.values()))
    if total <= 0:
        return {}
    return {key: 100.0 * value / total for key, value in counts.items()}
