"""Shared utilities: seeded RNG streams, empirical CDFs, table rendering,
and sankey (origin→destination share) aggregation."""

from repro.util.rng import RngStreams
from repro.util.cdf import EmpiricalCDF
from repro.util.sankey import Sankey
from repro.util.tables import render_table

__all__ = ["RngStreams", "EmpiricalCDF", "Sankey", "render_table"]
