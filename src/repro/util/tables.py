"""Plain-text table rendering for the benchmark harness output.

The harness regenerates each paper table and prints it in the same row
layout; :func:`render_table` produces an aligned, pipe-delimited grid
without any third-party dependency.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Union

from repro.errors import ValidationError

Cell = Union[str, int, float]


def format_cell(cell: Cell) -> str:
    """Format a cell: floats get two decimals, everything else ``str``."""
    if isinstance(cell, bool):
        return "yes" if cell else "no"
    if isinstance(cell, float):
        return f"{cell:,.2f}"
    if isinstance(cell, int):
        return f"{cell:,}"
    return str(cell)


def render_table(
    headers: Sequence[str], rows: Iterable[Sequence[Cell]], title: str = ""
) -> str:
    """Render ``rows`` under ``headers`` as an aligned ASCII table."""
    header_cells = [str(h) for h in headers]
    body = [[format_cell(cell) for cell in row] for row in rows]
    for row in body:
        if len(row) != len(header_cells):
            raise ValidationError(
                f"row has {len(row)} cells, expected {len(header_cells)}"
            )
    widths = [len(h) for h in header_cells]
    for row in body:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def line(cells: List[str]) -> str:
        padded = [cell.ljust(width) for cell, width in zip(cells, widths)]
        return "| " + " | ".join(padded) + " |"

    separator = "|-" + "-|-".join("-" * width for width in widths) + "-|"
    out: List[str] = []
    if title:
        out.append(title)
    out.append(line(header_cells))
    out.append(separator)
    out.extend(line(row) for row in body)
    return "\n".join(out)


def percent(value: float, digits: int = 2) -> str:
    """Format a percentage value the way the paper prints them."""
    return f"{value:.{digits}f}%"
