"""Deterministic random-number streams for the simulated world.

A single experiment seed fans out into independent named substreams, so
that, for example, changing how many DNS resolutions the background
population performs does not perturb the browsing behaviour of the panel
users.  Substreams are derived by hashing the parent seed together with
the stream name, which makes stream creation order-independent.
"""

from __future__ import annotations

import bisect
import hashlib
import itertools
import random
from typing import Dict, Generic, Iterator, List, Optional, Sequence, TypeVar

from repro.errors import ValidationError

T = TypeVar("T")


def derive_seed(parent_seed: int, name: str) -> int:
    """Derive a child seed from ``parent_seed`` and a stream ``name``.

    The derivation uses BLAKE2b so it is stable across Python versions
    and platforms (unlike ``hash()``).
    """
    digest = hashlib.blake2b(
        f"{parent_seed}:{name}".encode("utf-8"), digest_size=8
    ).digest()
    return int.from_bytes(digest, "big")


def seeded_rng(seed: int, name: str) -> random.Random:
    """A stream keyed on ``(seed, name)`` via :func:`derive_seed`.

    The module-approved way to make a one-off stream outside
    :class:`RngStreams` (reprolint rule D102 bans raw ``random.Random``
    construction elsewhere).
    """
    return random.Random(derive_seed(seed, name))


def spawn_rng(rng: random.Random) -> random.Random:
    """A child stream drawn from ``rng``'s own sequence.

    Unlike :func:`seeded_rng` the child depends on how many draws the
    parent has consumed — use it when each call site should get a fresh,
    parent-advancing stream (e.g. one per measurement campaign).
    """
    return random.Random((rng.getrandbits(32) << 1) | 1)


def fixed_rng(seed: int = 0) -> random.Random:
    """A stream with a fixed, documented seed — the sanctioned default
    for components whose caller did not inject one."""
    return random.Random(seed)


class RngStreams:
    """A family of named, independently-seeded ``random.Random`` streams.

    >>> streams = RngStreams(seed=42)
    >>> a = streams.get("panel")
    >>> b = streams.get("netflow")
    >>> a is streams.get("panel")
    True
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self._streams: Dict[str, random.Random] = {}

    def get(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it on first use."""
        stream = self._streams.get(name)
        if stream is None:
            stream = random.Random(derive_seed(self.seed, name))
            self._streams[name] = stream
        return stream

    def spawn(self, name: str) -> "RngStreams":
        """Create a child family whose streams are independent of ours."""
        return RngStreams(derive_seed(self.seed, f"spawn:{name}"))

    def fork(self, name: str) -> random.Random:
        """Return a fresh stream for ``name`` (never cached).

        Useful when a loop needs per-item reproducibility regardless of
        how many draws previous items consumed.
        """
        return random.Random(derive_seed(self.seed, f"fork:{name}"))


def weighted_choice(rng: random.Random, items: Sequence[T], weights: Sequence[float]) -> T:
    """Pick one of ``items`` with probability proportional to ``weights``.

    Raises ``ValueError`` on empty input or non-positive total weight.
    """
    if not items:
        raise ValidationError("weighted_choice on empty sequence")
    if len(items) != len(weights):
        raise ValidationError("items and weights must have the same length")
    total = float(sum(weights))
    if total <= 0:
        raise ValidationError("total weight must be positive")
    point = rng.random() * total
    cumulative = 0.0
    for item, weight in zip(items, weights):
        cumulative += weight
        if point <= cumulative:
            return item
    return items[-1]


def zipf_weights(n: int, exponent: float = 1.0) -> List[float]:
    """Return Zipf popularity weights ``1/rank**exponent`` for ``n`` ranks."""
    if n < 0:
        raise ValidationError("n must be non-negative")
    return [1.0 / (rank ** exponent) for rank in range(1, n + 1)]


def sample_without_replacement(
    rng: random.Random, items: Sequence[T], k: int
) -> List[T]:
    """Sample ``min(k, len(items))`` distinct elements of ``items``."""
    k = min(k, len(items))
    return rng.sample(list(items), k)


def poisson(rng: random.Random, lam: float, cap: Optional[int] = None) -> int:
    """Draw from a Poisson distribution with mean ``lam``.

    Uses Knuth's method for small means and a normal approximation for
    large means (lam > 30), which is plenty for traffic synthesis.  An
    optional ``cap`` bounds the result.
    """
    if lam < 0:
        raise ValidationError("lam must be non-negative")
    if lam == 0:
        return 0
    if lam > 30:
        value = max(0, int(round(rng.gauss(lam, lam ** 0.5))))
    else:
        threshold = pow(2.718281828459045, -lam)
        k = 0
        product = 1.0
        while True:
            product *= rng.random()
            if product <= threshold:
                break
            k += 1
        value = k
    if cap is not None:
        value = min(value, cap)
    return value


class WeightedSampler(Generic[T]):
    """O(log n) repeated weighted sampling via precomputed cumulative sums.

    Use this instead of :func:`weighted_choice` inside hot loops.
    """

    def __init__(self, items: Sequence[T], weights: Sequence[float]) -> None:
        if not items:
            raise ValidationError("WeightedSampler on empty sequence")
        if len(items) != len(weights):
            raise ValidationError("items and weights must have the same length")
        if any(w < 0 for w in weights):
            raise ValidationError("weights must be non-negative")
        self._items = list(items)
        self._cumulative = list(itertools.accumulate(weights))
        if self._cumulative[-1] <= 0:
            raise ValidationError("total weight must be positive")

    def __len__(self) -> int:
        return len(self._items)

    def sample(self, rng: random.Random) -> T:
        point = rng.random() * self._cumulative[-1]
        index = bisect.bisect_right(self._cumulative, point)
        return self._items[min(index, len(self._items) - 1)]


def chunked(seq: Sequence[T], size: int) -> Iterator[List[T]]:
    """Yield consecutive chunks of ``seq`` of at most ``size`` elements."""
    if size <= 0:
        raise ValidationError("size must be positive")
    for start in range(0, len(seq), size):
        yield list(seq[start : start + size])
