"""Sankey (origin → destination flow-share) aggregation.

The paper's Figures 6, 7, 8, 10 and 12 are Sankey diagrams of tracking
flows between regions.  :class:`Sankey` accumulates weighted origin →
destination edges and exposes the per-origin destination shares that the
figures display, plus conservation checks used by the property tests.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Tuple

from repro.errors import ValidationError


class Sankey:
    """Weighted bipartite flow aggregation between labelled nodes."""

    def __init__(self) -> None:
        self._edges: Dict[Tuple[str, str], float] = defaultdict(float)

    def add(self, origin: str, destination: str, weight: float = 1.0) -> None:
        """Accumulate ``weight`` onto the ``origin → destination`` edge."""
        if weight < 0:
            raise ValidationError("sankey weights must be non-negative")
        self._edges[(origin, destination)] += weight

    def merge(self, other: "Sankey") -> None:
        """Accumulate all edges of ``other`` into this diagram."""
        for (origin, destination), weight in other._edges.items():
            self._edges[(origin, destination)] += weight

    @property
    def total(self) -> float:
        return sum(self._edges.values())

    def origins(self) -> List[str]:
        return sorted({origin for origin, _ in self._edges})

    def destinations(self) -> List[str]:
        return sorted({destination for _, destination in self._edges})

    def origin_total(self, origin: str) -> float:
        return sum(
            weight for (o, _), weight in self._edges.items() if o == origin
        )

    def destination_total(self, destination: str) -> float:
        return sum(
            weight for (_, d), weight in self._edges.items() if d == destination
        )

    def edge(self, origin: str, destination: str) -> float:
        return self._edges.get((origin, destination), 0.0)

    def origin_shares(self, origin: str) -> Dict[str, float]:
        """Destination shares (percent) of flows leaving ``origin``."""
        total = self.origin_total(origin)
        if total <= 0:
            return {}
        return {
            destination: 100.0 * weight / total
            for (o, destination), weight in self._edges.items()
            if o == origin
        }

    def destination_shares(self) -> Dict[str, float]:
        """Share (percent) of all flow terminating at each destination."""
        total = self.total
        if total <= 0:
            return {}
        shares: Dict[str, float] = defaultdict(float)
        for (_, destination), weight in self._edges.items():
            shares[destination] += 100.0 * weight / total
        return dict(shares)

    def confinement(self, region: str) -> float:
        """Percent of flow from ``region`` that also terminates there."""
        total = self.origin_total(region)
        if total <= 0:
            return 0.0
        return 100.0 * self.edge(region, region) / total

    def top_destinations(self, origin: str, k: int) -> List[Tuple[str, float]]:
        """Top-``k`` destination shares for ``origin``, descending."""
        shares = self.origin_shares(origin)
        return sorted(shares.items(), key=lambda kv: (-kv[1], kv[0]))[:k]

    def rows(self) -> List[Tuple[str, str, float]]:
        """All (origin, destination, weight) edges, deterministically sorted."""
        return sorted(
            (origin, destination, weight)
            for (origin, destination), weight in self._edges.items()
        )
