"""Active-measurement IP geolocation (the RIPE IPmap substitute).

For every target IP the engine runs a *campaign* (Sect. 3.4): it selects
~100 probes, has each measure a minimum RTT to the target, and combines
the measurements by constraint-based multilateration:

1. Every RTT implies a hard distance upper bound (speed of light in
   fibre) and an *expected* distance (the bound deflated by the typical
   path stretch).
2. Candidate **sites** are the locations of all probes in the mesh plus
   every country centroid; the campaign shortlist keeps the sites
   feasible under the best (smallest-RTT) probe's hard bound.
3. The estimate is the shortlisted site minimizing the joint misfit
   over the closest probes: hard-bound violations are heavily
   penalized, residual ring misfit |distance − expected| is summed.
4. Each close probe also casts a **vote** — its own best-fitting
   shortlisted site's country — reproducing the paper's observation
   that votes agree on the continent essentially always and on the
   country with a >90% majority, with residual disagreement between
   neighbouring countries.

The engine never reads the target's true country — only RTTs generated
from physics against the ground-truth coordinates.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.config import GeolocationConfig
from repro.errors import GeolocationError
from repro.geodata.countries import CountryRegistry
from repro.geodata.distance import (
    BASE_OVERHEAD_MS,
    DEFAULT_PATH_STRETCH,
    great_circle_km,
    rtt_upper_bound_km,
)
from repro.geodata.regions import Region, region_of_country
from repro.geoloc.probes import Probe, ProbeMesh
from repro.geoloc.truth import GroundTruthOracle
from repro.netbase.addr import IPAddress
from repro.obs import metrics as obs_metrics
from repro.obs import names as obs_names
from repro.util.rng import RngStreams, seeded_rng, spawn_rng


@dataclass(frozen=True)
class GeolocationEstimate:
    """The outcome of one geolocation campaign."""

    address: IPAddress
    country: Optional[str]
    #: fraction of voting probes agreeing with the winning country
    country_agreement: float
    #: fraction of voting probes agreeing with the winning region
    region_agreement: float
    votes: Tuple[Tuple[str, int], ...]

    @property
    def region(self) -> Region:
        return region_of_country(self.country)


@dataclass(frozen=True)
class _Site:
    country: str
    lat: float
    lon: float


class IPmapEngine:
    """Runs active-geolocation campaigns and caches per-IP estimates."""

    #: probes contributing to the joint fit and casting votes
    N_VOTERS = 24
    #: jointly-plausible finalist sites the votes are cast among
    N_FINALISTS = 6
    #: slack (km) added to hard bounds: candidate sites are discrete
    #: landmarks, the true server can sit a few hundred km from one
    SITE_SLACK_KM = 300.0
    #: penalty weight per km of hard-bound violation in the joint fit
    VIOLATION_WEIGHT = 50.0

    def __init__(
        self,
        mesh: ProbeMesh,
        oracle: GroundTruthOracle,
        registry: CountryRegistry,
        config: GeolocationConfig,
        streams: RngStreams,
        campaign_seed: Optional[int] = None,
    ) -> None:
        self._mesh = mesh
        self._oracle = oracle
        self._registry = registry
        self._config = config
        self._rng = streams.get("ipmap")
        # With a campaign seed set, each address gets an RNG derived from
        # (seed, address) alone — campaigns are then independent of the
        # order addresses are geolocated in, which lets the runtime shard
        # the IP axis across workers without changing any estimate.
        self._campaign_seed = campaign_seed
        self._cache: Dict[IPAddress, GeolocationEstimate] = {}
        self._sites: List[_Site] = [
            _Site(probe.country, probe.lat, probe.lon)
            for probe in mesh.probes()
        ]
        self._sites.extend(
            _Site(c.iso2, c.lat, c.lon) for c in registry
        )
        # Known datacenter cities are first-class candidates: inference
        # engines encode where hosting actually clusters (Frankfurt,
        # Ashburn, Milan, ...).
        self._sites.extend(
            _Site(c.iso2, *c.hosting_site)
            for c in registry
            if c.hosting_site != (c.lat, c.lon)
        )
        # Hosting prior: when two candidate sites fit the rings equally
        # well (border metros like Vienna/Bratislava), the engine leans
        # toward the country with the denser datacenter footprint — the
        # kind of side information real inference engines encode.
        self._infra_bonus_km: Dict[str, float] = {
            c.iso2: 1.2 * c.infra_index for c in registry
        }

    # -- public API ---------------------------------------------------------
    def geolocate(self, address: IPAddress) -> GeolocationEstimate:
        """Geolocate one address (cached across calls)."""
        estimate = self._cache.get(address)
        if estimate is None:
            estimate = self._run_campaign(address)
            self._cache[address] = estimate
        return estimate

    def locate(self, address: IPAddress) -> Optional[str]:
        """Country-level answer with the paper's majority acceptance rule."""
        estimate = self.geolocate(address)
        if estimate.country_agreement < self._config.country_majority:
            obs_metrics.inc(obs_names.IPMAP_LOCATE, verdict="rejected")
            return None
        obs_metrics.inc(obs_names.IPMAP_LOCATE, verdict="accepted")
        return estimate.country

    def bulk_geolocate(
        self, addresses: Sequence[IPAddress]
    ) -> Dict[IPAddress, GeolocationEstimate]:
        return {address: self.geolocate(address) for address in addresses}

    # -- campaign internals ----------------------------------------------
    def _run_campaign(self, address: IPAddress) -> GeolocationEstimate:
        target = self._oracle.coordinates(address)
        if target is None:
            raise GeolocationError(f"no physical location for {address}")
        lat, lon = target
        if self._campaign_seed is not None:
            campaign_rng = seeded_rng(
                self._campaign_seed, f"campaign:{address}"
            )
        else:
            campaign_rng = spawn_rng(self._rng)
        probes = self._mesh.sample(
            campaign_rng, self._config.probes_per_campaign
        )
        measured: List[Tuple[float, Probe]] = [
            (probe.rtt_to(lat, lon, campaign_rng), probe) for probe in probes
        ]
        measured.sort(key=lambda pair: pair[0])
        voters = measured[: self.N_VOTERS]

        shortlist = self._shortlist(voters[0])
        if not shortlist:
            # Degenerate campaign: fall back to the best probe's site.
            shortlist = [
                _Site(voters[0][1].country, voters[0][1].lat, voters[0][1].lon)
            ]

        # Precompute per-voter distances to every shortlisted site.
        distances: List[List[float]] = [
            [
                great_circle_km(probe.lat, probe.lon, site.lat, site.lon)
                for site in shortlist
            ]
            for _, probe in voters
        ]
        bounds = [rtt_upper_bound_km(rtt) for rtt, _ in voters]
        # Expected ring: deflate the hard bound by the typical path
        # stretch *after* removing the fixed per-measurement overhead —
        # otherwise every ring systematically overshoots by tens of km,
        # dragging estimates toward the far side of small countries.
        expected = [
            rtt_upper_bound_km(max(0.0, rtt - BASE_OVERHEAD_MS))
            / DEFAULT_PATH_STRETCH
            for rtt, _ in voters
        ]

        scores = self._joint_scores(shortlist, distances, bounds, expected)
        winner_index = min(range(len(shortlist)), key=scores.__getitem__)
        winner_country = shortlist[winner_index].country

        # Votes are cast among the jointly-plausible finalists: each
        # close probe backs the finalist its own measurement fits best.
        finalist_indexes = sorted(
            range(len(shortlist)), key=scores.__getitem__
        )[: self.N_FINALISTS]
        votes = Counter(
            self._voter_vote(
                v, shortlist, distances, bounds, expected, finalist_indexes
            )
            for v in range(len(voters))
        )
        total = sum(votes.values())
        winner_count = votes.get(winner_country, 0)
        winner_region = region_of_country(winner_country, self._registry)
        region_count = sum(
            count
            for country, count in votes.items()
            if region_of_country(country, self._registry) is winner_region
        )
        # Ambient campaign metrics (no-ops outside a collection scope):
        # the vote-margin histogram reproduces the paper's ">90% of
        # campaigns reach a country majority" observation per run.
        obs_metrics.inc(obs_names.IPMAP_CAMPAIGNS)
        obs_metrics.observe(
            obs_names.IPMAP_COUNTRY_AGREEMENT,
            winner_count / total if total else 0.0,
        )
        return GeolocationEstimate(
            address=address,
            country=winner_country,
            country_agreement=winner_count / total if total else 0.0,
            region_agreement=region_count / total if total else 0.0,
            votes=tuple(
                sorted(votes.items(), key=lambda kv: (-kv[1], kv[0]))
            ),
        )

    def _shortlist(self, best: Tuple[float, Probe]) -> List[_Site]:
        """Sites feasible under the best probe's hard distance bound."""
        rtt, probe = best
        radius = rtt_upper_bound_km(rtt) + self.SITE_SLACK_KM
        return [
            site
            for site in self._sites
            if great_circle_km(probe.lat, probe.lon, site.lat, site.lon)
            <= radius
        ]

    def _joint_scores(
        self,
        shortlist: Sequence[_Site],
        distances: Sequence[Sequence[float]],
        bounds: Sequence[float],
        expected: Sequence[float],
    ) -> List[float]:
        """Joint misfit of every shortlisted site over all voters."""
        scores: List[float] = []
        for site_index in range(len(shortlist)):
            score = 0.0
            for voter_index in range(len(distances)):
                distance = distances[voter_index][site_index]
                violation = distance - (
                    bounds[voter_index] + self.SITE_SLACK_KM
                )
                if violation > 0:
                    score += violation * self.VIOLATION_WEIGHT
                score += abs(distance - expected[voter_index])
            score -= len(distances) * self._infra_bonus_km.get(
                shortlist[site_index].country, 0.0
            )
            scores.append(score)
        return scores

    def _voter_vote(
        self,
        voter_index: int,
        shortlist: Sequence[_Site],
        distances: Sequence[Sequence[float]],
        bounds: Sequence[float],
        expected: Sequence[float],
        finalist_indexes: Sequence[int],
    ) -> str:
        """One probe's country vote: its best-fitting finalist site."""
        bound = bounds[voter_index] + self.SITE_SLACK_KM
        best_country: Optional[str] = None
        best_score = float("inf")
        for site_index in finalist_indexes:
            distance = distances[voter_index][site_index]
            if distance > bound:
                continue
            score = abs(
                distance - expected[voter_index]
            ) - self._infra_bonus_km.get(
                shortlist[site_index].country, 0.0
            )
            if score < best_score:
                best_score = score
                best_country = shortlist[site_index].country
        if best_country is None:
            # The voter's own ring excludes every finalist (noisy
            # measurement); it backs the closest finalist instead.
            site_index = min(
                finalist_indexes,
                key=lambda i: distances[voter_index][i],
            )
            best_country = shortlist[site_index].country
        return best_country
