"""RIPE-Atlas-like active measurement probe mesh.

The real RIPE Atlas deployment is very dense in Europe (5K+ probes),
substantial in the US (1K+), and thinner elsewhere — which is exactly
why IPmap is accurate at country level in Europe and reliably separates
Europe from the US (paper Sect. 3.4).  The mesh reproduces that density
profile: probes are allocated to countries proportionally to
``population × (1 + infra/50)`` within each region budget, then placed
with jitter around the country centroid.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.config import GeolocationConfig
from repro.errors import GeolocationError
from repro.geodata.countries import Country, CountryRegistry
from repro.geodata.distance import great_circle_km, min_rtt_ms
from repro.util.rng import RngStreams


@dataclass(frozen=True)
class Probe:
    """One measurement probe."""

    probe_id: int
    country: str
    lat: float
    lon: float

    def rtt_to(
        self, lat: float, lon: float, rng: Optional[random.Random] = None
    ) -> float:
        """Measure (sample) a minimum RTT from this probe to a target."""
        distance = great_circle_km(self.lat, self.lon, lat, lon)
        return min_rtt_ms(distance, rng)


class ProbeMesh:
    """The world's probe deployment."""

    def __init__(self, probes: Sequence[Probe]) -> None:
        if not probes:
            raise GeolocationError("probe mesh is empty")
        self._probes = list(probes)

    def __len__(self) -> int:
        return len(self._probes)

    def probes(self) -> List[Probe]:
        return list(self._probes)

    def in_country(self, country: str) -> List[Probe]:
        return [p for p in self._probes if p.country == country]

    def countries(self) -> List[str]:
        return sorted({p.country for p in self._probes})

    def sample(self, rng: random.Random, count: int) -> List[Probe]:
        """A random measurement campaign's probe selection."""
        count = min(count, len(self._probes))
        return rng.sample(self._probes, count)

    @classmethod
    def build(
        cls,
        registry: CountryRegistry,
        config: GeolocationConfig,
        streams: RngStreams,
    ) -> "ProbeMesh":
        """Build the default mesh from the density profile in ``config``."""
        rng = streams.get("probes")
        probes: List[Probe] = []
        probe_id = 0

        def place(country: Country, count: int) -> None:
            nonlocal probe_id
            radius = country.jitter_radius_deg
            for _ in range(count):
                probes.append(
                    Probe(
                        probe_id=probe_id,
                        country=country.iso2,
                        lat=country.lat + rng.uniform(-radius, radius),
                        lon=country.lon + rng.uniform(-1.5 * radius, 1.5 * radius),
                    )
                )
                probe_id += 1

        def spread(countries: List[Country], budget: int) -> None:
            weights = [
                c.population_m * (1.0 + c.infra_index / 50.0)
                for c in countries
            ]
            total = sum(weights)
            remainders = []
            allocated = 0
            for country, weight in zip(countries, weights):
                share = budget * weight / total
                count = int(share)
                allocated += count
                remainders.append((share - count, country))
                place(country, count)
            remainders.sort(key=lambda pair: (-pair[0], pair[1].iso2))
            for _, country in remainders[: budget - allocated]:
                place(country, 1)

        europe = registry.in_continent("EU")
        spread(europe, config.n_probes_eu)
        place(registry.get("US"), config.n_probes_us)
        rest = [
            c
            for c in registry
            if c.continent != "EU" and c.iso2 != "US"
        ]
        spread(rest, config.n_probes_other)
        # Guarantee at least one probe everywhere so estimation always has
        # a candidate voter per country.
        covered = {p.country for p in probes}
        for country in registry:
            if country.iso2 not in covered:
                place(country, 1)
        return cls(probes)
