"""Ground-truth location oracle.

The oracle knows where every simulated endpoint physically is.  It is
the *physical substrate* of the active-measurement engine (pings need a
true location to have a latency) and the scoring reference of the
evaluation — the measurement pipeline itself never consults it when
producing the paper's numbers.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.geodata.countries import CountryRegistry
from repro.netbase.addr import IPAddress
from repro.netbase.allocator import AddressPlan
from repro.web.deployment import Fleet


class GroundTruthOracle:
    """True physical location of any simulated IP address."""

    def __init__(
        self,
        fleet: Fleet,
        plan: AddressPlan,
        registry: CountryRegistry,
    ) -> None:
        self._fleet = fleet
        self._plan = plan
        self._registry = registry

    def country(self, address: IPAddress) -> Optional[str]:
        """True country of the endpoint, or None for unknown space."""
        server = self._fleet.server_for_ip(address)
        if server is not None:
            return server.country
        record = self._plan.lookup(address)
        return record.country if record is not None else None

    def coordinates(self, address: IPAddress) -> Optional[Tuple[float, float]]:
        """True lat/lon of the endpoint (country centroid for non-servers)."""
        server = self._fleet.server_for_ip(address)
        if server is not None:
            return (server.lat, server.lon)
        record = self._plan.lookup(address)
        if record is None:
            return None
        country = self._registry.find(record.country)
        if country is None:
            return None
        return (country.lat, country.lon)

    def owner(self, address: IPAddress) -> Optional[str]:
        """The organization (or cloud provider) owning the covering prefix."""
        record = self._plan.lookup(address)
        return record.owner if record is not None else None

    def network_kind(self, address: IPAddress) -> Optional[str]:
        """'eyeball', 'hosting' or 'cloud' for the covering prefix."""
        record = self._plan.lookup(address)
        return record.kind if record is not None else None
