"""Cross-tool geolocation comparison (Tables 3 and 4).

Given a set of IPs and several locator functions (``ip → country or
None``), compute the pairwise country- and region-level agreement
matrix, and the per-organization mis-geolocation report against a
reference locator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.geodata.regions import Region, region_of_country
from repro.netbase.addr import IPAddress

Locator = Callable[[IPAddress], Optional[str]]


@dataclass(frozen=True)
class AgreementCell:
    """Country / region agreement between two locators."""

    country_pct: float
    region_pct: float


def _region(country: Optional[str]) -> Optional[Region]:
    if country is None:
        return None
    region = region_of_country(country)
    return None if region is Region.UNKNOWN else region


def agreement_matrix(
    addresses: Sequence[IPAddress],
    locators: Mapping[str, Locator],
) -> Dict[Tuple[str, str], AgreementCell]:
    """Pairwise agreement over ``addresses`` for every locator pair.

    Agreement on a pair of tools counts addresses where both produced an
    answer and the answers match; the denominator is addresses where
    both produced an answer (mirroring the paper's pairwise table).
    """
    answers: Dict[str, List[Optional[str]]] = {
        name: [locator(address) for address in addresses]
        for name, locator in locators.items()
    }
    names = sorted(locators)
    matrix: Dict[Tuple[str, str], AgreementCell] = {}
    for first in names:
        for second in names:
            same_country = 0
            same_region = 0
            total = 0
            for a, b in zip(answers[first], answers[second]):
                if a is None or b is None:
                    continue
                total += 1
                if a == b:
                    same_country += 1
                if _region(a) is not None and _region(a) == _region(b):
                    same_region += 1
            cell = AgreementCell(
                country_pct=100.0 * same_country / total if total else 0.0,
                region_pct=100.0 * same_region / total if total else 0.0,
            )
            matrix[(first, second)] = cell
    return matrix


@dataclass(frozen=True)
class MisgeolocationRow:
    """Per-organization mis-geolocation summary (one Table 4 row)."""

    org_label: str
    n_ips: int
    wrong_country_ips: int
    wrong_region_ips: int
    n_requests: int
    wrong_country_requests: int
    wrong_region_requests: int

    @property
    def wrong_country_ip_pct(self) -> float:
        return 100.0 * self.wrong_country_ips / self.n_ips if self.n_ips else 0.0

    @property
    def wrong_region_ip_pct(self) -> float:
        return 100.0 * self.wrong_region_ips / self.n_ips if self.n_ips else 0.0

    @property
    def wrong_country_request_pct(self) -> float:
        if not self.n_requests:
            return 0.0
        return 100.0 * self.wrong_country_requests / self.n_requests

    @property
    def wrong_region_request_pct(self) -> float:
        if not self.n_requests:
            return 0.0
        return 100.0 * self.wrong_region_requests / self.n_requests


def misgeolocation_report(
    org_label: str,
    addresses: Iterable[IPAddress],
    request_counts: Mapping[IPAddress, int],
    tested: Locator,
    reference: Locator,
) -> MisgeolocationRow:
    """Compare a commercial locator against the reference for one org.

    ``request_counts`` weights each IP by how many requests it served,
    yielding the paper's request-level percentages alongside IP-level
    ones.
    """
    n_ips = wrong_country = wrong_region = 0
    n_requests = wrong_country_requests = wrong_region_requests = 0
    for address in addresses:
        reference_country = reference(address)
        tested_country = tested(address)
        if reference_country is None:
            continue
        n_ips += 1
        weight = request_counts.get(address, 0)
        n_requests += weight
        if tested_country != reference_country:
            wrong_country += 1
            wrong_country_requests += weight
        if _region(tested_country) != _region(reference_country):
            wrong_region += 1
            wrong_region_requests += weight
    return MisgeolocationRow(
        org_label=org_label,
        n_ips=n_ips,
        wrong_country_ips=wrong_country,
        wrong_region_ips=wrong_region,
        n_requests=n_requests,
        wrong_country_requests=wrong_country_requests,
        wrong_region_requests=wrong_region_requests,
    )
