"""Geolocation substrate: ground-truth oracle, RIPE-Atlas-like probe
mesh, active-measurement geolocation (RIPE IPmap substitute), commercial
databases with legal-entity bias (MaxMind / IP-API substitutes), and
pairwise comparison tooling (Tables 3 and 4)."""

from repro.geoloc.truth import GroundTruthOracle
from repro.geoloc.probes import Probe, ProbeMesh
from repro.geoloc.ipmap import GeolocationEstimate, IPmapEngine
from repro.geoloc.commercial import CommercialGeoDatabase, derive_ip_api
from repro.geoloc.compare import agreement_matrix, misgeolocation_report

__all__ = [
    "GroundTruthOracle",
    "Probe",
    "ProbeMesh",
    "IPmapEngine",
    "GeolocationEstimate",
    "CommercialGeoDatabase",
    "derive_ip_api",
    "agreement_matrix",
    "misgeolocation_report",
]
