"""Baseline active-geolocation algorithms.

The paper's geolocation references ([31], [39]) build on two classic
techniques that predate inference engines like RIPE IPmap:

* **shortest ping** — the target is wherever the lowest-RTT landmark is
  (`ShortestPingLocator`);
* **constraint-based geolocation (CBG)** — every landmark's RTT defines
  a speed-of-light disk; the target lies in the intersection, estimated
  here as the candidate site satisfying every constraint with the
  smallest total slack (`CBGLocator`).

Both run against the same probe mesh and latency physics as the main
engine, so the benchmark comparison isolates the *algorithm*:
shortest-ping inherits the landmark's country (wrong whenever no probe
shares the target's country), CBG fixes part of that, and the voting
engine of :mod:`repro.geoloc.ipmap` adds the joint fit + majority vote
the paper relies on.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.config import GeolocationConfig
from repro.errors import GeolocationError
from repro.geodata.countries import CountryRegistry
from repro.geodata.distance import great_circle_km, rtt_upper_bound_km
from repro.geoloc.probes import ProbeMesh
from repro.geoloc.truth import GroundTruthOracle
from repro.netbase.addr import IPAddress
from repro.util.rng import RngStreams, spawn_rng


class ShortestPingLocator:
    """The target is where its lowest-RTT landmark is."""

    def __init__(
        self,
        mesh: ProbeMesh,
        oracle: GroundTruthOracle,
        config: GeolocationConfig,
        streams: RngStreams,
    ) -> None:
        self._mesh = mesh
        self._oracle = oracle
        self._config = config
        self._rng = streams.get("shortest-ping")
        self._cache: Dict[IPAddress, Optional[str]] = {}

    def locate(self, address: IPAddress) -> Optional[str]:
        if address in self._cache:
            return self._cache[address]
        target = self._oracle.coordinates(address)
        if target is None:
            raise GeolocationError(f"no physical location for {address}")
        campaign_rng = spawn_rng(self._rng)
        probes = self._mesh.sample(
            campaign_rng, self._config.probes_per_campaign
        )
        best = min(
            probes, key=lambda probe: probe.rtt_to(*target, campaign_rng)
        )
        self._cache[address] = best.country
        return best.country


class CBGLocator:
    """Constraint-based geolocation over the country candidate sites."""

    def __init__(
        self,
        mesh: ProbeMesh,
        oracle: GroundTruthOracle,
        registry: CountryRegistry,
        config: GeolocationConfig,
        streams: RngStreams,
    ) -> None:
        self._mesh = mesh
        self._oracle = oracle
        self._config = config
        self._rng = streams.get("cbg")
        self._cache: Dict[IPAddress, Optional[str]] = {}
        self._sites: List[Tuple[str, float, float]] = [
            (c.iso2, c.lat, c.lon) for c in registry
        ]
        self._sites.extend(
            (c.iso2, *c.hosting_site)
            for c in registry
            if c.hosting_site != (c.lat, c.lon)
        )

    def locate(self, address: IPAddress) -> Optional[str]:
        if address in self._cache:
            return self._cache[address]
        target = self._oracle.coordinates(address)
        if target is None:
            raise GeolocationError(f"no physical location for {address}")
        campaign_rng = spawn_rng(self._rng)
        probes = self._mesh.sample(
            campaign_rng, self._config.probes_per_campaign
        )
        measurements = [
            (probe, rtt_upper_bound_km(probe.rtt_to(*target, campaign_rng)))
            for probe in probes
        ]
        best_country: Optional[str] = None
        best_slack = float("inf")
        for country, lat, lon in self._sites:
            slack = 0.0
            feasible = True
            for probe, bound in measurements:
                distance = great_circle_km(probe.lat, probe.lon, lat, lon)
                overshoot = distance - (bound + 300.0)
                if overshoot > 0:
                    feasible = False
                    break
                slack += bound - distance
            if feasible and slack < best_slack:
                best_slack = slack
                best_country = country
        self._cache[address] = best_country
        return best_country
