"""Commercial geolocation databases (MaxMind / IP-API substitutes).

Commercial databases geolocate *eyeball* prefixes well — that is their
market — but map *infrastructure* prefixes to the operating company's
legal seat (the paper's example: every Google server "in Mountain
View").  The emulation applies exactly that bias at prefix granularity:

* eyeball prefixes → true country;
* hosting / cloud prefixes → with probability ``legal_seat_bias`` the
  owner's legal-seat country, otherwise the true country.

A second database (the IP-API substitute) is *derived* from the first:
it agrees with it on almost every prefix (paper Table 3: >96% country
agreement between MaxMind and IP-API) because commercial providers share
sources; the few disagreements flip back to the true country.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional

from repro.errors import StateError
from repro.netbase.addr import IPAddress, Prefix
from repro.netbase.allocator import AddressPlan, PrefixRecord
from repro.util.rng import RngStreams, derive_seed, seeded_rng


class CommercialGeoDatabase:
    """A prefix-granularity commercial geolocation database."""

    def __init__(self, name: str, entries: Dict[Prefix, str]) -> None:
        self.name = name
        self._entries = dict(entries)
        self._plan: Optional[AddressPlan] = None

    def attach_plan(self, plan: AddressPlan) -> None:
        """Attach the address plan used to find the covering prefix."""
        self._plan = plan

    def locate(self, address: IPAddress) -> Optional[str]:
        """Country answer for ``address`` (None outside known space)."""
        if self._plan is None:
            raise StateError(
                f"{self.name}: attach_plan must be called before locate"
            )
        record = self._plan.lookup(address)
        if record is None:
            return None
        return self._entries.get(record.prefix)

    def prefix_country(self, prefix: Prefix) -> Optional[str]:
        return self._entries.get(prefix)

    def entries(self) -> Dict[Prefix, str]:
        return dict(self._entries)

    @classmethod
    def build_maxmind_like(
        cls,
        plan: AddressPlan,
        owner_seats: Mapping[str, str],
        legal_seat_bias: float,
        streams: RngStreams,
        name: str = "maxmind",
    ) -> "CommercialGeoDatabase":
        """Build the primary commercial database against an address plan.

        ``owner_seats`` maps prefix owners (organizations, cloud
        providers, ISPs) to their legal-seat country; owners without an
        entry fall back to the prefix's true country.
        """
        seed = derive_seed(streams.seed, f"commercial:{name}")
        entries: Dict[Prefix, str] = {}
        for record in plan.records():
            entries[record.prefix] = cls._entry_for(
                record, owner_seats, legal_seat_bias, seed
            )
        database = cls(name, entries)
        database.attach_plan(plan)
        return database

    @staticmethod
    def _entry_for(
        record: PrefixRecord,
        owner_seats: Mapping[str, str],
        legal_seat_bias: float,
        seed: int,
    ) -> str:
        if record.kind == "eyeball":
            return record.country
        seat = owner_seats.get(record.owner)
        if seat is None:
            return record.country
        rng = seeded_rng(seed, str(record.prefix))
        if rng.random() < legal_seat_bias:
            return seat
        return record.country


def derive_ip_api(
    primary: CommercialGeoDatabase,
    plan: AddressPlan,
    agreement: float,
    streams: RngStreams,
    name: str = "ip-api",
) -> CommercialGeoDatabase:
    """Derive the second commercial database from the first.

    With probability ``agreement`` a prefix copies the primary's answer;
    otherwise it reverts to the true country (a provider that did its
    own homework for that block).
    """
    seed = derive_seed(streams.seed, f"commercial:{name}")
    entries: Dict[Prefix, str] = {}
    for record in plan.records():
        primary_answer = primary.prefix_country(record.prefix)
        rng = seeded_rng(seed, str(record.prefix))
        if primary_answer is not None and rng.random() < agreement:
            entries[record.prefix] = primary_answer
        else:
            entries[record.prefix] = record.country
    database = CommercialGeoDatabase(name, entries)
    database.attach_plan(plan)
    return database
