"""Border-crossing quantification (Sect. 4).

Builds the Sankey aggregations behind Figures 6, 7 and 8 from classified
tracking flows plus a geolocation locator, and computes the headline
confinement percentages: how much of each origin's tracking traffic
terminates in the same country / the same region / inside EU28.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Callable, Dict, Iterable, Optional, Sequence, Tuple

from repro.geodata.countries import CountryRegistry, default_registry
from repro.geodata.regions import Region, region_of_country
from repro.netbase.addr import IPAddress
from repro.util.sankey import Sankey
from repro.web.requests import ThirdPartyRequest

Locator = Callable[[IPAddress], Optional[str]]


class ConfinementAnalyzer:
    """Flow-endpoint aggregation over one locator.

    Destination lookups are cached per IP, so running the analyzer over
    hundreds of thousands of requests costs one geolocation per distinct
    server address.
    """

    def __init__(
        self,
        locate: Locator,
        registry: Optional[CountryRegistry] = None,
    ) -> None:
        self._locate = locate
        self._registry = registry or default_registry()
        self._cache: Dict[IPAddress, Optional[str]] = {}

    def destination_country(self, address: IPAddress) -> Optional[str]:
        if address not in self._cache:
            self._cache[address] = self._locate(address)
        return self._cache[address]

    # -- Sankey builders -----------------------------------------------------
    def continent_sankey(
        self, requests: Iterable[ThirdPartyRequest]
    ) -> Sankey:
        """Region → region flow diagram (Fig. 6)."""
        sankey = Sankey()
        for request in requests:
            origin = region_of_country(request.user_country, self._registry)
            destination_country = self.destination_country(request.ip)
            destination = (
                region_of_country(destination_country, self._registry)
                if destination_country is not None
                else Region.UNKNOWN
            )
            sankey.add(origin.value, destination.value)
        return sankey

    def destination_regions(
        self,
        requests: Iterable[ThirdPartyRequest],
        origin_region: Region = Region.EU28,
    ) -> Dict[str, float]:
        """Destination-region shares for one origin region (Fig. 7)."""
        sankey = self.continent_sankey(
            r
            for r in requests
            if region_of_country(r.user_country, self._registry)
            is origin_region
        )
        return sankey.origin_shares(origin_region.value)

    def country_sankey(
        self,
        requests: Iterable[ThirdPartyRequest],
        origin_region: Optional[Region] = Region.EU28,
    ) -> Sankey:
        """Country → country flow diagram (Fig. 8).

        Destinations failing geolocation appear as ``unknown``, as in
        the paper's diagram.
        """
        sankey = Sankey()
        for request in requests:
            if origin_region is not None and (
                region_of_country(request.user_country, self._registry)
                is not origin_region
            ):
                continue
            destination = self.destination_country(request.ip) or "unknown"
            sankey.add(request.user_country, destination)
        return sankey

    # -- headline numbers -----------------------------------------------------
    def national_confinement(
        self,
        requests: Iterable[ThirdPartyRequest],
        origin_region: Optional[Region] = Region.EU28,
    ) -> Dict[str, float]:
        """Per origin country: percent of flows terminating in-country."""
        sankey = self.country_sankey(requests, origin_region)
        return {
            origin: sankey.confinement(origin)
            for origin in sankey.origins()
        }

    def region_confinement(
        self,
        requests: Iterable[ThirdPartyRequest],
        origin_region: Region = Region.EU28,
    ) -> float:
        """Percent of the region's flows terminating inside the region."""
        shares = self.destination_regions(requests, origin_region)
        return shares.get(origin_region.value, 0.0)

    def per_region_confinement(
        self, requests: Sequence[ThirdPartyRequest]
    ) -> Dict[str, Tuple[float, int]]:
        """Each origin region's confinement plus its user count.

        Mirrors the Sect. 4 listing ("Africa 2.11% (22), Asia 16.39%
        (20), ...").
        """
        users_by_region: Dict[str, set] = defaultdict(set)
        for request in requests:
            region = region_of_country(request.user_country, self._registry)
            users_by_region[region.value].add(request.user_id)
        sankey = self.continent_sankey(requests)
        return {
            region: (sankey.confinement(region), len(users))
            for region, users in sorted(users_by_region.items())
        }

    def overall_destination_shares(
        self, requests: Iterable[ThirdPartyRequest]
    ) -> Dict[str, float]:
        """Share of all flows terminating in each region (Fig. 6 right)."""
        return self.continent_sankey(requests).destination_shares()
