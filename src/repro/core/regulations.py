"""Multi-regulation confinement monitoring (the paper's outlook).

Sect. 9: *"We can continuously monitor the compliance to GDPR over time
and also include the monitoring of other regulations in the future at
different regional (e.g., USA) or content scope (Children's Online
Privacy Protection Act — COPPA, etc.)"*.

A :class:`Regulation` generalizes the paper's EU28 analysis to any
jurisdiction (a set of countries) and any content scope (a filter over
the tracked first party's sensitive categories or a custom predicate).
:class:`RegulationMonitor` evaluates, for each regulation, the share of
in-scope flows that terminate inside the jurisdiction — the paper's
"investigability" notion, portable to any law.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence

from repro.core.confinement import ConfinementAnalyzer, Locator
from repro.core.sensitive import SensitiveStudy
from repro.geodata.countries import CountryRegistry, default_registry
from repro.web.requests import ThirdPartyRequest


@dataclass(frozen=True)
class Regulation:
    """A data-protection regulation the monitor can evaluate.

    ``jurisdiction``: countries whose authorities can directly reach a
    tracking backend under this law.
    ``origin_countries``: whose citizens the law protects (defaults to
    the jurisdiction itself).
    ``category_scope``: when set, only flows from first parties in these
    sensitive categories are in scope (content-scoped laws like COPPA or
    health-records acts).
    """

    name: str
    jurisdiction: FrozenSet[str]
    origin_countries: Optional[FrozenSet[str]] = None
    category_scope: Optional[FrozenSet[str]] = None

    def protected_origins(self) -> FrozenSet[str]:
        return (
            self.origin_countries
            if self.origin_countries is not None
            else self.jurisdiction
        )


def builtin_regulations(
    registry: Optional[CountryRegistry] = None,
) -> List[Regulation]:
    """The regulations the paper names or implies.

    * **GDPR** — the EU28 jurisdiction of the whole study;
    * **BDSG (national scope)** — the paper's Sect. 2.1 point that
      national laws only reach domestically-hosted backends (Germany as
      the worked example);
    * **COPPA-like (children)** — a content-scoped law: flows from
      family/children-adjacent sensitive categories, US jurisdiction;
    * **Health-records act** — content-scoped on the health categories,
      evaluated for the EU28 jurisdiction.
    """
    registry = registry or default_registry()
    eu28 = frozenset(country.iso2 for country in registry.eu28())
    return [
        Regulation(name="GDPR", jurisdiction=eu28),
        Regulation(
            name="BDSG (DE national scope)",
            jurisdiction=frozenset({"DE"}),
        ),
        Regulation(
            name="COPPA-like (children, US)",
            jurisdiction=frozenset({"US"}),
            origin_countries=frozenset({"US", "CA"}),
            category_scope=frozenset({"pregnancy", "gambling"}),
        ),
        Regulation(
            name="Health-records (EU28)",
            jurisdiction=eu28,
            category_scope=frozenset({"health", "cancer", "pregnancy",
                                      "death"}),
        ),
    ]


@dataclass(frozen=True)
class RegulationReport:
    """Confinement of in-scope flows under one regulation."""

    regulation: Regulation
    in_scope_flows: int
    inside_jurisdiction: int
    unknown_destination: int

    @property
    def confinement_pct(self) -> float:
        if not self.in_scope_flows:
            return 0.0
        return 100.0 * self.inside_jurisdiction / self.in_scope_flows

    @property
    def investigable(self) -> bool:
        """Paper framing: most in-scope flows are directly reachable."""
        return self.confinement_pct >= 50.0


class RegulationMonitor:
    """Evaluates a set of regulations over classified tracking flows."""

    def __init__(
        self,
        locate: Locator,
        sensitive: Optional[SensitiveStudy] = None,
        registry: Optional[CountryRegistry] = None,
    ) -> None:
        self._analyzer = ConfinementAnalyzer(
            locate, registry or default_registry()
        )
        self._sensitive = sensitive

    def _in_scope(
        self, request: ThirdPartyRequest, regulation: Regulation
    ) -> bool:
        if request.user_country not in regulation.protected_origins():
            return False
        if regulation.category_scope is None:
            return True
        if self._sensitive is None:
            return False
        category = self._sensitive.category_of(request)
        return category in regulation.category_scope

    def evaluate(
        self,
        tracking_requests: Sequence[ThirdPartyRequest],
        regulation: Regulation,
    ) -> RegulationReport:
        """One regulation's confinement report."""
        in_scope = inside = unknown = 0
        for request in tracking_requests:
            if not self._in_scope(request, regulation):
                continue
            in_scope += 1
            destination = self._analyzer.destination_country(request.ip)
            if destination is None:
                unknown += 1
            elif destination in regulation.jurisdiction:
                inside += 1
        return RegulationReport(
            regulation=regulation,
            in_scope_flows=in_scope,
            inside_jurisdiction=inside,
            unknown_destination=unknown,
        )

    def evaluate_all(
        self,
        tracking_requests: Sequence[ThirdPartyRequest],
        regulations: Optional[Sequence[Regulation]] = None,
    ) -> Dict[str, RegulationReport]:
        """Every regulation's report, keyed by name."""
        regulations = (
            list(regulations)
            if regulations is not None
            else builtin_regulations()
        )
        return {
            regulation.name: self.evaluate(tracking_requests, regulation)
            for regulation in regulations
        }
