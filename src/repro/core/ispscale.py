"""ISP-scale validation (Sect. 7).

Joins the tracker-IP inventory (built from the browser-extension data
plus passive DNS) against the four ISPs' sampled NetFlow on the study's
snapshot days, producing the Table 8 grid and the Fig. 12 per-ISP
destination-country breakdowns.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Mapping, Optional, Sequence, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only
    import random

    from repro.web.browser import MappingService

from repro.config import SNAPSHOT_DAYS, ISPConfig
from repro.core.confinement import Locator
from repro.core.tracker_ips import TrackerIPInventory
from repro.geodata.countries import CountryRegistry, default_registry
from repro.geodata.regions import Region, region_of_country
from repro.netflow.isps import ISPProfile
from repro.netflow.join import HashedIPMatcher, JoinResult, TrackerFlowJoin
from repro.netflow.traffic import TrafficSynthesizer

#: Table 8's region rows, in paper order
TABLE8_REGIONS = ("EU 28", "N. America", "Rest of Europe", "Asia", "Rest World")


@dataclass(frozen=True)
class SnapshotReport:
    """One (ISP, day) cell group of Table 8."""

    isp_name: str
    snapshot: str
    sampled_tracking_flows: int
    estimated_tracking_flows: int
    region_shares: Dict[str, float]
    destination_countries: Dict[str, float]
    encrypted_share_pct: float
    web_share_pct: float

    def top_destinations(self, k: int = 5) -> List[Tuple[str, float]]:
        """Top-k destination countries plus a Rest-World bucket (Fig 12)."""
        ranked = sorted(
            self.destination_countries.items(), key=lambda kv: (-kv[1], kv[0])
        )
        top = ranked[:k]
        rest = sum(share for _, share in ranked[k:])
        if rest > 0:
            top.append(("Rest World", rest))
        return top


class ISPScaleStudy:
    """Runs the four-ISP NetFlow study against one tracker inventory."""

    def __init__(
        self,
        synthesizers: Mapping[str, TrafficSynthesizer],
        isps: Sequence[ISPProfile],
        inventory: TrackerIPInventory,
        locate: Locator,
        config: ISPConfig,
        registry: Optional[CountryRegistry] = None,
    ) -> None:
        self._synthesizers = dict(synthesizers)
        self._isps = {isp.name: isp for isp in isps}
        self._config = config
        self._registry = registry or default_registry()
        matcher = HashedIPMatcher()
        for record in inventory.records():
            matcher.add(record.address, record.window)
        self._join = TrackerFlowJoin(matcher, locate)

    # -- public API ---------------------------------------------------------
    def run_snapshot(
        self,
        isp_name: str,
        snapshot: str,
        *,
        rng: Optional["random.Random"] = None,
        mapping: Optional["MappingService"] = None,
    ) -> SnapshotReport:
        """Synthesize, join and aggregate one (ISP, day) snapshot.

        ``rng`` / ``mapping`` are forwarded to the synthesizer (see
        :meth:`TrafficSynthesizer.snapshot`) so the runtime can run each
        ISP shard against shard-local randomness and DNS state.
        """
        isp = self._isps[isp_name]
        day = SNAPSHOT_DAYS[snapshot]
        synthesizer = self._synthesizers[isp_name]
        records = synthesizer.snapshot(day, rng=rng, mapping=mapping)
        result = self._join.join(isp_name, isp.country, day, records)
        return self._report(isp, snapshot, result)

    def run_all(
        self, snapshots: Optional[Sequence[str]] = None
    ) -> Dict[Tuple[str, str], SnapshotReport]:
        """The full Table 8 grid: every ISP on every snapshot day."""
        snapshots = list(snapshots or SNAPSHOT_DAYS)
        out: Dict[Tuple[str, str], SnapshotReport] = {}
        for isp_name in sorted(self._isps):
            for snapshot in snapshots:
                out[(isp_name, snapshot)] = self.run_snapshot(
                    isp_name, snapshot
                )
        return out

    # -- aggregation -----------------------------------------------------
    def _report(
        self, isp: ISPProfile, snapshot: str, result: JoinResult
    ) -> SnapshotReport:
        total = result.matched_flows
        region_counts: Dict[str, int] = {name: 0 for name in TABLE8_REGIONS}
        country_counts: Dict[str, int] = {}
        for destination, count in result.destinations.items():
            label = self._region_label(destination)
            region_counts[label] = region_counts.get(label, 0) + count
            country_counts[destination] = (
                country_counts.get(destination, 0) + count
            )
        region_shares = {
            name: (100.0 * count / total if total else 0.0)
            for name, count in region_counts.items()
        }
        destination_shares = {
            self._display_country(country): 100.0 * count / total
            for country, count in country_counts.items()
        } if total else {}
        return SnapshotReport(
            isp_name=isp.name,
            snapshot=snapshot,
            sampled_tracking_flows=total,
            estimated_tracking_flows=total * self._config.sampling_rate,
            region_shares=region_shares,
            destination_countries=destination_shares,
            encrypted_share_pct=100.0 * result.encrypted_share(),
            web_share_pct=100.0 * result.web_share(),
        )

    def _region_label(self, destination: str) -> str:
        if destination == "unknown":
            return "Rest World"
        region = region_of_country(destination, self._registry)
        if region is Region.EU28:
            return "EU 28"
        if region is Region.NORTH_AMERICA:
            return "N. America"
        if region is Region.REST_EUROPE:
            return "Rest of Europe"
        if region is Region.ASIA:
            return "Asia"
        return "Rest World"

    def _display_country(self, iso2: str) -> str:
        country = self._registry.find(iso2)
        return country.name if country is not None else iso2
