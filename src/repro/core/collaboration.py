"""Inter-tracker collaboration analysis (the paper's future work).

The paper closes with: *"We also plan to extend our methodology to go
beyond the terminating end-point of tracking to capture inter-tracker
collaboration and data exchange."*  This module implements that
extension over the data the pipeline already collects.

Cookie syncing leaves a visible trail: a sync request's *referrer* names
the tracker that initiated the hand-off, and the request URL names the
tracker receiving the identifier.  Folding every classified chain edge
to the registrable-domain level yields the **collaboration graph**: a
directed graph whose nodes are tracking domains and whose edges count
observed identifier hand-offs.

On top of the graph the analyzer reports the paper-style geographic
angle: how many hand-offs cross national borders or leave the GDPR
jurisdiction *between trackers* (the user's data now sits with both
endpoints), which neither endpoint-confinement analysis captures.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import networkx as nx

from repro.core.classify import ClassificationResult
from repro.core.confinement import Locator
from repro.geodata.regions import Region, region_of_country
from repro.netbase.addr import IPAddress
from repro.web.requests import tld1_of, url_fqdn


@dataclass(frozen=True)
class HandOff:
    """One observed identifier hand-off between two tracking domains."""

    source_domain: str
    target_domain: str
    source_country: Optional[str]
    target_country: Optional[str]

    @property
    def crosses_country(self) -> bool:
        return (
            self.source_country is not None
            and self.target_country is not None
            and self.source_country != self.target_country
        )

    @property
    def leaves_gdpr(self) -> bool:
        """Data held inside EU28 handed to a tracker outside it."""
        return (
            region_of_country(self.source_country) is Region.EU28
            and region_of_country(self.target_country) is not Region.EU28
        )


class CollaborationAnalyzer:
    """Builds and analyzes the tracker collaboration graph."""

    def __init__(
        self,
        classification: ClassificationResult,
        locate: Locator,
    ) -> None:
        self._classification = classification
        self._locate = locate
        self._location_cache: Dict[IPAddress, Optional[str]] = {}
        self._hand_offs: Optional[List[HandOff]] = None
        self._graph: Optional[nx.DiGraph] = None

    # -- construction -----------------------------------------------------
    def _located(self, address: IPAddress) -> Optional[str]:
        if address not in self._location_cache:
            self._location_cache[address] = self._locate(address)
        return self._location_cache[address]

    def hand_offs(self) -> List[HandOff]:
        """Extract every domain→domain identifier hand-off.

        An edge exists when a *tracking* request's referrer is itself a
        third-party tracking URL of a different registrable domain —
        the visible part of a sync chain.  Location of the source side
        uses the serving IP of the referrer request when observed.
        """
        if self._hand_offs is not None:
            return self._hand_offs
        url_server: Dict[str, IPAddress] = {}
        for request, stage in zip(
            self._classification.requests, self._classification.stages
        ):
            if stage.is_tracking:
                url_server.setdefault(request.url, request.ip)
        out: List[HandOff] = []
        for request, stage in zip(
            self._classification.requests, self._classification.stages
        ):
            if not stage.is_tracking:
                continue
            referrer_ip = url_server.get(request.referrer)
            if referrer_ip is None:
                continue  # first-party referrer or unobserved URL
            source_domain = tld1_of(url_fqdn(request.referrer))
            target_domain = request.tld1
            if source_domain == target_domain:
                continue
            out.append(
                HandOff(
                    source_domain=source_domain,
                    target_domain=target_domain,
                    source_country=self._located(referrer_ip),
                    target_country=self._located(request.ip),
                )
            )
        self._hand_offs = out
        return out

    def graph(self) -> nx.DiGraph:
        """The weighted directed collaboration graph."""
        if self._graph is not None:
            return self._graph
        graph = nx.DiGraph()
        for hand_off in self.hand_offs():
            if graph.has_edge(hand_off.source_domain, hand_off.target_domain):
                graph[hand_off.source_domain][hand_off.target_domain][
                    "weight"
                ] += 1
            else:
                graph.add_edge(
                    hand_off.source_domain, hand_off.target_domain, weight=1
                )
        self._graph = graph
        return graph

    # -- structure metrics ---------------------------------------------------
    def top_collaborations(self, k: int = 10) -> List[Tuple[str, str, int]]:
        """The k heaviest domain→domain hand-off edges."""
        graph = self.graph()
        edges = sorted(
            (
                (source, target, data["weight"])
                for source, target, data in graph.edges(data=True)
            ),
            key=lambda edge: (-edge[2], edge[0], edge[1]),
        )
        return edges[:k]

    def hubs(self, k: int = 10) -> List[Tuple[str, int]]:
        """Domains receiving identifiers from the most partners."""
        graph = self.graph()
        ranked = sorted(
            graph.in_degree(), key=lambda pair: (-pair[1], pair[0])
        )
        return [pair for pair in ranked[:k]]

    def n_components(self) -> int:
        """Weakly connected components of the collaboration graph."""
        graph = self.graph()
        if graph.number_of_nodes() == 0:
            return 0
        return nx.number_weakly_connected_components(graph)

    def giant_component_share(self) -> float:
        """Fraction of domains in the largest component (ecosystem
        cohesion — cookie syncing binds most of the industry together)."""
        graph = self.graph()
        if graph.number_of_nodes() == 0:
            return 0.0
        giant = max(nx.weakly_connected_components(graph), key=len)
        return len(giant) / graph.number_of_nodes()

    # -- geographic metrics ---------------------------------------------------
    def cross_border_share_pct(self) -> float:
        """Percent of hand-offs whose two trackers sit in different
        countries."""
        hand_offs = self.hand_offs()
        if not hand_offs:
            return 0.0
        crossing = sum(1 for h in hand_offs if h.crosses_country)
        return 100.0 * crossing / len(hand_offs)

    def gdpr_exit_share_pct(self) -> float:
        """Percent of hand-offs moving data from inside EU28 to outside."""
        hand_offs = self.hand_offs()
        if not hand_offs:
            return 0.0
        leaving = sum(1 for h in hand_offs if h.leaves_gdpr)
        return 100.0 * leaving / len(hand_offs)

    def country_exchange_matrix(self) -> Dict[Tuple[str, str], int]:
        """(source country, target country) → hand-off counts."""
        matrix: Counter = Counter()
        for hand_off in self.hand_offs():
            matrix[
                (hand_off.source_country or "unknown",
                 hand_off.target_country or "unknown")
            ] += 1
        return dict(matrix)

    def summary(self) -> Dict[str, float]:
        """Headline numbers for reports and tests."""
        graph = self.graph()
        return {
            "hand_offs": float(len(self.hand_offs())),
            "domains": float(graph.number_of_nodes()),
            "edges": float(graph.number_of_edges()),
            "components": float(self.n_components()),
            "giant_component_share": self.giant_component_share(),
            "cross_border_share_pct": self.cross_border_share_pct(),
            "gdpr_exit_share_pct": self.gdpr_exit_share_pct(),
        }
