"""The streaming columnar record path: cohort in, headline out.

The object-path :class:`~repro.core.pipeline.Study` materializes every
request of every user before the first classification happens — fine at
1.6k users, fatal at a million.  This module is the memory-bounded
alternative: the panel is generated **one user cohort at a time**, each
cohort is packed into a :class:`~repro.columnar.table.ColumnarTable`,
pushed through the vectorized kernels
(:func:`~repro.core.kernels.classify_table` →
:class:`~repro.core.kernels.ConfinementAccumulator`), and dropped.
Peak memory is one cohort plus the accumulator's distinct-value state;
headline metrics are identical to the object path's because every
kernel is equivalence-locked against its reference.

Cohort boundaries always align to users: the classifier's referrer
closure never crosses users (URLs carry per-user tokens), so a user
cohort is closure-complete and the labels cannot depend on the cohort
size.  Chunk size, by contrast, is pure iteration geometry — the
equivalence tests sweep both.

Timing is read from an injected :mod:`repro.obs.clock` clock (default
:class:`~repro.obs.clock.NullClock`), never from ambient wall time, so
the module stays usable on deterministic run paths; the scale driver
injects a :class:`~repro.obs.clock.SystemClock` to measure real
throughput.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterator, Optional, Sequence, Tuple

from repro.columnar.chunks import cohort_bounds
from repro.columnar.table import ColumnarTable
from repro.core.classify import (
    ClassificationStage,
    ClassificationResult,
    RequestClassifier,
)
from repro.core.confinement import ConfinementAnalyzer
from repro.core.kernels import (
    ConfinementAccumulator,
    classify_table,
    stage_counts,
)
from repro.dnssim.passive import PassiveDNSDatabase
from repro.errors import ColumnarError
from repro.geodata.countries import CountryRegistry
from repro.geodata.regions import Region
from repro.netbase.addr import IPAddress
from repro.obs import metrics as obs_metrics
from repro.obs import names as obs_names
from repro.obs.clock import NullClock
from repro.web.browser import BrowserExtensionSimulator, MappingService
from repro.web.columns import request_table
from repro.web.requests import ThirdPartyRequest

Locator = Callable[[IPAddress], Optional[str]]

#: default rows per inner kernel chunk (~a few MB of working set)
DEFAULT_CHUNK_ROWS = 65536


def iter_panel_cohorts(
    world, cohort_size: int
) -> Iterator[Tuple[str, ColumnarTable]]:
    """Generate the panel cohort-at-a-time as columnar batches.

    Yields ``(cohort_key, request_table)`` for each user block of (at
    most) ``cohort_size`` users.  Each cohort simulates against a
    cohort-local DNS mapping (fresh answer cache, cohort-derived DNS
    stream, cohort-local passive-DNS collector) exactly the way the
    runtime's panel shards do; per-user browsing randomness is a
    stateless fork keyed on the user id, so a user's requests do not
    depend on which cohort generated them.

    Nothing is retained between cohorts — the caller owns the peak
    memory bound by choosing ``cohort_size``.

    Raises :class:`repro.errors.ColumnarError` for non-positive
    ``cohort_size``.
    """
    for lo, hi in cohort_bounds(len(world.users), cohort_size):
        cohort_key = f"users[{lo}:{hi}]"
        local_pdns = PassiveDNSDatabase(name=f"columnar-{cohort_key}")
        mapping = MappingService(
            world.fleet,
            world.registry,
            local_pdns,
            world.streams.spawn(f"columnar:{cohort_key}"),
        )
        simulator = BrowserExtensionSimulator(
            fleet=world.fleet,
            publishers=world.publishers,
            users=world.users[lo:hi],
            panel_config=world.config.panel,
            browsing_config=world.config.browsing,
            registry=world.registry,
            mapping=mapping,
            streams=world.streams,  # per-user forks are stateless
        )
        log = simulator.simulate()
        yield cohort_key, request_table(log.requests)


@dataclass(frozen=True)
class ColumnarHeadlines:
    """The record path's headline numbers, path-independent by contract.

    Every field here must be byte-identical between the object path
    (:func:`headlines_object`) and the streaming columnar path
    (:meth:`StreamingRecordPath.headlines`) on the same request log —
    that is the invariant the equivalence tests pin.
    """

    n_requests: int
    n_tracking: int
    #: classification-stage value → flow count (all four stages)
    stage_flows: Dict[str, int]
    #: EU28 tracking flows staying inside EU28, percent
    region_confinement_pct: float
    #: EU28 origin country → percent of its tracking flows staying home
    national_confinement: Dict[str, float]
    #: destination region → share of all tracking flows, percent
    destination_shares: Dict[str, float]


class StreamingRecordPath:
    """Classify + confine a stream of request tables, cohort by cohort.

    Feed cohorts with :meth:`consume`; read :meth:`headlines` at any
    point (the accumulator is monotone, so headlines are valid after
    every cohort).  Wall time per stage is read from the injected
    ``clock`` and exposed as rows-per-second via :meth:`throughput`;
    when a metrics collection scope is active the rates are also
    published as ``pipeline.flows_per_s{stage=...}`` gauges.
    """

    #: stage keys, in pipeline order, as used by :meth:`throughput`
    STAGES = ("classify", "confine")

    def __init__(
        self,
        classifier: RequestClassifier,
        locate: Locator,
        registry: Optional[CountryRegistry] = None,
        chunk_rows: int = DEFAULT_CHUNK_ROWS,
        clock=None,
    ) -> None:
        if chunk_rows < 1:
            raise ColumnarError(f"chunk_rows must be >= 1, got {chunk_rows}")
        self._classifier = classifier
        self._accumulator = ConfinementAccumulator(locate, registry)
        self._chunk_rows = chunk_rows
        self._clock = clock if clock is not None else NullClock()
        self._wall = {stage: 0.0 for stage in self.STAGES}
        self._rows = {stage: 0 for stage in self.STAGES}
        self._stage_flows: Dict[ClassificationStage, int] = {
            stage: 0 for stage in ClassificationStage
        }
        self.n_cohorts = 0

    # -- ingest ----------------------------------------------------------
    def consume(self, table: ColumnarTable) -> None:
        """Fold one request-table cohort into the running study."""
        clock = self._clock
        started = clock.wall()
        labels = classify_table(self._classifier, table)
        classified = clock.wall()
        self._accumulator.absorb(table, labels, self._chunk_rows)
        confined = clock.wall()

        n_rows = len(table)
        self._wall["classify"] += classified - started
        self._wall["confine"] += confined - classified
        self._rows["classify"] += n_rows
        self._rows["confine"] += n_rows
        for stage, count in stage_counts(labels).items():
            self._stage_flows[stage] += count
        self.n_cohorts += 1

        if obs_metrics.active():
            for stage, rate in self.throughput().items():
                obs_metrics.set_gauge(
                    obs_names.PIPELINE_FLOWS_PER_S, rate, stage=stage
                )

    # -- telemetry --------------------------------------------------------
    def throughput(self) -> Dict[str, float]:
        """Cumulative rows-per-second per stage (0.0 under a null clock)."""
        return {
            stage: (
                self._rows[stage] / self._wall[stage]
                if self._wall[stage] > 0
                else 0.0
            )
            for stage in self.STAGES
        }

    def stage_stats(self) -> Dict[str, Dict[str, float]]:
        """Per-stage ``{rows, wall_s, flows_per_s}`` for scale reports."""
        rates = self.throughput()
        return {
            stage: {
                "rows": float(self._rows[stage]),
                "wall_s": self._wall[stage],
                "flows_per_s": rates[stage],
            }
            for stage in self.STAGES
        }

    @property
    def n_rows(self) -> int:
        """Total request rows consumed so far."""
        return self._accumulator.n_rows

    @property
    def n_tracking(self) -> int:
        """Total tracking-classified rows consumed so far."""
        return self._accumulator.n_tracking

    # -- headline views ---------------------------------------------------
    def headlines(self) -> ColumnarHeadlines:
        """The study's headline numbers over everything consumed so far."""
        acc = self._accumulator
        return ColumnarHeadlines(
            n_requests=acc.n_rows,
            n_tracking=acc.n_tracking,
            stage_flows={
                stage.value: count
                for stage, count in sorted(
                    self._stage_flows.items(), key=lambda kv: kv[0].value
                )
            },
            region_confinement_pct=acc.region_confinement(Region.EU28),
            national_confinement=acc.national_confinement(),
            destination_shares=acc.destination_shares(),
        )


def headlines_object(
    classifier: RequestClassifier,
    locate: Locator,
    requests: Sequence[ThirdPartyRequest],
    registry: Optional[CountryRegistry] = None,
) -> ColumnarHeadlines:
    """The object-path reference for :class:`ColumnarHeadlines`.

    Runs the per-record classifier and analyzer the way
    :class:`~repro.core.pipeline.Study` does and projects out the same
    headline fields, so a property test can assert equality without
    dragging the whole study pipeline in.
    """
    result: ClassificationResult = classifier.classify(requests)
    analyzer = ConfinementAnalyzer(locate, registry)
    tracking = result.tracking_requests()
    stage_flows = {
        stage.value: sum(1 for s in result.stages if s is stage)
        for stage in sorted(ClassificationStage, key=lambda s: s.value)
    }
    return ColumnarHeadlines(
        n_requests=len(requests),
        n_tracking=result.n_tracking(),
        stage_flows=stage_flows,
        region_confinement_pct=analyzer.region_confinement(tracking),
        national_confinement=analyzer.national_confinement(tracking),
        destination_shares=analyzer.overall_destination_shares(tracking),
    )


class SyntheticCohortSource:
    """Million-user cohort synthesis from a small-world template.

    The scale driver needs request volume far beyond what the full
    simulation can generate in reasonable wall time, with the *shape*
    of real panel traffic (URL structure, tracker mix, per-user origin
    country).  This source takes a template request table from a real
    (small) world and mints synthetic user cohorts from it: each
    synthetic user adopts one template user's identity (so origin
    country stays consistent per user) and re-draws its requests from
    that template user's rows.

    This is a **benchmark harness, not a measurement**: the aggregate
    statistics are a resampling of the template world's, so headline
    numbers from synthetic worlds demonstrate throughput and memory
    bounds, never paper results (see ``docs/scaling.md``).

    Cohort content is a pure function of ``(streams seed, lo, hi)`` —
    cohorts can be regenerated or re-ordered without changing rows.
    """

    def __init__(
        self,
        template: ColumnarTable,
        streams,
        n_users: int,
        requests_per_user: int,
    ) -> None:
        if len(template) == 0:
            raise ColumnarError("synthetic source needs a non-empty template")
        if n_users < 1 or requests_per_user < 1:
            raise ColumnarError(
                "n_users and requests_per_user must be >= 1, got "
                f"{n_users} / {requests_per_user}"
            )
        self._template = template
        self._streams = streams
        self.n_users = n_users
        self.requests_per_user = requests_per_user
        # Template rows grouped by template user, in row order.
        user_ids = template.column("user_id")
        by_user: Dict[int, list] = {}
        for index in range(len(template)):
            by_user.setdefault(user_ids[index], []).append(index)
        self._template_users = sorted(by_user)
        self._rows_of = by_user
        self._user_id_at = template.schema.index_of("user_id")

    @property
    def n_requests(self) -> int:
        """Total rows the full synthetic world will stream."""
        return self.n_users * self.requests_per_user

    def cohorts(self, cohort_size: int) -> Iterator[Tuple[str, ColumnarTable]]:
        """Yield ``(cohort_key, request_table)`` synthetic cohorts."""
        for lo, hi in cohort_bounds(self.n_users, cohort_size):
            yield f"synth[{lo}:{hi}]", self.cohort(lo, hi)

    def cohort(self, lo: int, hi: int) -> ColumnarTable:
        """Mint one cohort of synthetic users ``[lo, hi)``."""
        rng = self._streams.fork(f"columnar:synth[{lo}:{hi}]")
        template = self._template
        user_id_at = self._user_id_at
        out = ColumnarTable(template.schema)
        for user_id in range(lo, hi):
            persona = self._template_users[
                rng.randrange(len(self._template_users))
            ]
            indices = self._rows_of[persona]
            for _ in range(self.requests_per_user):
                row = list(template.row(indices[rng.randrange(len(indices))]))
                row[user_id_at] = user_id
                out.append(tuple(row))
        return out
