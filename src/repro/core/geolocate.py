"""Geolocation orchestration (Sect. 3.4).

Bundles the three geolocation tools over the tracker IP inventory:

* the active-measurement engine (RIPE IPmap substitute) — the study's
  reference tool,
* the two commercial databases (MaxMind / IP-API substitutes),

and exposes the paper's comparison products: the pairwise agreement
matrix (Table 3), the per-provider mis-geolocation report (Table 4), and
the IPmap validation against the published cloud ranges.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.cloud.providers import CloudCatalog
from repro.errors import UnknownKeyError
from repro.geoloc.commercial import CommercialGeoDatabase
from repro.geoloc.compare import (
    AgreementCell,
    MisgeolocationRow,
    agreement_matrix,
    misgeolocation_report,
)
from repro.geoloc.ipmap import IPmapEngine
from repro.geoloc.truth import GroundTruthOracle
from repro.core.tracker_ips import TrackerIPInventory
from repro.netbase.addr import IPAddress

Locator = Callable[[IPAddress], Optional[str]]


class GeolocationSuite:
    """All geolocation tools over one tracker-IP inventory."""

    def __init__(
        self,
        ipmap: IPmapEngine,
        maxmind: CommercialGeoDatabase,
        ip_api: CommercialGeoDatabase,
        oracle: GroundTruthOracle,
    ) -> None:
        self._ipmap = ipmap
        self._maxmind = maxmind
        self._ip_api = ip_api
        self._oracle = oracle
        # Built once: per-record lookups go through this index instead
        # of assembling a fresh dict per call (the columnar path made
        # the per-call construction visible as a hot-loop allocation).
        self._locators: Dict[str, Locator] = {
            "RIPE IPmap": self._ipmap.locate,
            "MaxMind": self._maxmind.locate,
            "ip-api": self._ip_api.locate,
        }

    # -- locator access ----------------------------------------------------
    def locators(self) -> Dict[str, Locator]:
        """Tool name → locator callable (a copy; mutate freely)."""
        return dict(self._locators)

    def locate(self, tool: str, address: IPAddress) -> Optional[str]:
        """Geolocate ``address`` with one named tool.

        Raises :class:`repro.errors.UnknownKeyError` for tools outside
        :meth:`locators`.
        """
        try:
            locator = self._locators[tool]
        except KeyError:
            raise UnknownKeyError(f"unknown geolocation tool {tool!r}") from None
        return locator(address)

    @property
    def reference(self) -> Locator:
        """The study's reference tool (active measurements)."""
        return self._ipmap.locate

    @property
    def maxmind(self) -> Locator:
        return self._maxmind.locate

    @property
    def ip_api(self) -> Locator:
        return self._ip_api.locate

    @property
    def truth(self) -> Locator:
        """Evaluation-only ground truth."""
        return self._oracle.country

    # -- Table 3 ---------------------------------------------------------
    def pairwise_agreement(
        self, addresses: Sequence[IPAddress]
    ) -> Dict[Tuple[str, str], AgreementCell]:
        return agreement_matrix(addresses, self.locators())

    # -- Table 4 ---------------------------------------------------------
    def misgeolocation_by_org(
        self,
        inventory: TrackerIPInventory,
        org_of_ip: Callable[[IPAddress], Optional[str]],
        org_labels: Sequence[str],
    ) -> List[MisgeolocationRow]:
        """Commercial-vs-reference mis-geolocation for selected orgs.

        ``org_of_ip`` attributes an IP to an organization label (in the
        paper: Google / Amazon / Facebook ads+tracking); only IPs whose
        label is in ``org_labels`` are reported.
        """
        grouped: Dict[str, List[IPAddress]] = defaultdict(list)
        for address in inventory.addresses():
            label = org_of_ip(address)
            if label in org_labels:
                grouped[label].append(address)
        counts = inventory.request_counts()
        return [
            misgeolocation_report(
                org_label=label,
                addresses=grouped.get(label, []),
                request_counts=counts,
                tested=self._maxmind.locate,
                reference=self._ipmap.locate,
            )
            for label in org_labels
        ]

    # -- IPmap accuracy validation (Sect. 3.4's AWS/Azure check) ----------
    def validate_ipmap_against_clouds(
        self,
        clouds: CloudCatalog,
        providers: Sequence[str] = ("aws", "azure"),
        per_pool_samples: int = 3,
    ) -> Dict[str, float]:
        """Geolocate addresses inside published cloud ranges and score
        against the advertised pool country.

        Returns country- and region-level accuracy percentages.
        """
        from repro.geodata.regions import region_of_country

        total = country_ok = region_ok = 0
        for provider_name in providers:
            provider = clouds.get(provider_name)
            for country in provider.pop_countries:
                prefix = clouds.pool_record(provider_name, country).prefix
                for offset in range(per_pool_samples):
                    address = prefix.nth(offset)
                    estimate = self._ipmap.locate(address)
                    if estimate is None:
                        continue
                    total += 1
                    if estimate == country:
                        country_ok += 1
                    if region_of_country(estimate) is region_of_country(
                        country
                    ):
                        region_ok += 1
        if total == 0:
            return {"country_pct": 0.0, "region_pct": 0.0, "n": 0.0}
        return {
            "country_pct": 100.0 * country_ok / total,
            "region_pct": 100.0 * region_ok / total,
            "n": float(total),
        }

    # -- evaluation helpers -------------------------------------------------
    def reference_accuracy(
        self, addresses: Sequence[IPAddress]
    ) -> Dict[str, float]:
        """Accuracy of the active engine against ground truth
        (evaluation only — the paper cannot compute this, we can)."""
        from repro.geodata.regions import region_of_country

        total = country_ok = region_ok = 0
        for address in addresses:
            truth = self._oracle.country(address)
            estimate = self._ipmap.locate(address)
            if truth is None or estimate is None:
                continue
            total += 1
            if truth == estimate:
                country_ok += 1
            if region_of_country(truth) is region_of_country(estimate):
                region_ok += 1
        if total == 0:
            return {"country_pct": 0.0, "region_pct": 0.0, "n": 0.0}
        return {
            "country_pct": 100.0 * country_ok / total,
            "region_pct": 100.0 * region_ok / total,
            "n": float(total),
        }
