"""Two-stage tracking-flow classification (Sect. 3.2).

Stage 1 — **filter lists**: every third-party request matching the
easylist or easyprivacy rules is a tracking flow (the LTF set); the rest
form the non-tracking set (NTF).

Stage 2 — **semi-automatic referrer closure**: an NTF request is
promoted to tracking when (a) its referrer URL is already in the LTF set
and (b) its URL carries arguments (URL-argument passing is the standard
identifier-relay mechanism between trackers).  Promotion is applied to a
fixpoint, so whole post-auction chains are recovered from a single
list-matched root.

Stage 3 — **keyword rule**: remaining NTF requests whose URL carries
arguments and whose path contains one of the empirically-built tracking
keywords ("usermatch", "rtb", "cookiesync", ...) are promoted as well.

The paper reports stages 2+3 together as the "semi-automatic"
classification (Table 2); we keep the split for diagnostics.
"""

from __future__ import annotations

import enum
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Set, Tuple

from repro.errors import ValidationError
from repro.obs import metrics as obs_metrics
from repro.obs import names as obs_names
from repro.web.filterlists import FilterList
from repro.web.requests import ThirdPartyRequest
from repro.web.rtb import TRACKING_KEYWORDS


class ClassificationStage(enum.Enum):
    """How (whether) a request was classified as tracking."""

    LIST = "list"          # stage 1: easylist / easyprivacy match
    REFERRER = "referrer"  # stage 2: referrer-in-LTF + args closure
    KEYWORD = "keyword"    # stage 3: tracking keyword + args
    NONE = "none"          # not classified as tracking

    @property
    def is_tracking(self) -> bool:
        return self is not ClassificationStage.NONE

    @property
    def is_semi_automatic(self) -> bool:
        return self in (
            ClassificationStage.REFERRER, ClassificationStage.KEYWORD,
        )


@dataclass
class StageStats:
    """Per-stage aggregates (one Table 2 row)."""

    fqdns: Set[str] = field(default_factory=set)
    tlds: Set[str] = field(default_factory=set)
    unique_urls: Set[str] = field(default_factory=set)
    total_requests: int = 0

    def absorb(self, request: ThirdPartyRequest) -> None:
        self.fqdns.add(request.fqdn)
        self.tlds.add(request.tld1)
        self.unique_urls.add(request.url)
        self.total_requests += 1

    def merge(self, other: "StageStats") -> "StageStats":
        merged = StageStats(
            fqdns=self.fqdns | other.fqdns,
            tlds=self.tlds | other.tlds,
            unique_urls=self.unique_urls | other.unique_urls,
            total_requests=self.total_requests + other.total_requests,
        )
        return merged


@dataclass
class ClassificationResult:
    """The classifier's verdict over a request log."""

    requests: List[ThirdPartyRequest]
    stages: List[ClassificationStage]

    def __post_init__(self) -> None:
        if len(self.requests) != len(self.stages):
            raise ValidationError("requests/stages length mismatch")

    # -- views ---------------------------------------------------------
    def tracking_requests(self) -> List[ThirdPartyRequest]:
        return [
            request
            for request, stage in zip(self.requests, self.stages)
            if stage.is_tracking
        ]

    def non_tracking_requests(self) -> List[ThirdPartyRequest]:
        return [
            request
            for request, stage in zip(self.requests, self.stages)
            if not stage.is_tracking
        ]

    def stage_of(self, index: int) -> ClassificationStage:
        return self.stages[index]

    def n_tracking(self) -> int:
        return sum(1 for stage in self.stages if stage.is_tracking)

    # -- Table 2 ---------------------------------------------------------
    def list_stats(self) -> StageStats:
        return self._stats(lambda s: s is ClassificationStage.LIST)

    def semi_automatic_stats(self) -> StageStats:
        return self._stats(lambda s: s.is_semi_automatic)

    def total_stats(self) -> StageStats:
        return self._stats(lambda s: s.is_tracking)

    def _stats(self, predicate) -> StageStats:
        stats = StageStats()
        for request, stage in zip(self.requests, self.stages):
            if predicate(stage):
                stats.absorb(request)
        return stats

    # -- Figure 3 ---------------------------------------------------------
    def top_tlds(self, k: int = 20) -> List[Tuple[str, int, int]]:
        """Top-k tracking TLDs: (tld, list_count, semi_count) by total."""
        list_counts: Dict[str, int] = defaultdict(int)
        semi_counts: Dict[str, int] = defaultdict(int)
        for request, stage in zip(self.requests, self.stages):
            if stage is ClassificationStage.LIST:
                list_counts[request.tld1] += 1
            elif stage.is_semi_automatic:
                semi_counts[request.tld1] += 1
        totals = {
            tld: list_counts.get(tld, 0) + semi_counts.get(tld, 0)
            for tld in sorted(set(list_counts) | set(semi_counts))
        }
        ranked = sorted(totals.items(), key=lambda kv: (-kv[1], kv[0]))[:k]
        return [
            (tld, list_counts.get(tld, 0), semi_counts.get(tld, 0))
            for tld, _ in ranked
        ]

    # -- Figure 2 ---------------------------------------------------------
    def per_site_counts(self) -> Dict[str, Tuple[int, int]]:
        """first-party domain → (tracking count, clean count)."""
        out: Dict[str, List[int]] = defaultdict(lambda: [0, 0])
        for request, stage in zip(self.requests, self.stages):
            slot = 0 if stage.is_tracking else 1
            out[request.first_party][slot] += 1
        return {site: (t, c) for site, (t, c) in out.items()}


class RequestClassifier:
    """The three-stage classifier."""

    def __init__(
        self,
        easylist: FilterList,
        easyprivacy: FilterList,
        keywords: Sequence[str] = TRACKING_KEYWORDS,
    ) -> None:
        self._easylist = easylist
        self._easyprivacy = easyprivacy
        self._keywords = tuple(k.lower() for k in keywords)

    # -- single-request predicates ---------------------------------------
    def matches_lists(self, request: ThirdPartyRequest) -> bool:
        """Stage-1 predicate: does either filter list match the request?

        Raises :class:`repro.errors.ClassificationError` when the
        request URL carries no derivable host (propagated from
        :attr:`ThirdPartyRequest.fqdn`).
        """
        return self.matches_lists_url(request.url, request.fqdn)

    def matches_keywords(self, request: ThirdPartyRequest) -> bool:
        """Stage-3 predicate: URL arguments plus a tracking keyword."""
        return self.matches_keywords_url(request.url, request.has_args)

    # -- URL-component predicates (columnar kernels) ----------------------
    def matches_lists_url(self, url: str, fqdn: str) -> bool:
        """Stage-1 predicate over pre-split URL components.

        The columnar kernels store ``fqdn`` as a column computed once
        at ingest, so they call this form directly instead of paying an
        ``urlsplit`` per pass through the object property.
        """
        return self._easylist.matches(url, fqdn) or self._easyprivacy.matches(
            url, fqdn
        )

    def matches_keywords_url(self, url: str, has_args: bool) -> bool:
        """Stage-3 predicate over pre-split URL components."""
        if not has_args:
            return False
        lowered = url.lower()
        return any(keyword in lowered for keyword in self._keywords)

    # -- full-log classification ------------------------------------------
    def classify(
        self,
        requests: Sequence[ThirdPartyRequest],
        enable_referrer_stage: bool = True,
        enable_keyword_stage: bool = True,
    ) -> ClassificationResult:
        """Classify a request log.

        The stage toggles support ablation studies: disabling the
        referrer closure and keyword heuristic reduces the classifier to
        the naive lists-only approach the paper improves upon.

        This is the **reference implementation** of the record path:
        :func:`repro.core.kernels.classify_table` reproduces it column-
        at-a-time over a :class:`~repro.columnar.table.ColumnarTable`,
        and the equivalence tests lock both to identical stage labels.

        Raises :class:`repro.errors.ValidationError` when the produced
        label vector misaligns with the request log, and propagates
        :class:`repro.errors.ClassificationError` from malformed URLs.
        """
        stages: List[ClassificationStage] = [ClassificationStage.NONE] * len(
            requests
        )
        ltf_urls: Set[str] = set()
        by_referrer: Dict[str, List[int]] = defaultdict(list)

        # Stage 1: filter lists.
        frontier: List[str] = []
        for index, request in enumerate(requests):
            if self.matches_lists(request):
                stages[index] = ClassificationStage.LIST
                if request.url not in ltf_urls:
                    ltf_urls.add(request.url)
                    frontier.append(request.url)
            else:
                by_referrer[request.referrer].append(index)

        # Stage 2: referrer closure to a fixpoint (BFS over the URL graph).
        if not enable_referrer_stage:
            frontier = []
        while frontier:
            url = frontier.pop()
            for index in by_referrer.get(url, ()):  # pragma: no branch
                if stages[index] is not ClassificationStage.NONE:
                    continue
                request = requests[index]
                if not request.has_args:
                    continue
                stages[index] = ClassificationStage.REFERRER
                if request.url not in ltf_urls:
                    ltf_urls.add(request.url)
                    frontier.append(request.url)

        # Stage 3: keyword heuristic on the remainder.
        if enable_keyword_stage:
            for index, request in enumerate(requests):
                if stages[
                    index
                ] is ClassificationStage.NONE and self.matches_keywords(
                    request
                ):
                    stages[index] = ClassificationStage.KEYWORD

        # Ambient per-pass flow counters (no-ops outside a collection
        # scope): a pure function of the input log, so the counts merge
        # identically whatever sharding executed the classification.
        if obs_metrics.active():
            for stage in ClassificationStage:
                count = sum(1 for s in stages if s is stage)
                if count:
                    obs_metrics.inc(
                        obs_names.CLASSIFY_FLOWS, count, stage=stage.value
                    )

        return ClassificationResult(requests=list(requests), stages=stages)
