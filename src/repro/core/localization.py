"""Localization what-if analysis (Sect. 5, Tables 5 and 6).

All scenarios are *measurement-driven*: the alternative server locations
for a tracking FQDN are the locations actually observed in the dataset
(panel answers plus passive-DNS completion, geolocated with the
reference tool) — not the simulator's ground truth.

Scenarios:

* ``DEFAULT`` — where the flows actually went.
* ``REDIRECT_FQDN`` — the tracking operator redirects the user to any
  alternative server observed *for the same FQDN*.
* ``REDIRECT_TLD`` — redirection may target any server observed under
  any FQDN of the same registrable domain.
* ``POP_MIRRORING`` — operators already hosting on one of the nine
  public clouds replicate their PoPs to the provider's other
  datacenters (country set from the provider's published footprint).
* ``REDIRECT_TLD_PLUS_MIRRORING`` — both of the above.
* ``CLOUD_MIGRATION`` — the extreme case: any tracking domain may move
  into any PoP of any of the nine clouds.
"""

from __future__ import annotations

import enum
from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.cloud.providers import CloudCatalog
from repro.core.confinement import Locator
from repro.core.tracker_ips import TrackerIPInventory
from repro.errors import ValidationError
from repro.geodata.countries import CountryRegistry, default_registry
from repro.geodata.regions import Region, region_of_country
from repro.netbase.addr import IPAddress
from repro.web.requests import ThirdPartyRequest, tld1_of


class LocalizationScenario(enum.Enum):
    DEFAULT = "Default"
    REDIRECT_FQDN = "Redirections (FQDN)"
    REDIRECT_TLD = "Redirections (TLD)"
    POP_MIRRORING = "POP Mirroring (Cloud)"
    REDIRECT_TLD_PLUS_MIRRORING = "Redirection (TLD) + POP Mirroring (Cloud)"
    CLOUD_MIGRATION = "Migration to Cloud"


@dataclass(frozen=True)
class ScenarioOutcome:
    """Country / EU28-level confinement of one scenario (a Table 5 row)."""

    scenario: LocalizationScenario
    n_flows: int
    country_pct: float
    region_pct: float

    def improvement_over(self, baseline: "ScenarioOutcome") -> Tuple[float, float]:
        return (
            self.country_pct - baseline.country_pct,
            self.region_pct - baseline.region_pct,
        )


class LocalizationAnalyzer:
    """Evaluates the what-if scenarios over EU28 tracking flows."""

    def __init__(
        self,
        inventory: TrackerIPInventory,
        locate: Locator,
        clouds: CloudCatalog,
        registry: Optional[CountryRegistry] = None,
    ) -> None:
        self._inventory = inventory
        self._locate = locate
        self._clouds = clouds
        self._registry = registry or default_registry()
        self._ip_country: Dict[IPAddress, Optional[str]] = {}
        self._fqdn_countries: Dict[str, Set[str]] = defaultdict(set)
        self._tld_countries: Dict[str, Set[str]] = defaultdict(set)
        self._tld_clouds: Dict[str, Set[str]] = defaultdict(set)
        self._build_observed_maps()
        self._migration_countries = self._clouds.union_pop_countries()

    # -- observed-alternatives maps -----------------------------------------
    def _located(self, address: IPAddress) -> Optional[str]:
        if address not in self._ip_country:
            self._ip_country[address] = self._locate(address)
        return self._ip_country[address]

    def _build_observed_maps(self) -> None:
        """Observed server countries per FQDN / TLD, plus cloud tenancy.

        Tenancy is inferred the way the paper could: an IP inside a
        provider's published ranges means the domain leases from that
        provider.
        """
        for record in self._inventory.records():
            country = self._located(record.address)
            if country is None:
                continue
            provider = self._clouds.provider_of_ip(record.address)
            for fqdn in record.fqdns:
                self._fqdn_countries[fqdn].add(country)
                tld = tld1_of(fqdn)
                self._tld_countries[tld].add(country)
                if provider is not None:
                    self._tld_clouds[tld].add(provider.name)

    def observed_fqdn_countries(self, fqdn: str) -> Set[str]:
        return set(self._fqdn_countries.get(fqdn, set()))

    def observed_tld_countries(self, tld: str) -> Set[str]:
        return set(self._tld_countries.get(tld, set()))

    def cloud_tenancy(self, tld: str) -> Set[str]:
        return set(self._tld_clouds.get(tld, set()))

    def mirrored_countries(self, tld: str) -> Set[str]:
        """TLD's reachable countries after PoP mirroring on its clouds."""
        countries = self.observed_tld_countries(tld)
        for provider_name in self.cloud_tenancy(tld):
            countries.update(self._clouds.get(provider_name).pop_countries)
        return countries

    # -- per-flow reachability under a scenario ----------------------------
    def _reachable_countries(
        self, request: ThirdPartyRequest, scenario: LocalizationScenario
    ) -> Set[str]:
        fqdn = request.fqdn
        tld = tld1_of(fqdn)
        actual = self._located(request.ip)
        base: Set[str] = {actual} if actual is not None else set()
        if scenario is LocalizationScenario.DEFAULT:
            return base
        if scenario is LocalizationScenario.REDIRECT_FQDN:
            return base | self.observed_fqdn_countries(fqdn)
        if scenario is LocalizationScenario.REDIRECT_TLD:
            return base | self.observed_tld_countries(tld)
        if scenario is LocalizationScenario.POP_MIRRORING:
            countries = base | self.observed_fqdn_countries(fqdn)
            for provider_name in self.cloud_tenancy(tld):
                countries.update(
                    self._clouds.get(provider_name).pop_countries
                )
            return countries
        if scenario is LocalizationScenario.REDIRECT_TLD_PLUS_MIRRORING:
            return base | self.mirrored_countries(tld)
        if scenario is LocalizationScenario.CLOUD_MIGRATION:
            return base | self.mirrored_countries(tld) | set(
                self._migration_countries
            )
        raise ValidationError(f"unknown scenario {scenario}")

    # -- scenario evaluation -----------------------------------------------
    def scenario_counts(
        self,
        requests: Sequence[ThirdPartyRequest],
        scenario: LocalizationScenario,
        origin_region: Region = Region.EU28,
    ) -> Tuple[int, int, int]:
        """Raw ``(n, country_ok, region_ok)`` counts under ``scenario``.

        The additive form of :meth:`evaluate`: counts over disjoint flow
        subsets sum to the counts over their union, which lets the
        runtime evaluate scenarios shard-by-shard and merge.
        """
        n = 0
        country_ok = 0
        region_ok = 0
        for request in requests:
            if (
                region_of_country(request.user_country, self._registry)
                is not origin_region
            ):
                continue
            n += 1
            reachable = self._reachable_countries(request, scenario)
            if request.user_country in reachable:
                country_ok += 1
            if any(
                region_of_country(c, self._registry) is origin_region
                for c in reachable
            ):
                region_ok += 1
        return n, country_ok, region_ok

    def evaluate(
        self,
        requests: Sequence[ThirdPartyRequest],
        scenario: LocalizationScenario,
        origin_region: Region = Region.EU28,
    ) -> ScenarioOutcome:
        """Confinement achievable under ``scenario`` for region flows."""
        n, country_ok, region_ok = self.scenario_counts(
            requests, scenario, origin_region
        )
        return ScenarioOutcome(
            scenario=scenario,
            n_flows=n,
            country_pct=100.0 * country_ok / n if n else 0.0,
            region_pct=100.0 * region_ok / n if n else 0.0,
        )

    def scenario_table(
        self, requests: Sequence[ThirdPartyRequest]
    ) -> List[ScenarioOutcome]:
        """All Table 5 rows, in the paper's order."""
        return [
            self.evaluate(requests, scenario)
            for scenario in (
                LocalizationScenario.DEFAULT,
                LocalizationScenario.REDIRECT_FQDN,
                LocalizationScenario.REDIRECT_TLD,
                LocalizationScenario.POP_MIRRORING,
                LocalizationScenario.REDIRECT_TLD_PLUS_MIRRORING,
            )
        ]

    # -- Table 6: per-country improvements -----------------------------------
    def per_country_improvements(
        self,
        requests: Sequence[ThirdPartyRequest],
        countries: Optional[Sequence[str]] = None,
    ) -> List[Dict[str, object]]:
        """Per-country Table 6 rows.

        For every EU28 origin country: sampled flows, the improvement of
        cloud PoP mirroring over TLD redirection, and the improvement of
        full cloud migration over TLD redirection.
        """
        by_country: Dict[str, List[ThirdPartyRequest]] = defaultdict(list)
        for request in requests:
            if (
                region_of_country(request.user_country, self._registry)
                is Region.EU28
            ):
                by_country[request.user_country].append(request)
        selected = countries or sorted(by_country)
        rows: List[Dict[str, object]] = []
        for country in selected:
            group = by_country.get(country, [])
            if not group:
                continue
            outcomes = {
                scenario: self._country_confinement(group, country, scenario)
                for scenario in (
                    LocalizationScenario.REDIRECT_TLD,
                    LocalizationScenario.REDIRECT_TLD_PLUS_MIRRORING,
                    LocalizationScenario.CLOUD_MIGRATION,
                )
            }
            tld = outcomes[LocalizationScenario.REDIRECT_TLD]
            rows.append(
                {
                    "country": country,
                    "n_requests": len(group),
                    "mirroring_improvement_pct": max(
                        0.0,
                        outcomes[
                            LocalizationScenario.REDIRECT_TLD_PLUS_MIRRORING
                        ]
                        - tld,
                    ),
                    "migration_improvement_pct": max(
                        0.0,
                        outcomes[LocalizationScenario.CLOUD_MIGRATION] - tld,
                    ),
                    "cloud_coverage": country in self._migration_countries,
                }
            )
        rows.sort(
            key=lambda row: (-row["migration_improvement_pct"], row["country"])  # type: ignore[operator,index]
        )
        return rows

    def _country_confinement(
        self,
        requests: Sequence[ThirdPartyRequest],
        country: str,
        scenario: LocalizationScenario,
    ) -> float:
        ok = sum(
            1
            for request in requests
            if country in self._reachable_countries(request, scenario)
        )
        return 100.0 * ok / len(requests) if requests else 0.0
