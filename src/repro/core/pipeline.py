"""End-to-end study orchestration.

:class:`Study` is the package's top-level object: it owns a simulated
world and runs the paper's pipeline over it, stage by stage, caching
each product:

1. **panel** — simulate the browser-extension panel (Sect. 3.1);
2. **classification** — the two-stage tracking classifier (Sect. 3.2);
3. **inventory** — tracker IPs with passive-DNS completion (Sect. 3.3);
4. **geolocation** — the three-tool suite (Sect. 3.4);
5. **confinement** — border-crossing analysis (Sect. 4);
6. **localization** — the what-if scenarios (Sect. 5);
7. **sensitive** — the sensitive-category study (Sect. 6);
8. **ISP scale** — the four-ISP NetFlow validation (Sect. 7).

Typical use::

    from repro import Study, WorldConfig

    study = Study(WorldConfig.small())
    eu_shares = study.eu28_destination_regions()      # Fig. 7(b)
    table5 = study.localization.scenario_table(study.tracking_requests())
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.config import WorldConfig
from repro.core.classify import ClassificationResult, RequestClassifier
from repro.core.confinement import ConfinementAnalyzer
from repro.core.geolocate import GeolocationSuite
from repro.core.ispscale import ISPScaleStudy
from repro.core.localization import LocalizationAnalyzer
from repro.core.sensitive import SensitiveStudy
from repro.core.tracker_ips import TrackerIPInventory
from repro.datasets.builder import BACKGROUND_END_DAY, World, build_world
from repro.errors import PipelineError
from repro.geodata.regions import Region
from repro.obs import names as obs_names
from repro.obs.trace import current_tracer
from repro.web.browser import BrowserExtensionSimulator, VisitLog
from repro.web.requests import ThirdPartyRequest


class Study:
    """The full reproduction pipeline over one simulated world."""

    def __init__(
        self,
        config: Optional[WorldConfig] = None,
        world: Optional[World] = None,
    ) -> None:
        if world is not None and config is not None:
            # Compare by value: an equal-but-distinct WorldConfig (e.g.
            # round-tripped through a worker process) names the same world.
            if world.config != config:
                raise PipelineError(
                    "pass either a config or a pre-built world, not both"
                )
        self.world = world if world is not None else build_world(config)
        self.config = self.world.config
        self._visit_log: Optional[VisitLog] = None
        self._classification: Optional[ClassificationResult] = None
        self._inventory: Optional[TrackerIPInventory] = None
        self._geolocation: Optional[GeolocationSuite] = None
        self._localization: Optional[LocalizationAnalyzer] = None
        self._sensitive: Optional[SensitiveStudy] = None
        self._isp_study: Optional[ISPScaleStudy] = None

    @classmethod
    def from_products(
        cls,
        world: World,
        *,
        visit_log: Optional[VisitLog] = None,
        classification: Optional[ClassificationResult] = None,
        inventory: Optional[TrackerIPInventory] = None,
        geolocation: Optional[GeolocationSuite] = None,
        sensitive: Optional[SensitiveStudy] = None,
    ) -> "Study":
        """Hydrate a study from precomputed stage products.

        The injection point for :mod:`repro.runtime`: the engine computes
        stage products shard-by-shard (possibly replayed from the artifact
        cache) and seeds a study with them, so downstream consumers —
        tables, figures, exports — read engine results instead of
        recomputing the lazy serial path.  Stages not provided stay lazy.
        """
        study = cls(world=world)
        study._visit_log = visit_log
        study._classification = classification
        study._inventory = inventory
        study._geolocation = geolocation
        study._sensitive = sensitive
        return study

    # -- stage 1: panel ----------------------------------------------------
    @property
    def visit_log(self) -> VisitLog:
        if self._visit_log is None:
            # Ambient spans (here and in the other lazy stages) go to
            # whatever tracer the caller installed; the default is the
            # no-op tracer, so the untraced path stays unchanged.
            with current_tracer().span(obs_names.SPAN_STUDY_PANEL):
                simulator = BrowserExtensionSimulator(
                    fleet=self.world.fleet,
                    publishers=self.world.publishers,
                    users=self.world.users,
                    panel_config=self.config.panel,
                    browsing_config=self.config.browsing,
                    registry=self.world.registry,
                    mapping=self.world.mapping,
                    streams=self.world.streams,
                )
                self._visit_log = simulator.simulate()
        return self._visit_log

    # -- stage 2: classification ------------------------------------------
    @property
    def classifier(self) -> RequestClassifier:
        return RequestClassifier(
            self.world.easylist, self.world.easyprivacy
        )

    @property
    def classification(self) -> ClassificationResult:
        if self._classification is None:
            requests = self.visit_log.requests
            with current_tracer().span(
                obs_names.SPAN_STUDY_CLASSIFICATION, requests=len(requests)
            ):
                self._classification = self.classifier.classify(requests)
        return self._classification

    def tracking_requests(self) -> List[ThirdPartyRequest]:
        return self.classification.tracking_requests()

    # -- stage 3: tracker IP inventory ----------------------------------
    @property
    def inventory(self) -> TrackerIPInventory:
        if self._inventory is None:
            with current_tracer().span(obs_names.SPAN_STUDY_INVENTORY):
                self._inventory = TrackerIPInventory.build(
                    tracking_requests=self.tracking_requests(),
                    pdns=self.world.pdns,
                    window=(0.0, BACKGROUND_END_DAY),
                )
        return self._inventory

    # -- stage 4: geolocation ---------------------------------------------
    @property
    def geolocation(self) -> GeolocationSuite:
        if self._geolocation is None:
            self._geolocation = GeolocationSuite(
                ipmap=self.world.ipmap,
                maxmind=self.world.maxmind,
                ip_api=self.world.ip_api,
                oracle=self.world.oracle,
            )
        return self._geolocation

    # -- stage 5: confinement ---------------------------------------------
    def confinement(self, tool: str = "RIPE IPmap") -> ConfinementAnalyzer:
        """A confinement analyzer bound to one geolocation tool."""
        locator = self.geolocation.locators()[tool]
        return ConfinementAnalyzer(locator, self.world.registry)

    def eu28_destination_regions(
        self, tool: str = "RIPE IPmap"
    ) -> Dict[str, float]:
        """Fig. 7: destination-region shares of EU28 users' flows."""
        return self.confinement(tool).destination_regions(
            self.tracking_requests(), Region.EU28
        )

    # -- stage 6: localization ---------------------------------------------
    @property
    def localization(self) -> LocalizationAnalyzer:
        if self._localization is None:
            self._localization = LocalizationAnalyzer(
                inventory=self.inventory,
                locate=self.geolocation.reference,
                clouds=self.world.clouds,
                registry=self.world.registry,
            )
        return self._localization

    # -- stage 7: sensitive categories --------------------------------------
    @property
    def sensitive(self) -> SensitiveStudy:
        if self._sensitive is None:
            with current_tracer().span(obs_names.SPAN_STUDY_SENSITIVE):
                study = SensitiveStudy(
                    publishers=self.world.publishers,
                    streams=self.world.streams,
                    registry=self.world.registry,
                )
                study.identify(
                    visit.publisher_domain for visit in self.visit_log.visits
                )
                self._sensitive = study
        return self._sensitive

    # -- stage 8: ISP scale ----------------------------------------------
    @property
    def isp_study(self) -> ISPScaleStudy:
        if self._isp_study is None:
            self._isp_study = ISPScaleStudy(
                synthesizers=self.world.synthesizers,
                isps=self.world.isps,
                inventory=self.inventory,
                locate=self.geolocation.reference,
                config=self.config.isp,
                registry=self.world.registry,
            )
        return self._isp_study

    # -- convenience -----------------------------------------------------
    def run_all(self) -> "Study":
        """Force every pipeline stage (useful for benchmarks)."""
        _ = self.visit_log
        _ = self.classification
        _ = self.inventory
        _ = self.geolocation
        _ = self.localization
        _ = self.sensitive
        _ = self.isp_study
        return self
