"""Vectorized kernels for the pipeline's hot loops.

Column-at-a-time implementations of the record path's three hottest
passes, operating on :class:`~repro.columnar.table.ColumnarTable`
batches instead of per-record Python objects:

* :func:`classify_table` — the three-stage tracking classifier over a
  request table (byte-identical labels to
  :meth:`repro.core.classify.RequestClassifier.classify`);
* :class:`ConfinementAccumulator` — streaming Sankey tallies (region →
  region, EU28 country → country) whose per-row work is a masked
  gather + bincount, with geolocation paid once per *distinct* server
  address instead of once per flow;
* :func:`stage_counts` — per-stage flow counts from a label column.

Every kernel is locked against its object-path reference by
``tests/test_columnar_equivalence.py``: the columnar path is a
performance representation, never a second semantics.

Raises
------
:class:`repro.errors.ColumnarError` for misaligned label/table inputs;
kernel callees propagate :class:`repro.errors.GeoDataError` for
unknown countries.
"""

from __future__ import annotations

from array import array
from typing import Callable, Dict, List, Optional, Sequence

from repro.columnar import accel
from repro.columnar.table import ColumnarTable
from repro.core.classify import ClassificationStage, RequestClassifier
from repro.errors import ColumnarError
from repro.geodata.countries import CountryRegistry, default_registry
from repro.geodata.regions import Region, region_of_country
from repro.netbase.addr import IPAddress
from repro.util.sankey import Sankey

Locator = Callable[[IPAddress], Optional[str]]

#: dense codes for the classification stages, `NONE` deliberately zero
#: so "is tracking" is a nonzero test over the label column
STAGE_NONE = 0
STAGE_LIST = 1
STAGE_REFERRER = 2
STAGE_KEYWORD = 3

#: code → enum, in code order (index == code)
STAGE_BY_CODE = (
    ClassificationStage.NONE,
    ClassificationStage.LIST,
    ClassificationStage.REFERRER,
    ClassificationStage.KEYWORD,
)


def classify_table(
    classifier: RequestClassifier,
    table: ColumnarTable,
    enable_referrer_stage: bool = True,
    enable_keyword_stage: bool = True,
) -> array:
    """Three-stage classification over a request table.

    Returns a ``u8`` label column aligned with the table (codes
    :data:`STAGE_NONE`..:data:`STAGE_KEYWORD`).  The algorithm is the
    object path's verbatim — list pass, referrer closure to a fixpoint,
    keyword pass — but reads pre-split URL components straight out of
    the columns, so no request objects are materialized and no
    ``urlsplit`` runs per pass.

    The fixpoint is unique (promotion is monotone), so label codes are
    independent of closure visit order; chunking a cohort any way that
    keeps one user's requests together cannot change them.
    """
    n_rows = len(table)
    stages = array("B", bytes(n_rows))
    urls: List[str] = table.column("url")
    referrers: List[str] = table.column("referrer")
    fqdn_column = table.column("fqdn")
    fqdn_values = fqdn_column.values()
    fqdn_codes = fqdn_column.codes
    has_args = table.column("has_args")

    ltf_urls = set()
    by_referrer: Dict[str, List[int]] = {}

    # Stage 1: filter lists.
    frontier: List[str] = []
    matches_lists_url = classifier.matches_lists_url
    for index in range(n_rows):
        url = urls[index]
        if matches_lists_url(url, fqdn_values[fqdn_codes[index]]):
            stages[index] = STAGE_LIST
            if url not in ltf_urls:
                ltf_urls.add(url)
                frontier.append(url)
        else:
            by_referrer.setdefault(referrers[index], []).append(index)

    # Stage 2: referrer closure to a fixpoint.
    if not enable_referrer_stage:
        frontier = []
    while frontier:
        url = frontier.pop()
        for index in by_referrer.get(url, ()):  # pragma: no branch
            if stages[index] != STAGE_NONE:
                continue
            if not has_args[index]:
                continue
            stages[index] = STAGE_REFERRER
            promoted = urls[index]
            if promoted not in ltf_urls:
                ltf_urls.add(promoted)
                frontier.append(promoted)

    # Stage 3: keyword heuristic on the remainder.
    if enable_keyword_stage:
        matches_keywords_url = classifier.matches_keywords_url
        for index in range(n_rows):
            if stages[index] == STAGE_NONE and matches_keywords_url(
                urls[index], bool(has_args[index])
            ):
                stages[index] = STAGE_KEYWORD

    return stages


def stage_counts(stages: Sequence[int]) -> Dict[ClassificationStage, int]:
    """Per-stage flow counts of a label column (one bincount)."""
    counts = accel.count_codes(stages, len(STAGE_BY_CODE))
    return {
        STAGE_BY_CODE[code]: counts[code]
        for code in range(len(STAGE_BY_CODE))
    }


class _LabelInterner:
    """Dense string-label codes shared across cohorts of one stream."""

    __slots__ = ("_index", "labels")

    def __init__(self) -> None:
        self._index: Dict[str, int] = {}
        self.labels: List[str] = []

    def intern(self, label: str) -> int:
        code = self._index.get(label)
        if code is None:
            code = len(self.labels)
            self._index[label] = code
            self.labels.append(label)
        return code

    def __len__(self) -> int:
        return len(self.labels)


class ConfinementAccumulator:
    """Streaming border-crossing tallies over classified request tables.

    Feed it one ``(table, labels)`` cohort at a time with
    :meth:`absorb`; it maintains the two Sankey aggregations the
    confinement stage reports — region → region over all tracking
    flows, and country → country for EU28-origin tracking flows — plus
    the distinct-user sets behind the per-region listing.  State grows
    with the number of distinct countries/regions/addresses, never with
    flow count, so a million-user stream accumulates in constant-ish
    memory.

    Geolocation cost: ``locate`` is called once per distinct server
    address across the whole stream (cached in the accumulator), then
    every row is a gather through dense lookup tables + one bincount
    per chunk.

    Headline views (:meth:`region_confinement`,
    :meth:`national_confinement`, :meth:`destination_shares`) read the
    Sankeys exactly the way :class:`repro.core.confinement.
    ConfinementAnalyzer` does, so both paths produce identical numbers
    — locked by the equivalence tests.
    """

    def __init__(
        self,
        locate: Locator,
        registry: Optional[CountryRegistry] = None,
    ) -> None:
        self._locate = locate
        self._registry = registry or default_registry()
        #: distinct-address geolocation memo (IPAddress → country|None)
        self._ip_countries: Dict[IPAddress, Optional[str]] = {}
        self._regions = _LabelInterner()
        self._countries = _LabelInterner()
        self.regions = Sankey()
        self.countries = Sankey()
        self._users_by_region: Dict[str, set] = {}
        self.n_rows = 0
        self.n_tracking = 0

    # -- ingest ----------------------------------------------------------
    def destination_country(self, address: IPAddress) -> Optional[str]:
        """The memoized destination country of one server address."""
        if address not in self._ip_countries:
            self._ip_countries[address] = self._locate(address)
        return self._ip_countries[address]

    def absorb(
        self,
        table: ColumnarTable,
        labels: Sequence[int],
        chunk_rows: int = 65536,
    ) -> None:
        """Fold one classified cohort into the tallies.

        ``labels`` is the ``u8`` column :func:`classify_table` produced
        for ``table``.  Rows stream through in ``chunk_rows`` windows;
        nothing row-shaped survives the call.

        Raises :class:`repro.errors.ColumnarError` when ``labels``
        misaligns with the table.
        """
        n_rows = len(table)
        if len(labels) != n_rows:
            raise ColumnarError(
                f"{len(labels)} labels for a {n_rows}-row table"
            )
        self.n_rows += n_rows
        if n_rows == 0:
            return

        origin_column = table.column("user_country")
        ip_column = table.column("ip")
        user_ids = table.column("user_id")

        # Per-distinct lookups for this cohort: origin country/region
        # codes per user-country value, destination codes per address.
        origin_country_codes = []
        origin_region_codes = []
        origin_is_eu28 = []
        for country in origin_column.values():
            region = region_of_country(country, self._registry)
            origin_country_codes.append(self._countries.intern(country))
            origin_region_codes.append(self._regions.intern(region.value))
            origin_is_eu28.append(1 if region is Region.EU28 else 0)
        dest_country_codes = []
        dest_region_codes = []
        for address in ip_column.values():
            country = self.destination_country(address)
            label = country if country is not None else "unknown"
            region = (
                region_of_country(country, self._registry)
                if country is not None
                else Region.UNKNOWN
            )
            dest_country_codes.append(self._countries.intern(label))
            dest_region_codes.append(self._regions.intern(region.value))

        origin_codes = origin_column.codes
        ip_codes = ip_column.codes
        for lo, hi in table.iter_chunks(chunk_rows):
            tracking = accel.nonzero_mask(labels[lo:hi])
            self.n_tracking += accel.masked_count(tracking)
            origins = accel.select_where(origin_codes[lo:hi], tracking)
            dests = accel.select_where(ip_codes[lo:hi], tracking)
            self._fold(
                self.regions,
                accel.map_codes(origins, origin_region_codes),
                accel.map_codes(dests, dest_region_codes),
                self._regions.labels,
            )
            eu28 = accel.and_masks(
                tracking,
                accel.map_codes(origin_codes[lo:hi], origin_is_eu28),
            )
            self._fold(
                self.countries,
                accel.map_codes(
                    accel.select_where(origin_codes[lo:hi], eu28),
                    origin_country_codes,
                ),
                accel.map_codes(
                    accel.select_where(ip_codes[lo:hi], eu28),
                    dest_country_codes,
                ),
                self._countries.labels,
            )
            # Distinct users per origin region (tracking rows only).
            for user_id, region_code in zip(
                accel.select_where(user_ids[lo:hi], tracking),
                accel.map_codes(origins, origin_region_codes),
            ):
                region_label = self._regions.labels[region_code]
                self._users_by_region.setdefault(region_label, set()).add(
                    int(user_id)
                )

    def _fold(
        self,
        sankey: Sankey,
        origin_codes: Sequence[int],
        dest_codes: Sequence[int],
        labels: Sequence[str],
    ) -> None:
        # Origin and destination codes share one interner per sankey
        # (regions for the region view, countries for the EU28 view),
        # so a single dense label table decodes both sides.
        tallies = accel.tally_pairs(
            origin_codes, dest_codes, len(labels), len(labels)
        )
        for (origin, dest), count in sorted(tallies.items()):
            sankey.add(labels[origin], labels[dest], float(count))

    # -- headline views ---------------------------------------------------
    def region_confinement(self, region: Region = Region.EU28) -> float:
        """Percent of the region's tracking flows staying in-region."""
        return self.regions.confinement(region.value)

    def national_confinement(self) -> Dict[str, float]:
        """Per EU28 origin country: percent terminating in-country."""
        return {
            origin: self.countries.confinement(origin)
            for origin in self.countries.origins()
        }

    def destination_shares(self) -> Dict[str, float]:
        """Share of all tracking flows terminating in each region."""
        return self.regions.destination_shares()

    def per_region_confinement(self) -> Dict[str, tuple]:
        """Each origin region's confinement plus its distinct-user count."""
        return {
            region: (self.regions.confinement(region), len(users))
            for region, users in sorted(self._users_by_region.items())
        }
