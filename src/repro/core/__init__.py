"""The paper's measurement pipeline: two-stage tracking-flow
classification, tracker-IP inventory with passive-DNS completion,
geolocation orchestration, border-crossing quantification, localization
what-ifs, the sensitive-category study, and the ISP-scale validation."""

from repro.core.classify import (
    ClassificationStage,
    RequestClassifier,
    ClassificationResult,
)
from repro.core.tracker_ips import TrackerIPInventory, TrackerIPRecord
from repro.core.geolocate import GeolocationSuite
from repro.core.confinement import ConfinementAnalyzer
from repro.core.localization import LocalizationAnalyzer, LocalizationScenario
from repro.core.sensitive import SensitiveStudy
from repro.core.ispscale import ISPScaleStudy
from repro.core.collaboration import CollaborationAnalyzer, HandOff
from repro.core.regulations import (
    Regulation,
    RegulationMonitor,
    RegulationReport,
    builtin_regulations,
)
from repro.core.pipeline import Study

__all__ = [
    "ClassificationStage",
    "RequestClassifier",
    "ClassificationResult",
    "TrackerIPInventory",
    "TrackerIPRecord",
    "GeolocationSuite",
    "ConfinementAnalyzer",
    "LocalizationAnalyzer",
    "LocalizationScenario",
    "SensitiveStudy",
    "ISPScaleStudy",
    "CollaborationAnalyzer",
    "HandOff",
    "Regulation",
    "RegulationMonitor",
    "RegulationReport",
    "builtin_regulations",
    "Study",
]
