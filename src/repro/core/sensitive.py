"""Sensitive-category tracking study (Sect. 6).

The multi-stage identification funnel mirrors the paper:

1. **Automated tagging** — each first-party domain's AdWords-style
   interest topics (5–15 per domain) are matched against the GDPR
   sensitive terms.  Taggers mask many sensitive sites behind benign
   topics ("pregnancy" → "Health", "gambling" → "Games", ...), so this
   stage has high precision but limited recall.
2. **Manual inspection** — the remaining domains are reviewed by
   independent examiners; a domain enters the study when at least two
   examiners agree it is relevant to a GDPR sensitive term.  We model
   each examiner as a noisy classifier over the site's true content.

The study then measures, over the identified sensitive domains: the
per-category flow shares (Fig. 9), the per-category destination regions
(Fig. 10), and the per-country leakage of sensitive flows (Fig. 11).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.confinement import ConfinementAnalyzer, Locator
from repro.errors import StateError, ValidationError
from repro.geodata.countries import CountryRegistry, default_registry
from repro.geodata.regions import Region, region_of_country
from repro.util.rng import RngStreams
from repro.web.publishers import SENSITIVE_CATEGORIES, Publisher
from repro.web.requests import ThirdPartyRequest


@dataclass(frozen=True)
class SensitiveDomain:
    """One first-party domain identified as sensitive."""

    domain: str
    category: str
    #: 'tagger' when the automated stage caught it, 'manual' otherwise
    identified_by: str


class ExaminerPanel:
    """The manual-inspection stage: independent noisy examiners.

    Each examiner flags a truly sensitive site with probability
    ``sensitivity`` and a benign site with probability
    ``false_positive``; a domain is accepted when at least
    ``required_agreement`` examiners flag it (the paper used two).
    """

    def __init__(
        self,
        streams: RngStreams,
        n_examiners: int = 3,
        sensitivity: float = 0.88,
        false_positive: float = 0.01,
        required_agreement: int = 2,
    ) -> None:
        if not 1 <= required_agreement <= n_examiners:
            raise ValidationError("required_agreement out of range")
        self._rng = streams.get("examiners")
        self.n_examiners = n_examiners
        self.sensitivity = sensitivity
        self.false_positive = false_positive
        self.required_agreement = required_agreement

    def review(self, publisher: Publisher) -> Optional[str]:
        """The panel's verdict for one domain (category or None)."""
        probability = (
            self.sensitivity
            if publisher.sensitive_category is not None
            else self.false_positive
        )
        flags = sum(
            1
            for _ in range(self.n_examiners)
            if self._rng.random() < probability
        )
        if flags < self.required_agreement:
            return None
        if publisher.sensitive_category is not None:
            return publisher.sensitive_category
        # A false positive gets filed under the closest-looking category.
        names = sorted(SENSITIVE_CATEGORIES)
        return names[self._rng.randrange(len(names))]


class SensitiveStudy:
    """The full Sect. 6 pipeline over a classified request log."""

    def __init__(
        self,
        publishers: Sequence[Publisher],
        streams: RngStreams,
        examiners: Optional[ExaminerPanel] = None,
        registry: Optional[CountryRegistry] = None,
    ) -> None:
        self._publishers = {p.domain: p for p in publishers}
        self._registry = registry or default_registry()
        self._examiners = examiners or ExaminerPanel(streams)
        self._identified: Optional[Dict[str, SensitiveDomain]] = None

    @classmethod
    def from_identified(
        cls,
        publishers: Sequence[Publisher],
        identified: Dict[str, SensitiveDomain],
        registry: Optional[CountryRegistry] = None,
    ) -> "SensitiveStudy":
        """Hydrate a study from an already-run identification funnel.

        The runtime persists the funnel's output (the identified-domain
        map) as a stage artifact; this constructor rebuilds a study
        around it without spinning up an examiner panel, so the flow
        analyses run identically on cache replay.
        """
        study = cls(publishers, RngStreams(0), registry=registry)
        study._identified = dict(identified)
        return study

    # -- identification funnel ---------------------------------------------
    def identify(
        self, visited_domains: Iterable[str]
    ) -> Dict[str, SensitiveDomain]:
        """Run the two-stage funnel over the visited first parties."""
        identified: Dict[str, SensitiveDomain] = {}
        needs_review: List[Publisher] = []
        for domain in sorted(set(visited_domains)):
            publisher = self._publishers.get(domain)
            if publisher is None:
                continue
            category = self._tagger_category(publisher)
            if category is not None:
                # The paper manually inspected every candidate domain,
                # refining coarse tagger labels ("Health") into precise
                # categories (pregnancy, cancer, death).
                refined = self._examiners.review(publisher)
                identified[domain] = SensitiveDomain(
                    domain=domain,
                    category=refined or category,
                    identified_by="tagger",
                )
            else:
                needs_review.append(publisher)
        for publisher in needs_review:
            category = self._examiners.review(publisher)
            if category is not None:
                identified[publisher.domain] = SensitiveDomain(
                    domain=publisher.domain,
                    category=category,
                    identified_by="manual",
                )
        self._identified = identified
        return identified

    @staticmethod
    def _tagger_category(publisher: Publisher) -> Optional[str]:
        """Stage 1: does any AdWords topic name a sensitive term?"""
        topic_set = {topic.lower() for topic in publisher.topics}
        for category in sorted(SENSITIVE_CATEGORIES):
            if category.lower() in topic_set:
                return category
        return None

    def identified_domains(self) -> Dict[str, SensitiveDomain]:
        if self._identified is None:
            raise StateError("identify() has not been run yet")
        return dict(self._identified)

    # -- flow analyses ---------------------------------------------------
    def sensitive_requests(
        self, tracking_requests: Sequence[ThirdPartyRequest]
    ) -> List[ThirdPartyRequest]:
        identified = self.identified_domains()
        return [r for r in tracking_requests if r.first_party in identified]

    def category_of(self, request: ThirdPartyRequest) -> Optional[str]:
        identified = self.identified_domains()
        record = identified.get(request.first_party)
        return record.category if record is not None else None

    def category_shares(
        self, tracking_requests: Sequence[ThirdPartyRequest]
    ) -> Dict[str, float]:
        """Per-category share of sensitive tracking flows (Fig. 9)."""
        counts: Dict[str, int] = defaultdict(int)
        for request in self.sensitive_requests(tracking_requests):
            category = self.category_of(request)
            assert category is not None
            counts[category] += 1
        total = sum(counts.values())
        if total == 0:
            return {}
        return {
            category: 100.0 * count / total
            for category, count in sorted(counts.items())
        }

    def sensitive_share_pct(
        self, tracking_requests: Sequence[ThirdPartyRequest]
    ) -> float:
        """Sensitive flows as a share of all tracking flows (~3%)."""
        if not tracking_requests:
            return 0.0
        sensitive = len(self.sensitive_requests(tracking_requests))
        return 100.0 * sensitive / len(tracking_requests)

    def category_destination_regions(
        self,
        tracking_requests: Sequence[ThirdPartyRequest],
        locate: Locator,
        origin_region: Region = Region.EU28,
    ) -> Dict[str, Dict[str, float]]:
        """Per-category destination-region shares (Fig. 10)."""
        analyzer = ConfinementAnalyzer(locate, self._registry)
        per_category: Dict[str, Dict[str, int]] = defaultdict(
            lambda: defaultdict(int)
        )
        for request in self.sensitive_requests(tracking_requests):
            if (
                region_of_country(request.user_country, self._registry)
                is not origin_region
            ):
                continue
            category = self.category_of(request)
            assert category is not None
            destination_country = analyzer.destination_country(request.ip)
            destination = (
                region_of_country(destination_country, self._registry).value
                if destination_country is not None
                else Region.UNKNOWN.value
            )
            per_category[category][destination] += 1
        out: Dict[str, Dict[str, float]] = {}
        for category, counts in sorted(per_category.items()):
            total = sum(counts.values())
            out[category] = {
                destination: 100.0 * count / total
                for destination, count in sorted(counts.items())
            }
        return out

    def per_country_leakage(
        self,
        tracking_requests: Sequence[ThirdPartyRequest],
        locate: Locator,
    ) -> Dict[str, Tuple[int, int]]:
        """Per EU28 country: (flows leaving the country, total flows) for
        sensitive sites (Fig. 11)."""
        analyzer = ConfinementAnalyzer(locate, self._registry)
        out: Dict[str, List[int]] = defaultdict(lambda: [0, 0])
        for request in self.sensitive_requests(tracking_requests):
            if (
                region_of_country(request.user_country, self._registry)
                is not Region.EU28
            ):
                continue
            destination = analyzer.destination_country(request.ip)
            entry = out[request.user_country]
            entry[1] += 1
            if destination != request.user_country:
                entry[0] += 1
        return {
            country: (leaked, total)
            for country, (leaked, total) in sorted(out.items())
        }
