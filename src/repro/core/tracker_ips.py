"""Tracker IP inventory with passive-DNS completion (Sect. 3.3).

From the classified tracking flows we collect every server IP the panel
was actually served from; passive DNS then *completes* the set with IPs
that served the same tracking FQDNs but were never handed to a panel
user, and annotates every (domain, IP) pair with its validity window.
Finally, reverse passive DNS answers the *dedication* question: how many
registrable domains sit behind each tracking IP (Figures 4 and 5).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.dnssim.passive import PassiveDNSDatabase
from repro.netbase.addr import IPAddress
from repro.web.requests import ThirdPartyRequest, tld1_of


@dataclass
class TrackerIPRecord:
    """Everything known about one tracking IP."""

    address: IPAddress
    #: tracking FQDNs observed (panel or pDNS) on this IP
    fqdns: Set[str] = field(default_factory=set)
    #: panel requests served by this IP (0 for pDNS-only IPs)
    request_count: int = 0
    #: True when the IP was seen by panel users (vs pDNS-only)
    seen_by_panel: bool = False
    #: validity window over all tracking (domain, IP) associations
    first_seen: Optional[float] = None
    last_seen: Optional[float] = None
    #: distinct registrable domains behind the IP per reverse pDNS
    domains_behind: Set[str] = field(default_factory=set)

    @property
    def window(self) -> Optional[Tuple[float, float]]:
        if self.first_seen is None or self.last_seen is None:
            return None
        return (self.first_seen, self.last_seen)

    @property
    def n_domains_behind(self) -> int:
        return len(self.domains_behind)

    def widen_window(self, first: float, last: float) -> None:
        self.first_seen = (
            first if self.first_seen is None else min(self.first_seen, first)
        )
        self.last_seen = (
            last if self.last_seen is None else max(self.last_seen, last)
        )


class TrackerIPInventory:
    """The tracker IP set and its completeness / dedication analysis."""

    def __init__(self) -> None:
        self._records: Dict[IPAddress, TrackerIPRecord] = {}
        self._tracking_fqdns: Set[str] = set()

    def __len__(self) -> int:
        return len(self._records)

    def __contains__(self, address: IPAddress) -> bool:
        return address in self._records

    # -- construction -----------------------------------------------------
    @classmethod
    def build(
        cls,
        tracking_requests: Sequence[ThirdPartyRequest],
        pdns: PassiveDNSDatabase,
        window: Optional[Tuple[float, float]] = None,
    ) -> "TrackerIPInventory":
        """Build the inventory from classified flows plus passive DNS."""
        inventory = cls()
        inventory.ingest_panel(tracking_requests)
        inventory.complete_from_pdns(pdns, window)
        inventory.annotate_windows(pdns)
        inventory.annotate_dedication(pdns, window)
        return inventory

    def ingest_panel(
        self, tracking_requests: Iterable[ThirdPartyRequest]
    ) -> None:
        """Step 1: IPs that actually served panel users."""
        for request in tracking_requests:
            self._tracking_fqdns.add(request.fqdn)
            record = self._records.get(request.ip)
            if record is None:
                record = TrackerIPRecord(address=request.ip)
                self._records[request.ip] = record
            record.fqdns.add(request.fqdn)
            record.request_count += 1
            record.seen_by_panel = True

    def complete_from_pdns(
        self,
        pdns: PassiveDNSDatabase,
        window: Optional[Tuple[float, float]] = None,
    ) -> int:
        """Step 2: forward pDNS over every tracking FQDN; returns the
        number of *additional* IPs discovered."""
        added = 0
        for fqdn in sorted(self._tracking_fqdns):
            for passive in pdns.forward(fqdn, window):
                record = self._records.get(passive.address)
                if record is None:
                    record = TrackerIPRecord(address=passive.address)
                    self._records[passive.address] = record
                    added += 1
                record.fqdns.add(fqdn)
        return added

    def annotate_windows(self, pdns: PassiveDNSDatabase) -> None:
        """Step 3: per-IP validity windows from the pDNS associations."""
        for record in self._records.values():
            for fqdn in sorted(record.fqdns):
                passive = pdns.record(fqdn, record.address)
                if passive is not None:
                    record.widen_window(passive.first_seen, passive.last_seen)

    def annotate_dedication(
        self,
        pdns: PassiveDNSDatabase,
        window: Optional[Tuple[float, float]] = None,
    ) -> None:
        """Step 4: reverse pDNS — registrable domains behind each IP."""
        for record in self._records.values():
            behind = pdns.domains_behind(record.address, window)
            if not behind:
                behind = {tld1_of(fqdn) for fqdn in sorted(record.fqdns)}
            record.domains_behind = behind

    def merge_from(self, other: "TrackerIPInventory") -> None:
        """Fold another (partial) inventory into this one.

        Used by the runtime to combine per-shard inventories built over
        disjoint tracking-FQDN groups.  All fields fold commutatively
        (set union, sum, logical OR, window min/max), so the merged
        inventory is independent of shard order.
        """
        self._tracking_fqdns.update(other._tracking_fqdns)
        for address in sorted(other._records):
            theirs = other._records[address]
            record = self._records.get(address)
            if record is None:
                record = TrackerIPRecord(address=address)
                self._records[address] = record
            record.fqdns.update(theirs.fqdns)
            record.request_count += theirs.request_count
            record.seen_by_panel = record.seen_by_panel or theirs.seen_by_panel
            if theirs.first_seen is not None and theirs.last_seen is not None:
                record.widen_window(theirs.first_seen, theirs.last_seen)
            record.domains_behind.update(theirs.domains_behind)

    # -- queries ---------------------------------------------------------
    def records(self) -> List[TrackerIPRecord]:
        return [self._records[ip] for ip in sorted(self._records)]

    def record(self, address: IPAddress) -> Optional[TrackerIPRecord]:
        return self._records.get(address)

    def addresses(self) -> List[IPAddress]:
        return sorted(self._records)

    def panel_addresses(self) -> List[IPAddress]:
        return sorted(
            ip for ip, record in self._records.items() if record.seen_by_panel
        )

    def additional_addresses(self) -> List[IPAddress]:
        """pDNS-only IPs — the completeness gain of Sect. 3.3."""
        return sorted(
            ip
            for ip, record in self._records.items()
            if not record.seen_by_panel
        )

    def additional_share_pct(self) -> float:
        panel = len(self.panel_addresses())
        if panel == 0:
            return 0.0
        return 100.0 * len(self.additional_addresses()) / panel

    def ipv4_share_pct(self) -> float:
        if not self._records:
            return 0.0
        v4 = sum(1 for ip in self._records if ip.version == 4)
        return 100.0 * v4 / len(self._records)

    def request_counts(self) -> Dict[IPAddress, int]:
        return {
            ip: record.request_count for ip, record in self._records.items()
        }

    def tracking_fqdns(self) -> Set[str]:
        return set(self._tracking_fqdns)

    # -- Figure 4 / Figure 5 ------------------------------------------------
    def domains_per_ip_sample(self) -> List[int]:
        """Per-IP distinct-domain counts (Fig. 4's CDF input)."""
        return [record.n_domains_behind for record in self.records()]

    def single_domain_request_share_pct(self) -> float:
        """Share of panel requests served by single-TLD IPs (Fig. 4)."""
        total = sum(r.request_count for r in self._records.values())
        if total == 0:
            return 0.0
        single = sum(
            r.request_count
            for r in self._records.values()
            if r.n_domains_behind <= 1
        )
        return 100.0 * single / total

    def multi_domain_ip_share_pct(self, threshold: int = 2) -> float:
        """Share of IPs serving at least ``threshold`` domains."""
        if not self._records:
            return 0.0
        multi = sum(
            1
            for r in self._records.values()
            if r.n_domains_behind >= threshold
        )
        return 100.0 * multi / len(self._records)

    def heavy_multi_domain_ips(
        self, threshold: int = 10
    ) -> List[TrackerIPRecord]:
        """IPs hosting ``threshold``+ domains — the Fig. 5 population."""
        return [
            record
            for record in self.records()
            if record.n_domains_behind >= threshold
        ]
