"""Portable serialization of the pipeline's products.

The real study's artifacts (the extension's request logs, the compiled
tracker-IP list) are the hand-off points between teams: the panel
operators produce the log, the ISP analysts consume the IP list.  These
helpers serialize exactly those products:

* **request logs** → JSON-lines, one record per third-party request
  (round-trips losslessly, including the simulation-only truth fields);
* **tracker-IP inventories** → a single JSON document with per-IP
  FQDNs, request counts, validity windows and dedication sets — the
  file an ISP-side join would load;
* **sankeys** → CSV edge lists for external plotting;
* **analysis summaries** → plain JSON.
"""

from __future__ import annotations

import csv
import json
import pathlib
from typing import Dict, Iterable, List, Union

from repro.core.tracker_ips import TrackerIPInventory, TrackerIPRecord
from repro.errors import ReproError
from repro.netbase.addr import IPAddress
from repro.util.sankey import Sankey
from repro.web.organizations import ServiceRole
from repro.web.requests import ThirdPartyRequest

PathLike = Union[str, pathlib.Path]

#: bumped when the on-disk format changes incompatibly
FORMAT_VERSION = 1


# -- request logs -----------------------------------------------------------
def _request_to_dict(request: ThirdPartyRequest) -> Dict:
    return {
        "first_party": request.first_party,
        "url": request.url,
        "referrer": request.referrer,
        "ip": str(request.ip),
        "user_id": request.user_id,
        "user_country": request.user_country,
        "day": request.day,
        "https": request.https,
        "truth_role": request.truth_role.value,
        "truth_org": request.truth_org,
        "truth_country": request.truth_country,
        "chain_depth": request.chain_depth,
    }


def _request_from_dict(payload: Dict) -> ThirdPartyRequest:
    return ThirdPartyRequest(
        first_party=payload["first_party"],
        url=payload["url"],
        referrer=payload["referrer"],
        ip=IPAddress.parse(payload["ip"]),
        user_id=int(payload["user_id"]),
        user_country=payload["user_country"],
        day=float(payload["day"]),
        https=bool(payload["https"]),
        truth_role=ServiceRole(payload["truth_role"]),
        truth_org=payload["truth_org"],
        truth_country=payload["truth_country"],
        chain_depth=int(payload["chain_depth"]),
    )


def requests_to_jsonl(
    requests: Iterable[ThirdPartyRequest], path: PathLike
) -> int:
    """Write a request log as JSON-lines; returns the record count."""
    count = 0
    with open(path, "w", encoding="utf-8") as handle:
        for request in requests:
            handle.write(json.dumps(_request_to_dict(request)))
            handle.write("\n")
            count += 1
    return count


def requests_from_jsonl(path: PathLike) -> List[ThirdPartyRequest]:
    """Load a request log written by :func:`requests_to_jsonl`."""
    out: List[ThirdPartyRequest] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, 1):
            line = line.strip()
            if not line:
                continue
            try:
                out.append(_request_from_dict(json.loads(line)))
            except (KeyError, ValueError) as exc:
                raise ReproError(
                    f"{path}:{line_number}: malformed request record: {exc}"
                ) from exc
    return out


# -- tracker-IP inventories ----------------------------------------------------
def inventory_to_json(
    inventory: TrackerIPInventory, path: PathLike
) -> None:
    """Write a tracker-IP inventory as one JSON document."""
    records = []
    for record in inventory.records():
        records.append(
            {
                "address": str(record.address),
                "fqdns": sorted(record.fqdns),
                "request_count": record.request_count,
                "seen_by_panel": record.seen_by_panel,
                "first_seen": record.first_seen,
                "last_seen": record.last_seen,
                "domains_behind": sorted(record.domains_behind),
            }
        )
    payload = {"format_version": FORMAT_VERSION, "records": records}
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=1)


def inventory_from_json(path: PathLike) -> TrackerIPInventory:
    """Load an inventory written by :func:`inventory_to_json`."""
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    if payload.get("format_version") != FORMAT_VERSION:
        raise ReproError(
            f"{path}: unsupported inventory format "
            f"{payload.get('format_version')!r}"
        )
    inventory = TrackerIPInventory()
    for item in payload["records"]:
        record = TrackerIPRecord(
            address=IPAddress.parse(item["address"]),
            fqdns=set(item["fqdns"]),
            request_count=int(item["request_count"]),
            seen_by_panel=bool(item["seen_by_panel"]),
            first_seen=item["first_seen"],
            last_seen=item["last_seen"],
            domains_behind=set(item["domains_behind"]),
        )
        inventory._records[record.address] = record  # noqa: SLF001
        inventory._tracking_fqdns.update(record.fqdns)  # noqa: SLF001
    return inventory


# -- sankeys / summaries --------------------------------------------------------
def sankey_to_csv(sankey: Sankey, path: PathLike) -> int:
    """Write a sankey's edge list as CSV; returns the edge count."""
    rows = sankey.rows()
    with open(path, "w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(["origin", "destination", "weight"])
        for origin, destination, weight in rows:
            writer.writerow([origin, destination, weight])
    return len(rows)


def summary_to_json(summary: Dict, path: PathLike) -> None:
    """Write an analysis summary (plain dict of scalars) as JSON."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(summary, handle, indent=1, sort_keys=True)


def run_metrics_to_json(
    rows: Iterable[Dict], path: PathLike, **context: object
) -> None:
    """Write an engine run's per-stage metric rows as one JSON document.

    ``rows`` is what :meth:`repro.runtime.RunResult.metrics_rows`
    returns (plain dicts, so this module needs no runtime import);
    ``context`` keys (workers, preset, …) land next to the stage list.
    """
    payload: Dict = {"format_version": FORMAT_VERSION, "stages": list(rows)}
    payload.update(context)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=1, sort_keys=True)
