"""Dataset serialization: export the pipeline's products (request logs,
tracker-IP inventories, analysis summaries) to portable JSON/JSONL/CSV
files and load them back."""

from repro.io.export import (
    inventory_from_json,
    inventory_to_json,
    requests_from_jsonl,
    requests_to_jsonl,
    run_metrics_to_json,
    sankey_to_csv,
    summary_to_json,
)

__all__ = [
    "requests_to_jsonl",
    "requests_from_jsonl",
    "inventory_to_json",
    "inventory_from_json",
    "run_metrics_to_json",
    "sankey_to_csv",
    "summary_to_json",
]
