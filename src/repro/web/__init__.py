"""The simulated web ecosystem: advertising / tracking organizations and
their server deployments, publisher websites, the RTB / cookie-sync
request chains they trigger, panel users, a browser-extension simulator,
and an AdBlockPlus-style filter-list engine."""

from repro.web.organizations import (
    DeploymentProfile,
    Organization,
    OrganizationFactory,
    OrgKind,
    ServiceRole,
)
from repro.web.deployment import DeployedFqdn, Fleet, FleetBuilder, Server
from repro.web.publishers import Publisher, PublisherFactory
from repro.web.requests import ThirdPartyRequest, tld1_of
from repro.web.users import PanelUser, build_panel
from repro.web.filterlists import FilterList, FilterRule, RuleAction
from repro.web.browser import BrowserExtensionSimulator, VisitLog

__all__ = [
    "OrgKind",
    "ServiceRole",
    "DeploymentProfile",
    "Organization",
    "OrganizationFactory",
    "Server",
    "Fleet",
    "FleetBuilder",
    "DeployedFqdn",
    "Publisher",
    "PublisherFactory",
    "ThirdPartyRequest",
    "tld1_of",
    "PanelUser",
    "build_panel",
    "FilterRule",
    "FilterList",
    "RuleAction",
    "BrowserExtensionSimulator",
    "VisitLog",
]
