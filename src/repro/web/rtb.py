"""RTB auction and cookie-sync chain generation (Fig. 1's message flow).

Rendering an ad slot triggers a chain of third-party requests:

1. the **initial ad call** to the SSP / ad network owning the slot
   (fired from the first-party context, referrer = the page URL);
2. a **bid request** to an ad exchange;
3. the **winning DSP's creative** delivery;
4. a **cookie-sync cascade**: user-matching redirects bouncing between
   DSPs, DMPs and long-tail trackers, each carrying identifiers in URL
   arguments and refering to the previous hop;
5. **impression / retargeting pixels** fired by the rendered creative.

Steps 1–3 hit domains list maintainers see every day; steps 4–5 mostly
hit domains that only ever appear *because nothing was blocked* — the
population the paper's semi-automatic classifier recovers (Sect. 3.2).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.config import BrowsingConfig
from repro.errors import ConfigError
from repro.util.rng import RngStreams, WeightedSampler, poisson
from repro.web.deployment import DeployedFqdn, Fleet
from repro.web.organizations import OrgKind, ServiceRole
from repro.web.publishers import Publisher

#: the empirically-built tracking keyword list (paper Sect. 3.2); the
#: classifier's keyword stage matches these against URL paths.
TRACKING_KEYWORDS: Tuple[str, ...] = (
    "usermatch", "cookiesync", "rtb", "getuid", "usersync", "cookiematch",
    "bidswitch", "idsync",
)

#: cookie-sync path pool — roughly 60% carry a detector keyword, the rest
#: are opaque and only discoverable through the referrer closure.
_SYNC_PATHS: Tuple[str, ...] = (
    "/usermatch", "/cookiesync", "/cm/usersync", "/getuid/redir",
    "/idsync/pixel", "/rtb/match",
    "/p/r", "/d/px", "/u/1", "/x/m",
)

_PIXEL_PATHS: Tuple[str, ...] = (
    "/beacon/track", "/pixel/imp", "/t/conv", "/p/view",
)

_CREATIVE_PATHS: Tuple[str, ...] = (
    "/adserve/creative", "/ads/banner/render", "/delivery/show",
)

_BID_PATHS: Tuple[str, ...] = ("/rtb/bid", "/openrtb2/auction", "/bidder/br")

_INITIAL_PATHS: Tuple[str, ...] = ("/adserve/slot", "/ads/banner", "/tag/js")


@dataclass(frozen=True)
class RequestSpec:
    """A request blueprint before DNS resolution / URL materialization.

    ``parent`` is the index (within the chain) of the request whose URL
    becomes this request's referrer; ``None`` means the first-party page
    is the referrer (code executing in first-party context).
    """

    fqdn: str
    org_name: str
    role: ServiceRole
    path: str
    args: Dict[str, str]
    parent: Optional[int]


class RTBEngine:
    """Generates per-ad-slot request chains against a deployed fleet."""

    def __init__(
        self,
        fleet: Fleet,
        config: BrowsingConfig,
        streams: RngStreams,
    ) -> None:
        from repro.geodata.countries import default_registry

        self._fleet = fleet
        self._config = config
        self._registry = default_registry()
        self._rng = streams.get("rtb")
        # Per-stage organization-kind multipliers: hyperscalers dominate
        # the list-visible serving path, but user matching bounces mostly
        # between the RTB middle tier — the list-invisible population.
        self._exchange_bid = self._sampler(
            role=ServiceRole.RTB_BID,
            kind_weights={
                OrgKind.AD_EXCHANGE: 1.0,
                OrgKind.HYPERSCALER: 0.40,
            },
        )
        self._dsp_creative = self._sampler(
            role=ServiceRole.AD_SERVING,
            kind_weights={OrgKind.DSP: 1.0, OrgKind.HYPERSCALER: 0.45},
        )
        self._sync = self._sampler(
            role=ServiceRole.COOKIE_SYNC,
            kind_weights={
                OrgKind.DSP: 1.6,
                OrgKind.DMP: 2.8,
                OrgKind.TRACKER: 0.35,
                OrgKind.HYPERSCALER: 0.05,
                OrgKind.AD_EXCHANGE: 0.35,
            },
        )
        # Non-European publishers rarely embed the European tracker long
        # tail: same pool, EU-seated long-tail weight damped.
        self._sync_non_eu = self._sampler(
            role=ServiceRole.COOKIE_SYNC,
            kind_weights={
                OrgKind.DSP: 1.6,
                OrgKind.DMP: 2.8,
                OrgKind.TRACKER: 0.35,
                OrgKind.HYPERSCALER: 0.05,
                OrgKind.AD_EXCHANGE: 0.35,
            },
            eu_longtail_damp=0.05,
        )
        self._adult_sync = self._sampler(
            role=ServiceRole.COOKIE_SYNC,
            kind_weights={OrgKind.ADULT_NETWORK: 1.0},
            allow_empty=True,
        )
        self._pixel = self._sampler(
            role=ServiceRole.TRACKING_PIXEL,
            kind_weights={
                OrgKind.DMP: 1.6,
                OrgKind.TRACKER: 0.5,
                OrgKind.HYPERSCALER: 0.30,
                OrgKind.ANALYTICS: 0.6,
            },
        )
        self._local_sync = self._build_local_samplers()

    def _sampler(
        self,
        role: ServiceRole,
        kind_weights: Dict[OrgKind, float],
        allow_empty: bool = False,
        eu_longtail_damp: float = 1.0,
    ) -> Optional[WeightedSampler]:
        fleet = self._fleet
        candidates: List[DeployedFqdn] = []
        weights: List[float] = []
        for deployed in fleet.fqdns_by_role(role):
            org = fleet.org(deployed.org_name)
            multiplier = kind_weights.get(org.kind)
            if multiplier is not None:
                weight = org.market_weight * multiplier
                if (
                    eu_longtail_damp != 1.0
                    and org.kind in (OrgKind.TRACKER, OrgKind.DMP)
                    and org.legal_country != "US"
                ):
                    weight *= eu_longtail_damp
                candidates.append(deployed)
                weights.append(weight)
        if not candidates:
            if allow_empty:
                return None
            raise ConfigError(
                f"no FQDNs with role {role.value} among "
                f"{[k.value for k in kind_weights]}"
            )
        return WeightedSampler(candidates, weights)

    #: probability a publisher's user-matching traffic goes to a tracker
    #: homed in the publisher's own country (before availability damping)
    LOCAL_AFFINITY = 0.62
    #: availability damping half-size: a country with K local tracking
    #: FQDNs realizes LOCAL_AFFINITY * K / (K + this)
    LOCAL_AVAILABILITY_K = 10.0

    def _build_local_samplers(self) -> Dict[str, Tuple[float, WeightedSampler]]:
        """Per-country samplers over locally-homed user-matching FQDNs.

        Local trackers are the national ad-tech scene: analytics houses,
        retargeters and DMPs whose legal seat *and* (HOME deployments)
        servers sit in the publisher's country.  The effective local
        share is damped by how developed that scene is, which is what
        separates Germany's 69% national confinement from Poland's
        0.25% (Fig. 12).
        """
        fleet = self._fleet
        local_kinds = (OrgKind.TRACKER, OrgKind.DMP)
        grouped: Dict[str, List[DeployedFqdn]] = {}
        for role in (ServiceRole.COOKIE_SYNC, ServiceRole.TRACKING_PIXEL):
            for deployed in fleet.fqdns_by_role(role):
                org = fleet.org(deployed.org_name)
                if org.kind in local_kinds:
                    grouped.setdefault(org.legal_country, []).append(deployed)
        out: Dict[str, Tuple[float, WeightedSampler]] = {}
        for country, pool in grouped.items():
            share = self.LOCAL_AFFINITY * len(pool) / (
                len(pool) + self.LOCAL_AVAILABILITY_K
            )
            weights = [
                fleet.org(d.org_name).market_weight for d in pool
            ]
            out[country] = (share, WeightedSampler(pool, weights))
        return out

    def local_share(self, country: str) -> float:
        """Effective local-tracker share for publishers in ``country``."""
        entry = self._local_sync.get(country)
        return entry[0] if entry is not None else 0.0

    def _matching_endpoint(
        self, publisher: Publisher, rng: random.Random
    ) -> DeployedFqdn:
        """Pick a user-matching endpoint honouring local affinity."""
        entry = self._local_sync.get(publisher.country)
        if entry is not None and rng.random() < entry[0]:
            return entry[1].sample(rng)
        country = self._registry.find(publisher.country)
        if country is not None and country.continent != "EU":
            return self._sync_non_eu.sample(rng)
        return self._sync.sample(rng)

    # -- chain generation ---------------------------------------------------
    def ad_slot_chain(
        self,
        publisher: Publisher,
        initial_fqdn: str,
        user_token: str,
        rng: random.Random,
    ) -> List[RequestSpec]:
        """The full request chain triggered by rendering one ad slot."""
        fleet = self._fleet
        chain: List[RequestSpec] = []
        initial = fleet.fqdn(initial_fqdn)
        adult = publisher.sensitive_category == "porn"

        # 1. initial ad call, from first-party context
        chain.append(
            RequestSpec(
                fqdn=initial.fqdn,
                org_name=initial.org_name,
                role=initial.role,
                path=rng.choice(_INITIAL_PATHS),
                args={"pid": publisher.domain, "slot": str(rng.randint(1, 6))},
                parent=None,
            )
        )

        # 2..  the list-visible auction part
        n_visible = poisson(rng, max(0.0, self._config.mean_chain_visible - 1.0))
        auction_id = f"a{rng.randrange(1 << 24):x}"
        last_visible = 0
        for index in range(n_visible):
            if index == 0:
                deployed = self._exchange_bid.sample(rng)
                path = rng.choice(_BID_PATHS)
                args = {"auc": auction_id, "uid": user_token}
                parent: Optional[int] = None  # fired from first-party context
            else:
                deployed = self._dsp_creative.sample(rng)
                path = rng.choice(_CREATIVE_PATHS)
                args = {
                    "auc": auction_id,
                    "price": f"{rng.uniform(0.1, 4.0):.2f}",
                }
                parent = len(chain) - 1
            chain.append(
                RequestSpec(
                    fqdn=deployed.fqdn,
                    org_name=deployed.org_name,
                    role=deployed.role,
                    path=path,
                    args=args,
                    parent=parent,
                )
            )
            last_visible = len(chain) - 1

        # 3. the cookie-sync cascade (list-invisible tail)
        n_descendants = poisson(rng, self._config.mean_chain_descendants)
        adult_sync = (
            adult and self._adult_sync is not None and rng.random() < 0.8
        )
        previous = last_visible
        for index in range(n_descendants):
            if index < max(1, n_descendants - 1) or self._pixel is None:
                if adult_sync:
                    deployed = self._adult_sync.sample(rng)
                else:
                    deployed = self._matching_endpoint(publisher, rng)
                path = rng.choice(_SYNC_PATHS)
                args = {
                    "uid": user_token,
                    "sid": str(rng.randrange(64)),
                }
                if rng.random() < 0.5:
                    args["r"] = "1"
            else:
                entry = self._local_sync.get(publisher.country)
                if entry is not None and rng.random() < entry[0]:
                    deployed = entry[1].sample(rng)
                else:
                    deployed = self._pixel.sample(rng)
                path = rng.choice(_PIXEL_PATHS)
                args = {"uid": user_token, "ev": "imp"}
            chain.append(
                RequestSpec(
                    fqdn=deployed.fqdn,
                    org_name=deployed.org_name,
                    role=deployed.role,
                    path=path,
                    args=args,
                    parent=previous,
                )
            )
            previous = len(chain) - 1

        return chain

    def analytics_request(
        self, fqdn: str, user_token: str, rng: random.Random
    ) -> RequestSpec:
        """One analytics-tag hit (fired from first-party context)."""
        deployed = self._fleet.fqdn(fqdn)
        return RequestSpec(
            fqdn=deployed.fqdn,
            org_name=deployed.org_name,
            role=deployed.role,
            path="/collect",
            args={"ev": rng.choice(("pv", "sc", "cl")), "uid": user_token},
            parent=None,
        )

    def clean_request(
        self, fqdn: str, rng: random.Random
    ) -> RequestSpec:
        """One clean-widget hit: chat, comments, fonts, static assets."""
        deployed = self._fleet.fqdn(fqdn)
        args: Dict[str, str] = {}
        if rng.random() < 0.2:
            args = {"v": str(rng.randint(1, 9))}
        return RequestSpec(
            fqdn=deployed.fqdn,
            org_name=deployed.org_name,
            role=deployed.role,
            path=rng.choice(
                ("/embed/widget.js", "/chat/frame", "/comments/load",
                 "/fonts/pack.css", "/static/app.js")
            ),
            args=args,
            parent=None,
        )
