"""AdBlockPlus-style filter lists and the rule engine (Sect. 3.2).

The paper classifies third-party requests with the *easylist* (ads) and
*easyprivacy* (tracking) lists.  We implement the subset of the ABP rule
language those lists actually lean on for request classification:

* ``||domain.example^`` — domain-anchor rules matching the domain and
  all of its subdomains at label boundaries;
* plain substring rules (``/cookiesync.``, ``&adslot=``) matched against
  the full URL;
* ``@@||domain.example^`` — exception rules that override matches;
* the ``$third-party`` option (all our classified requests are
  third-party, so it is accepted and recorded, but never excludes).

The synthetic lists are *generated from the ecosystem the way the real
lists are curated*: list maintainers see the requests that fire directly
on publisher pages (initial ad calls, analytics tags), so domains of
organizations reachable only through post-auction chains (DMP cookie
syncs, DSP creatives, long-tail pixels) are systematically
under-covered.  That curation gap is exactly what the paper's
semi-automatic second stage (and ours, in ``repro.core.classify``)
recovers.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.errors import ClassificationError
from repro.util.rng import RngStreams
from repro.web.deployment import Fleet
from repro.web.organizations import OrgKind


class RuleAction(enum.Enum):
    BLOCK = "block"
    ALLOW = "allow"  # @@ exception


@dataclass(frozen=True)
class FilterRule:
    """One parsed filter rule."""

    raw: str
    action: RuleAction
    #: domain for ``||domain^`` rules, else None
    anchor_domain: Optional[str]
    #: substring for plain rules, else None
    substring: Optional[str]
    third_party_only: bool

    @classmethod
    def parse(cls, raw: str) -> "FilterRule":
        """Parse one line of ABP-subset syntax."""
        text = raw.strip()
        if not text or text.startswith("!"):
            raise ClassificationError(f"not a rule: {raw!r}")
        action = RuleAction.BLOCK
        if text.startswith("@@"):
            action = RuleAction.ALLOW
            text = text[2:]
        third_party = False
        if "$" in text:
            text, options = text.split("$", 1)
            for option in options.split(","):
                if option == "third-party":
                    third_party = True
                elif option in ("image", "script", "subdocument", "xmlhttprequest"):
                    # resource-type options don't affect our URL-level match
                    continue
                else:
                    raise ClassificationError(
                        f"unsupported rule option {option!r} in {raw!r}"
                    )
        if text.startswith("||"):
            body = text[2:]
            if body.endswith("^"):
                body = body[:-1]
            if not body or "/" in body:
                raise ClassificationError(f"malformed anchor rule {raw!r}")
            return cls(
                raw=raw, action=action, anchor_domain=body.lower(),
                substring=None, third_party_only=third_party,
            )
        if not text:
            raise ClassificationError(f"empty rule body in {raw!r}")
        return cls(
            raw=raw, action=action, anchor_domain=None,
            substring=text, third_party_only=third_party,
        )

    def matches(self, url: str, fqdn: str) -> bool:
        """Does this rule match the request URL / host?"""
        if self.anchor_domain is not None:
            return fqdn == self.anchor_domain or fqdn.endswith(
                "." + self.anchor_domain
            )
        assert self.substring is not None
        return self.substring in url


class FilterList:
    """A named, ordered collection of filter rules with fast matching."""

    def __init__(self, name: str, rules: Iterable[FilterRule] = ()) -> None:
        self.name = name
        self._block_anchors: Set[str] = set()
        self._allow_anchors: Set[str] = set()
        self._block_substrings: List[FilterRule] = []
        self._allow_substrings: List[FilterRule] = []
        self._n_rules = 0
        for rule in rules:
            self.add(rule)

    def __len__(self) -> int:
        return self._n_rules

    def add(self, rule: FilterRule) -> None:
        self._n_rules += 1
        if rule.anchor_domain is not None:
            target = (
                self._block_anchors
                if rule.action is RuleAction.BLOCK
                else self._allow_anchors
            )
            target.add(rule.anchor_domain)
        else:
            target_list = (
                self._block_substrings
                if rule.action is RuleAction.BLOCK
                else self._allow_substrings
            )
            target_list.append(rule)

    def add_lines(self, lines: Iterable[str]) -> None:
        """Parse and add rule lines, skipping comments and blanks."""
        for line in lines:
            stripped = line.strip()
            if not stripped or stripped.startswith("!"):
                continue
            self.add(FilterRule.parse(stripped))

    # -- matching -----------------------------------------------------
    def _anchor_hit(self, fqdn: str, anchors: Set[str]) -> bool:
        # Walk suffixes of the host: a.b.c.d -> b.c.d -> c.d
        labels = fqdn.split(".")
        for start in range(len(labels) - 1):
            if ".".join(labels[start:]) in anchors:
                return True
        return False

    def matches(self, url: str, fqdn: str) -> bool:
        """ABP semantics: any block match, unless an exception matches."""
        fqdn = fqdn.lower()
        blocked = self._anchor_hit(fqdn, self._block_anchors) or any(
            rule.matches(url, fqdn) for rule in self._block_substrings
        )
        if not blocked:
            return False
        allowed = self._anchor_hit(fqdn, self._allow_anchors) or any(
            rule.matches(url, fqdn) for rule in self._allow_substrings
        )
        return not allowed

    def anchor_domains(self) -> List[str]:
        return sorted(self._block_anchors)


#: probability that a list maintainer has a domain of this organization
#: kind in the lists — initial-request surfaces are well covered, the
#: chain-only middle tier is not.
LIST_COVERAGE_BY_KIND: Dict[OrgKind, Tuple[float, str]] = {
    # (coverage probability, which list: "easylist" ads / "easyprivacy")
    OrgKind.HYPERSCALER: (1.00, "easylist"),
    OrgKind.SSP: (0.95, "easylist"),
    OrgKind.AD_EXCHANGE: (0.85, "easylist"),
    OrgKind.ADULT_NETWORK: (0.55, "easylist"),
    OrgKind.DSP: (0.20, "easylist"),
    OrgKind.ANALYTICS: (0.92, "easyprivacy"),
    OrgKind.DMP: (0.08, "easyprivacy"),
    OrgKind.TRACKER: (0.22, "easyprivacy"),
}

#: generic substring rules the real lists carry (path patterns)
GENERIC_EASYLIST_SUBSTRINGS = ("/adserve/", "/ads/banner", "&placement=")
GENERIC_EASYPRIVACY_SUBSTRINGS = ("/beacon/track", "/collect?ev=")


def build_filter_lists(
    fleet: Fleet, streams: RngStreams
) -> Tuple[FilterList, FilterList]:
    """Generate synthetic easylist / easyprivacy against a fleet.

    Coverage is decided per *registrable domain* with the per-kind
    probabilities above; anchor rules then cover all FQDNs under the
    domain (as real ``||domain^`` rules do).
    """
    rng = streams.get("filterlists")
    easylist = FilterList("easylist")
    easyprivacy = FilterList("easyprivacy")
    for org in fleet.organizations():
        coverage = LIST_COVERAGE_BY_KIND.get(org.kind)
        if coverage is None:
            continue
        probability, list_name = coverage
        target = easylist if list_name == "easylist" else easyprivacy
        for domain in org.domains:
            if rng.random() < probability:
                target.add(FilterRule.parse(f"||{domain}^$third-party"))
    for substring in GENERIC_EASYLIST_SUBSTRINGS:
        easylist.add(FilterRule.parse(substring))
    for substring in GENERIC_EASYPRIVACY_SUBSTRINGS:
        easyprivacy.add(FilterRule.parse(substring))
    return easylist, easyprivacy
