"""Columnar batches of third-party requests.

The measurement-visible fields of :class:`~repro.web.requests.
ThirdPartyRequest` as a :class:`~repro.columnar.table.ColumnarTable`:
low-cardinality fields (first party, FQDN, TLD+1, user country, server
IP) dictionary-encode to four bytes per row, URLs stay as strings, and
the derived properties the classifier hammers (``fqdn``, ``tld1``,
``has_args`` — each an ``urlsplit`` per access on the object path) are
computed once at ingest and stored as columns.

Ground-truth fields (``truth_role``, ``truth_org``, ``truth_country``,
``chain_depth``) are deliberately *absent*: the columnar path carries
exactly what the real extension logged, so nothing downstream of it can
accidentally read simulation truth — the same layering the README
demands of the object path, enforced here by construction.

Raises
------
:class:`repro.errors.ColumnarError` via the underlying table on any
schema misuse.
"""

from __future__ import annotations

from typing import Iterable

from repro.columnar.schema import ColumnKind, Schema
from repro.columnar.table import ColumnarTable
from repro.web.requests import ThirdPartyRequest

#: the measurement-visible request schema, in canonical column order
REQUEST_SCHEMA = Schema.of(
    ("first_party", ColumnKind.DICT),
    ("url", ColumnKind.STR),
    ("referrer", ColumnKind.STR),
    ("fqdn", ColumnKind.DICT),
    ("tld1", ColumnKind.DICT),
    ("has_args", ColumnKind.BOOL),
    ("ip", ColumnKind.DICT),
    ("user_id", ColumnKind.U32),
    ("user_country", ColumnKind.DICT),
    ("day", ColumnKind.F64),
    ("https", ColumnKind.BOOL),
)


def request_table(requests: Iterable[ThirdPartyRequest]) -> ColumnarTable:
    """Pack an iterable of request records into a columnar batch.

    The URL-derived columns (``fqdn``/``tld1``/``has_args``) are
    materialized here, once per row; the object path recomputes them on
    every property access.

    Raises :class:`repro.errors.ClassificationError` when a request
    carries a URL whose host cannot be derived (propagated from
    :meth:`ThirdPartyRequest.fqdn`).
    """
    table = ColumnarTable(REQUEST_SCHEMA)
    for request in requests:
        fqdn = request.fqdn
        table.append((
            request.first_party,
            request.url,
            request.referrer,
            fqdn,
            request.tld1,
            request.has_args,
            request.ip,
            request.user_id,
            request.user_country,
            request.day,
            request.https,
        ))
    return table
