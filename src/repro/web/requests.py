"""Third-party request records — the unit of observation of the study.

The browser extension (Sect. 3.1) logs, for every outgoing third-party
request: the first-party domain being visited, the third-party URL, the
referrer, and the server IP that ultimately answered.  We keep exactly
those fields, plus simulation-only ground truth (the true serving
country, organization, and service role) that the *evaluation* uses but
the measurement pipeline itself never reads.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional
from urllib.parse import parse_qsl, urlsplit

from repro.errors import ClassificationError
from repro.netbase.addr import IPAddress
from repro.web.organizations import ServiceRole


def tld1_of(fqdn: str) -> str:
    """The registrable domain (TLD+1) of an FQDN.

    The simulated namespace only mints two-label registrable domains, so
    this is the last two labels.  Mirrors the paper's use of "TLD" for
    aggregation in Table 2 and Fig. 3.
    """
    labels = fqdn.split(".")
    if len(labels) < 2 or not all(labels):
        raise ClassificationError(f"cannot derive TLD+1 of {fqdn!r}")
    return ".".join(labels[-2:])


def build_url(
    fqdn: str,
    path: str,
    args: Optional[Dict[str, str]] = None,
    https: bool = True,
) -> str:
    """Assemble a URL from components (deterministic arg order)."""
    scheme = "https" if https else "http"
    if not path.startswith("/"):
        path = "/" + path
    query = ""
    if args:
        query = "?" + "&".join(
            f"{key}={value}" for key, value in sorted(args.items())
        )
    return f"{scheme}://{fqdn}{path}{query}"


def url_fqdn(url: str) -> str:
    """Extract the host of a URL."""
    host = urlsplit(url).hostname
    if not host:
        raise ClassificationError(f"URL has no host: {url!r}")
    return host


def url_has_args(url: str) -> bool:
    """True when the URL carries a non-empty query string."""
    return bool(urlsplit(url).query)


def url_path(url: str) -> str:
    return urlsplit(url).path


def url_args(url: str) -> Dict[str, str]:
    return dict(parse_qsl(urlsplit(url).query))


@dataclass(frozen=True)
class ThirdPartyRequest:
    """One observed third-party request.

    Measurement-visible fields (what the real extension logged):
    ``first_party``, ``url``, ``referrer``, ``ip``, ``user_country``,
    ``day``, ``https``.  The remaining fields are simulation ground
    truth used only for evaluation and calibration.
    """

    # -- measurement-visible ------------------------------------------------
    first_party: str
    url: str
    referrer: str
    ip: IPAddress
    user_id: int
    user_country: str
    day: float
    https: bool
    # -- ground truth (evaluation only) ----------------------------------
    truth_role: ServiceRole
    truth_org: str
    truth_country: str
    chain_depth: int

    @property
    def fqdn(self) -> str:
        return url_fqdn(self.url)

    @property
    def tld1(self) -> str:
        return tld1_of(self.fqdn)

    @property
    def has_args(self) -> bool:
        return url_has_args(self.url)

    @property
    def is_tracking_truth(self) -> bool:
        return self.truth_role is not ServiceRole.CLEAN_WIDGET


@dataclass(frozen=True)
class Visit:
    """One first-party page visit by a panel user."""

    user_id: int
    user_country: str
    publisher_domain: str
    day: float
