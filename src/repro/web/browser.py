"""Browser-extension simulator (Sect. 3.1).

Drives the panel users through their browsing sessions and emits the
dataset the real extension collected: one record per outgoing
third-party request with the first-party domain, the full third-party
URL, the referrer, and the server IP that answered.

DNS behaviour is faithful to the confinement mechanics:

* users on their ISP resolver are mapped from their own country;
* users on a third-party public resolver are mapped from the resolver
  site their queries are anycast-routed to (often a neighbouring
  country);
* latency-mapped (NEAREST/HOME) answers are cached per
  (FQDN, vantage country); load-balanced answers are drawn per query.

Every resolution is reported to the passive-DNS collector, which is what
later makes the tracker-IP completeness step possible.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.config import BrowsingConfig, PanelConfig
from repro.dnssim.authority import ClientSite, SelectionPolicy
from repro.dnssim.passive import PassiveDNSDatabase
from repro.dnssim.resolver import PublicResolver, default_public_resolvers
from repro.errors import ConfigError
from repro.geodata.countries import CountryRegistry
from repro.util.rng import RngStreams, WeightedSampler, poisson
from repro.web.deployment import Fleet, Server
from repro.web.publishers import Publisher
from repro.web.requests import ThirdPartyRequest, Visit, build_url
from repro.web.rtb import RequestSpec, RTBEngine
from repro.web.users import PanelUser


class MappingService:
    """DNS resolution front-end with per-vantage caching.

    Answers the question "which server IP does this user get for this
    FQDN right now", recording every resolution into passive DNS.
    """

    def __init__(
        self,
        fleet: Fleet,
        registry: CountryRegistry,
        pdns: PassiveDNSDatabase,
        streams: RngStreams,
        public_resolvers: Optional[Sequence[PublicResolver]] = None,
    ) -> None:
        self._fleet = fleet
        self._registry = registry
        self._pdns = pdns
        self._rng = streams.get("dns-mapping")
        self.public_resolvers: List[PublicResolver] = list(
            public_resolvers
            if public_resolvers is not None
            else default_public_resolvers()
        )
        self._site_cache: Dict[str, ClientSite] = {}
        self._answer_cache: Dict[Tuple[str, str], Server] = {}

    def country_site(self, country: str) -> ClientSite:
        """The canonical query vantage for clients in ``country``.

        Resolver queries egress at the national interconnection hub
        (Frankfurt for Germany, not Berlin), which is where authorities
        actually see them coming from.
        """
        site = self._site_cache.get(country)
        if site is None:
            record = self._registry.get(country)
            lat, lon = record.hosting_site
            site = ClientSite(country, lat, lon)
            self._site_cache[country] = site
        return site

    def vantage_for(
        self,
        country: str,
        uses_public_resolver: bool,
        public_resolver_index: int = 0,
    ) -> ClientSite:
        """Where the authority sees the query coming from."""
        site = self.country_site(country)
        if not uses_public_resolver or not self.public_resolvers:
            return site
        resolver = self.public_resolvers[
            public_resolver_index % len(self.public_resolvers)
        ]
        return resolver.site_for(site)

    def resolve(self, fqdn: str, vantage: ClientSite, day: float) -> Server:
        """Resolve ``fqdn`` from ``vantage``; returns the serving endpoint."""
        deployed = self._fleet.fqdn(fqdn)
        service = deployed.service
        if service.policy in (SelectionPolicy.NEAREST, SelectionPolicy.HOME):
            key = (fqdn, vantage.country)
            server = self._answer_cache.get(key)
            if server is None:
                server = service.select(vantage, self._rng)  # type: ignore[assignment]
                self._answer_cache[key] = server  # type: ignore[assignment]
        else:
            server = service.select(vantage, self._rng)  # type: ignore[assignment]
        self._pdns.observe(fqdn, server.ip, day)
        return server  # type: ignore[return-value]


@dataclass
class VisitLog:
    """The panel dataset: visits plus all third-party requests."""

    visits: List[Visit] = field(default_factory=list)
    requests: List[ThirdPartyRequest] = field(default_factory=list)

    # -- Table 1 statistics -----------------------------------------------
    def n_users(self) -> int:
        return len({v.user_id for v in self.visits})

    def first_party_domains(self) -> int:
        return len({v.publisher_domain for v in self.visits})

    def first_party_requests(self) -> int:
        return len(self.visits)

    def third_party_fqdns(self) -> int:
        return len({r.fqdn for r in self.requests})

    def third_party_requests(self) -> int:
        return len(self.requests)

    def https_share(self) -> float:
        if not self.requests:
            return 0.0
        return sum(1 for r in self.requests if r.https) / len(self.requests)

    def requests_by_user_country(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for request in self.requests:
            out[request.user_country] = out.get(request.user_country, 0) + 1
        return out


class BrowserExtensionSimulator:
    """Simulates the panel's browsing and the extension's logging."""

    def __init__(
        self,
        fleet: Fleet,
        publishers: Sequence[Publisher],
        users: Sequence[PanelUser],
        panel_config: PanelConfig,
        browsing_config: BrowsingConfig,
        registry: CountryRegistry,
        mapping: MappingService,
        streams: RngStreams,
    ) -> None:
        if not publishers:
            raise ConfigError("no publishers to browse")
        self._fleet = fleet
        self._publishers = list(publishers)
        self._users = list(users)
        self._panel_config = panel_config
        self._browsing = browsing_config
        self._registry = registry
        self._mapping = mapping
        self._streams = streams
        self._rtb = RTBEngine(fleet, browsing_config, streams)
        self._home_samplers: Dict[str, WeightedSampler] = {}
        by_country: Dict[str, List[Publisher]] = {}
        for publisher in self._publishers:
            by_country.setdefault(publisher.country, []).append(publisher)
        for country, group in by_country.items():
            self._home_samplers[country] = WeightedSampler(
                group, [p.popularity for p in group]
            )
        self._foreign_samplers = self._build_foreign_samplers()

    #: how users weight foreign publishers by region group: browsing is
    #: language/market-bound — Latin-American users read US sites far
    #: more than European ones, which is what routes South-American
    #: tracking flows to North America (Fig. 6).
    _REGION_BROWSE_MATRIX: Dict[str, Dict[str, float]] = {
        "EU": {"EU": 1.0, "AMER": 0.6, "OTHER": 0.25},
        "AMER": {"AMER": 1.0, "EU": 0.12, "OTHER": 0.25},
        "OTHER": {"OTHER": 1.0, "AMER": 1.2, "EU": 0.35},
    }

    @staticmethod
    def _region_group(continent: str) -> str:
        if continent == "EU":
            return "EU"
        if continent in ("NA", "SA"):
            return "AMER"
        return "OTHER"

    def _build_foreign_samplers(self) -> Dict[str, WeightedSampler]:
        out: Dict[str, WeightedSampler] = {}
        groups = {
            p.domain: self._region_group(
                self._registry.get(p.country).continent
            )
            for p in self._publishers
        }
        for user_group, row in self._REGION_BROWSE_MATRIX.items():
            weights = [
                p.popularity * row[groups[p.domain]]
                for p in self._publishers
            ]
            out[user_group] = WeightedSampler(self._publishers, weights)
        return out

    # -- public API ---------------------------------------------------------
    def simulate(self) -> VisitLog:
        """Run the whole panel and return the collected dataset."""
        log = VisitLog()
        for user in self._users:
            rng = self._streams.fork(f"user-{user.user_id}")
            self._simulate_user(user, rng, log)
        return log

    # -- internals -----------------------------------------------------
    def _simulate_user(
        self, user: PanelUser, rng: random.Random, log: VisitLog
    ) -> None:
        n_visits = max(
            1, poisson(rng, self._panel_config.visits_per_user * user.activity)
        )
        # With EDNS-Client-Subnet the authority sees the user's country
        # even behind a third-party resolver.
        foreign_vantage = user.uses_public_resolver and not user.resolver_ecs
        vantage = self._mapping.vantage_for(
            user.country, foreign_vantage, user.public_resolver_index
        )
        for _ in range(n_visits):
            publisher = self._pick_publisher(user, rng)
            day = rng.uniform(0.0, self._panel_config.days)
            log.visits.append(
                Visit(
                    user_id=user.user_id,
                    user_country=user.country,
                    publisher_domain=publisher.domain,
                    day=day,
                )
            )
            self._render_visit(user, vantage, publisher, day, rng, log)

    def _pick_publisher(
        self, user: PanelUser, rng: random.Random
    ) -> Publisher:
        group = self._region_group(
            self._registry.get(user.country).continent
        )
        sampler = self._foreign_samplers[group]
        if rng.random() < user.home_bias:
            home = self._home_samplers.get(user.country)
            if home is not None:
                sampler = home
        publisher = sampler.sample(rng)
        if publisher.is_sensitive and rng.random() > min(
            1.0, user.sensitive_affinity
        ):
            # The user bounces off the sensitive site; redraw once.
            publisher = sampler.sample(rng)
        return publisher

    def _render_visit(
        self,
        user: PanelUser,
        vantage: ClientSite,
        publisher: Publisher,
        day: float,
        rng: random.Random,
        log: VisitLog,
    ) -> None:
        browsing = self._browsing
        user_token = f"u{user.user_id:05d}"
        specs_chains: List[List[RequestSpec]] = []

        n_slots = poisson(rng, browsing.mean_ad_slots)
        for _ in range(n_slots):
            partner = publisher.ad_partners[
                rng.randrange(len(publisher.ad_partners))
            ]
            specs_chains.append(
                self._rtb.ad_slot_chain(publisher, partner, user_token, rng)
            )

        n_tags = poisson(rng, browsing.mean_analytics_tags)
        for _ in range(n_tags):
            partner = publisher.analytics_partners[
                rng.randrange(len(publisher.analytics_partners))
            ]
            specs_chains.append(
                [self._rtb.analytics_request(partner, user_token, rng)]
            )

        n_clean = poisson(
            rng, browsing.mean_clean_widgets * browsing.mean_clean_requests
        )
        for _ in range(n_clean):
            partner = publisher.clean_partners[
                rng.randrange(len(publisher.clean_partners))
            ]
            specs_chains.append([self._rtb.clean_request(partner, rng)])

        first_party_url = f"https://{publisher.domain}/"
        for chain in specs_chains:
            urls: List[str] = []
            depths: List[int] = []
            for spec in chain:
                server = self._mapping.resolve(spec.fqdn, vantage, day)
                https = rng.random() < 0.834
                url = build_url(spec.fqdn, spec.path, spec.args, https)
                urls.append(url)
                if spec.parent is None:
                    referrer = first_party_url
                    depth = 0
                else:
                    referrer = urls[spec.parent]
                    depth = depths[spec.parent] + 1
                depths.append(depth)
                log.requests.append(
                    ThirdPartyRequest(
                        first_party=publisher.domain,
                        url=url,
                        referrer=referrer,
                        ip=server.ip,
                        user_id=user.user_id,
                        user_country=user.country,
                        day=day,
                        https=https,
                        truth_role=spec.role,
                        truth_org=spec.org_name,
                        truth_country=server.country,
                        chain_depth=depth,
                    )
                )
