"""Server fleets and DNS deployment of the organizations.

For every organization the :class:`FleetBuilder`:

1. decides the PoP countries from the organization's deployment profile,
2. allocates server addresses — from the organization's own hosting
   pools, or from its cloud provider's published ranges when it has
   tenancy and the provider has a PoP in that country,
3. creates the FQDNs of each registrable domain according to the
   organization's kind (ad serving, RTB bidding, cookie sync, pixels,
   analytics tags, CDNs, clean widgets),
4. wires each FQDN to a subset of the fleet behind a DNS
   :class:`~repro.dnssim.authority.FqdnService` with the organization's
   mapping policy (cookie-sync and bid endpoints are load-balanced
   rather than latency-mapped, which is what creates the paper's DNS
   redirection potential in Table 5),
5. routes a fraction of cookie-sync FQDNs to shared *sync hub* servers
   operated by the ad exchanges — the multi-domain IPs of Figures 4/5.

The resulting :class:`Fleet` is the ground truth the rest of the
pipeline measures against.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.cloud.providers import CloudCatalog
from repro.dnssim.authority import (
    AuthorityDirectory,
    FqdnService,
    SelectionPolicy,
    Zone,
)
from repro.errors import ConfigError
from repro.geodata.countries import CountryRegistry
from repro.netbase.allocator import AddressPlan
from repro.netbase.addr import IPAddress
from repro.netbase.asn import ASRegistry
from repro.util.rng import RngStreams, weighted_choice
from repro.web.organizations import (
    DeploymentProfile,
    EU_HUB_PRESENCE,
    EU_HUB_WEIGHTS,
    EU_HUBS_US_POP_PROB,
    GLOBAL_DENSE_EU_POP_PROB,
    GLOBAL_DENSE_OTHER_POP_PROB,
    Organization,
    OrgKind,
    ServiceRole,
)


@dataclass(frozen=True)
class Server:
    """One deployed server endpoint (satisfies the DNS Endpoint protocol)."""

    ip: IPAddress
    country: str
    lat: float
    lon: float
    org_name: str
    asn: int
    cloud_provider: Optional[str] = None


@dataclass(frozen=True)
class DeployedFqdn:
    """An FQDN with its owning organization, role, and DNS service."""

    fqdn: str
    domain: str
    org_name: str
    role: ServiceRole
    service: FqdnService

    @property
    def is_tracking_role(self) -> bool:
        return self.role is not ServiceRole.CLEAN_WIDGET


#: FQDN label pools per service role
_ROLE_LABELS: Dict[ServiceRole, Tuple[str, ...]] = {
    ServiceRole.AD_SERVING: ("ads", "ad", "serve", "delivery"),
    ServiceRole.RTB_BID: ("rtb", "bid", "bidder", "x"),
    ServiceRole.COOKIE_SYNC: ("sync", "match", "cs", "usersync", "cm"),
    ServiceRole.TRACKING_PIXEL: ("pixel", "px", "beacon", "t"),
    ServiceRole.ANALYTICS_TAG: ("stats", "analytics", "collect", "m"),
    ServiceRole.CDN: ("cdn", "static", "assets"),
    ServiceRole.CLEAN_WIDGET: ("widget", "chat", "embed", "api", "comments"),
}

#: which roles each organization kind deploys on its domains
_KIND_ROLES: Dict[OrgKind, Tuple[ServiceRole, ...]] = {
    OrgKind.HYPERSCALER: (
        ServiceRole.AD_SERVING, ServiceRole.RTB_BID, ServiceRole.CDN,
        ServiceRole.TRACKING_PIXEL, ServiceRole.COOKIE_SYNC,
        ServiceRole.ANALYTICS_TAG,
    ),
    OrgKind.AD_EXCHANGE: (
        ServiceRole.RTB_BID, ServiceRole.COOKIE_SYNC, ServiceRole.AD_SERVING,
    ),
    OrgKind.DSP: (
        ServiceRole.RTB_BID, ServiceRole.AD_SERVING, ServiceRole.COOKIE_SYNC,
    ),
    OrgKind.SSP: (ServiceRole.AD_SERVING, ServiceRole.RTB_BID),
    OrgKind.DMP: (ServiceRole.COOKIE_SYNC, ServiceRole.TRACKING_PIXEL),
    OrgKind.ANALYTICS: (ServiceRole.ANALYTICS_TAG, ServiceRole.TRACKING_PIXEL),
    OrgKind.TRACKER: (ServiceRole.TRACKING_PIXEL, ServiceRole.COOKIE_SYNC),
    OrgKind.ADULT_NETWORK: (
        ServiceRole.AD_SERVING, ServiceRole.COOKIE_SYNC,
        ServiceRole.TRACKING_PIXEL,
    ),
    OrgKind.CLEAN: (ServiceRole.CLEAN_WIDGET, ServiceRole.CDN),
}

#: servers per PoP country (min, max) by organization kind
_KIND_SERVERS_PER_POP: Dict[OrgKind, Tuple[int, int]] = {
    OrgKind.HYPERSCALER: (2, 5),
    OrgKind.AD_EXCHANGE: (1, 3),
    OrgKind.DSP: (1, 2),
    OrgKind.SSP: (1, 2),
    OrgKind.DMP: (1, 2),
    OrgKind.ANALYTICS: (1, 2),
    OrgKind.TRACKER: (1, 2),
    OrgKind.ADULT_NETWORK: (1, 2),
    OrgKind.CLEAN: (1, 2),
}

#: probability a cookie-sync FQDN is hosted on a shared exchange sync hub
SYNC_HUB_SHARE = 0.20


class Fleet:
    """The deployed world: servers, FQDNs, zones, and lookup indexes."""

    def __init__(self) -> None:
        self._orgs: Dict[str, Organization] = {}
        self._servers_by_org: Dict[str, List[Server]] = {}
        self._server_by_ip: Dict[IPAddress, Server] = {}
        self._fqdns: Dict[str, DeployedFqdn] = {}
        self.authorities = AuthorityDirectory()

    # -- registration (builder-facing) ----------------------------------
    def register_org(self, org: Organization) -> None:
        if org.name in self._orgs:
            raise ConfigError(f"duplicate organization {org.name}")
        self._orgs[org.name] = org
        self._servers_by_org[org.name] = []

    def register_server(self, server: Server) -> None:
        if server.ip in self._server_by_ip:
            raise ConfigError(f"duplicate server address {server.ip}")
        self._server_by_ip[server.ip] = server
        self._servers_by_org[server.org_name].append(server)

    def register_fqdn(self, deployed: DeployedFqdn) -> None:
        if deployed.fqdn in self._fqdns:
            raise ConfigError(f"duplicate FQDN {deployed.fqdn}")
        self._fqdns[deployed.fqdn] = deployed

    # -- queries ---------------------------------------------------------
    def organizations(self) -> List[Organization]:
        return [self._orgs[name] for name in sorted(self._orgs)]

    def org(self, name: str) -> Organization:
        try:
            return self._orgs[name]
        except KeyError:
            raise ConfigError(f"unknown organization {name!r}") from None

    def servers(self) -> List[Server]:
        return [self._server_by_ip[ip] for ip in sorted(self._server_by_ip)]

    def servers_of(self, org_name: str) -> List[Server]:
        return list(self._servers_by_org.get(org_name, ()))

    def server_for_ip(self, address: IPAddress) -> Optional[Server]:
        return self._server_by_ip.get(address)

    def fqdns(self) -> List[DeployedFqdn]:
        return [self._fqdns[name] for name in sorted(self._fqdns)]

    def fqdn(self, name: str) -> DeployedFqdn:
        try:
            return self._fqdns[name]
        except KeyError:
            raise ConfigError(f"unknown FQDN {name!r}") from None

    def find_fqdn(self, name: str) -> Optional[DeployedFqdn]:
        return self._fqdns.get(name)

    def fqdns_by_role(self, role: ServiceRole) -> List[DeployedFqdn]:
        return [d for d in self.fqdns() if d.role is role]

    def fqdns_of_org(self, org_name: str) -> List[DeployedFqdn]:
        return [d for d in self.fqdns() if d.org_name == org_name]

    def fqdns_of_domain(self, domain: str) -> List[DeployedFqdn]:
        return [d for d in self.fqdns() if d.domain == domain]

    def tracking_fqdns(self) -> List[DeployedFqdn]:
        return [
            d for d in self.fqdns() if self.org(d.org_name).is_tracking
        ]

    def clean_fqdns(self) -> List[DeployedFqdn]:
        return [
            d for d in self.fqdns() if not self.org(d.org_name).is_tracking
        ]


class FleetBuilder:
    """Builds the :class:`Fleet` (servers + DNS) for an org population."""

    def __init__(
        self,
        registry: CountryRegistry,
        plan: AddressPlan,
        as_registry: ASRegistry,
        clouds: CloudCatalog,
        streams: RngStreams,
        ipv6_share: float = 0.025,
    ) -> None:
        self._registry = registry
        self._plan = plan
        self._as_registry = as_registry
        self._clouds = clouds
        self._rng = streams.get("deployment")
        self._ipv6_share = ipv6_share
        self._org_pools: Dict[Tuple[str, str, int], object] = {}
        self._sync_hubs: List[Server] = []

    # -- public API ---------------------------------------------------------
    def build(self, organizations: Sequence[Organization]) -> Fleet:
        fleet = Fleet()
        # Exchanges first so sync hubs exist before dependents deploy.
        ordered = sorted(
            organizations,
            key=lambda o: (o.kind is not OrgKind.AD_EXCHANGE, o.name),
        )
        for org in ordered:
            self._deploy_org(fleet, org)
        return fleet

    # -- per-organization deployment ------------------------------------
    def _deploy_org(self, fleet: Fleet, org: Organization) -> None:
        fleet.register_org(org)
        asn = self._as_registry.register(
            name=f"{org.name}-net",
            kind="hosting" if org.cloud_provider is None else "cloud",
            registered_country=org.legal_country,
        )
        pop_countries = self._pop_countries(org)
        zone_by_apex: Dict[str, Zone] = {}
        servers_by_domain: Dict[str, List[Server]] = {}
        lo, hi = _KIND_SERVERS_PER_POP[org.kind]
        for domain in org.domains:
            domain_servers: List[Server] = []
            for country in pop_countries:
                # US sites are disproportionately large (roughly half of
                # a US-seated operator's fleet sits at home) and
                # Amsterdam is Europe's biggest hosting hub; site sizes
                # shape the tracker-IP population (Table 3/4) and the
                # load-balanced share of each country, without changing
                # latency-mapped routing.
                multiplier = {"US": 6, "NL": 2, "DE": 1, "GB": 2}.get(
                    country, 1
                )
                for _ in range(multiplier * self._rng.randint(lo, hi)):
                    server = self._make_server(org, country, asn.number)
                    fleet.register_server(server)
                    domain_servers.append(server)
            servers_by_domain[domain] = domain_servers
            zone = Zone(apex=domain, owner=org.name)
            zone_by_apex[domain] = zone
            fleet.authorities.add(zone)

        for domain in org.domains:
            self._deploy_domain_fqdns(
                fleet, org, domain, servers_by_domain[domain],
                zone_by_apex[domain],
            )

        if org.kind is OrgKind.AD_EXCHANGE:
            self._designate_sync_hubs(org, servers_by_domain)

    def _pop_countries(self, org: Organization) -> List[str]:
        """PoP countries implied by the organization's deployment profile."""
        rng = self._rng
        if org.deployment is DeploymentProfile.GLOBAL_DENSE:
            # Near-certain markets are deterministic: every hyperscaler
            # operates in DE/GB/NL/IE/FR — with only a handful of such
            # organizations, a random miss on a top market would distort
            # the whole world.
            out = [
                country
                for country, prob in sorted(GLOBAL_DENSE_EU_POP_PROB.items())
                if prob >= 0.88 or rng.random() < prob
            ]
            out.extend(
                country
                for country, prob in sorted(GLOBAL_DENSE_OTHER_POP_PROB.items())
                if prob >= 0.88 or rng.random() < prob
            )
            if "US" not in out:
                out.append("US")
            return sorted(set(out))
        if org.deployment is DeploymentProfile.EU_HUBS:
            hubs: Set[str] = {
                country
                for country, prob in sorted(EU_HUB_PRESENCE.items())
                if rng.random() < prob
            }
            if not hubs:
                hubs.add("NL")
            seat_kind = "US" if org.legal_country == "US" else "EU"
            if rng.random() < EU_HUBS_US_POP_PROB[seat_kind]:
                hubs.add("US")
            return sorted(hubs)
        if org.deployment is DeploymentProfile.HOME_ONLY:
            return [org.legal_country]
        if org.deployment is DeploymentProfile.US_ONLY:
            return ["US"]
        if org.deployment is DeploymentProfile.REGIONAL:
            hubs = {org.legal_country}
            keys = sorted(EU_HUB_WEIGHTS)
            weights = [EU_HUB_WEIGHTS[k] for k in keys]
            for _ in range(rng.randint(1, 2)):
                hubs.add(weighted_choice(rng, keys, weights))
            return sorted(hubs)
        raise ConfigError(f"unknown deployment profile {org.deployment}")

    def _make_server(
        self, org: Organization, country_code: str, asn: int
    ) -> Server:
        country = self._registry.get(country_code)
        on_cloud = (
            org.cloud_provider is not None
            and self._clouds.get(org.cloud_provider).has_pop(country_code)
            and self._rng.random() < 0.8
        )
        if on_cloud:
            assert org.cloud_provider is not None
            ip = self._clouds.allocate_address(org.cloud_provider, country_code)
            cloud: Optional[str] = org.cloud_provider
        else:
            ip = self._allocate_own(org, country_code)
            cloud = None
        radius = 0.7 * country.jitter_radius_deg
        hub_lat, hub_lon = country.hosting_site
        lat = hub_lat + self._rng.uniform(-radius, radius)
        lon = hub_lon + self._rng.uniform(-1.5 * radius, 1.5 * radius)
        return Server(
            ip=ip, country=country_code, lat=lat, lon=lon,
            org_name=org.name, asn=asn, cloud_provider=cloud,
        )

    def _allocate_own(self, org: Organization, country: str) -> IPAddress:
        version = 6 if self._rng.random() < self._ipv6_share else 4
        key = (org.name, country, version)
        record = self._org_pools.get(key)
        if record is None:
            record = self._plan.create_pool(
                country=country,
                kind="hosting",
                owner=org.name,
                length=24 if version == 4 else 112,
                version=version,
            )
            self._org_pools[key] = record
        return self._plan.pool(record.prefix).allocate_address()  # type: ignore[attr-defined]

    # -- FQDN deployment -----------------------------------------------------
    def _deploy_domain_fqdns(
        self,
        fleet: Fleet,
        org: Organization,
        domain: str,
        domain_servers: List[Server],
        zone: Zone,
    ) -> None:
        roles = _KIND_ROLES[org.kind]
        rng = self._rng
        # Every domain carries 2..len(roles) of the organization's roles;
        # the first domain always carries the full set.
        if domain == org.primary_domain or len(roles) <= 2:
            chosen = list(roles)
        else:
            count = rng.randint(2, len(roles))
            chosen = sorted(
                rng.sample(list(roles), count), key=lambda r: r.value
            )
        for role in chosen:
            labels = _ROLE_LABELS[role]
            n_fqdns = 1 if rng.random() < 0.7 else 2
            for index in range(n_fqdns):
                label = labels[rng.randrange(len(labels))]
                fqdn = f"{label}{index if index else ''}.{domain}"
                if fleet.find_fqdn(fqdn) is not None:
                    fqdn = f"{label}{index + 2}.{domain}"
                endpoints = self._endpoints_for(
                    org, role, domain_servers
                )
                policy = self._policy_for(org, role)
                service = FqdnService(
                    fqdn=fqdn,
                    endpoints=endpoints,
                    policy=policy,
                    ttl=300 if org.kind is OrgKind.HYPERSCALER else 3600,
                )
                zone.add_service(service)
                fleet.register_fqdn(
                    DeployedFqdn(
                        fqdn=fqdn, domain=domain, org_name=org.name,
                        role=role, service=service,
                    )
                )

    def _endpoints_for(
        self,
        org: Organization,
        role: ServiceRole,
        domain_servers: List[Server],
    ) -> List[Server]:
        rng = self._rng
        if (
            role is ServiceRole.COOKIE_SYNC
            and org.kind in (OrgKind.DSP, OrgKind.DMP, OrgKind.TRACKER)
            and self._sync_hubs
            and rng.random() < SYNC_HUB_SHARE
        ):
            count = min(len(self._sync_hubs), rng.randint(2, 4))
            return sorted(
                rng.sample(self._sync_hubs, count), key=lambda s: s.ip
            )
        # Each FQDN uses a subset of the domain fleet: sampling countries
        # rather than servers keeps per-FQDN footprints geographically
        # meaningful and creates the TLD-over-FQDN redirect potential.
        # The anchor sites — the home country and the US mothership —
        # serve every FQDN.
        countries = sorted({s.country for s in domain_servers})
        keep_fraction = rng.uniform(0.75, 1.0)
        n_keep = max(1, round(len(countries) * keep_fraction))
        kept = set(rng.sample(countries, n_keep))
        anchors = [org.legal_country, "US"]
        if org.deployment is DeploymentProfile.GLOBAL_DENSE:
            # A globally dense operator never serves a top-tier market
            # from abroad: its major hubs carry every FQDN.
            anchors.extend(("DE", "GB", "NL", "FR", "IE"))
        for anchor in anchors:
            if anchor in countries:
                kept.add(anchor)
        endpoints = [s for s in domain_servers if s.country in kept]
        if not endpoints:
            endpoints = list(domain_servers)
        # Home-country endpoints first: the HOME policy answers with the
        # first endpoint, which must be the home deployment even when
        # the organization also keeps hub sites (those hub sites are
        # what make HOME-served flows DNS-redirectable in Table 5).
        return sorted(
            endpoints,
            key=lambda s: (s.country != org.legal_country, s.ip),
        )

    def _policy_for(
        self, org: Organization, role: ServiceRole
    ) -> SelectionPolicy:
        # Sync and bid endpoints are often load-balanced rather than
        # latency-mapped — the mapping investment goes to the serving
        # path, not the match path.
        if role in (ServiceRole.COOKIE_SYNC, ServiceRole.RTB_BID):
            if self._rng.random() < 0.7:
                return SelectionPolicy.WEIGHTED
        if role is ServiceRole.CDN:
            return SelectionPolicy.NEAREST
        return org.dns_policy

    def _designate_sync_hubs(
        self,
        org: Organization,
        servers_by_domain: Dict[str, List[Server]],
    ) -> None:
        """Mark one server of the exchange as a shared sync hub."""
        primary_servers = servers_by_domain.get(org.primary_domain, [])
        preferred = [
            s for s in primary_servers if s.country in ("US", "NL", "DE")
        ] or primary_servers
        for hub in sorted(preferred, key=lambda s: s.ip)[:2]:
            self._sync_hubs.append(hub)
