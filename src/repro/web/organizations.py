"""Advertising / tracking / clean-service organizations.

An :class:`Organization` is the unit the paper reasons about implicitly:
it owns domains, deploys servers, has a *legal seat* (the country a
commercial geolocation database tends to report for its infrastructure)
and a *deployment profile* (where its servers physically are).  The gap
between those two is what flips Figure 7.

Archetypes (see DESIGN.md §5 for the calibration story):

* ``HYPERSCALER`` — US-seated, globally dense PoPs, latency-mapped DNS.
  Serves EU users from EU datacenters.
* ``AD_EXCHANGE`` / ``DSP`` / ``SSP`` / ``DMP`` / ``ANALYTICS`` — the RTB
  middle tier; mixed US/EU seats, EU-hub deployments, and a large share
  of non-geographic (weighted) DNS mapping, which creates the paper's
  DNS-redirection localization potential (Table 5).
* ``TRACKER`` — long-tail trackers serving from their home country only.
* ``ADULT_NETWORK`` — US/offshore-seated, US-served; drives the higher
  out-of-EU leakage of the porn sensitive category (Fig. 10).
* ``CLEAN`` — chat / comments / fonts / CDN widgets; not tracking.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.config import EcosystemConfig
from repro.dnssim.authority import SelectionPolicy
from repro.errors import ConfigError
from repro.util.rng import RngStreams, weighted_choice


class OrgKind(enum.Enum):
    HYPERSCALER = "hyperscaler"
    AD_EXCHANGE = "ad_exchange"
    DSP = "dsp"
    SSP = "ssp"
    DMP = "dmp"
    ANALYTICS = "analytics"
    TRACKER = "tracker"
    ADULT_NETWORK = "adult_network"
    CLEAN = "clean"


class ServiceRole(enum.Enum):
    """What a given FQDN of an organization is for."""

    AD_SERVING = "ad_serving"        # ad markup / creative delivery
    RTB_BID = "rtb_bid"              # bid request endpoints
    COOKIE_SYNC = "cookie_sync"      # user-matching redirects
    TRACKING_PIXEL = "tracking_pixel"
    ANALYTICS_TAG = "analytics_tag"
    CDN = "cdn"                      # static assets of the ad org
    CLEAN_WIDGET = "clean_widget"    # chat, comments, fonts, ...


class DeploymentProfile(enum.Enum):
    GLOBAL_DENSE = "global_dense"   # US + broad EU + Asia presence
    EU_HUBS = "eu_hubs"             # 1-4 European hub datacenters
    HOME_ONLY = "home_only"         # single home-country deployment
    US_ONLY = "us_only"             # one or two US sites
    REGIONAL = "regional"           # home + one or two hubs


#: EU hub countries and how often a hub deployment picks each of them
#: (used for REGIONAL deployments); Amsterdam first — the single most
#: common European PoP location, which is what routes Polish traffic to
#: NL in Fig. 12(c).
EU_HUB_WEIGHTS: Dict[str, float] = {
    "NL": 0.24, "DE": 0.20, "GB": 0.15, "IE": 0.12, "FR": 0.11,
    "ES": 0.09, "IT": 0.05, "SE": 0.02, "AT": 0.013, "DK": 0.007,
}

#: probability an EU_HUBS (RTB middle tier) organization operates a PoP
#: in each country — the dominant driver of national confinement for
#: the middle tier.
EU_HUB_PRESENCE: Dict[str, float] = {
    "NL": 0.70, "DE": 0.72, "GB": 0.70, "IE": 0.38, "FR": 0.50,
    "ES": 0.52, "IT": 0.45, "AT": 0.22, "SE": 0.14, "BE": 0.12,
    "DK": 0.02, "CZ": 0.08, "FI": 0.06, "PL": 0.02, "PT": 0.08,
    "GR": 0.10, "HU": 0.08, "RO": 0.06, "BG": 0.06, "CY": 0.015,
}

#: probability an EU_HUBS organization also runs a US site (US-seated
#: organizations almost always do; EU-seated ones often enough).  The
#: load-balanced sync path spilling onto these US sites is the main
#: N. America leakage of EU flows — and, being redirectable to the same
#: organization's EU sites, the main DNS-redirection potential.
EU_HUBS_US_POP_PROB = {"US": 0.85, "EU": 0.45}

#: probability a GLOBAL_DENSE organization operates a PoP in each EU28
#: country — roughly monotone in the country's IT-infrastructure index.
GLOBAL_DENSE_EU_POP_PROB: Dict[str, float] = {
    "DE": 0.96, "GB": 0.96, "NL": 0.92, "IE": 0.90, "FR": 0.88,
    "IT": 0.80, "ES": 0.85, "SE": 0.50, "BE": 0.42, "AT": 0.85,
    "PL": 0.05, "DK": 0.04, "FI": 0.28, "CZ": 0.15, "PT": 0.15,
    "HU": 0.12, "RO": 0.08, "GR": 0.05, "BG": 0.08, "HR": 0.03,
    "SK": 0.01, "SI": 0.01, "LT": 0.04, "LV": 0.03, "EE": 0.04,
    "LU": 0.10, "MT": 0.01, "CY": 0.01,
}

#: non-EU PoP probabilities for GLOBAL_DENSE organizations
GLOBAL_DENSE_OTHER_POP_PROB: Dict[str, float] = {
    "US": 1.0, "CA": 0.35, "SG": 0.45, "JP": 0.40, "HK": 0.20,
    "TW": 0.15, "AU": 0.3, "BR": 0.12, "IN": 0.12, "CH": 0.25,
    "RU": 0.10, "ZA": 0.08,
}

#: where EU-seated long-tail trackers are homed (panel-country heavy)
EU_TRACKER_HOME_WEIGHTS: Dict[str, float] = {
    "DE": 0.26, "GB": 0.28, "FR": 0.12, "NL": 0.09, "ES": 0.07,
    "IT": 0.05, "SE": 0.03, "CZ": 0.025, "DK": 0.015, "AT": 0.025,
    "BE": 0.018, "GR": 0.012, "RO": 0.02, "HU": 0.008, "PL": 0.002,
}
# (DK deliberately small and PL near-zero: Fig. 8 / Fig. 12 show both
# countries' tracking flows almost entirely served abroad.)

#: legal seats of rest-of-Europe and Asia trackers
RESTEU_HOME_WEIGHTS: Dict[str, float] = {"CH": 0.55, "RU": 0.35, "NO": 0.10}
ASIA_HOME_WEIGHTS: Dict[str, float] = {
    "JP": 0.3, "SG": 0.25, "CN": 0.2, "HK": 0.15, "KR": 0.1,
}

#: cloud providers organizations may rent from (names must match
#: :mod:`repro.cloud.providers`)
CLOUD_TENANCY_WEIGHTS: Dict[str, float] = {
    "aws": 0.30, "azure": 0.16, "google-cloud": 0.16, "ibm-cloud": 0.07,
    "cloudflare": 0.08, "digital-ocean": 0.08, "equinix": 0.06,
    "oracle-cloud": 0.05, "rackspace": 0.04,
}


@dataclass(frozen=True)
class Organization:
    """One organization of the simulated ecosystem."""

    name: str
    kind: OrgKind
    legal_country: str
    deployment: DeploymentProfile
    market_weight: float
    dns_policy: SelectionPolicy
    cloud_provider: Optional[str] = None
    #: registrable domains (TLD+1) the organization owns, in creation order
    domains: Tuple[str, ...] = field(default_factory=tuple)

    @property
    def is_tracking(self) -> bool:
        return self.kind is not OrgKind.CLEAN

    @property
    def primary_domain(self) -> str:
        if not self.domains:
            raise ConfigError(f"organization {self.name} has no domains")
        return self.domains[0]


#: market weight per archetype instance; hyperscalers dominate the mix —
#: calibrated so EU-origin flows split ≈62/33/3/1 across US/EU/rest-EU/
#: Asia *legal seats* while ≈85% are *physically served* inside EU28.
_KIND_WEIGHT: Dict[OrgKind, float] = {
    OrgKind.HYPERSCALER: 150.0,
    OrgKind.AD_EXCHANGE: 11.0,
    OrgKind.DSP: 4.4,
    OrgKind.SSP: 5.2,
    OrgKind.DMP: 3.4,
    OrgKind.ANALYTICS: 5.2,
    OrgKind.TRACKER: 1.6,
    OrgKind.ADULT_NETWORK: 3.0,
    OrgKind.CLEAN: 6.0,
}

#: number of registrable domains per archetype instance (min, max)
_KIND_DOMAINS: Dict[OrgKind, Tuple[int, int]] = {
    OrgKind.HYPERSCALER: (4, 6),
    OrgKind.AD_EXCHANGE: (2, 4),
    OrgKind.DSP: (1, 3),
    OrgKind.SSP: (1, 3),
    OrgKind.DMP: (1, 3),
    OrgKind.ANALYTICS: (1, 2),
    OrgKind.TRACKER: (1, 2),
    OrgKind.ADULT_NETWORK: (1, 3),
    OrgKind.CLEAN: (1, 2),
}

_NAME_STEMS: Dict[OrgKind, str] = {
    OrgKind.HYPERSCALER: "megacorp",
    OrgKind.AD_EXCHANGE: "exchange",
    OrgKind.DSP: "dsp",
    OrgKind.SSP: "ssp",
    OrgKind.DMP: "dmp",
    OrgKind.ANALYTICS: "metrics",
    OrgKind.TRACKER: "tracker",
    OrgKind.ADULT_NETWORK: "adultads",
    OrgKind.CLEAN: "widget",
}

_TLDS = ("com", "net", "io", "co", "media", "eu", "de", "info")


class OrganizationFactory:
    """Builds the organization population from an :class:`EcosystemConfig`."""

    def __init__(self, config: EcosystemConfig, streams: RngStreams) -> None:
        self._config = config
        self._rng = streams.get("organizations")
        self._used_domains: set = set()

    # -- public API ---------------------------------------------------------
    def build(self) -> List[Organization]:
        """Create every organization of the world, deterministically."""
        cfg = self._config
        orgs: List[Organization] = []
        orgs.extend(self._hyperscalers(cfg.n_hyperscalers))
        orgs.extend(self._middle_tier(OrgKind.AD_EXCHANGE, cfg.n_ad_exchanges))
        orgs.extend(self._middle_tier(OrgKind.DSP, cfg.n_dsps))
        orgs.extend(self._middle_tier(OrgKind.SSP, cfg.n_ssps))
        orgs.extend(self._middle_tier(OrgKind.DMP, cfg.n_dmps))
        orgs.extend(self._middle_tier(OrgKind.ANALYTICS, cfg.n_analytics))
        orgs.extend(self._trackers("EU", cfg.n_eu_trackers))
        orgs.extend(self._trackers("US", cfg.n_us_trackers))
        orgs.extend(self._trackers("RESTEU", cfg.n_resteu_trackers))
        orgs.extend(self._trackers("ASIA", cfg.n_asia_trackers))
        orgs.extend(self._adult_networks(cfg.n_adult_networks))
        orgs.extend(self._clean_orgs(cfg.n_clean_orgs))
        return orgs

    # -- archetype builders -----------------------------------------------
    def _hyperscalers(self, count: int) -> List[Organization]:
        out = []
        for index in range(count):
            out.append(
                self._make(
                    kind=OrgKind.HYPERSCALER,
                    index=index,
                    legal_country="US",
                    deployment=DeploymentProfile.GLOBAL_DENSE,
                    policy=SelectionPolicy.NEAREST,
                    cloud=None,
                )
            )
        return out

    def _middle_tier(self, kind: OrgKind, count: int) -> List[Organization]:
        """RTB middle tier: mixed seats, hub deployments, mixed policies."""
        out = []
        for index in range(count):
            seat_roll = self._rng.random()
            if seat_roll < 0.62:
                legal = "US"
                deployment = (
                    DeploymentProfile.EU_HUBS
                    if self._rng.random() < 0.90
                    else DeploymentProfile.US_ONLY
                )
            else:
                legal = self._pick(EU_TRACKER_HOME_WEIGHTS)
                deployment = (
                    DeploymentProfile.EU_HUBS
                    if self._rng.random() < 0.6
                    else DeploymentProfile.REGIONAL
                )
            policy = (
                SelectionPolicy.NEAREST
                if self._rng.random() < 0.35
                else SelectionPolicy.WEIGHTED
            )
            out.append(
                self._make(
                    kind=kind,
                    index=index,
                    legal_country=legal,
                    deployment=deployment,
                    policy=policy,
                    cloud=self._maybe_cloud(0.45),
                )
            )
        return out

    #: relative market-weight scale of long-tail trackers per home region
    #: — calibrates the N. America / Rest-of-Europe / Asia leakage slices
    #: of Fig. 7(b).
    _TRACKER_WEIGHT_SCALE = {"EU": 2.0, "US": 0.8, "RESTEU": 9.0, "ASIA": 0.5}

    @staticmethod
    def _proportional_quota(weights: Dict[str, float], count: int) -> List[str]:
        """Allocate ``count`` slots proportionally to ``weights``.

        Uses largest-remainder rounding, so every country with a
        non-negligible weight is guaranteed representation once the
        population is large enough — the national ad-tech scenes of the
        smaller panel countries must exist for Fig. 8's small-country
        confinements to be non-zero.
        """
        total = sum(weights.values())
        shares = {
            country: count * weight / total
            for country, weight in weights.items()
        }
        allocation = {country: int(share) for country, share in shares.items()}
        remaining = count - sum(allocation.values())
        by_remainder = sorted(
            shares, key=lambda c: (-(shares[c] - allocation[c]), c)
        )
        for country in by_remainder[:remaining]:
            allocation[country] += 1
        out: List[str] = []
        for country in sorted(allocation):
            out.extend([country] * allocation[country])
        return out

    def _trackers(self, region: str, count: int) -> List[Organization]:
        eu_homes = (
            self._proportional_quota(EU_TRACKER_HOME_WEIGHTS, count)
            if region == "EU"
            else []
        )
        out = []
        for index in range(count):
            if region == "EU":
                legal = eu_homes[index]
                deployment = (
                    DeploymentProfile.HOME_ONLY
                    if self._rng.random() < 0.75
                    else DeploymentProfile.REGIONAL
                )
            elif region == "US":
                legal = "US"
                # Many US trackers keep a European replica (typically
                # Amsterdam) even though they serve everyone from home --
                # the replica is what DNS redirection could use (Table 5).
                deployment = (
                    DeploymentProfile.REGIONAL
                    if self._rng.random() < 0.45
                    else DeploymentProfile.US_ONLY
                )
            elif region == "RESTEU":
                legal = self._pick(RESTEU_HOME_WEIGHTS)
                deployment = (
                    DeploymentProfile.REGIONAL
                    if self._rng.random() < 0.6
                    else DeploymentProfile.HOME_ONLY
                )
            elif region == "ASIA":
                legal = self._pick(ASIA_HOME_WEIGHTS)
                deployment = (
                    DeploymentProfile.REGIONAL
                    if self._rng.random() < 0.35
                    else DeploymentProfile.HOME_ONLY
                )
            else:
                raise ConfigError(f"unknown tracker region {region!r}")
            out.append(
                self._make(
                    kind=OrgKind.TRACKER,
                    index=index,
                    name_suffix=region.lower(),
                    legal_country=legal,
                    deployment=deployment,
                    policy=SelectionPolicy.HOME,
                    cloud=self._maybe_cloud(0.25),
                    weight_scale=self._TRACKER_WEIGHT_SCALE[region],
                )
            )
        return out

    def _adult_networks(self, count: int) -> List[Organization]:
        out = []
        for index in range(count):
            # Adult ad networks are US/offshore seated and mostly US-served;
            # a minority operate an NL hub.
            us_served = self._rng.random() < 0.72
            out.append(
                self._make(
                    kind=OrgKind.ADULT_NETWORK,
                    index=index,
                    legal_country="US",
                    deployment=(
                        DeploymentProfile.US_ONLY
                        if us_served
                        else DeploymentProfile.EU_HUBS
                    ),
                    policy=SelectionPolicy.HOME
                    if us_served
                    else SelectionPolicy.WEIGHTED,
                    cloud=self._maybe_cloud(0.2),
                )
            )
        return out

    def _clean_orgs(self, count: int) -> List[Organization]:
        out = []
        for index in range(count):
            seat_roll = self._rng.random()
            if seat_roll < 0.5:
                legal = "US"
                deployment = (
                    DeploymentProfile.GLOBAL_DENSE
                    if self._rng.random() < 0.25
                    else DeploymentProfile.EU_HUBS
                )
            else:
                legal = self._pick(EU_TRACKER_HOME_WEIGHTS)
                deployment = DeploymentProfile.REGIONAL
            out.append(
                self._make(
                    kind=OrgKind.CLEAN,
                    index=index,
                    legal_country=legal,
                    deployment=deployment,
                    policy=SelectionPolicy.NEAREST,
                    cloud=self._maybe_cloud(0.3),
                )
            )
        return out

    # -- helpers ---------------------------------------------------------
    def _maybe_cloud(self, probability: float) -> Optional[str]:
        if self._rng.random() >= probability:
            return None
        return self._pick(CLOUD_TENANCY_WEIGHTS)

    def _pick(self, weights: Dict[str, float]) -> str:
        keys = sorted(weights)
        return weighted_choice(self._rng, keys, [weights[k] for k in keys])

    def _domain_names(self, kind: OrgKind, base: str) -> Tuple[str, ...]:
        low, high = _KIND_DOMAINS[kind]
        count = self._rng.randint(low, high)
        names: List[str] = []
        for index in range(count):
            tld = _TLDS[self._rng.randrange(len(_TLDS))]
            if index == 0:
                candidate = f"{base}.{tld}"
            else:
                qualifier = self._rng.choice(
                    ("ads", "sync", "data", "pix", "serv", "tag", "cdn")
                )
                candidate = f"{base}-{qualifier}.{tld}"
            while candidate in self._used_domains:
                candidate = f"{base}{self._rng.randrange(10)}.{tld}"
            self._used_domains.add(candidate)
            names.append(candidate)
        return tuple(names)

    def _make(
        self,
        kind: OrgKind,
        index: int,
        legal_country: str,
        deployment: DeploymentProfile,
        policy: SelectionPolicy,
        cloud: Optional[str],
        name_suffix: str = "",
        weight_scale: float = 1.0,
    ) -> Organization:
        stem = _NAME_STEMS[kind]
        suffix = f"-{name_suffix}" if name_suffix else ""
        name = f"{stem}{suffix}-{index:03d}"
        weight = _KIND_WEIGHT[kind] * weight_scale * self._rng.uniform(0.5, 1.5)
        return Organization(
            name=name,
            kind=kind,
            legal_country=legal_country,
            deployment=deployment,
            market_weight=weight,
            dns_policy=policy,
            cloud_provider=cloud,
            domains=self._domain_names(kind, name.replace("_", "-")),
        )
