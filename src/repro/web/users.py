"""Panel users: the 350 CrowdFlower participants (Sect. 3.1).

Each :class:`PanelUser` has a country (drawn from the paper's recruitment
skew: EU28-heavy with a large South-American secondary base), a location
jittered around the country centroid, an activity weight, a
home-country browsing bias, and a resolver choice — desktop users use
third-party public resolvers with non-trivial probability, which is one
of the drivers of cross-border DNS mapping.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.config import PanelConfig
from repro.errors import ConfigError
from repro.geodata.countries import CountryRegistry
from repro.util.rng import RngStreams, weighted_choice

#: how non-EU28 panel regions decompose into countries
REGION_COUNTRY_WEIGHTS: Dict[str, Dict[str, float]] = {
    "SA": {"BR": 0.55, "AR": 0.20, "CL": 0.10, "CO": 0.10, "PE": 0.05},
    "REST_EU": {"CH": 0.30, "RU": 0.30, "RS": 0.12, "UA": 0.13, "NO": 0.08,
                "TR": 0.07},
    "AF": {"ZA": 0.35, "EG": 0.20, "NG": 0.18, "KE": 0.12, "TN": 0.08,
           "MA": 0.07},
    "AS": {"JP": 0.22, "SG": 0.14, "IN": 0.22, "MY": 0.14, "TH": 0.10,
           "TW": 0.10, "HK": 0.08},
    "NA": {"US": 0.70, "CA": 0.20, "MX": 0.10},
    "OC": {"AU": 0.8, "NZ": 0.2},
}


@dataclass(frozen=True)
class PanelUser:
    """One browser-extension panel participant."""

    user_id: int
    country: str
    lat: float
    lon: float
    activity: float
    uses_public_resolver: bool
    #: index into the public-resolver list when ``uses_public_resolver``
    public_resolver_index: int
    #: whether the public resolver forwards EDNS-Client-Subnet for this
    #: user's queries (authorities then see the user's country anyway)
    resolver_ecs: bool
    #: probability a visit goes to a home-country publisher
    home_bias: float
    #: appetite for sensitive-topic sites relative to the average user
    sensitive_affinity: float


def build_panel(
    config: PanelConfig,
    registry: CountryRegistry,
    streams: RngStreams,
    n_public_resolvers: int = 3,
) -> List[PanelUser]:
    """Create the user panel described by ``config``, deterministically."""
    rng = streams.get("panel")
    users: List[PanelUser] = []
    user_id = 0

    def add_user(country_code: str) -> None:
        nonlocal user_id
        country = registry.get(country_code)
        radius = country.jitter_radius_deg
        users.append(
            PanelUser(
                user_id=user_id,
                country=country_code,
                lat=country.lat + rng.uniform(-radius, radius),
                lon=country.lon + rng.uniform(-1.3 * radius, 1.3 * radius),
                activity=max(0.15, rng.lognormvariate(0.0, 0.5)),
                uses_public_resolver=rng.random()
                < config.public_resolver_share,
                public_resolver_index=rng.randrange(n_public_resolvers),
                resolver_ecs=rng.random() < 0.75,
                home_bias=rng.uniform(0.45, 0.8),
                sensitive_affinity=max(0.1, rng.lognormvariate(0.0, 0.6)),
            )
        )
        user_id += 1

    for country_code, count in sorted(config.eu28_user_counts.items()):
        for _ in range(count):
            add_user(country_code)

    for region, total in sorted(config.users_per_region.items()):
        if region == "EU28":
            continue
        weights = REGION_COUNTRY_WEIGHTS.get(region)
        if weights is None:
            raise ConfigError(f"unknown panel region {region!r}")
        codes = sorted(weights)
        for _ in range(total):
            add_user(
                weighted_choice(rng, codes, [weights[c] for c in codes])
            )

    return users


def users_by_country(users: Sequence[PanelUser]) -> Dict[str, List[PanelUser]]:
    """Group users per country code."""
    out: Dict[str, List[PanelUser]] = {}
    for user in users:
        out.setdefault(user.country, []).append(user)
    return out
