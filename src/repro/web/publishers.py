"""Publisher websites and their embedded third parties.

A :class:`Publisher` is a first-party site: it has a country, a Zipf
popularity rank, a set of content topics (possibly including one of the
twelve GDPR-sensitive categories of Sect. 6), and stable partnerships —
which SSP / ad-network FQDNs own its ad slots, which analytics tags it
embeds, and which clean widgets (chat, comments, fonts) it loads.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.config import EcosystemConfig
from repro.errors import ConfigError
from repro.util.rng import (
    RngStreams,
    WeightedSampler,
    weighted_choice,
    zipf_weights,
)
from repro.web.deployment import DeployedFqdn, Fleet
from repro.web.organizations import OrgKind, ServiceRole

#: the twelve sensitive categories of Fig. 9, with calibration weights
#: shaping their share of sensitive tracking flows (health 38%,
#: gambling 22%, sexual orientation ≈ pregnancy ≈ 11%, ...).
SENSITIVE_CATEGORIES: Dict[str, float] = {
    "health": 0.22,
    "gambling": 0.21,
    "sexual orientation": 0.15,
    "pregnancy": 0.20,
    "politics": 0.10,
    "porn": 0.07,
    "religion": 0.02,
    "ethnicity": 0.015,
    "guns": 0.008,
    "alcohol": 0.012,
    "cancer": 0.01,
    "death": 0.005,
}

#: sensitive sites live in the popularity tail: they hold ~19% of the
#: domain population but only a few percent of the visits (the paper
#: finds 2.89% of tracking flows on sensitive sites).
SENSITIVE_POPULARITY_FACTOR = 0.35

#: the benign AdWords-style interest topic each sensitive category tends
#: to be tagged as by an automated tagger (Sect. 6.1's masking problem):
#: ``None`` means the tagger emits the sensitive term itself.
SENSITIVE_TOPIC_MASK: Dict[str, Optional[str]] = {
    "health": None,
    "gambling": "Games",
    "sexual orientation": "Lifestyle",
    "pregnancy": "Health",
    "politics": "News",
    "porn": "Men's Interests",
    "religion": None,
    "ethnicity": "Culture",
    "guns": "Hobbies & Leisure",
    "alcohol": "Food & Drinks",
    "cancer": "Health",
    "death": "Health",
}

GENERAL_TOPICS = (
    "News", "Sports", "Technology", "Travel", "Food & Drinks", "Finance",
    "Shopping", "Entertainment", "Science", "Autos", "Real Estate",
    "Education", "Music", "Movies", "Games", "Lifestyle", "Business",
    "Weather", "Books", "Photography",
)

#: publisher-country mix: heavy on the panel's EU countries, with a
#: global tail (users also browse foreign sites).
PUBLISHER_COUNTRY_WEIGHTS: Dict[str, float] = {
    "US": 0.24, "ES": 0.10, "GB": 0.09, "DE": 0.08, "FR": 0.05,
    "IT": 0.05, "NL": 0.03, "PL": 0.03, "GR": 0.03, "RO": 0.02,
    "DK": 0.02, "BE": 0.02, "CY": 0.01, "HU": 0.015, "PT": 0.01,
    "CZ": 0.01, "SE": 0.015, "BR": 0.06, "AR": 0.02, "RU": 0.02,
    "CH": 0.01, "JP": 0.02, "IN": 0.02, "CA": 0.02, "ZA": 0.01,
    "AU": 0.01, "MX": 0.01, "SG": 0.005, "TR": 0.005,
}


@dataclass(frozen=True)
class Publisher:
    """A first-party website."""

    domain: str
    country: str
    popularity: float
    topics: Tuple[str, ...]
    sensitive_category: Optional[str]
    #: FQDNs of the SSP / ad-network partners owning the ad slots
    ad_partners: Tuple[str, ...]
    #: analytics-tag FQDNs embedded on every page
    analytics_partners: Tuple[str, ...]
    #: clean widget FQDNs (chat, comments, fonts, ...)
    clean_partners: Tuple[str, ...]

    @property
    def is_sensitive(self) -> bool:
        return self.sensitive_category is not None


class PublisherFactory:
    """Generates the publisher population against a deployed fleet."""

    def __init__(
        self,
        config: EcosystemConfig,
        fleet: Fleet,
        streams: RngStreams,
    ) -> None:
        self._config = config
        self._fleet = fleet
        self._rng = streams.get("publishers")
        self._prepare_partner_pools()

    def _prepare_partner_pools(self) -> None:
        fleet = self._fleet

        def initial_ad_fqdns(kinds: Sequence[OrgKind]) -> List[DeployedFqdn]:
            out = []
            for deployed in fleet.fqdns_by_role(ServiceRole.AD_SERVING):
                if fleet.org(deployed.org_name).kind in kinds:
                    out.append(deployed)
            return out

        self._mainstream_ads = initial_ad_fqdns(
            (OrgKind.HYPERSCALER, OrgKind.SSP, OrgKind.AD_EXCHANGE)
        )
        self._adult_ads = initial_ad_fqdns((OrgKind.ADULT_NETWORK,))
        self._analytics = [
            d
            for d in fleet.fqdns_by_role(ServiceRole.ANALYTICS_TAG)
            if fleet.org(d.org_name).kind
            in (OrgKind.ANALYTICS, OrgKind.HYPERSCALER)
        ]
        self._clean = fleet.fqdns_by_role(ServiceRole.CLEAN_WIDGET)
        if not self._mainstream_ads or not self._analytics or not self._clean:
            raise ConfigError(
                "fleet lacks ad / analytics / clean FQDNs for publishers"
            )
        if not self._adult_ads:
            # Tiny worlds may have no adult networks; fall back gracefully.
            self._adult_ads = self._mainstream_ads

        def sampler(pool: Sequence[DeployedFqdn]) -> WeightedSampler:
            return WeightedSampler(
                pool, [fleet.org(d.org_name).market_weight for d in pool]
            )

        self._mainstream_sampler = sampler(self._mainstream_ads)
        self._adult_sampler = sampler(self._adult_ads)
        self._analytics_sampler = sampler(self._analytics)

    def _pick_partners(
        self, sampler: WeightedSampler, pool_size: int, count: int
    ) -> Tuple[str, ...]:
        """Draw ``count`` distinct partner FQDNs, market-share weighted."""
        count = min(count, pool_size)
        chosen: List[str] = []
        attempts = 0
        while len(chosen) < count and attempts < 20 * count:
            candidate = sampler.sample(self._rng).fqdn
            attempts += 1
            if candidate not in chosen:
                chosen.append(candidate)
        return tuple(chosen)

    # -- public API ---------------------------------------------------------
    def build(self) -> List[Publisher]:
        count = self._config.n_publishers
        popularity = zipf_weights(count, exponent=0.85)
        self._sensitive_popularity_cap = popularity[
            min(count - 1, max(0, count // 5))
        ]
        sensitive_count = round(count * self._config.sensitive_publisher_share)
        # Deterministically choose which ranks are sensitive: spread over
        # the popularity range, skewed to mid-tail (sensitive sites are
        # rarely the global top sites).
        sensitive_ranks = set(
            self._rng.sample(range(count // 20, count), k=sensitive_count)
            if count >= 40
            else range(sensitive_count)
        )
        categories = self._category_sequence(sensitive_count)
        publishers: List[Publisher] = []
        category_cursor = 0
        for rank in range(count):
            sensitive: Optional[str] = None
            if rank in sensitive_ranks:
                sensitive = categories[category_cursor]
                category_cursor += 1
            publishers.append(
                self._make_publisher(rank, popularity[rank], sensitive)
            )
        return publishers

    # -- internals -----------------------------------------------------
    def _category_sequence(self, count: int) -> List[str]:
        names = sorted(SENSITIVE_CATEGORIES)
        weights = [SENSITIVE_CATEGORIES[n] for n in names]
        return [
            weighted_choice(self._rng, names, weights) for _ in range(count)
        ]

    def _make_publisher(
        self, rank: int, popularity: float, sensitive: Optional[str]
    ) -> Publisher:
        rng = self._rng
        if sensitive is not None:
            # Cap at a deep-tail popularity before scaling so that no
            # single sensitive site dominates its category's flow share.
            popularity = min(popularity, self._sensitive_popularity_cap)
            popularity *= SENSITIVE_POPULARITY_FACTOR
        countries = sorted(PUBLISHER_COUNTRY_WEIGHTS)
        country = weighted_choice(
            rng, countries, [PUBLISHER_COUNTRY_WEIGHTS[c] for c in countries]
        )
        stem = sensitive.replace(" ", "") if sensitive else rng.choice(
            ("news", "blog", "shop", "portal", "mag", "daily", "hub", "zone")
        )
        domain = f"{stem}-site-{rank:05d}.example"
        topics = self._topics_for(sensitive)
        if sensitive == "porn":
            ad_sampler, ad_pool_size = self._adult_sampler, len(self._adult_ads)
        else:
            ad_sampler, ad_pool_size = (
                self._mainstream_sampler,
                len(self._mainstream_ads),
            )
        ad_partners = self._pick_partners(
            ad_sampler, ad_pool_size, rng.randint(1, 3)
        )
        analytics_partners = self._pick_partners(
            self._analytics_sampler, len(self._analytics), rng.randint(1, 3)
        )
        n_clean = rng.randint(1, min(4, len(self._clean)))
        clean_partners = tuple(
            d.fqdn for d in rng.sample(self._clean, n_clean)
        )
        return Publisher(
            domain=domain,
            country=country,
            popularity=popularity,
            topics=topics,
            sensitive_category=sensitive,
            ad_partners=ad_partners,
            analytics_partners=analytics_partners,
            clean_partners=clean_partners,
        )

    def _topics_for(self, sensitive: Optional[str]) -> Tuple[str, ...]:
        """AdWords-style interest topics (5-15 per domain, Sect. 6.1).

        Sensitive sites get either their sensitive term (when the
        tagger does not mask it) or the benign masking topic; the
        sensitive pipeline's manual-review stage exists to recover the
        masked ones.
        """
        rng = self._rng
        count = rng.randint(5, 15)
        topics = list(
            rng.sample(GENERAL_TOPICS, min(count, len(GENERAL_TOPICS)))
        )
        if sensitive is not None:
            mask = SENSITIVE_TOPIC_MASK[sensitive]
            # Even maskable categories slip through the tagger sometimes.
            if mask is None or rng.random() < 0.35:
                topics.insert(0, sensitive)
            else:
                topics.insert(0, mask)
        return tuple(topics[:15])
