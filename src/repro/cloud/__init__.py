"""Public-cloud provider catalog: the nine providers the paper's
localization what-if analysis considers (Sect. 5.2), with country-level
PoP footprints and published IP ranges."""

from repro.cloud.providers import CloudCatalog, CloudProvider, default_providers

__all__ = ["CloudProvider", "CloudCatalog", "default_providers"]
