"""The nine public cloud providers of the localization study (Sect. 5.2).

Each provider advertises (i) the countries where it operates datacenters
and (ii) its IP ranges — exactly the two facts the paper collects from
the providers' public websites.  The footprints below are synthetic but
calibrated to reproduce Table 6's shape: the union of the nine footprints
covers every EU28 country *except Cyprus* (and a few micro-states), and
coverage density tracks IT-infrastructure development, so small countries
such as Denmark, Greece and Romania gain dramatically from full cloud
migration while Cyprus gains nothing.

Provider prefixes are carved out of the world's address plan at build
time by :class:`CloudCatalog`; tenants (tracking organizations renting
cloud servers) draw addresses from these pools, which is what makes
"is this IP in a published cloud range" queries meaningful.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.errors import ConfigError
from repro.netbase.addr import IPAddress, Prefix
from repro.netbase.allocator import AddressPlan, PrefixRecord


@dataclass(frozen=True)
class CloudProvider:
    """A public cloud: identity, legal seat, and PoP countries."""

    name: str
    display_name: str
    legal_country: str
    pop_countries: Tuple[str, ...]

    def __post_init__(self) -> None:
        if not self.pop_countries:
            raise ConfigError(f"cloud {self.name} has no PoPs")
        if len(set(self.pop_countries)) != len(self.pop_countries):
            raise ConfigError(f"cloud {self.name} lists duplicate PoPs")

    def has_pop(self, country: str) -> bool:
        return country in self.pop_countries


def default_providers() -> List[CloudProvider]:
    """The nine-provider catalog used throughout the reproduction."""
    return [
        CloudProvider(
            "aws", "Amazon AWS", "US",
            ("US", "CA", "IE", "DE", "GB", "FR", "SE", "IT", "JP", "SG",
             "AU", "BR", "IN"),
        ),
        CloudProvider(
            "azure", "Microsoft Azure", "US",
            ("US", "CA", "IE", "NL", "DE", "GB", "FR", "AT", "JP", "SG",
             "AU", "BR", "ZA"),
        ),
        CloudProvider(
            "google-cloud", "Google Cloud", "US",
            ("US", "NL", "BE", "DE", "GB", "FI", "JP", "SG", "AU", "BR",
             "TW"),
        ),
        CloudProvider(
            "ibm-cloud", "IBM Cloud", "US",
            ("US", "DE", "GB", "NL", "IT", "JP", "AU", "IN"),
        ),
        CloudProvider(
            "cloudflare", "CloudFlare", "US",
            ("US", "CA", "GB", "DE", "NL", "FR", "ES", "IT", "PL", "RO",
             "GR", "DK", "CZ", "PT", "AT", "SE", "FI", "HU", "BG", "IE",
             "BE", "LT", "LV", "EE", "HR", "SK", "SI", "LU", "CH", "RU",
             "JP", "SG", "HK", "BR", "ZA", "AU", "IN", "KR"),
        ),
        CloudProvider(
            "digital-ocean", "Digital Ocean", "US",
            ("US", "NL", "DE", "GB", "SG", "IN", "CA"),
        ),
        CloudProvider(
            "equinix", "Equinix", "US",
            ("US", "GB", "DE", "NL", "FR", "IT", "ES", "PL", "SE", "FI",
             "CH", "JP", "SG", "AU", "BR", "AT", "DK"),
        ),
        CloudProvider(
            "oracle-cloud", "Oracle Cloud", "US",
            ("US", "GB", "DE", "JP", "CA"),
        ),
        CloudProvider(
            "rackspace", "Rackspace", "US",
            ("US", "GB", "DE", "HK", "AU"),
        ),
    ]


class CloudCatalog:
    """Registered cloud providers plus their allocated address pools."""

    def __init__(self, providers: Optional[Iterable[CloudProvider]] = None) -> None:
        self._providers: Dict[str, CloudProvider] = {}
        for provider in providers if providers is not None else default_providers():
            if provider.name in self._providers:
                raise ConfigError(f"duplicate cloud provider {provider.name}")
            self._providers[provider.name] = provider
        self._pools: Dict[Tuple[str, str], PrefixRecord] = {}
        self._plan: Optional[AddressPlan] = None

    # -- catalog queries ---------------------------------------------------
    def __len__(self) -> int:
        return len(self._providers)

    def names(self) -> List[str]:
        return sorted(self._providers)

    def get(self, name: str) -> CloudProvider:
        try:
            return self._providers[name]
        except KeyError:
            raise ConfigError(f"unknown cloud provider {name!r}") from None

    def providers(self) -> List[CloudProvider]:
        return [self._providers[name] for name in self.names()]

    def union_pop_countries(self) -> Set[str]:
        """Countries covered by at least one provider (Table 6 migration)."""
        out: Set[str] = set()
        for provider in self._providers.values():
            out.update(provider.pop_countries)
        return out

    def providers_in(self, country: str) -> List[CloudProvider]:
        return [p for p in self.providers() if p.has_pop(country)]

    # -- address ranges ----------------------------------------------------
    def attach_plan(self, plan: AddressPlan) -> None:
        """Carve each provider's per-country pools out of ``plan``."""
        self._plan = plan
        for provider in self.providers():
            for country in provider.pop_countries:
                record = plan.create_pool(
                    country=country,
                    kind="cloud",
                    owner=provider.name,
                    length=20,
                )
                self._pools[(provider.name, country)] = record

    def pool_record(self, provider: str, country: str) -> PrefixRecord:
        try:
            return self._pools[(provider, country)]
        except KeyError:
            raise ConfigError(
                f"cloud {provider} has no pool in {country} "
                "(no PoP, or attach_plan not called)"
            ) from None

    def allocate_address(self, provider: str, country: str) -> IPAddress:
        """Allocate a tenant server address in a provider's country pool."""
        if self._plan is None:
            raise ConfigError("attach_plan must be called before allocation")
        record = self.pool_record(provider, country)
        return self._plan.pool(record.prefix).allocate_address()

    def published_ranges(self, provider: str) -> List[Prefix]:
        """The provider's published IP ranges (all its country pools)."""
        self.get(provider)
        return sorted(
            record.prefix
            for (name, _), record in self._pools.items()
            if name == provider
        )

    def provider_of_ip(self, address: IPAddress) -> Optional[CloudProvider]:
        """Which provider's published range covers ``address``, if any."""
        if self._plan is None:
            return None
        record = self._plan.lookup(address)
        if record is None or record.kind != "cloud":
            return None
        return self._providers.get(record.owner)
