"""Per-run provenance manifests.

A manifest is one JSON document answering, for a finished pipeline run:
*what configuration ran, under which code, over which shards, producing
how many records, with what cache behaviour, drawing from which seeds.*
It is the auditable hand-off artifact between a run and whoever reads
its numbers — written atomically (temp file + ``os.replace``) next to
the cache artifacts it describes, and again wherever ``--trace`` points.

This module owns the **schema** (:data:`MANIFEST_SCHEMA`), the
**validator** (:func:`validate_manifest`, used by tests and the
``make trace-smoke`` CI gate) and the **atomic writer/loader**.  The
*assembly* of a manifest from a live run belongs to the runtime layer
(:mod:`repro.runtime.provenance`), which knows the stage graph; this
module stays import-free of it.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, Mapping, Union

from repro.errors import ObservabilityError
from repro.obs.persist import atomic_write_json

#: schema identifier stamped into (and required of) every manifest
MANIFEST_SCHEMA = "repro.obs/manifest/v1"

#: required top-level fields and their types
_TOP_FIELDS: Dict[str, type] = {
    "schema": str,
    "config": dict,
    "workers": int,
    "salts": dict,
    "stages": list,
    "metrics": dict,
    "spans": list,
    "seed_lineage": dict,
}

#: required per-stage fields and their types
_STAGE_FIELDS: Dict[str, Any] = {
    "stage": str,
    "shards": int,
    "cache_hits": int,
    "cache_misses": int,
    "wall_s": (int, float),
    "records_in": dict,
    "records_out": dict,
    "shard_keys": list,
}

PathLike = Union[str, "os.PathLike[str]"]


def validate_manifest(payload: Mapping[str, Any]) -> None:
    """Check a manifest against the v1 schema; raise on any violation.

    Extra keys are allowed everywhere (the schema is open for forward
    compatibility); missing or mistyped required keys are not.
    """
    if not isinstance(payload, Mapping):
        raise ObservabilityError(
            f"manifest must be a mapping, got {type(payload).__name__}"
        )
    for key, expected in sorted(_TOP_FIELDS.items()):
        if key not in payload:
            raise ObservabilityError(f"manifest is missing {key!r}")
        if not isinstance(payload[key], expected):
            raise ObservabilityError(
                f"manifest field {key!r} must be {expected.__name__}, "
                f"got {type(payload[key]).__name__}"
            )
    if payload["schema"] != MANIFEST_SCHEMA:
        raise ObservabilityError(
            f"unsupported manifest schema {payload['schema']!r} "
            f"(expected {MANIFEST_SCHEMA!r})"
        )
    config = payload["config"]
    for key in ("digest", "seed"):
        if key not in config:
            raise ObservabilityError(f"manifest config is missing {key!r}")
    lineage = payload["seed_lineage"]
    if "seed" not in lineage or "streams" not in lineage:
        raise ObservabilityError(
            "manifest seed_lineage must carry 'seed' and 'streams'"
        )
    for position, stage in enumerate(payload["stages"]):
        if not isinstance(stage, Mapping):
            raise ObservabilityError(
                f"manifest stage #{position} must be a mapping"
            )
        for key, expected in sorted(_STAGE_FIELDS.items()):
            if key not in stage:
                raise ObservabilityError(
                    f"manifest stage #{position} is missing {key!r}"
                )
            if not isinstance(stage[key], expected):
                name = getattr(expected, "__name__", "number")
                raise ObservabilityError(
                    f"manifest stage #{position} field {key!r} must be "
                    f"{name}, got {type(stage[key]).__name__}"
                )
        if stage["cache_hits"] + stage["cache_misses"] != stage["shards"]:
            raise ObservabilityError(
                f"manifest stage {stage['stage']!r}: hits + misses "
                f"({stage['cache_hits']} + {stage['cache_misses']}) "
                f"!= shards ({stage['shards']})"
            )


def write_manifest(payload: Mapping[str, Any], path: PathLike) -> None:
    """Validate ``payload`` and write it atomically as JSON.

    The write goes through a ``.tmp.<pid>`` sibling and ``os.replace``
    (:func:`repro.obs.persist.atomic_write_json`), mirroring the
    artifact cache's discipline: a crashed run can never leave a
    truncated manifest where a complete one is expected.
    """
    validate_manifest(payload)
    atomic_write_json(payload, path)


def load_manifest(path: PathLike) -> Dict[str, Any]:
    """Load and validate a manifest written by :func:`write_manifest`."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except (OSError, ValueError) as exc:
        raise ObservabilityError(
            f"cannot read manifest {os.fspath(path)!r}: {exc}"
        ) from exc
    validate_manifest(payload)
    return payload
