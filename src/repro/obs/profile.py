"""Zero-dependency sampling profiler with mergeable collapsed stacks.

The span tracer answers "which stage was slow"; this module answers
"which *function* inside it".  A :class:`SamplingProfiler` walks
``sys._current_frames()`` from a daemon thread at a configurable rate
and folds every observed call stack into a :class:`Profile` — a flat
``{stack: microseconds}`` table whose :meth:`Profile.merge` is exact,
commutative and associative, mirroring the
:class:`~repro.obs.metrics.MetricsRegistry` fold discipline.  That is
what lets shard workers profile themselves independently and ship their
profiles home in the cache envelope: the engine folds them in canonical
plan order and the merged profile is invariant to worker count and to
completion order, and a warm replay reports the cold run's profile.

Both the frame source and the clock are injected, so tests drive the
sampler off hand-built frame objects and a
:class:`~repro.obs.clock.TickClock` and get byte-identical profiles.

Two export formats:

* **collapsed stacks** (:func:`collapsed_text`) — the classic
  one-line-per-stack ``frame;frame;frame weight`` text that every
  flamegraph tool ingests; weights are integer microseconds;
* **speedscope JSON** (:func:`speedscope_document`, schema marker
  :data:`PROFILE_SCHEMA`) — load the file at https://www.speedscope.app
  for an interactive flame view.  :func:`decode_speedscope` inverts the
  encoder exactly.

The ledger fold (:func:`report_gauges`) turns a per-stage profile
report into ``profile.self_s{func=...,stage=...}`` gauges — top-K hot
functions per stage plus an always-present ``func=_total`` row, so
budget envelopes on profiles are deterministic even when the hot set
shifts.  The diff engine classifies every ``profile.*`` delta as
*timing*, never drift.
"""

from __future__ import annotations

import json
import os
import sys
import threading
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from repro.errors import ObservabilityError
from repro.obs.clock import NullClock, SystemClock
from repro.obs.metrics import metric_key
from repro.obs.names import PROFILE_SELF_S
from repro.obs.persist import atomic_write_json

#: schema marker stamped into every speedscope export ("exporter" field)
PROFILE_SCHEMA = "repro.obs/profile/v1"

#: schema of the per-stage profile report the runtime assembles
PROFILE_REPORT_SCHEMA = "repro.obs/profile-report/v1"

#: the speedscope file-format schema URL viewers key on
SPEEDSCOPE_SCHEMA_URL = "https://www.speedscope.app/file-format-schema.json"

#: default sampling rate; a prime, so the sampler cannot phase-lock
#: onto periodic work and systematically miss (or always hit) it
DEFAULT_HZ = 97.0

#: frames deeper than this are truncated — runaway recursion must not
#: turn one sample into an unbounded stack tuple
MAX_STACK_DEPTH = 128

#: hot functions folded into the ledger per stage (plus ``_total``)
TOP_FUNCTIONS = 5

#: one frame: (function name, shortened file path, first line number)
Frame = Tuple[str, str, int]

#: a frame source: ``{thread_id: outermost frame}``, the shape of
#: ``sys._current_frames()``
FrameSource = Callable[[], Mapping[int, Any]]


def shorten_path(path: str) -> str:
    """A stable, machine-independent rendering of a source path.

    Paths inside the repo collapse to their ``repro/...`` suffix
    (``/root/repo/src/repro/core/kernels.py`` →
    ``repro/core/kernels.py``); everything else keeps its last two
    components, so stdlib frames stay recognizable without leaking
    absolute install prefixes into profiles.
    """
    parts = [part for part in path.replace("\\", "/").split("/") if part]
    if "repro" in parts:
        last = len(parts) - 1 - parts[::-1].index("repro")
        return "/".join(parts[last:])
    return "/".join(parts[-2:]) if parts else path


def frame_label(frame: Frame) -> str:
    """The ``func`` label value of one frame: ``file:name``."""
    name, path, _line = frame
    return f"{path}:{name}"


def walk_stack(frame: Any, limit: int = MAX_STACK_DEPTH) -> Tuple[Frame, ...]:
    """One thread's call stack as frames, outermost (root) first.

    ``frame`` is the *innermost* frame (what ``sys._current_frames()``
    yields); only ``f_code.co_name`` / ``co_filename`` /
    ``co_firstlineno`` and ``f_back`` are touched, so tests can pass
    hand-built stand-ins.
    """
    stack: List[Frame] = []
    while frame is not None and len(stack) < limit:
        code = frame.f_code
        stack.append((
            code.co_name,
            shorten_path(code.co_filename),
            int(code.co_firstlineno),
        ))
        frame = frame.f_back
    stack.reverse()
    return tuple(stack)


class Profile:
    """Folded stack samples: ``{stack: integer microseconds}``.

    Weights are integer microseconds on purpose — integer addition is
    exactly commutative *and* associative, so any merge order over any
    partition of the samples produces the same profile, the property
    the worker-fan-out fold relies on (float seconds would drift under
    re-association).
    """

    def __init__(self) -> None:
        self._weights: Dict[Tuple[Frame, ...], int] = {}

    def __len__(self) -> int:
        return len(self._weights)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Profile):
            return NotImplemented
        return self._weights == other._weights

    def add_stack(
        self, frames: Sequence[Frame], weight_us: int
    ) -> None:
        """Fold one observed stack (root first) in with ``weight_us``."""
        if weight_us < 0:
            raise ObservabilityError(
                f"stack weight must be >= 0 microseconds, got {weight_us}"
            )
        if not frames:
            return
        key = tuple(
            (str(name), str(path), int(line)) for name, path, line in frames
        )
        self._weights[key] = self._weights.get(key, 0) + int(weight_us)

    def merge(self, other: "Profile") -> "Profile":
        """Fold another profile in; exact, commutative, associative."""
        for stack, weight in other._weights.items():
            self._weights[stack] = self._weights.get(stack, 0) + weight
        return self

    @property
    def weight_us(self) -> int:
        """Total sampled weight in microseconds."""
        return sum(self._weights.values())

    @property
    def seconds(self) -> float:
        """Total sampled weight in seconds."""
        return self.weight_us / 1e6

    def stacks(self) -> List[Tuple[Tuple[Frame, ...], int]]:
        """``(stack, weight_us)`` pairs in canonical (sorted) order."""
        return sorted(self._weights.items())

    # -- serialization ---------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """JSON-able snapshot (the cache-envelope form)."""
        return {
            "schema": PROFILE_SCHEMA,
            "stacks": [
                {
                    "frames": [list(frame) for frame in stack],
                    "weight_us": weight,
                }
                for stack, weight in self.stacks()
            ],
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "Profile":
        """Rebuild a profile from a :meth:`to_dict` snapshot."""
        if payload.get("schema") != PROFILE_SCHEMA:
            raise ObservabilityError(
                f"profile snapshot carries schema "
                f"{payload.get('schema')!r} (expected {PROFILE_SCHEMA!r})"
            )
        stacks = payload.get("stacks")
        if not isinstance(stacks, list):
            raise ObservabilityError("profile snapshot carries no 'stacks'")
        profile = cls()
        for entry in stacks:
            frames = entry.get("frames") if isinstance(entry, Mapping) else None
            weight = entry.get("weight_us") if isinstance(entry, Mapping) else None
            if not isinstance(frames, list) or not isinstance(weight, int):
                raise ObservabilityError(
                    f"malformed profile stack entry: {entry!r:.120}"
                )
            profile.add_stack(
                [tuple(frame) for frame in frames], weight
            )
        return profile

    # -- aggregation -----------------------------------------------------
    def self_us(self) -> Dict[Frame, int]:
        """Per-function *self* time: weight of stacks it leads (µs)."""
        totals: Dict[Frame, int] = {}
        for stack, weight in self._weights.items():
            leaf = stack[-1]
            totals[leaf] = totals.get(leaf, 0) + weight
        return totals

    def total_us(self) -> Dict[Frame, int]:
        """Per-function *total* time: weight of stacks containing it."""
        totals: Dict[Frame, int] = {}
        for stack, weight in self._weights.items():
            for frame in sorted(set(stack)):
                totals[frame] = totals.get(frame, 0) + weight
        return totals

    def function_table(
        self, top: Optional[int] = None
    ) -> List[Dict[str, Any]]:
        """Per-function rows sorted by self time (descending).

        Each row carries ``func`` (the ``file:name`` label), ``line``,
        ``self_s``, ``total_s`` and ``share`` (self time as a fraction
        of the whole profile).
        """
        total_weight = self.weight_us
        totals = self.total_us()
        rows = [
            {
                "func": frame_label(frame),
                "line": frame[2],
                "self_s": weight / 1e6,
                "total_s": totals[frame] / 1e6,
                "share": weight / total_weight if total_weight else 0.0,
            }
            for frame, weight in self.self_us().items()
        ]
        rows.sort(key=lambda row: (-row["self_s"], row["func"]))
        return rows[:top] if top is not None else rows

    def render_table(self, top: int = 10) -> str:
        """A fixed-width top-N self-time table for terminal output."""
        rows = self.function_table(top=top)
        if not rows:
            return "(no samples recorded)"
        lines = [f"{'function':<56} {'self':>9} {'total':>9} {'share':>6}"]
        for row in rows:
            lines.append(
                f"{row['func']:<56} {row['self_s']:>8.3f}s "
                f"{row['total_s']:>8.3f}s {100.0 * row['share']:>5.1f}%"
            )
        return "\n".join(lines)

    def render_flame(self) -> str:
        """A text flame view: the stack tree, hottest branches first."""
        if not self._weights:
            return "(no samples recorded)"
        root: Dict[Frame, Any] = {}
        for stack, weight in self._weights.items():
            node = root
            for frame in stack:
                entry = node.setdefault(frame, {"weight": 0, "children": {}})
                entry["weight"] += weight
                node = entry["children"]
        total = self.weight_us
        lines: List[str] = []

        def render(node: Dict[Frame, Any], depth: int) -> None:
            ordered = sorted(
                node.items(), key=lambda item: (-item[1]["weight"], item[0])
            )
            for frame, entry in ordered:
                label = "  " * depth + frame_label(frame)
                share = 100.0 * entry["weight"] / total if total else 0.0
                lines.append(
                    f"{label:<64} {entry['weight'] / 1e6:>8.3f}s "
                    f"{share:>5.1f}%"
                )
                render(entry["children"], depth + 1)

        render(root, 0)
        return "\n".join(lines)


class SamplingProfiler:
    """Samples thread stacks from an injected frame source.

    ``start()`` launches a daemon thread that samples every
    ``1/hz`` seconds (excluding itself) until ``stop()``;
    ``sample_for(seconds)`` samples synchronously on the calling
    thread (the serve layer's executor-offload path);
    ``sample_once()`` takes exactly one sample — the deterministic-test
    entry point.  Every sample folds each thread's stack into
    :attr:`profile` with the sampling period as its weight, so the
    profile's total weight approximates wall time spent per stack.
    """

    def __init__(
        self,
        hz: float = DEFAULT_HZ,
        frame_source: Optional[FrameSource] = None,
        clock: Optional[NullClock] = None,
    ) -> None:
        if not hz > 0:
            raise ObservabilityError(f"sampling hz must be > 0, got {hz}")
        self.hz = float(hz)
        self.period_us = max(1, int(round(1e6 / self.hz)))
        self._frame_source: FrameSource = (
            frame_source if frame_source is not None else sys._current_frames
        )
        self.clock = clock if clock is not None else SystemClock()
        self.profile = Profile()
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    def sample_once(self, exclude: Iterable[int] = ()) -> int:
        """Take one sample of every thread not in ``exclude``.

        Threads are visited in sorted id order so a multi-thread sample
        folds deterministically; returns the number of stacks folded.
        """
        excluded = frozenset(exclude)
        folded = 0
        for thread_id, frame in sorted(self._frame_source().items()):
            if thread_id in excluded:
                continue
            stack = walk_stack(frame)
            if not stack:
                continue
            with self._lock:
                self.profile.add_stack(stack, self.period_us)
            folded += 1
        return folded

    def start(self) -> None:
        """Launch the daemon sampler thread."""
        if self._thread is not None:
            raise ObservabilityError("profiler is already running")
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="repro-profiler", daemon=True
        )
        self._thread.start()

    def _run(self) -> None:
        me = threading.get_ident()
        # Event.wait doubles as the sampling sleep AND the stop signal,
        # so stop() never waits longer than one period.
        while not self._stop.wait(self.period_us / 1e6):
            self.sample_once(exclude=(me,))

    def stop(self) -> Profile:
        """Stop the sampler thread (if running); returns a snapshot."""
        thread, self._thread = self._thread, None
        if thread is not None:
            self._stop.set()
            thread.join()
        return self.snapshot()

    def sample_for(self, seconds: float) -> Profile:
        """Sample synchronously for ``seconds`` on the calling thread.

        The calling thread excludes itself (its stack is just this
        loop); the injected clock decides when the deadline passes, so
        tests with a :class:`~repro.obs.clock.TickClock` take an exact,
        deterministic number of samples.
        """
        if not seconds > 0:
            raise ObservabilityError(
                f"sampling duration must be > 0 seconds, got {seconds}"
            )
        me = threading.get_ident()
        deadline = self.clock.wall() + seconds
        while self.clock.wall() < deadline:
            self.sample_once(exclude=(me,))
            if self._stop.wait(self.period_us / 1e6):
                break
        return self.snapshot()

    def snapshot(self) -> Profile:
        """A consistent copy of the profile collected so far."""
        with self._lock:
            return Profile().merge(self.profile)


# -- collapsed-stack text ----------------------------------------------------

def collapsed_text(profile: Profile) -> str:
    """The profile as classic collapsed stacks, one line per stack.

    Frames render as ``file:name`` joined by ``;``; the trailing field
    is the stack's integer weight in microseconds.  Lines are sorted,
    so equal profiles serialize identically.
    """
    lines = []
    for stack, weight in profile.stacks():
        frames = ";".join(frame_label(frame) for frame in stack)
        lines.append(f"{frames} {weight}")
    return "\n".join(lines) + ("\n" if lines else "")


def validate_collapsed(text: str) -> None:
    """Check collapsed-stack text: every non-blank line must be
    ``frame(;frame)* <non-negative integer>``."""
    if not isinstance(text, str):
        raise ObservabilityError(
            f"collapsed stacks must be text, got {type(text).__name__}"
        )
    for number, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        frames, _, weight = line.rpartition(" ")
        if not frames or not weight.isdigit():
            raise ObservabilityError(
                f"collapsed line {number} needs 'stack weight', "
                f"got {line!r:.120}"
            )
        if any(not part for part in frames.split(";")):
            raise ObservabilityError(
                f"collapsed line {number} has an empty frame: {line!r:.120}"
            )


def parse_collapsed(text: str) -> Profile:
    """Invert :func:`collapsed_text` (weights read as microseconds).

    Frame line numbers are not representable in the collapsed format
    and parse back as ``0``.
    """
    validate_collapsed(text)
    profile = Profile()
    for line in text.splitlines():
        if not line.strip():
            continue
        frames, _, weight = line.rpartition(" ")
        stack = []
        for part in frames.split(";"):
            path, _, name = part.rpartition(":")
            stack.append((name, path, 0))
        profile.add_stack(stack, int(weight))
    return profile


# -- speedscope JSON ---------------------------------------------------------

def speedscope_document(
    profile: Profile, name: str = "repro profile"
) -> Dict[str, Any]:
    """The profile as a speedscope *sampled* profile document.

    Frames land in ``shared.frames`` sorted; each stack becomes one
    sample (a root-first frame-index list) with its weight in seconds.
    The document validates against :func:`validate_speedscope` by
    construction and decodes back exactly via :func:`decode_speedscope`
    (weights are microsecond-exact).
    """
    frames = sorted({
        frame for stack, _ in profile.stacks() for frame in stack
    })
    index = {frame: position for position, frame in enumerate(frames)}
    samples = []
    weights = []
    for stack, weight in profile.stacks():
        samples.append([index[frame] for frame in stack])
        weights.append(weight / 1e6)
    return {
        "$schema": SPEEDSCOPE_SCHEMA_URL,
        "exporter": PROFILE_SCHEMA,
        "name": name,
        "activeProfileIndex": 0,
        "shared": {
            "frames": [
                {"name": frame[0], "file": frame[1], "line": frame[2]}
                for frame in frames
            ],
        },
        "profiles": [
            {
                "type": "sampled",
                "name": name,
                "unit": "seconds",
                "startValue": 0,
                "endValue": profile.seconds,
                "samples": samples,
                "weights": weights,
            },
        ],
    }


def validate_speedscope(payload: Any) -> None:
    """Check a document against the speedscope sampled-profile format.

    Enforced invariants: the ``$schema`` URL; a ``shared.frames`` list
    of named frames; at least one profile of ``type: "sampled"`` whose
    ``samples`` are lists of in-range frame indices and whose
    ``weights`` list is the same length with non-negative numbers.
    """
    if not isinstance(payload, Mapping):
        raise ObservabilityError(
            f"speedscope document must be an object, "
            f"got {type(payload).__name__}"
        )
    if payload.get("$schema") != SPEEDSCOPE_SCHEMA_URL:
        raise ObservabilityError(
            f"speedscope document carries $schema "
            f"{payload.get('$schema')!r} (expected "
            f"{SPEEDSCOPE_SCHEMA_URL!r})"
        )
    shared = payload.get("shared")
    frames = shared.get("frames") if isinstance(shared, Mapping) else None
    if not isinstance(frames, list):
        raise ObservabilityError(
            "speedscope document carries no 'shared.frames' list"
        )
    for position, frame in enumerate(frames):
        if not isinstance(frame, Mapping) or not isinstance(
            frame.get("name"), str
        ):
            raise ObservabilityError(
                f"speedscope frame #{position} needs a string 'name'"
            )
    profiles = payload.get("profiles")
    if not isinstance(profiles, list) or not profiles:
        raise ObservabilityError(
            "speedscope document carries no 'profiles'"
        )
    for which, entry in enumerate(profiles):
        where = f"speedscope profile #{which}"
        if not isinstance(entry, Mapping):
            raise ObservabilityError(f"{where} must be an object")
        if entry.get("type") != "sampled":
            raise ObservabilityError(
                f"{where} has type {entry.get('type')!r} "
                "(expected 'sampled')"
            )
        samples = entry.get("samples")
        weights = entry.get("weights")
        if not isinstance(samples, list) or not isinstance(weights, list):
            raise ObservabilityError(
                f"{where} needs 'samples' and 'weights' lists"
            )
        if len(samples) != len(weights):
            raise ObservabilityError(
                f"{where} has {len(samples)} samples "
                f"but {len(weights)} weights"
            )
        for position, stack in enumerate(samples):
            if not isinstance(stack, list) or not stack:
                raise ObservabilityError(
                    f"{where} sample #{position} must be a non-empty "
                    "frame-index list"
                )
            for frame_index in stack:
                if (
                    not isinstance(frame_index, int)
                    or isinstance(frame_index, bool)
                    or not 0 <= frame_index < len(frames)
                ):
                    raise ObservabilityError(
                        f"{where} sample #{position} references "
                        f"frame {frame_index!r} outside shared.frames"
                    )
        for position, weight in enumerate(weights):
            if (
                not isinstance(weight, (int, float))
                or isinstance(weight, bool)
                or weight < 0
            ):
                raise ObservabilityError(
                    f"{where} weight #{position} must be a "
                    f"non-negative number, got {weight!r}"
                )


def decode_speedscope(payload: Mapping[str, Any]) -> Profile:
    """Rebuild a :class:`Profile` from a validated speedscope document.

    Every ``sampled`` profile in the document folds in (they merge
    commutatively), so a multi-profile export decodes to the union.
    """
    validate_speedscope(payload)
    frames = payload["shared"]["frames"]
    profile = Profile()
    for entry in payload["profiles"]:
        for stack, weight in zip(entry["samples"], entry["weights"]):
            profile.add_stack(
                [
                    (
                        frames[index]["name"],
                        str(frames[index].get("file", "")),
                        int(frames[index].get("line", 0)),
                    )
                    for index in stack
                ],
                int(round(float(weight) * 1e6)),
            )
    return profile


def write_speedscope(
    profile: Profile, path: Any, name: str = "repro profile"
) -> int:
    """Validate and atomically write the speedscope document; returns
    the stack count."""
    document = speedscope_document(profile, name=name)
    validate_speedscope(document)
    atomic_write_json(document, path)
    return len(document["profiles"][0]["samples"])


def load_speedscope(path: Any) -> Profile:
    """Load, validate and decode a speedscope export."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except (OSError, ValueError) as exc:
        raise ObservabilityError(
            f"cannot read speedscope profile {os.fspath(path)!r}: {exc}"
        ) from exc
    return decode_speedscope(payload)


# -- the ledger fold ---------------------------------------------------------

def build_report(
    profiles: Mapping[str, Profile],
    hz: float,
    top: int = TOP_FUNCTIONS,
) -> Dict[str, Any]:
    """The per-stage profile report (:data:`PROFILE_REPORT_SCHEMA`).

    Every stage carries its total sampled seconds and a ``self_s``
    table: the top-``top`` hot functions by self time plus the
    always-present ``_total`` row — the deterministic anchor budget
    envelopes gate on even when the hot set is empty or shifting.
    """
    stages: Dict[str, Any] = {}
    for name in sorted(profiles):
        profile = profiles[name]
        self_s = {"_total": round(profile.seconds, 6)}
        for row in profile.function_table(top=top):
            self_s[row["func"]] = round(row["self_s"], 6)
        stages[name] = {
            "seconds": round(profile.seconds, 6),
            "stacks": len(profile),
            "self_s": self_s,
        }
    return {"schema": PROFILE_REPORT_SCHEMA, "hz": float(hz), "stages": stages}


def report_gauges(report: Mapping[str, Any]) -> Dict[str, Dict[str, Any]]:
    """``profile.self_s{func=...,stage=...}`` gauges from a report.

    The inverse consumer of :func:`build_report`: provenance folds
    these into every profiled run's ledger record, and
    ``scripts/bench_to_ledger.py --profile-report`` folds a standalone
    report the same way — one shared fold, one metric shape.
    """
    if report.get("schema") != PROFILE_REPORT_SCHEMA:
        raise ObservabilityError(
            f"profile report carries schema {report.get('schema')!r} "
            f"(expected {PROFILE_REPORT_SCHEMA!r})"
        )
    stages = report.get("stages")
    if not isinstance(stages, Mapping):
        raise ObservabilityError("profile report carries no 'stages'")
    gauges: Dict[str, Dict[str, Any]] = {}
    for stage in sorted(stages):
        self_s = stages[stage].get("self_s")
        if not isinstance(self_s, Mapping) or "_total" not in self_s:
            raise ObservabilityError(
                f"profile report stage {stage!r} carries no 'self_s' "
                "table with a '_total' row"
            )
        for func in sorted(self_s):
            value = self_s[func]
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                raise ObservabilityError(
                    f"profile report stage {stage!r} function {func!r} "
                    "carries no numeric self time"
                )
            key = metric_key(PROFILE_SELF_S, {"stage": stage, "func": func})
            gauges[key] = {"kind": "gauge", "value": float(value)}
    return gauges
