"""Standard-format trace export: span trees as Chrome trace events.

The text flamegraph (:meth:`~repro.obs.trace.Tracer.report`) is fine in
a terminal, but the ecosystem's trace viewers — ``chrome://tracing``
and `Perfetto <https://ui.perfetto.dev>`_ — speak the Chrome
trace-event JSON format.  This module converts a recorded span tree
into that format so a run can be inspected interactively:
``repro run --trace-events out.json`` then *Open trace file* in
Perfetto.

Every span becomes one **complete event** (``"ph": "X"``): a name, a
category (the prefix before ``:`` in the span name), a start timestamp
``ts`` and duration ``dur`` in integer microseconds.  A span that
carries its own pid/tid stamp (a worker span grafted back into the
parent trace) lands on *that* track; unstamped spans land on the
caller's default track — so a fanned-out run renders with one process
lane per worker, and when more than one pid appears the exporter emits
``process_name`` metadata events naming each lane.  Events are emitted
sorted by ``ts``, and :func:`validate_trace_events` checks
non-decreasing timestamps **per (pid, tid) track** alongside B/E
begin/end matching for documents produced by other tools.

Wall-clock origins are rebased to the earliest span start, so exported
timestamps are small, stable offsets rather than epoch seconds.

This module also owns the Prometheus **text exposition** of a metrics
registry snapshot (:func:`prometheus_text`) — the ``GET /metrics``
scrape format of the serve layer.
"""

from __future__ import annotations

import json
import os
import re
from typing import Any, Dict, List, Mapping, Sequence, Tuple, Union

from repro.errors import ObservabilityError
from repro.obs.names import METRICS
from repro.obs.persist import atomic_write_json
from repro.obs.trace import Span

#: schema marker embedded in the exported document's otherData
TRACE_EVENTS_SCHEMA = "repro.obs/trace-events/v1"

#: trace-event phases the validator accepts
_PHASES = ("X", "B", "E", "I", "M")

PathLike = Union[str, "os.PathLike[str]"]


def _category(name: str) -> str:
    """The span-name prefix before ``:``, or the name itself."""
    colon = name.find(":")
    return name if colon < 0 else name[:colon]


def trace_events(
    spans: Sequence[Span], pid: int = 1, tid: int = 1
) -> List[Dict[str, Any]]:
    """One complete (``X``) trace event per span, sorted by ``ts``.

    ``pid``/``tid`` are the *default* track for spans without their own
    stamp; a span carrying :attr:`~repro.obs.trace.Span.pid` (a grafted
    worker span) keeps its real process/thread identity, so fan-out
    renders as distinct lanes.  When more than one pid appears, leading
    ``process_name`` metadata events label each lane.
    """
    if not spans:
        return []
    origin = min(span.wall_start for span in spans)
    events: List[Dict[str, Any]] = []
    pids: List[int] = []
    for span in spans:
        if span.wall_end < span.wall_start:
            raise ObservabilityError(
                f"span {span.name!r} closes before it opens "
                f"({span.wall_end} < {span.wall_start}); "
                "was the tracer's clock monotonic?"
            )
        args: Dict[str, Any] = dict(sorted(span.attrs.items()))
        args["depth"] = span.depth
        args["cpu_ms"] = round(span.cpu_s * 1000.0, 3)
        span_pid = span.pid if span.pid is not None else pid
        span_tid = span.tid if span.tid is not None else tid
        if span_pid not in pids:
            pids.append(span_pid)
        events.append({
            "name": span.name,
            "cat": _category(span.name),
            "ph": "X",
            "ts": int(round((span.wall_start - origin) * 1e6)),
            "dur": int(round(span.wall_s * 1e6)),
            "pid": span_pid,
            "tid": span_tid,
            "args": args,
        })
    # Grafted worker spans land in the list after their stage's sibling
    # spans but carry earlier timestamps; viewers want (and the
    # validator checks) per-track ts order, so sort globally by ts.
    events.sort(key=lambda event: event["ts"])
    if len(pids) > 1:
        metadata = [
            {
                "name": "process_name",
                "ph": "M",
                "pid": track_pid,
                "args": {
                    "name": (
                        "engine" if track_pid == pid
                        else f"worker {track_pid}"
                    ),
                },
            }
            for track_pid in pids
        ]
        events = metadata + events
    return events


def trace_document(
    spans: Sequence[Span], pid: int = 1, tid: int = 1
) -> Dict[str, Any]:
    """The full JSON-object-format trace document for a span tree."""
    return {
        "traceEvents": trace_events(spans, pid=pid, tid=tid),
        "displayTimeUnit": "ms",
        "otherData": {"schema": TRACE_EVENTS_SCHEMA},
    }


def write_trace_events(
    spans: Sequence[Span], path: PathLike, pid: int = 1, tid: int = 1
) -> int:
    """Validate and atomically write the trace document; returns the
    event count."""
    document = trace_document(spans, pid=pid, tid=tid)
    validate_trace_events(document)
    atomic_write_json(document, path)
    return len(document["traceEvents"])


def load_trace_events(path: PathLike) -> Dict[str, Any]:
    """Load and validate a trace document written by
    :func:`write_trace_events` (or any Chrome-trace-format producer)."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except (OSError, ValueError) as exc:
        raise ObservabilityError(
            f"cannot read trace events {os.fspath(path)!r}: {exc}"
        ) from exc
    validate_trace_events(payload)
    return payload


def validate_trace_events(payload: Any) -> None:
    """Check a document against the Chrome trace-event format.

    Enforced invariants: the JSON-object form with a ``traceEvents``
    list; every event a mapping with ``ph``/``ts``; non-decreasing
    ``ts`` in emission order **per (pid, tid) track** (tracks from
    different processes interleave freely); non-negative integer
    ``ts``/``dur``; complete (``X``) events carry ``dur``; ``B``/``E``
    events balance per track with matching names.
    """
    if isinstance(payload, list):
        events = payload  # the array form is also legal Chrome trace
    elif isinstance(payload, Mapping):
        events = payload.get("traceEvents")
        if not isinstance(events, list):
            raise ObservabilityError(
                "trace document carries no 'traceEvents' list"
            )
    else:
        raise ObservabilityError(
            f"trace document must be an object or array, "
            f"got {type(payload).__name__}"
        )
    last_ts: Dict[Any, int] = {}
    open_stacks: Dict[Any, List[str]] = {}
    for position, event in enumerate(events):
        where = f"trace event #{position}"
        if not isinstance(event, Mapping):
            raise ObservabilityError(f"{where} must be a mapping")
        phase = event.get("ph")
        if phase not in _PHASES:
            raise ObservabilityError(
                f"{where} has unsupported phase {phase!r}"
            )
        if phase == "M":
            continue  # metadata events carry no timestamp contract
        ts = event.get("ts")
        if not isinstance(ts, int) or isinstance(ts, bool) or ts < 0:
            raise ObservabilityError(
                f"{where} needs a non-negative integer 'ts', got {ts!r}"
            )
        track = (event.get("pid"), event.get("tid"))
        if track in last_ts and ts < last_ts[track]:
            raise ObservabilityError(
                f"{where} breaks timestamp ordering on track {track} "
                f"({ts} < {last_ts[track]})"
            )
        last_ts[track] = ts
        if phase == "X":
            duration = event.get("dur")
            if not isinstance(duration, int) or duration < 0:
                raise ObservabilityError(
                    f"{where} is a complete event without a "
                    f"non-negative integer 'dur' (got {duration!r})"
                )
        elif phase == "B":
            open_stacks.setdefault(track, []).append(
                str(event.get("name", ""))
            )
        elif phase == "E":
            stack = open_stacks.get(track, [])
            if not stack:
                raise ObservabilityError(
                    f"{where}: 'E' event with no open 'B' on track {track}"
                )
            opened = stack.pop()
            name = event.get("name")
            if name is not None and str(name) != opened:
                raise ObservabilityError(
                    f"{where}: 'E' event name {name!r} does not match "
                    f"open 'B' event {opened!r}"
                )
    unbalanced = {
        str(track): stack for track, stack in open_stacks.items() if stack
    }
    if unbalanced:
        raise ObservabilityError(
            f"unbalanced 'B' events at end of trace: {unbalanced}"
        )


# -- Prometheus text exposition ----------------------------------------------

#: the Content-Type of the Prometheus text format, version 0.0.4
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4"

#: characters legal in a Prometheus metric name
_PROM_NAME_ILLEGAL = re.compile(r"[^a-zA-Z0-9_:]")


def _prom_name(name: str) -> str:
    """A dotted registry name as a Prometheus metric name."""
    sanitized = _PROM_NAME_ILLEGAL.sub("_", name)
    if not sanitized or sanitized[0].isdigit():
        sanitized = "_" + sanitized
    return sanitized


def _prom_value(value: Any) -> str:
    return repr(float(value))


def _prom_escape(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _prom_labels(labels: Mapping[str, str]) -> str:
    if not labels:
        return ""
    rendered = ",".join(
        f'{label}="{_prom_escape(str(labels[label]))}"'
        for label in sorted(labels)
    )
    return "{" + rendered + "}"


def _split_key(key: str) -> Tuple[str, Dict[str, str]]:
    """A canonical registry key back into (name, labels).

    Inverts :func:`repro.obs.metrics.metric_key`: the suffix between
    the first ``{`` and the final ``}`` splits on ``,`` then on the
    first ``=`` — registry label values never contain commas (the
    catalog's label vocabulary is stage names, routes, function labels
    and the like), which is what keeps the canonical key parseable.
    """
    brace = key.find("{")
    if brace < 0:
        return key, {}
    name = key[:brace]
    labels: Dict[str, str] = {}
    for part in key[brace + 1:-1].split(","):
        label, _, value = part.partition("=")
        labels[label] = value
    return name, labels


def prometheus_text(snapshot: Mapping[str, Mapping[str, Any]]) -> str:
    """A registry snapshot in the Prometheus text exposition format.

    ``snapshot`` is a :meth:`~repro.obs.metrics.MetricsRegistry.to_dict`
    document.  Counters and gauges render as single samples; histograms
    expand into cumulative ``_bucket{le=...}`` series (with the
    mandatory ``le="+Inf"`` bucket) plus ``_sum`` and ``_count``.
    ``# TYPE`` is emitted once per metric name, and metrics declared in
    the catalog (:mod:`repro.obs.names`) carry their description as
    ``# HELP``.
    """
    lines: List[str] = []
    typed: set = set()
    for key in sorted(snapshot):
        entry = snapshot[key]
        kind = entry.get("kind")
        value = entry.get("value")
        name, labels = _split_key(key)
        prom = _prom_name(name)
        if prom not in typed:
            typed.add(prom)
            declared = METRICS.get(name)
            if declared is not None:
                lines.append(f"# HELP {prom} {declared[2]}")
            prom_type = {
                "counter": "counter", "gauge": "gauge",
                "histogram": "histogram",
            }.get(kind)
            if prom_type is None:
                raise ObservabilityError(
                    f"metric {key!r} has unknown kind {kind!r}"
                )
            lines.append(f"# TYPE {prom} {prom_type}")
        if kind in ("counter", "gauge"):
            lines.append(f"{prom}{_prom_labels(labels)} {_prom_value(value)}")
            continue
        if not isinstance(value, Mapping):
            raise ObservabilityError(
                f"histogram {key!r} carries no snapshot mapping"
            )
        cumulative = 0
        for bound, count in zip(value["bounds"], value["counts"]):
            cumulative += count
            bucket = dict(labels)
            bucket["le"] = _prom_value(bound)
            lines.append(
                f"{prom}_bucket{_prom_labels(bucket)} {_prom_value(cumulative)}"
            )
        bucket = dict(labels)
        bucket["le"] = "+Inf"
        lines.append(
            f"{prom}_bucket{_prom_labels(bucket)} "
            f"{_prom_value(value['count'])}"
        )
        lines.append(
            f"{prom}_sum{_prom_labels(labels)} {_prom_value(value['total'])}"
        )
        lines.append(
            f"{prom}_count{_prom_labels(labels)} {_prom_value(value['count'])}"
        )
    return "\n".join(lines) + ("\n" if lines else "")


def parse_prometheus_text(text: str) -> Dict[str, float]:
    """Samples of a Prometheus text exposition, keyed by series.

    Keys are the literal ``name{label="value",...}`` series strings;
    comment (``#``) and blank lines are skipped.  This is the minimal
    parser the round-trip tests (and scrape debugging) need — exotic
    escapes beyond the ones :func:`prometheus_text` emits are not
    handled.
    """
    samples: Dict[str, float] = {}
    for number, line in enumerate(text.splitlines(), start=1):
        stripped = line.strip()
        if not stripped or stripped.startswith("#"):
            continue
        series, _, value = stripped.rpartition(" ")
        if not series:
            raise ObservabilityError(
                f"prometheus line {number} needs 'series value', "
                f"got {line!r:.120}"
            )
        try:
            samples[series] = float(value)
        except ValueError as exc:
            raise ObservabilityError(
                f"prometheus line {number} carries a non-numeric "
                f"value {value!r}"
            ) from exc
    return samples
