"""Standard-format trace export: span trees as Chrome trace events.

The text flamegraph (:meth:`~repro.obs.trace.Tracer.report`) is fine in
a terminal, but the ecosystem's trace viewers — ``chrome://tracing``
and `Perfetto <https://ui.perfetto.dev>`_ — speak the Chrome
trace-event JSON format.  This module converts a recorded span tree
into that format so a run can be inspected interactively:
``repro run --trace-events out.json`` then *Open trace file* in
Perfetto.

Every span becomes one **complete event** (``"ph": "X"``): a name, a
category (the prefix before ``:`` in the span name), a start timestamp
``ts`` and duration ``dur`` in integer microseconds, on one
pid/tid track.  Spans are recorded in opening order, so the emitted
``ts`` sequence is non-decreasing — the property
:func:`validate_trace_events` checks, alongside B/E begin/end matching
for documents produced by other tools.

Wall-clock origins are rebased to the first span's start, so exported
timestamps are small, stable offsets rather than epoch seconds.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, List, Mapping, Sequence, Union

from repro.errors import ObservabilityError
from repro.obs.persist import atomic_write_json
from repro.obs.trace import Span

#: schema marker embedded in the exported document's otherData
TRACE_EVENTS_SCHEMA = "repro.obs/trace-events/v1"

#: trace-event phases the validator accepts
_PHASES = ("X", "B", "E", "I", "M")

PathLike = Union[str, "os.PathLike[str]"]


def _category(name: str) -> str:
    """The span-name prefix before ``:``, or the name itself."""
    colon = name.find(":")
    return name if colon < 0 else name[:colon]


def trace_events(
    spans: Sequence[Span], pid: int = 1, tid: int = 1
) -> List[Dict[str, Any]]:
    """One complete (``X``) trace event per span, in opening order."""
    if not spans:
        return []
    origin = spans[0].wall_start
    events: List[Dict[str, Any]] = []
    for span in spans:
        if span.wall_end < span.wall_start:
            raise ObservabilityError(
                f"span {span.name!r} closes before it opens "
                f"({span.wall_end} < {span.wall_start}); "
                "was the tracer's clock monotonic?"
            )
        args: Dict[str, Any] = dict(sorted(span.attrs.items()))
        args["depth"] = span.depth
        args["cpu_ms"] = round(span.cpu_s * 1000.0, 3)
        events.append({
            "name": span.name,
            "cat": _category(span.name),
            "ph": "X",
            "ts": int(round((span.wall_start - origin) * 1e6)),
            "dur": int(round(span.wall_s * 1e6)),
            "pid": pid,
            "tid": tid,
            "args": args,
        })
    return events


def trace_document(
    spans: Sequence[Span], pid: int = 1, tid: int = 1
) -> Dict[str, Any]:
    """The full JSON-object-format trace document for a span tree."""
    return {
        "traceEvents": trace_events(spans, pid=pid, tid=tid),
        "displayTimeUnit": "ms",
        "otherData": {"schema": TRACE_EVENTS_SCHEMA},
    }


def write_trace_events(
    spans: Sequence[Span], path: PathLike, pid: int = 1, tid: int = 1
) -> int:
    """Validate and atomically write the trace document; returns the
    event count."""
    document = trace_document(spans, pid=pid, tid=tid)
    validate_trace_events(document)
    atomic_write_json(document, path)
    return len(document["traceEvents"])


def load_trace_events(path: PathLike) -> Dict[str, Any]:
    """Load and validate a trace document written by
    :func:`write_trace_events` (or any Chrome-trace-format producer)."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except (OSError, ValueError) as exc:
        raise ObservabilityError(
            f"cannot read trace events {os.fspath(path)!r}: {exc}"
        ) from exc
    validate_trace_events(payload)
    return payload


def validate_trace_events(payload: Any) -> None:
    """Check a document against the Chrome trace-event format.

    Enforced invariants: the JSON-object form with a ``traceEvents``
    list; every event a mapping with ``ph``/``ts``; non-decreasing
    ``ts`` in emission order; non-negative integer ``ts``/``dur``;
    complete (``X``) events carry ``dur``; ``B``/``E`` events balance
    per ``(pid, tid)`` with matching names.
    """
    if isinstance(payload, list):
        events = payload  # the array form is also legal Chrome trace
    elif isinstance(payload, Mapping):
        events = payload.get("traceEvents")
        if not isinstance(events, list):
            raise ObservabilityError(
                "trace document carries no 'traceEvents' list"
            )
    else:
        raise ObservabilityError(
            f"trace document must be an object or array, "
            f"got {type(payload).__name__}"
        )
    last_ts = None
    open_stacks: Dict[Any, List[str]] = {}
    for position, event in enumerate(events):
        where = f"trace event #{position}"
        if not isinstance(event, Mapping):
            raise ObservabilityError(f"{where} must be a mapping")
        phase = event.get("ph")
        if phase not in _PHASES:
            raise ObservabilityError(
                f"{where} has unsupported phase {phase!r}"
            )
        if phase == "M":
            continue  # metadata events carry no timestamp contract
        ts = event.get("ts")
        if not isinstance(ts, int) or isinstance(ts, bool) or ts < 0:
            raise ObservabilityError(
                f"{where} needs a non-negative integer 'ts', got {ts!r}"
            )
        if last_ts is not None and ts < last_ts:
            raise ObservabilityError(
                f"{where} breaks timestamp ordering ({ts} < {last_ts})"
            )
        last_ts = ts
        track = (event.get("pid"), event.get("tid"))
        if phase == "X":
            duration = event.get("dur")
            if not isinstance(duration, int) or duration < 0:
                raise ObservabilityError(
                    f"{where} is a complete event without a "
                    f"non-negative integer 'dur' (got {duration!r})"
                )
        elif phase == "B":
            open_stacks.setdefault(track, []).append(
                str(event.get("name", ""))
            )
        elif phase == "E":
            stack = open_stacks.get(track, [])
            if not stack:
                raise ObservabilityError(
                    f"{where}: 'E' event with no open 'B' on track {track}"
                )
            opened = stack.pop()
            name = event.get("name")
            if name is not None and str(name) != opened:
                raise ObservabilityError(
                    f"{where}: 'E' event name {name!r} does not match "
                    f"open 'B' event {opened!r}"
                )
    unbalanced = {
        str(track): stack for track, stack in open_stacks.items() if stack
    }
    if unbalanced:
        raise ObservabilityError(
            f"unbalanced 'B' events at end of trace: {unbalanced}"
        )
