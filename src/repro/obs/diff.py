"""Regression diffing between ledger records, plus budget checking.

Two runs of the pipeline disagree on a metric for exactly one of three
reasons, and the diff engine names which:

* **config-driven** — the runs executed different configs (different
  ``config.digest``): every delta is expected and attributed to the
  config change;
* **code-driven** — the configs agree but some stage **footprint
  salts** (PR 4's module-closure digests) changed between the records:
  a delta is attributed to the owning stage(s) whose *effective* salt
  changed, with the footprint-changed stages listed as the cause;
* **unexplained drift** — same config, same salts, different value:
  the red flag.  A deterministic pipeline must never produce one; any
  occurrence is a nondeterminism bug (and ``make diff-smoke`` gates CI
  on exactly this being empty).

Cache-behaviour counters (hits/misses/executed/corrupt) legitimately
differ between a cold and a warm run of identical code, so they get
their own ``cache`` class and can never count as drift; ``bench.*``
gauges are wall-time statistics and classify as ``timing``.  Stage
wall/CPU timings are reported separately — timing is never drift.

Metric ownership comes from the records themselves: each run record's
stage entries list the metric keys its shards touched, so attribution
needs no hand-maintained metric→stage table and automatically covers
future metrics.

The budget checker (:func:`check_budgets`) closes the loop for CI: a
``budgets.json`` document (schema :data:`BUDGETS_SCHEMA`) declares
envelopes for headline metrics and stage wall-times, and
``repro obs check`` fails the build when a record leaves them.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Tuple, Union

from repro.errors import ObservabilityError
from repro.obs.metrics import Histogram, base_name
from repro.obs.names import (
    RUNTIME_CACHE_CORRUPT,
    RUNTIME_CACHE_HITS,
    RUNTIME_CACHE_MISSES,
    RUNTIME_SHARDS_EXECUTED,
)

#: metric base names that vary between cold and warm runs by design
CACHE_VARIABLE_METRICS = frozenset({
    RUNTIME_CACHE_HITS,
    RUNTIME_CACHE_MISSES,
    RUNTIME_CACHE_CORRUPT,
    RUNTIME_SHARDS_EXECUTED,
})

#: metric name prefixes that carry wall-time statistics (never drift) —
#: "pipeline." covers the columnar record path's throughput/RSS gauges,
#: "profile." the sampling profiler's per-stage hot-function gauges
TIMING_METRIC_PREFIXES = ("bench.", "lint.", "pipeline.", "profile.")

#: classification labels, in report order
CLASSIFICATIONS = ("config", "code", "cache", "timing", "drift")


def _stage_label(key: str) -> Optional[str]:
    """The ``stage=...`` label value of a metric key, if it has one."""
    brace = key.find("{")
    if brace < 0:
        return None
    for part in key[brace + 1:-1].split(","):
        label, _, value = part.partition("=")
        if label == "stage":
            return value
    return None


@dataclass
class MetricDelta:
    """One metric whose value differs between the two records."""

    key: str
    a: Any
    b: Any
    classification: str
    stages: Tuple[str, ...] = ()
    caused_by: Tuple[str, ...] = ()

    def to_dict(self) -> Dict[str, Any]:
        return {
            "key": self.key,
            "a": self.a,
            "b": self.b,
            "classification": self.classification,
            "stages": list(self.stages),
            "caused_by": list(self.caused_by),
        }


@dataclass
class LedgerDiff:
    """The classified difference between two ledger records."""

    run_a: str
    run_b: str
    digest_a: str
    digest_b: str
    config_changed: bool
    workers_changed: bool
    changed_salts: Tuple[str, ...]
    changed_footprints: Tuple[str, ...]
    changed_lineages: Tuple[str, ...] = ()
    changed_costs: Tuple[str, ...] = ()
    deltas: List[MetricDelta] = field(default_factory=list)
    timings: List[Dict[str, Any]] = field(default_factory=list)
    unchanged: int = 0

    def unexplained(self) -> List[MetricDelta]:
        """The drift deltas — must be empty for a deterministic pipeline."""
        return [d for d in self.deltas if d.classification == "drift"]

    def counts(self) -> Dict[str, int]:
        """Delta count per classification (zero-filled)."""
        counts = {name: 0 for name in CLASSIFICATIONS}
        for delta in self.deltas:
            counts[delta.classification] += 1
        return counts

    def to_dict(self) -> Dict[str, Any]:
        """JSON-able report (what ``repro obs diff --json`` emits)."""
        return {
            "schema": "repro.obs/diff/v1",
            "run_a": self.run_a,
            "run_b": self.run_b,
            "config": {
                "digest_a": self.digest_a,
                "digest_b": self.digest_b,
                "changed": self.config_changed,
            },
            "workers_changed": self.workers_changed,
            "changed_salts": list(self.changed_salts),
            "changed_footprints": list(self.changed_footprints),
            "changed_lineages": list(self.changed_lineages),
            "changed_costs": list(self.changed_costs),
            "counts": self.counts(),
            "deltas": [delta.to_dict() for delta in self.deltas],
            "unexplained": [
                delta.to_dict() for delta in self.unexplained()
            ],
            "timings": list(self.timings),
            "unchanged": self.unchanged,
        }


def _metric_owners(record: Mapping[str, Any]) -> Dict[str, List[str]]:
    """metric key -> stages whose shards touched it, from one record."""
    owners: Dict[str, List[str]] = {}
    for stage in record.get("stages", ()):
        for key in stage.get("metric_keys", ()):
            owners.setdefault(key, []).append(stage["stage"])
    return owners


def _changed_keys(
    a: Mapping[str, Any], b: Mapping[str, Any]
) -> Tuple[str, ...]:
    """Keys present in either mapping whose values differ (or are
    missing on one side)."""
    return tuple(
        key for key in sorted(set(a) | set(b)) if a.get(key) != b.get(key)
    )


def diff_records(
    record_a: Mapping[str, Any], record_b: Mapping[str, Any]
) -> LedgerDiff:
    """Classify every metric delta between two ledger records.

    Both records must share the ledger schema; ``bench`` records diff
    fine (they just have no stages or salts, so any non-timing delta
    would surface as drift).
    """
    digest_a = record_a.get("config", {}).get("digest", "")
    digest_b = record_b.get("config", {}).get("digest", "")
    config_changed = digest_a != digest_b
    workers_changed = record_a.get("workers") != record_b.get("workers")
    changed_salts = _changed_keys(
        record_a.get("salts", {}), record_b.get("salts", {})
    )
    changed_footprints = _changed_keys(
        record_a.get("footprints", {}), record_b.get("footprints", {})
    )
    changed_lineages = _changed_keys(
        record_a.get("rng_lineage", {}), record_b.get("rng_lineage", {})
    )
    changed_costs = _changed_keys(
        record_a.get("cost_footprint", {}),
        record_b.get("cost_footprint", {}),
    )
    # Effective salts fold dependencies, so footprint changes surface in
    # changed_salts too; when footprints were never recorded, attribute
    # causes to the effective-salt changes themselves.  A moved RNG
    # lineage digest names the stages whose seed-derivation structure
    # changed — the sharpest cause a code delta can carry.  A moved cost
    # digest names the stages whose run-path loop structure changed.
    causes = changed_footprints if changed_footprints else changed_salts
    if changed_lineages:
        causes = tuple(sorted(
            set(causes)
            | {f"rng_lineage:{stage}" for stage in changed_lineages}
        ))
    if changed_costs:
        causes = tuple(sorted(
            set(causes) | {f"cost:{stage}" for stage in changed_costs}
        ))

    owners_a = _metric_owners(record_a)
    owners_b = _metric_owners(record_b)
    metrics_a = record_a.get("metrics", {})
    metrics_b = record_b.get("metrics", {})

    diff = LedgerDiff(
        run_a=record_a.get("run_id", "?"),
        run_b=record_b.get("run_id", "?"),
        digest_a=digest_a,
        digest_b=digest_b,
        config_changed=config_changed,
        workers_changed=workers_changed,
        changed_salts=changed_salts,
        changed_footprints=changed_footprints,
        changed_lineages=changed_lineages,
        changed_costs=changed_costs,
    )
    # Stages with code-shape evidence: a moved effective salt, RNG
    # lineage digest, or cost digest.  Any of the three marks the stage
    # as changed code even when the others held still (a loop
    # restructure can move the cost digest without touching seeds).
    changed_salt_set = (
        set(changed_salts) | set(changed_lineages) | set(changed_costs)
    )
    for key in sorted(set(metrics_a) | set(metrics_b)):
        value_a = metrics_a.get(key)
        value_b = metrics_b.get(key)
        if value_a == value_b:
            diff.unchanged += 1
            continue
        base = base_name(key)
        owners = sorted(set(owners_a.get(key, [])) | set(owners_b.get(key, [])))
        stage_label = _stage_label(key)
        if stage_label is not None and base.startswith("runtime."):
            owners = [stage_label]
        if config_changed:
            classification, stages, caused_by = "config", tuple(owners), ()
        elif base in CACHE_VARIABLE_METRICS:
            classification, stages, caused_by = "cache", tuple(owners), ()
        elif base.startswith(TIMING_METRIC_PREFIXES):
            classification, stages, caused_by = "timing", (), ()
        elif changed_salt_set and (
            not owners or changed_salt_set.intersection(owners)
        ):
            # Code change: attribute to the owning stages whose salt
            # moved; a metric with no recorded owner is conservatively
            # attributed to the code change rather than flagged.
            stages = tuple(
                stage for stage in owners if stage in changed_salt_set
            ) or tuple(owners)
            classification, caused_by = "code", tuple(causes)
        else:
            classification, stages, caused_by = "drift", tuple(owners), ()
        diff.deltas.append(MetricDelta(
            key=key,
            a=value_a,
            b=value_b,
            classification=classification,
            stages=stages,
            caused_by=caused_by,
        ))

    stages_a = {s["stage"]: s for s in record_a.get("stages", ())}
    stages_b = {s["stage"]: s for s in record_b.get("stages", ())}
    for name in sorted(set(stages_a) | set(stages_b)):
        entry_a = stages_a.get(name, {})
        entry_b = stages_b.get(name, {})
        wall_a = float(entry_a.get("wall_s", 0.0))
        wall_b = float(entry_b.get("wall_s", 0.0))
        diff.timings.append({
            "stage": name,
            "wall_a_s": wall_a,
            "wall_b_s": wall_b,
            "wall_delta_pct": round(
                100.0 * (wall_b - wall_a) / wall_a, 2
            ) if wall_a > 0 else None,
            "cpu_a_s": float(entry_a.get("cpu_s", 0.0)),
            "cpu_b_s": float(entry_b.get("cpu_s", 0.0)),
        })
    return diff


def _summarize(entry: Any) -> str:
    """A compact rendering of one metric snapshot entry for the text
    report (entries are ``{"kind": ..., "value": ...}``)."""
    if entry is None:
        return "(absent)"
    if isinstance(entry, Mapping):
        value = entry.get("value")
        if isinstance(value, Mapping):  # histogram payload
            return (
                f"hist(n={value.get('count')}, total={value.get('total')})"
            )
        return str(value)
    return str(entry)


def render_diff_text(diff: LedgerDiff) -> str:
    """Human-readable diff report (what ``repro obs diff`` prints)."""
    lines = [f"ledger diff: {diff.run_a} -> {diff.run_b}"]
    if diff.config_changed:
        lines.append(
            f"  config changed: {diff.digest_a[:12]} -> {diff.digest_b[:12]}"
        )
    else:
        lines.append(f"  config unchanged ({diff.digest_a[:12]})")
    if diff.workers_changed:
        lines.append("  workers changed (metrics must still agree)")
    if diff.changed_footprints:
        lines.append(
            "  changed footprints: " + ", ".join(diff.changed_footprints)
        )
    if diff.changed_salts:
        lines.append(
            "  changed effective salts: " + ", ".join(diff.changed_salts)
        )
    if diff.changed_lineages:
        lines.append(
            "  changed RNG lineages: " + ", ".join(diff.changed_lineages)
        )
    if diff.changed_costs:
        lines.append(
            "  changed cost footprints: " + ", ".join(diff.changed_costs)
        )
    counts = diff.counts()
    lines.append(
        "  deltas: " + ", ".join(
            f"{name}={counts[name]}" for name in CLASSIFICATIONS
        ) + f", unchanged={diff.unchanged}"
    )
    for delta in diff.deltas:
        attribution = ""
        if delta.stages:
            attribution = f" [{','.join(delta.stages)}]"
        if delta.caused_by:
            attribution += f" <- {','.join(delta.caused_by)}"
        lines.append(
            f"    {delta.classification:<6} {delta.key}: "
            f"{_summarize(delta.a)} -> {_summarize(delta.b)}{attribution}"
        )
    drift = diff.unexplained()
    if drift:
        lines.append(
            f"  UNEXPLAINED DRIFT in {len(drift)} metric(s) — "
            "same config, same code, different values"
        )
    else:
        lines.append("  no unexplained drift")
    return "\n".join(lines)


# -- budgets -----------------------------------------------------------------

#: schema identifier of a budgets document
BUDGETS_SCHEMA = "repro.obs/budgets/v1"

#: statistics a histogram budget may pin
_HISTOGRAM_STATS = ("count", "mean", "min", "max")


@dataclass
class BudgetViolation:
    """One budget bound a ledger record left."""

    subject: str
    kind: str  # "metric" | "stage_wall_s" | "total_wall_s" | "missing"
    actual: Optional[float]
    bound: str  # "min" | "max"
    limit: float

    def to_dict(self) -> Dict[str, Any]:
        return {
            "subject": self.subject,
            "kind": self.kind,
            "actual": self.actual,
            "bound": self.bound,
            "limit": self.limit,
        }

    def render(self) -> str:
        if self.kind == "missing":
            return f"{self.subject}: required by budget but absent from run"
        op = "<" if self.bound == "min" else ">"
        return (
            f"{self.subject}: {self.actual} {op} {self.bound}={self.limit} "
            f"({self.kind})"
        )


def load_budgets(path: Union[str, "os.PathLike[str]"]) -> Dict[str, Any]:
    """Load and validate a budgets document."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except (OSError, ValueError) as exc:
        raise ObservabilityError(
            f"cannot read budgets {os.fspath(path)!r}: {exc}"
        ) from exc
    if not isinstance(payload, dict):
        raise ObservabilityError("budgets document must be a JSON object")
    if payload.get("schema") != BUDGETS_SCHEMA:
        raise ObservabilityError(
            f"unsupported budgets schema {payload.get('schema')!r} "
            f"(expected {BUDGETS_SCHEMA!r})"
        )
    for section in ("metrics", "stage_wall_s"):
        entries = payload.get(section, {})
        if not isinstance(entries, dict):
            raise ObservabilityError(
                f"budgets section {section!r} must be an object"
            )
        for subject, bounds in sorted(entries.items()):
            _validate_bounds(f"{section}.{subject}", bounds)
    if "total_wall_s" in payload:
        _validate_bounds("total_wall_s", payload["total_wall_s"])
    return payload


def _validate_bounds(subject: str, bounds: Any) -> None:
    if not isinstance(bounds, dict):
        raise ObservabilityError(
            f"budget {subject!r} must be an object with min/max bounds"
        )
    if not ("min" in bounds or "max" in bounds):
        raise ObservabilityError(
            f"budget {subject!r} declares neither 'min' nor 'max'"
        )
    for bound in ("min", "max"):
        if bound in bounds and not isinstance(bounds[bound], (int, float)):
            raise ObservabilityError(
                f"budget {subject!r} bound {bound!r} must be a number"
            )
    stat = bounds.get("stat")
    if stat is not None and not (
        stat in _HISTOGRAM_STATS
        or (stat.startswith("p") and stat[1:].isdigit())
    ):
        raise ObservabilityError(
            f"budget {subject!r} stat {stat!r} is not one of "
            f"{_HISTOGRAM_STATS} or pNN"
        )


def _metric_scalar(entry: Mapping[str, Any], stat: Optional[str]) -> float:
    """One number out of a metric snapshot entry, honoring ``stat``."""
    kind = entry.get("kind")
    value = entry.get("value")
    if kind in ("counter", "gauge"):
        return float(value)
    histogram = Histogram.from_value(value)
    stat = stat or "mean"
    if stat == "count":
        return float(histogram.count)
    if stat == "mean":
        return histogram.mean
    if stat == "min":
        return float(histogram.min if histogram.min is not None else 0.0)
    if stat == "max":
        return float(histogram.max if histogram.max is not None else 0.0)
    return histogram.quantile(int(stat[1:]) / 100.0)


def check_budgets(
    record: Mapping[str, Any], budgets: Mapping[str, Any]
) -> List[BudgetViolation]:
    """Every bound of ``budgets`` that ``record`` violates (empty = pass)."""
    violations: List[BudgetViolation] = []

    def check(subject: str, kind: str, actual: Optional[float],
              bounds: Mapping[str, Any]) -> None:
        if actual is None:
            violations.append(BudgetViolation(
                subject=subject, kind="missing", actual=None,
                bound="min", limit=0.0,
            ))
            return
        if "min" in bounds and actual < bounds["min"]:
            violations.append(BudgetViolation(
                subject=subject, kind=kind, actual=actual,
                bound="min", limit=float(bounds["min"]),
            ))
        if "max" in bounds and actual > bounds["max"]:
            violations.append(BudgetViolation(
                subject=subject, kind=kind, actual=actual,
                bound="max", limit=float(bounds["max"]),
            ))

    metrics = record.get("metrics", {})
    for key, bounds in sorted(budgets.get("metrics", {}).items()):
        entry = metrics.get(key)
        actual = (
            _metric_scalar(entry, bounds.get("stat"))
            if entry is not None else None
        )
        check(key, "metric", actual, bounds)

    stages = {s["stage"]: s for s in record.get("stages", ())}
    for name, bounds in sorted(budgets.get("stage_wall_s", {}).items()):
        entry = stages.get(name)
        actual = float(entry["wall_s"]) if entry is not None else None
        check(f"stage:{name}", "stage_wall_s", actual, bounds)

    if "total_wall_s" in budgets:
        total = sum(float(s.get("wall_s", 0.0)) for s in stages.values())
        check("total", "total_wall_s", total, budgets["total_wall_s"])
    return violations


def render_budget_text(
    record: Mapping[str, Any], violations: List[BudgetViolation]
) -> str:
    """Human-readable budget report (what ``repro obs check`` prints)."""
    run_id = record.get("run_id", "?")
    if not violations:
        return f"budgets OK for run {run_id}"
    lines = [f"budget violations for run {run_id}:"]
    lines.extend(f"  {violation.render()}" for violation in violations)
    return "\n".join(lines)
