"""Crash-safe persistence primitives shared by the obs artifacts.

Manifests, ledgers and trace-event exports all live next to the cache
artifacts they describe, and all follow the same discipline the
artifact cache established: **a reader must never see a half-written
document**.  Two primitives cover every obs writer:

* :func:`atomic_write_json` — whole-document replace through a
  ``.tmp.<pid>`` sibling and ``os.replace``; a crashed writer leaves
  the previous complete document (or nothing), never a truncated one;
* :func:`append_jsonl_line` — append-only journal write: the record is
  serialized first, then written with a *single* ``write`` call on a
  file opened in append mode, so concurrent readers see whole lines.
  (Within a process, concurrent appenders — the serve job pool —
  serialize through the lock in :mod:`repro.obs.ledger`; across
  processes the ledger stays single-writer by design.)

Reading the journal back goes through :func:`read_jsonl_lines`, which
converts any decoding failure into an :class:`ObservabilityError`
carrying the offending **line number**: a truncated tail or a corrupted
middle line is a diagnosable event, never a raw
``json.JSONDecodeError`` escaping to the caller.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, Iterator, List, Mapping, Tuple, Union

from repro.errors import ObservabilityError

PathLike = Union[str, "os.PathLike[str]"]


def atomic_write_json(payload: Mapping[str, Any], path: PathLike) -> None:
    """Write ``payload`` as indented JSON via temp file + ``os.replace``."""
    path = os.fspath(path)
    parent = os.path.dirname(path)
    if parent:
        os.makedirs(parent, exist_ok=True)
    tmp = f"{path}.tmp.{os.getpid()}"
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=1, sort_keys=True)
        handle.write("\n")
    os.replace(tmp, path)


def append_jsonl_line(path: PathLike, payload: Mapping[str, Any]) -> None:
    """Append one JSON record as a single line (one ``write`` call).

    The record is rendered compactly (no internal newlines, sorted
    keys) before the file is even opened, so the append is one
    contiguous line or nothing.
    """
    line = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    path = os.fspath(path)
    parent = os.path.dirname(path)
    if parent:
        os.makedirs(parent, exist_ok=True)
    with open(path, "a", encoding="utf-8") as handle:
        handle.write(line + "\n")
        handle.flush()


def count_jsonl_lines(path: PathLike) -> int:
    """Number of newline-terminated records in a JSONL file (0 if absent)."""
    try:
        with open(path, "rb") as handle:
            return sum(chunk.count(b"\n") for chunk in iter(
                lambda: handle.read(1 << 16), b""
            ))
    except FileNotFoundError:
        return 0


def read_jsonl_lines(path: PathLike) -> Iterator[Tuple[int, Dict[str, Any]]]:
    """Yield ``(line_number, record)`` pairs from a JSONL file.

    Line numbers are 1-based.  Blank lines are skipped; any line that
    fails to decode — including a truncated final line left by a killed
    writer — raises :class:`ObservabilityError` naming the file and the
    line number.  A missing file raises too: callers that want to treat
    absence as empty should test for existence first.
    """
    path = os.fspath(path)
    try:
        handle = open(path, "r", encoding="utf-8")
    except OSError as exc:
        raise ObservabilityError(f"cannot read {path!r}: {exc}") from exc
    with handle:
        for number, line in enumerate(handle, start=1):
            stripped = line.strip()
            if not stripped:
                continue
            try:
                record = json.loads(stripped)
            except ValueError as exc:
                raise ObservabilityError(
                    f"{path!r} line {number}: corrupt JSONL record ({exc})"
                ) from exc
            if not isinstance(record, dict):
                raise ObservabilityError(
                    f"{path!r} line {number}: record must be a JSON "
                    f"object, got {type(record).__name__}"
                )
            yield number, record


def load_jsonl(path: PathLike) -> List[Dict[str, Any]]:
    """All records of a JSONL file, in file order (see
    :func:`read_jsonl_lines` for the error contract)."""
    return [record for _, record in read_jsonl_lines(path)]
