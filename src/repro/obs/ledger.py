"""The run ledger: an append-only history of engine runs.

PR 3's spans/metrics/manifests describe *one* run and evaporate with
the process; the paper's longitudinal claims (Tables 2/5/8, Figure 7
over months of snapshots) need the runs themselves to accumulate.  The
ledger is that accumulation point: a JSONL journal
(``<cache_dir>/ledger.jsonl``, schema :data:`LEDGER_SCHEMA`) where
every ``run_study`` invocation appends one record carrying

* the **config digest** and seed the run executed under,
* the **effective per-stage salts** and **footprint salts** (PR 4's
  cache-identity machinery) — the evidence the diff engine uses to
  attribute metric deltas to code changes,
* the full **metrics-registry snapshot** (worker-count invariant, so
  two records are comparable regardless of how they were sharded),
* per-stage **wall/CPU timings**, **cache hit/miss counts** and the
  **metric keys** each stage's shards touched (the ownership map the
  diff engine attributes domain metrics with).

Records are identified by a deterministic ``run_id`` — a content hash
of the record plus its sequence number (no wall clock, no randomness)
— so a record can be named unambiguously months later and the same
ledger always reproduces the same ids.  Appends are single-write
(:mod:`repro.obs.persist`), loading is strict: a corrupt or truncated
line raises :class:`~repro.errors.ObservabilityError` with the line
number, never a raw ``json.JSONDecodeError``.

Besides run records the ledger accepts ``kind="bench"`` records
(``scripts/bench_to_ledger.py`` folds pytest-benchmark reports in), so
performance history lands in the same auditable journal.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
from typing import Any, Dict, List, Mapping, Optional, Union

from repro.errors import ObservabilityError
from repro.obs.persist import (
    append_jsonl_line,
    atomic_write_json,
    count_jsonl_lines,
    read_jsonl_lines,
)

#: schema identifier stamped into (and required of) every ledger record
LEDGER_SCHEMA = "repro.obs/ledger/v1"

#: ledger filename inside a cache directory
LEDGER_FILENAME = "ledger.jsonl"

#: record kinds the v1 schema admits
RECORD_KINDS = ("run", "bench")

#: required per-stage fields of a run record and their types
_STAGE_FIELDS: Dict[str, Any] = {
    "stage": str,
    "shards": int,
    "cache_hits": int,
    "cache_misses": int,
    "wall_s": (int, float),
    "cpu_s": (int, float),
    "metric_keys": list,
}

#: required top-level fields of a run record (beyond the common ones)
_RUN_FIELDS: Dict[str, Any] = {
    "config": dict,
    "workers": int,
    "salts": dict,
    "stages": list,
}

PathLike = Union[str, "os.PathLike[str]"]

#: serializes count-then-append within this process: the serve job pool
#: runs concurrent engine runs on threads sharing one ledger, and an
#: unlocked interleaving would stamp two records with the same seq
_APPEND_LOCK = threading.Lock()


def ledger_path(cache_dir: PathLike) -> str:
    """The canonical ledger location inside a cache directory."""
    return os.path.join(os.fspath(cache_dir), LEDGER_FILENAME)


def run_id_for(payload: Mapping[str, Any], seq: int) -> str:
    """Deterministic record identity: content hash of payload + seq.

    No wall clock, no randomness — rebuilding the id of a stored
    record always reproduces it, which keeps the ledger pipeline
    inside the tree's determinism rules.
    """
    canon = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    digest = hashlib.blake2b(digest_size=8)
    digest.update(canon.encode("utf-8"))
    digest.update(f"#{seq}".encode("utf-8"))
    return digest.hexdigest()


def validate_record(payload: Mapping[str, Any]) -> None:
    """Check one ledger record against the v1 schema; raise on violation.

    Extra keys are allowed everywhere (forward compatibility); missing
    or mistyped required keys are not.
    """
    if not isinstance(payload, Mapping):
        raise ObservabilityError(
            f"ledger record must be a mapping, got {type(payload).__name__}"
        )
    for key, expected in (("schema", str), ("kind", str), ("run_id", str),
                          ("seq", int), ("metrics", dict)):
        if key not in payload:
            raise ObservabilityError(f"ledger record is missing {key!r}")
        if not isinstance(payload[key], expected) or isinstance(
            payload[key], bool
        ):
            raise ObservabilityError(
                f"ledger record field {key!r} must be {expected.__name__}, "
                f"got {type(payload[key]).__name__}"
            )
    if payload["schema"] != LEDGER_SCHEMA:
        raise ObservabilityError(
            f"unsupported ledger schema {payload['schema']!r} "
            f"(expected {LEDGER_SCHEMA!r})"
        )
    if payload["kind"] not in RECORD_KINDS:
        raise ObservabilityError(
            f"unknown ledger record kind {payload['kind']!r} "
            f"(expected one of {RECORD_KINDS})"
        )
    if payload["seq"] < 0:
        raise ObservabilityError(
            f"ledger record seq must be >= 0, got {payload['seq']}"
        )
    if payload["kind"] != "run":
        return
    for key, expected in sorted(_RUN_FIELDS.items()):
        if key not in payload:
            raise ObservabilityError(f"run record is missing {key!r}")
        if not isinstance(payload[key], expected):
            raise ObservabilityError(
                f"run record field {key!r} must be {expected.__name__}, "
                f"got {type(payload[key]).__name__}"
            )
    config = payload["config"]
    for key in ("digest", "seed"):
        if key not in config:
            raise ObservabilityError(f"run record config is missing {key!r}")
    for position, stage in enumerate(payload["stages"]):
        if not isinstance(stage, Mapping):
            raise ObservabilityError(
                f"run record stage #{position} must be a mapping"
            )
        for key, expected in sorted(_STAGE_FIELDS.items()):
            if key not in stage:
                raise ObservabilityError(
                    f"run record stage #{position} is missing {key!r}"
                )
            if not isinstance(stage[key], expected):
                name = getattr(expected, "__name__", "number")
                raise ObservabilityError(
                    f"run record stage #{position} field {key!r} must be "
                    f"{name}, got {type(stage[key]).__name__}"
                )


def append_record(path: PathLike, payload: Mapping[str, Any]) -> Dict[str, Any]:
    """Stamp ``seq``/``run_id`` onto ``payload``, validate and append it.

    ``payload`` carries everything *but* the identity fields; the
    sequence number is the current record count of the ledger file and
    the run id is content-derived (:func:`run_id_for`).  Returns the
    completed record as written.
    """
    record = dict(payload)
    record.pop("run_id", None)
    record.pop("seq", None)
    with _APPEND_LOCK:
        seq = count_jsonl_lines(path)
        record["seq"] = seq
        record["run_id"] = run_id_for(record, seq)
        validate_record(record)
        append_jsonl_line(path, record)
    return record


def load_ledger(path: PathLike) -> List[Dict[str, Any]]:
    """Every record of a ledger, in append order, schema-validated.

    A corrupt or truncated line — and equally a well-formed JSON line
    that is not a valid ledger record — raises
    :class:`ObservabilityError` naming the file and line number.
    """
    records: List[Dict[str, Any]] = []
    for number, record in read_jsonl_lines(path):
        try:
            validate_record(record)
        except ObservabilityError as exc:
            raise ObservabilityError(
                f"{os.fspath(path)!r} line {number}: {exc}"
            ) from exc
        records.append(record)
    return records


# -- selectors ---------------------------------------------------------------

def _baseline_pointer(path: PathLike) -> str:
    return f"{os.fspath(path)}.baseline"


def read_baseline(path: PathLike) -> Optional[str]:
    """The run id the ledger's baseline pointer names (None when unset)."""
    try:
        with open(_baseline_pointer(path), "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except FileNotFoundError:
        return None
    except ValueError as exc:
        raise ObservabilityError(
            f"corrupt baseline pointer {_baseline_pointer(path)!r}: {exc}"
        ) from exc
    run_id = payload.get("run_id") if isinstance(payload, dict) else None
    if not isinstance(run_id, str) or not run_id:
        raise ObservabilityError(
            f"baseline pointer {_baseline_pointer(path)!r} carries no run_id"
        )
    return run_id


def write_baseline(path: PathLike, run_id: str) -> None:
    """Point the ledger's ``baseline`` selector at ``run_id`` (atomic)."""
    atomic_write_json(
        {"schema": LEDGER_SCHEMA, "run_id": run_id},
        _baseline_pointer(path),
    )


def select_record(
    records: List[Dict[str, Any]],
    selector: str,
    baseline_id: Optional[str] = None,
) -> Dict[str, Any]:
    """Resolve a record selector against a loaded ledger.

    Selectors, in resolution order:

    * ``latest`` — the last record; ``latest~N`` — N records before it;
    * ``baseline`` — the record ``baseline_id`` names (set via
      ``repro obs baseline``), falling back to the ledger's **first**
      record when no pointer was ever written;
    * a decimal number — the record with that ``seq``;
    * anything else — a unique ``run_id`` prefix.

    Raises :class:`ObservabilityError` when the ledger is empty, the
    selector matches nothing, or a prefix is ambiguous — the CLI turns
    these into friendly messages, never tracebacks.
    """
    if not records:
        raise ObservabilityError(
            f"cannot resolve {selector!r}: the ledger is empty"
        )
    if selector == "latest" or selector.startswith("latest~"):
        back = 0
        if selector.startswith("latest~"):
            suffix = selector[len("latest~"):]
            if not suffix.isdigit():
                raise ObservabilityError(
                    f"bad selector {selector!r}: expected latest~N"
                )
            back = int(suffix)
        if back >= len(records):
            raise ObservabilityError(
                f"cannot resolve {selector!r}: the ledger holds only "
                f"{len(records)} record(s)"
            )
        return records[-1 - back]
    if selector == "baseline":
        if baseline_id is None:
            return records[0]
        for record in records:
            if record["run_id"] == baseline_id:
                return record
        raise ObservabilityError(
            f"baseline points at {baseline_id!r}, which is not in the ledger"
        )
    if selector.isdigit():
        seq = int(selector)
        for record in records:
            if record["seq"] == seq:
                return record
        raise ObservabilityError(f"no ledger record with seq {seq}")
    matches = [
        record for record in records
        if record["run_id"].startswith(selector)
    ]
    if not matches:
        raise ObservabilityError(
            f"no ledger record matches run id prefix {selector!r}"
        )
    if len(matches) > 1:
        ids = ", ".join(record["run_id"] for record in matches[:4])
        raise ObservabilityError(
            f"run id prefix {selector!r} is ambiguous ({ids}, ...)"
        )
    return matches[0]
