"""Injected clocks for the observability layer.

The tracer never calls :func:`time.perf_counter` directly — it reads an
injected :class:`Clock`, so the simulation layers (which reprolint D103
bans from touching ambient time) can be instrumented with spans whose
clock is chosen by the *caller*:

* :class:`SystemClock` — real wall/CPU time, the default at the CLI and
  engine boundary;
* :class:`TickClock` — a deterministic counter advancing by a fixed
  step per read, for tests that must produce byte-identical traces;
* :class:`NullClock` — always zero, the clock behind the no-op tracer.
"""

from __future__ import annotations

import time


class NullClock:
    """A clock that always reads zero — timing disabled, nesting kept."""

    def wall(self) -> float:
        """Wall-clock reading in seconds (always ``0.0`` here)."""
        return 0.0

    def cpu(self) -> float:
        """CPU-time reading in seconds (always ``0.0`` here)."""
        return 0.0


class SystemClock(NullClock):
    """The real thing: monotonic wall time and process CPU time."""

    def wall(self) -> float:
        return time.perf_counter()

    def cpu(self) -> float:
        return time.process_time()


class TickClock(NullClock):
    """A deterministic clock advancing ``step`` seconds per reading.

    Wall and CPU readings share one counter, so a span that makes one
    start and one end reading of each always reports the same duration
    — which is what makes traced-run determinism testable.
    """

    def __init__(self, step: float = 1.0) -> None:
        self.step = float(step)
        self._now = 0.0

    def _tick(self) -> float:
        value = self._now
        self._now += self.step
        return value

    def wall(self) -> float:
        return self._tick()

    def cpu(self) -> float:
        return self._tick()
