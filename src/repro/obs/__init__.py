"""repro.obs — zero-dependency observability for pipeline runs.

Three small, composable pieces:

* :mod:`repro.obs.trace` — hierarchical span tracing against an
  *injected* clock (``tracer.span("stage:geolocate", shard=...)``),
  with an ambient no-op default so instrumented code is free when
  nobody is tracing;
* :mod:`repro.obs.metrics` — typed counters/gauges/histograms with
  exact, commutative merges, built to fold per-shard snapshots into a
  worker-count-invariant run registry;
* :mod:`repro.obs.manifest` — the per-run provenance manifest schema,
  validator and atomic writer.

Layering: this package sits below every simulation and runtime layer
(it imports only :mod:`repro.errors`), so core/dnssim/geoloc/runtime
may all instrument themselves through it without cycles.
"""

from repro.obs.clock import NullClock, SystemClock, TickClock
from repro.obs.manifest import (
    MANIFEST_SCHEMA,
    load_manifest,
    validate_manifest,
    write_manifest,
)
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    collecting,
    inc,
    observe,
    set_gauge,
)
from repro.obs.trace import (
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    current_tracer,
    tracing,
)

__all__ = [
    "NullClock",
    "SystemClock",
    "TickClock",
    "MANIFEST_SCHEMA",
    "load_manifest",
    "validate_manifest",
    "write_manifest",
    "DEFAULT_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "collecting",
    "inc",
    "observe",
    "set_gauge",
    "NULL_TRACER",
    "NullTracer",
    "Span",
    "Tracer",
    "current_tracer",
    "tracing",
]
