"""repro.obs — zero-dependency observability for pipeline runs.

Three small, composable pieces:

* :mod:`repro.obs.trace` — hierarchical span tracing against an
  *injected* clock (``tracer.span("stage:geolocate", shard=...)``),
  with an ambient no-op default so instrumented code is free when
  nobody is tracing;
* :mod:`repro.obs.metrics` — typed counters/gauges/histograms with
  exact, commutative merges, built to fold per-shard snapshots into a
  worker-count-invariant run registry;
* :mod:`repro.obs.manifest` — the per-run provenance manifest schema,
  validator and atomic writer.

On top of those, the persistent layer added for longitudinal work:

* :mod:`repro.obs.ledger` — the append-only JSONL **run ledger**
  (schema ``repro.obs/ledger/v1``) with selectors
  (``latest``/``latest~N``/``baseline``/seq/run-id prefix);
* :mod:`repro.obs.diff` — the regression **diff engine** classifying
  every metric delta as config-driven, code-driven or unexplained
  drift, plus the CI **budget checker**;
* :mod:`repro.obs.export` — span trees as Chrome **trace-event JSON**
  (Perfetto / ``chrome://tracing`` loadable, with real pid/tid tracks
  for stitched worker spans) plus the Prometheus text exposition of a
  registry snapshot;
* :mod:`repro.obs.profile` — the zero-dependency **sampling profiler**:
  mergeable collapsed-stack :class:`Profile` records, speedscope JSON
  export (schema ``repro.obs/profile/v1``) and the
  ``profile.self_s{...}`` ledger fold;
* :mod:`repro.obs.persist` — the shared crash-safe write primitives.

Layering: this package sits below every simulation and runtime layer
(it imports only :mod:`repro.errors`), so core/dnssim/geoloc/runtime
may all instrument themselves through it without cycles.
"""

from repro.obs.clock import NullClock, SystemClock, TickClock
from repro.obs.diff import (
    BUDGETS_SCHEMA,
    BudgetViolation,
    LedgerDiff,
    MetricDelta,
    check_budgets,
    diff_records,
    load_budgets,
    render_budget_text,
    render_diff_text,
)
from repro.obs.export import (
    PROMETHEUS_CONTENT_TYPE,
    TRACE_EVENTS_SCHEMA,
    load_trace_events,
    parse_prometheus_text,
    prometheus_text,
    trace_document,
    trace_events,
    validate_trace_events,
    write_trace_events,
)
from repro.obs.profile import (
    DEFAULT_HZ,
    PROFILE_REPORT_SCHEMA,
    PROFILE_SCHEMA,
    Profile,
    SamplingProfiler,
    build_report,
    collapsed_text,
    decode_speedscope,
    load_speedscope,
    parse_collapsed,
    report_gauges,
    speedscope_document,
    validate_collapsed,
    validate_speedscope,
    write_speedscope,
)
from repro.obs.ledger import (
    LEDGER_FILENAME,
    LEDGER_SCHEMA,
    append_record,
    ledger_path,
    load_ledger,
    read_baseline,
    select_record,
    validate_record,
    write_baseline,
)
from repro.obs.manifest import (
    MANIFEST_SCHEMA,
    load_manifest,
    validate_manifest,
    write_manifest,
)
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    collecting,
    inc,
    observe,
    set_gauge,
)
from repro.obs.trace import (
    NULL_TRACER,
    CallbackTracer,
    NullTracer,
    Span,
    Tracer,
    current_tracer,
    spans_to_payload,
    tracing,
)

__all__ = [
    "NullClock",
    "SystemClock",
    "TickClock",
    "BUDGETS_SCHEMA",
    "BudgetViolation",
    "LedgerDiff",
    "MetricDelta",
    "check_budgets",
    "diff_records",
    "load_budgets",
    "render_budget_text",
    "render_diff_text",
    "PROMETHEUS_CONTENT_TYPE",
    "TRACE_EVENTS_SCHEMA",
    "load_trace_events",
    "parse_prometheus_text",
    "prometheus_text",
    "trace_document",
    "trace_events",
    "validate_trace_events",
    "write_trace_events",
    "DEFAULT_HZ",
    "PROFILE_REPORT_SCHEMA",
    "PROFILE_SCHEMA",
    "Profile",
    "SamplingProfiler",
    "build_report",
    "collapsed_text",
    "decode_speedscope",
    "load_speedscope",
    "parse_collapsed",
    "report_gauges",
    "speedscope_document",
    "validate_collapsed",
    "validate_speedscope",
    "write_speedscope",
    "LEDGER_FILENAME",
    "LEDGER_SCHEMA",
    "append_record",
    "ledger_path",
    "load_ledger",
    "read_baseline",
    "select_record",
    "validate_record",
    "write_baseline",
    "MANIFEST_SCHEMA",
    "load_manifest",
    "validate_manifest",
    "write_manifest",
    "DEFAULT_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "collecting",
    "inc",
    "observe",
    "set_gauge",
    "NULL_TRACER",
    "CallbackTracer",
    "NullTracer",
    "Span",
    "Tracer",
    "current_tracer",
    "spans_to_payload",
    "tracing",
]
