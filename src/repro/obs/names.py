"""The metric and span name catalog: every observable name, declared once.

Instrumentation call sites import their names from here instead of
repeating string literals, which buys three guarantees:

* **no collisions** — the import-time check below rejects a catalog
  with duplicate metric names, so two subsystems can never silently
  write into each other's time series;
* **static checkability** — the O6xx lint rules resolve the name
  argument of every ``inc``/``observe``/``set_gauge``/``span`` call
  site against this catalog and compare its labels against the declared
  label set, so a typo'd name or a renamed-in-one-place metric is a
  lint failure, not a dashboard mystery;
* **a single reviewable inventory** — the manifest diff story ("two
  runs disagree on metric X") starts from a closed list of what X can
  be.

Declarations are deliberately plain tuples of literals: the lint rules
read this module *statically* (AST only, no import), so nothing here
may be computed.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.errors import ObservabilityError

# -- metric names -----------------------------------------------------------

#: per-pass flow counts by classification stage (core/classify.py)
CLASSIFY_FLOWS = "classify.flows"

#: accept/reject verdicts of the country-majority rule (geoloc/ipmap.py)
IPMAP_LOCATE = "ipmap.locate"

#: geolocation campaigns launched (geoloc/ipmap.py)
IPMAP_CAMPAIGNS = "ipmap.campaigns"

#: per-campaign country vote agreement ratio (geoloc/ipmap.py)
IPMAP_COUNTRY_AGREEMENT = "ipmap.country_agreement"

#: passive-DNS resolutions ingested (dnssim/passive.py)
PDNS_OBSERVATIONS = "pdns.observations"

#: first-seen (fqdn, address) pairs (dnssim/passive.py)
PDNS_PAIRS_NEW = "pdns.pairs_new"

#: exported pair tuples folded into a database (dnssim/passive.py)
PDNS_PAIRS_FOLDED = "pdns.pairs_folded"

#: shards planned per stage per run (runtime/engine.py)
RUNTIME_SHARDS_PLANNED = "runtime.shards.planned"

#: shards actually executed (cache misses) per stage (runtime/engine.py)
RUNTIME_SHARDS_EXECUTED = "runtime.shards.executed"

#: artifact-cache hits per stage (runtime/engine.py)
RUNTIME_CACHE_HITS = "runtime.cache.hits"

#: artifact-cache misses per stage (runtime/engine.py)
RUNTIME_CACHE_MISSES = "runtime.cache.misses"

#: damaged cache artifacts discarded on load (runtime/cache.py)
RUNTIME_CACHE_CORRUPT = "runtime.cache.corrupt"

#: per-benchmark wall-time statistics folded into the run ledger
#: (scripts/bench_to_ledger.py); the diff engine classifies these as
#: timing, never drift
BENCH_TIME = "bench.time_s"

#: wall time of one reprolint run, folded into the ledger from the
#: dataflow report (scripts/bench_to_ledger.py --lint-report); labelled
#: by rule family ("total" for the whole run, "T"/"Q"/... per family)
LINT_TIME = "lint.time_s"

#: HTTP requests served, by route pattern (serve/server.py)
SERVE_HTTP_REQUESTS = "serve.http.requests"

#: study submissions accepted onto the job queue (serve/jobs.py)
SERVE_JOBS_SUBMITTED = "serve.jobs.submitted"

#: submissions rejected because the bounded queue was full (serve/jobs.py)
SERVE_JOBS_REJECTED = "serve.jobs.rejected"

#: jobs that reached a terminal state, by outcome (serve/jobs.py)
SERVE_JOBS_COMPLETED = "serve.jobs.completed"

#: jobs currently waiting on the queue (serve/jobs.py)
SERVE_JOBS_QUEUED = "serve.jobs.queued"

#: jobs currently executing (serve/jobs.py)
SERVE_JOBS_RUNNING = "serve.jobs.running"

#: headline service gauge: cache hit share of the most recent job's
#: engine run — 1.0 means the study was served entirely warm
#: (serve/jobs.py)
SERVE_WARM_HIT_RATE = "serve.cache.warm_hit_rate"

#: throughput of one serve load benchmark against a warm server, by
#: endpoint (scripts/serve_load.py, folded into the ledger via
#: scripts/bench_to_ledger.py --serve-report)
SERVE_REQUESTS_PER_S = "serve.requests_per_s"

#: per-stage throughput of the columnar record path, rows per wall
#: second (core/stream.py; scale reports fold it into the ledger via
#: scripts/bench_to_ledger.py --scale-report); classified as timing by
#: the diff engine, gated by the scale budget envelope
PIPELINE_FLOWS_PER_S = "pipeline.flows_per_s"

#: peak resident set of one scale-driver run (scripts/scale_world.py)
PIPELINE_MAX_RSS_MB = "pipeline.max_rss_mb"

#: per-stage hot-function self time from the sampling profiler
#: (obs/profile.py), folded into ledger records by
#: runtime/provenance.py and by scripts/bench_to_ledger.py
#: --profile-report; ``func=_total`` labels a stage's whole sampled
#: time and is always present, so budget envelopes stay deterministic.
#: Classified as timing by the diff engine, never drift.
PROFILE_SELF_S = "profile.self_s"

#: (name, kind, label names, description) — the closed declaration list.
#: ``kind`` is counter | gauge | histogram.  O602 compares call-site
#: label keywords against the label tuple as a *set*: every declared
#: label, no undeclared ones.
_METRIC_DECLS: Tuple[Tuple[str, str, Tuple[str, ...], str], ...] = (
    (CLASSIFY_FLOWS, "counter", ("stage",),
     "flows classified, by classification stage"),
    (IPMAP_LOCATE, "counter", ("verdict",),
     "locate() verdicts under the country-majority rule"),
    (IPMAP_CAMPAIGNS, "counter", (),
     "geolocation campaigns launched"),
    (IPMAP_COUNTRY_AGREEMENT, "histogram", (),
     "winner-country vote share per campaign"),
    (PDNS_OBSERVATIONS, "counter", (),
     "passive-DNS resolutions ingested"),
    (PDNS_PAIRS_NEW, "counter", (),
     "first-seen (fqdn, address) pairs"),
    (PDNS_PAIRS_FOLDED, "counter", (),
     "exported pair tuples folded into a database"),
    (RUNTIME_SHARDS_PLANNED, "counter", ("stage",),
     "shards planned per stage"),
    (RUNTIME_SHARDS_EXECUTED, "counter", ("stage",),
     "shards executed (cache misses) per stage"),
    (RUNTIME_CACHE_HITS, "counter", ("stage",),
     "artifact-cache hits per stage"),
    (RUNTIME_CACHE_MISSES, "counter", ("stage",),
     "artifact-cache misses per stage"),
    (RUNTIME_CACHE_CORRUPT, "counter", ("stage",),
     "damaged cache artifacts discarded on load"),
    (BENCH_TIME, "gauge", ("benchmark", "stat"),
     "pytest-benchmark wall-time statistic per benchmark"),
    (LINT_TIME, "gauge", ("family",),
     "wall time of one reprolint run, by rule family (or 'total')"),
    (SERVE_HTTP_REQUESTS, "counter", ("route",),
     "HTTP requests served, by route pattern"),
    (SERVE_JOBS_SUBMITTED, "counter", (),
     "study submissions accepted onto the job queue"),
    (SERVE_JOBS_REJECTED, "counter", (),
     "study submissions rejected by the bounded queue"),
    (SERVE_JOBS_COMPLETED, "counter", ("outcome",),
     "jobs that reached a terminal state, by outcome"),
    (SERVE_JOBS_QUEUED, "gauge", (),
     "jobs currently waiting on the queue"),
    (SERVE_JOBS_RUNNING, "gauge", (),
     "jobs currently executing"),
    (SERVE_WARM_HIT_RATE, "gauge", (),
     "cache hit share of the most recent job's engine run"),
    (SERVE_REQUESTS_PER_S, "gauge", ("endpoint",),
     "serve load-benchmark throughput, by endpoint"),
    (PIPELINE_FLOWS_PER_S, "gauge", ("stage",),
     "columnar record-path throughput, rows per second per stage"),
    (PIPELINE_MAX_RSS_MB, "gauge", (),
     "peak resident set of one scale-driver run, MiB"),
    (PROFILE_SELF_S, "gauge", ("stage", "func"),
     "sampling-profiler self time per hot function per stage"),
)

# -- span names -------------------------------------------------------------

SPAN_RUN = "run"
SPAN_WORLD_BUILD = "world:build"
SPAN_PLAN = "plan"
SPAN_CACHE_PROBE = "cache:probe"
SPAN_EXECUTE = "execute"
SPAN_MERGE = "merge"
SPAN_SERVE_JOB = "serve:job"
SPAN_STUDY_PANEL = "study:panel"
SPAN_STUDY_CLASSIFICATION = "study:classification"
SPAN_STUDY_INVENTORY = "study:inventory"
SPAN_STUDY_SENSITIVE = "study:sensitive"

#: every span name the tree may open.  A trailing ``*`` declares a
#: prefix family (``stage:*`` covers the engine's per-stage f-strings);
#: O603 matches a call site's static prefix against these patterns.
SPAN_NAMES: Tuple[str, ...] = (
    SPAN_RUN,
    SPAN_WORLD_BUILD,
    "stage:*",
    SPAN_PLAN,
    SPAN_CACHE_PROBE,
    SPAN_EXECUTE,
    SPAN_MERGE,
    SPAN_SERVE_JOB,
    SPAN_STUDY_PANEL,
    SPAN_STUDY_CLASSIFICATION,
    SPAN_STUDY_INVENTORY,
    SPAN_STUDY_SENSITIVE,
)


def _build_index() -> Dict[str, Tuple[str, Tuple[str, ...], str]]:
    index: Dict[str, Tuple[str, Tuple[str, ...], str]] = {}
    for name, kind, labels, description in _METRIC_DECLS:
        if name in index:
            raise ObservabilityError(
                f"duplicate metric declaration: {name!r}"
            )
        index[name] = (kind, labels, description)
    if len(set(SPAN_NAMES)) != len(SPAN_NAMES):
        duplicates = [
            name for name in sorted(set(SPAN_NAMES))
            if SPAN_NAMES.count(name) > 1
        ]
        raise ObservabilityError(
            f"duplicate span declaration(s): {duplicates}"
        )
    return index


#: name -> (kind, labels, description); built (and validated) at import
METRICS: Dict[str, Tuple[str, Tuple[str, ...], str]] = _build_index()


def metric_labels(name: str) -> Tuple[str, ...]:
    """The declared label set of ``name`` (raises on unknown metrics)."""
    try:
        return METRICS[name][1]
    except KeyError as exc:
        raise ObservabilityError(f"undeclared metric: {name!r}") from exc
