"""Hierarchical span tracing with an injected clock.

A :class:`Tracer` records a tree of :class:`Span` records:
``tracer.span("stage:geolocate", shard="ips[0:12]")`` opens a child of
whatever span is currently open, stamps wall and CPU time from the
tracer's injected clock (see :mod:`repro.obs.clock`), and closes on
context exit.  Spans are stored flat, in *opening* order, each carrying
its parent index and depth — a form that serializes directly into the
run manifest and renders as a text flame report.

The ambient tracer (:func:`current_tracer` / :func:`tracing`) lets code
deep inside the pipeline open spans without threading a tracer through
every signature.  The default ambient tracer is :data:`NULL_TRACER`
(null clock, records discarded), so un-instrumented callers pay nothing
and — crucially — a traced and an untraced run execute the exact same
pipeline code.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional

from repro.errors import ObservabilityError
from repro.obs.clock import NullClock, SystemClock


@dataclass
class Span:
    """One timed, attributed section of a run."""

    name: str
    index: int
    parent: Optional[int]
    depth: int
    attrs: Dict[str, Any] = field(default_factory=dict)
    wall_start: float = 0.0
    wall_end: float = 0.0
    cpu_start: float = 0.0
    cpu_end: float = 0.0
    #: recording process / thread identity, stamped only on spans that
    #: crossed a process boundary (worker spans grafted back into the
    #: parent trace); ``None`` means "the recording tracer's own track"
    pid: Optional[int] = None
    tid: Optional[int] = None

    @property
    def wall_s(self) -> float:
        """Wall-clock duration in seconds."""
        return self.wall_end - self.wall_start

    @property
    def cpu_s(self) -> float:
        """CPU-time duration in seconds."""
        return self.cpu_end - self.cpu_start

    def to_row(self) -> Dict[str, Any]:
        """The span as a JSON-able manifest row."""
        row = {
            "name": self.name,
            "index": self.index,
            "parent": self.parent,
            "depth": self.depth,
            "attrs": dict(sorted(self.attrs.items())),
            "wall_s": round(self.wall_s, 6),
            "cpu_s": round(self.cpu_s, 6),
        }
        if self.pid is not None:
            row["pid"] = self.pid
            row["tid"] = self.tid
        return row


class Tracer:
    """Collects a span tree against an injected clock."""

    def __init__(self, clock: Optional[NullClock] = None) -> None:
        self.clock = clock if clock is not None else SystemClock()
        self.spans: List[Span] = []
        self._stack: List[int] = []

    @property
    def enabled(self) -> bool:
        """Whether this tracer records spans (:class:`NullTracer` lies
        lower)."""
        return True

    @contextmanager
    def span(self, name: str, **attrs: Any) -> Iterator[Span]:
        """Open a child span for the ``with`` scope and time it."""
        record = Span(
            name=name,
            index=len(self.spans),
            parent=self._stack[-1] if self._stack else None,
            depth=len(self._stack),
            attrs=dict(attrs),
        )
        self.spans.append(record)
        self._stack.append(record.index)
        record.wall_start = self.clock.wall()
        record.cpu_start = self.clock.cpu()
        try:
            yield record
        finally:
            record.wall_end = self.clock.wall()
            record.cpu_end = self.clock.cpu()
            popped = self._stack.pop()
            if popped != record.index:
                raise ObservabilityError(
                    f"span nesting corrupted: closed {record.name!r} "
                    f"but span #{popped} was on top"
                )

    def rows(self) -> List[Dict[str, Any]]:
        """Every span as a JSON-able row, in opening order."""
        return [span.to_row() for span in self.spans]

    def find(self, name: str) -> List[Span]:
        """All spans with the given name, in opening order."""
        return [span for span in self.spans if span.name == name]

    def graft(
        self,
        rows: List[Dict[str, Any]],
        parent: Optional[int] = None,
        offset: float = 0.0,
    ) -> List[Span]:
        """Append spans another tracer recorded, re-parented under ours.

        ``rows`` is a :func:`spans_to_payload` export (a worker
        process's span tree); indices inside it are local, so parents
        are rebased onto this tracer's index space and the whole tree
        hangs off ``parent`` (an index into :attr:`spans`, or ``None``
        for top level).  ``offset`` shifts every wall timestamp — the
        engine passes the delta between its own clock and the worker
        rows' origin, which also re-anchors *replayed* spans (a warm
        run grafting the cold run's worker spans) into the current
        run's timeline.  CPU timestamps are process-local and ship
        unshifted; their difference is still the worker's CPU cost.
        """
        if parent is not None and not 0 <= parent < len(self.spans):
            raise ObservabilityError(
                f"cannot graft under span #{parent}: "
                f"only {len(self.spans)} spans recorded"
            )
        base = len(self.spans)
        base_depth = self.spans[parent].depth + 1 if parent is not None else 0
        grafted: List[Span] = []
        for position, row in enumerate(rows):
            if not isinstance(row, dict) or "name" not in row:
                raise ObservabilityError(
                    f"grafted span #{position} must be a mapping "
                    f"with a 'name', got {row!r:.120}"
                )
            local_parent = row.get("parent")
            if local_parent is not None and not (
                isinstance(local_parent, int)
                and 0 <= local_parent < position
            ):
                raise ObservabilityError(
                    f"grafted span #{position} has parent "
                    f"{local_parent!r} outside the rows before it"
                )
            span = Span(
                name=str(row["name"]),
                index=base + position,
                parent=(
                    parent if local_parent is None else base + local_parent
                ),
                depth=base_depth + int(row.get("depth", 0)),
                attrs=dict(row.get("attrs") or {}),
                wall_start=float(row.get("wall_start", 0.0)) + offset,
                wall_end=float(row.get("wall_end", 0.0)) + offset,
                cpu_start=float(row.get("cpu_start", 0.0)),
                cpu_end=float(row.get("cpu_end", 0.0)),
                pid=row.get("pid"),
                tid=row.get("tid"),
            )
            self.spans.append(span)
            grafted.append(span)
        return grafted

    def report(self) -> str:
        """A text flamegraph: one line per span, indented by depth.

        Durations are wall seconds; the percentage is of the *root*
        span's wall time, so hot stages stand out at a glance::

            run                                3.214s 100.0%
              world:build                      1.002s  31.2%
              stage:panel  shards=8            0.911s  28.3%
                execute                        0.874s  27.2%
        """
        if not self.spans:
            return "(no spans recorded)"
        root_wall = self.spans[0].wall_s
        lines = []
        for span in self.spans:
            attrs = " ".join(
                f"{key}={value}" for key, value in sorted(span.attrs.items())
            )
            label = "  " * span.depth + span.name + (f"  {attrs}" if attrs else "")
            share = 100.0 * span.wall_s / root_wall if root_wall > 0 else 0.0
            lines.append(f"{label:<48} {span.wall_s:>9.3f}s {share:>5.1f}%")
        return "\n".join(lines)


class NullTracer(Tracer):
    """A tracer that keeps the nesting discipline but records nothing.

    The ambient default: pipeline code can always open spans, and when
    nobody installed a real tracer the only cost is one context-manager
    frame and a throwaway record — no clock reads, nothing retained.
    """

    def __init__(self) -> None:
        super().__init__(clock=NullClock())

    @property
    def enabled(self) -> bool:
        return False

    @contextmanager
    def span(self, name: str, **attrs: Any) -> Iterator[Span]:
        # A fresh record so callers may set attrs on it; it is simply
        # never stored.
        yield Span(name=name, index=-1, parent=None, depth=0, attrs=dict(attrs))

    def rows(self) -> List[Dict[str, Any]]:
        return []

    def graft(
        self,
        rows: List[Dict[str, Any]],
        parent: Optional[int] = None,
        offset: float = 0.0,
    ) -> List[Span]:
        return []

    def report(self) -> str:
        return "(tracing disabled)"

class CallbackTracer(Tracer):
    """A tracer that also notifies a callback on span open and close.

    The callback receives ``(phase, span)`` where ``phase`` is
    ``"start"`` (the span just opened; timings not yet final) or
    ``"end"`` (the span closed; ``wall_s``/``attrs`` are final).  This
    is the live-progress hook behind :func:`repro.runtime.run_study`'s
    ``progress`` parameter and the ``repro serve`` SSE stream: span
    recording is unchanged, so a callback-traced run produces the exact
    span tree a plain :class:`Tracer` would.

    The callback runs on the engine's thread; receivers that live on
    another thread (an asyncio event loop) must hand the event off
    themselves (``loop.call_soon_threadsafe``).  A callback exception
    propagates — observability hooks must fail loudly, not corrupt the
    span stack silently.
    """

    def __init__(self, callback: Any, clock: Optional[NullClock] = None) -> None:
        super().__init__(clock=clock)
        self._callback = callback

    @contextmanager
    def span(self, name: str, **attrs: Any) -> Iterator[Span]:
        with Tracer.span(self, name, **attrs) as record:
            self._callback("start", record)
            try:
                yield record
            finally:
                # Close timings first (the base manager's finally ran
                # for nested spans, ours has not) so the "end" event
                # sees a finished record: stamp via the clock directly.
                record.wall_end = self.clock.wall()
                record.cpu_end = self.clock.cpu()
                self._callback("end", record)


def spans_to_payload(spans: List[Span]) -> List[Dict[str, Any]]:
    """Full-fidelity, JSON/pickle-able span rows for cross-process
    shipping.

    Unlike :meth:`Span.to_row` (rounded durations, a *report* shape),
    this keeps the raw wall/CPU start and end readings and the pid/tid
    stamps, which is what :meth:`Tracer.graft` needs to rebase a worker
    tree into the parent timeline.  Parent indices stay local to the
    list, so the payload is self-contained.
    """
    return [
        {
            "name": span.name,
            "parent": span.parent,
            "depth": span.depth,
            "attrs": dict(sorted(span.attrs.items())),
            "wall_start": span.wall_start,
            "wall_end": span.wall_end,
            "cpu_start": span.cpu_start,
            "cpu_end": span.cpu_end,
            "pid": span.pid,
            "tid": span.tid,
        }
        for span in spans
    ]


#: the process-wide no-op tracer
NULL_TRACER = NullTracer()

#: per-thread stacks of ambient tracers; the top of a thread's stack
#: receives its pipeline spans.  Thread-local on purpose: concurrent
#: serve jobs trace in their own worker threads and must never receive
#: (or pop) each other's spans.
_AMBIENT = threading.local()


def _stack() -> List[Tracer]:
    try:
        return _AMBIENT.stack
    except AttributeError:
        stack: List[Tracer] = []
        _AMBIENT.stack = stack
        return stack


def current_tracer() -> Tracer:
    """The tracer ambient code should open spans on (never ``None``)."""
    stack = _stack()
    return stack[-1] if stack else NULL_TRACER


@contextmanager
def tracing(tracer: Tracer) -> Iterator[Tracer]:
    """Install ``tracer`` as the ambient tracer for the scope."""
    stack = _stack()
    stack.append(tracer)
    try:
        yield tracer
    finally:
        stack.pop()
