"""Typed metrics: counters, gauges and histograms with exact merges.

A :class:`MetricsRegistry` holds named instruments keyed by a canonical
``name{label=value,...}`` string.  Three properties make the registry
safe for the runtime's sharded execution:

* **no timing inside** — wall/CPU time lives in spans
  (:mod:`repro.obs.trace`), never in metrics, so a registry snapshot is
  a pure function of the work performed and can be compared exactly
  across worker counts;
* **plain-dict snapshots** — :meth:`MetricsRegistry.to_dict` /
  :meth:`MetricsRegistry.from_dict` round-trip through JSON-able dicts,
  which is how a pool worker ships its shard-local registry back to the
  parent;
* **commutative merges** — counters add, histograms add bucket-wise and
  fold min/max, gauges fold by max, so folding shard snapshots in any
  order yields the same registry.

Instrumented library code (the classifier, the geolocation engine, the
passive-DNS store) does not receive a registry argument — it writes
through the module-level ambient helpers :func:`inc`, :func:`observe`
and :func:`set_gauge`, which are no-ops unless a collection scope
(:func:`collecting`) is active.  That keeps instrumentation zero-cost
and invisible on the legacy serial path.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Mapping, Optional, Sequence, Tuple, Union

from repro.errors import ObservabilityError

#: default histogram bucket upper bounds (the last bucket is +inf);
#: chosen for ratios/margins (0..1) and small counts alike
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.1, 0.25, 0.5, 0.75, 0.9, 1.0, 2.0, 5.0, 10.0, 100.0,
)


def metric_key(name: str, labels: Mapping[str, Any]) -> str:
    """Canonical instrument key: ``name`` or ``name{k=v,...}``.

    Labels are sorted by key, so two call sites naming the same labels
    in different order address the same instrument.
    """
    if not name:
        raise ObservabilityError("metric name must be non-empty")
    if not labels:
        return name
    rendered = ",".join(
        f"{key}={labels[key]}" for key in sorted(labels)
    )
    return f"{name}{{{rendered}}}"


def base_name(key: str) -> str:
    """The instrument name with any ``{label=...}`` suffix stripped."""
    brace = key.find("{")
    return key if brace < 0 else key[:brace]


class Counter:
    """A monotonically increasing integer-ish total."""

    kind = "counter"

    def __init__(self, value: float = 0) -> None:
        self.value = value

    def inc(self, amount: Union[int, float] = 1) -> None:
        """Add ``amount`` (must be >= 0) to the counter."""
        if amount < 0:
            raise ObservabilityError(
                f"counters only go up; got increment {amount!r}"
            )
        self.value += amount

    def merge(self, other: "Counter") -> None:
        self.value += other.value

    def to_value(self) -> float:
        return self.value

    @classmethod
    def from_value(cls, payload: Any) -> "Counter":
        return cls(payload)


class Gauge:
    """A point-in-time level; merges by taking the maximum.

    Max is the only fold of a last-write value that is commutative and
    associative without extra bookkeeping, so that is the contract:
    a merged gauge reports the *highest* level any shard observed.
    """

    kind = "gauge"

    def __init__(self, value: float = 0.0) -> None:
        self.value = value

    def set(self, value: Union[int, float]) -> None:
        """Record the current level."""
        self.value = value

    def merge(self, other: "Gauge") -> None:
        self.value = max(self.value, other.value)

    def to_value(self) -> float:
        return self.value

    @classmethod
    def from_value(cls, payload: Any) -> "Gauge":
        return cls(payload)


class Histogram:
    """A distribution: bucket counts plus count/total/min/max.

    Buckets are cumulative-style upper bounds (the implicit final
    bucket is +inf).  Two histograms merge exactly iff their bounds
    agree — the registry enforces that.
    """

    kind = "histogram"

    def __init__(self, buckets: Sequence[float] = DEFAULT_BUCKETS) -> None:
        bounds = tuple(float(b) for b in buckets)
        if list(bounds) != sorted(set(bounds)):
            raise ObservabilityError(
                f"histogram bounds must be strictly increasing: {bounds}"
            )
        self.bounds = bounds
        self.counts: List[int] = [0] * (len(bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: Union[int, float]) -> None:
        """Record one sample."""
        value = float(value)
        index = 0
        while index < len(self.bounds) and value > self.bounds[index]:
            index += 1
        self.counts[index] += 1
        self.count += 1
        self.total += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)

    @property
    def mean(self) -> float:
        """Arithmetic mean of all samples (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """The ``q``-quantile estimated by linear interpolation within
        buckets.

        Samples are only known up to their bucket, so the estimate
        assumes a uniform spread inside each bucket — the standard
        histogram-quantile trade-off.  The recorded exact ``min`` and
        ``max`` tighten the edges: the first populated bucket starts at
        ``min``, the overflow bucket ends at ``max``, and the result is
        clamped into ``[min, max]``.  An empty histogram reports 0.0.
        """
        if not 0.0 <= q <= 1.0:
            raise ObservabilityError(
                f"quantile must be in [0, 1], got {q!r}"
            )
        if not self.count:
            return 0.0
        assert self.min is not None and self.max is not None
        target = q * self.count
        cumulative = 0.0
        for index, bucket_count in enumerate(self.counts):
            if not bucket_count:
                continue
            if cumulative + bucket_count < target:
                cumulative += bucket_count
                continue
            lower = self.min if index == 0 else self.bounds[index - 1]
            upper = (
                self.max if index == len(self.bounds)
                else self.bounds[index]
            )
            lower = max(lower, self.min)
            upper = min(upper, self.max)
            if upper <= lower:
                return float(lower)
            fraction = (target - cumulative) / bucket_count
            value = lower + fraction * (upper - lower)
            return float(min(max(value, self.min), self.max))
        return float(self.max)

    def merge(self, other: "Histogram") -> None:
        if self.bounds != other.bounds:
            raise ObservabilityError(
                "cannot merge histograms with different bounds: "
                f"{self.bounds} vs {other.bounds}"
            )
        self.counts = [a + b for a, b in zip(self.counts, other.counts)]
        self.count += other.count
        self.total += other.total
        for bound in ("min", "max"):
            mine, theirs = getattr(self, bound), getattr(other, bound)
            if theirs is None:
                continue
            fold = min if bound == "min" else max
            setattr(self, bound, theirs if mine is None else fold(mine, theirs))

    def to_value(self) -> Dict[str, Any]:
        return {
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
        }

    @classmethod
    def from_value(cls, payload: Mapping[str, Any]) -> "Histogram":
        histogram = cls(payload["bounds"])
        histogram.counts = list(payload["counts"])
        histogram.count = payload["count"]
        histogram.total = payload["total"]
        histogram.min = payload["min"]
        histogram.max = payload["max"]
        return histogram


_KINDS = {cls.kind: cls for cls in (Counter, Gauge, Histogram)}


class MetricsRegistry:
    """A named collection of counters, gauges and histograms.

    Instrument creation and merging are guarded by a lock: one registry
    can be read by the event loop (the ``/metrics`` handler) while job
    threads create instruments in theirs, and the class must be safe
    from both contexts.
    """

    def __init__(self) -> None:
        self._instruments: Dict[str, Any] = {}
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return len(self._instruments)

    def _get(self, kind: str, key: str, factory) -> Any:
        with self._lock:
            instrument = self._instruments.get(key)
            if instrument is None:
                instrument = factory()
                self._instruments[key] = instrument
            elif instrument.kind != kind:
                raise ObservabilityError(
                    f"metric {key!r} is a {instrument.kind}, "
                    f"requested as {kind}"
                )
            return instrument

    def counter(self, name: str, **labels: Any) -> Counter:
        """The counter at ``name{labels}``, created on first use."""
        return self._get("counter", metric_key(name, labels), Counter)

    def gauge(self, name: str, **labels: Any) -> Gauge:
        """The gauge at ``name{labels}``, created on first use."""
        return self._get("gauge", metric_key(name, labels), Gauge)

    def histogram(
        self,
        name: str,
        buckets: Sequence[float] = DEFAULT_BUCKETS,
        **labels: Any,
    ) -> Histogram:
        """The histogram at ``name{labels}``, created on first use."""
        return self._get(
            "histogram",
            metric_key(name, labels),
            lambda: Histogram(buckets),
        )

    # -- aggregation -----------------------------------------------------
    def sum_counters(self, name: str) -> float:
        """Total across every counter whose base name equals ``name``.

        This is the registry-owned replacement for ad-hoc per-stage
        summation at call sites: ``sum_counters("runtime.cache.hits")``
        folds the per-stage labelled counters into the run total.
        """
        return sum(
            instrument.value
            for key, instrument in self._instruments.items()
            if instrument.kind == "counter" and base_name(key) == name
        )

    def value(self, name: str, **labels: Any) -> Any:
        """The raw value of one instrument (0 for an absent counter)."""
        instrument = self._instruments.get(metric_key(name, labels))
        return 0 if instrument is None else instrument.to_value()

    def histograms(self) -> List[Tuple[str, Histogram]]:
        """Every histogram instrument as ``(key, histogram)``, sorted by
        key — the iteration surface for quantile summaries."""
        return [
            (key, instrument)
            for key, instrument in sorted(self._instruments.items())
            if instrument.kind == "histogram"
        ]

    # -- snapshots and merging -------------------------------------------
    def to_dict(self) -> Dict[str, Dict[str, Any]]:
        """JSON-able snapshot: ``{key: {"kind": ..., "value": ...}}``.

        Keys are emitted in sorted order so two equal registries always
        serialize identically — the property the runtime's byte-identity
        guarantees lean on.
        """
        with self._lock:
            return {
                key: {
                    "kind": instrument.kind,
                    "value": instrument.to_value(),
                }
                for key, instrument in sorted(self._instruments.items())
            }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Mapping[str, Any]]) -> "MetricsRegistry":
        """Rebuild a registry from a :meth:`to_dict` snapshot."""
        registry = cls()
        for key in sorted(payload):
            entry = payload[key]
            kind = entry.get("kind")
            if kind not in _KINDS:
                raise ObservabilityError(
                    f"metric {key!r} has unknown kind {kind!r}"
                )
            registry._instruments[key] = _KINDS[kind].from_value(entry["value"])
        return registry

    def merge(
        self, other: Union["MetricsRegistry", Mapping[str, Mapping[str, Any]]]
    ) -> "MetricsRegistry":
        """Fold another registry (or snapshot dict) into this one."""
        if not isinstance(other, MetricsRegistry):
            other = MetricsRegistry.from_dict(other)
        with self._lock:
            for key in sorted(other._instruments):
                theirs = other._instruments[key]
                mine = self._instruments.get(key)
                if mine is None:
                    self._instruments[key] = type(theirs).from_value(
                        theirs.to_value()
                    )
                elif mine.kind != theirs.kind:
                    raise ObservabilityError(
                        f"metric {key!r} kind mismatch on merge: "
                        f"{mine.kind} vs {theirs.kind}"
                    )
                else:
                    mine.merge(theirs)
        return self


# -- ambient collection ------------------------------------------------------
#: per-thread stacks of active registries; instrumented code writes into
#: the top of its own thread's stack.  Thread-local on purpose: two
#: serve jobs collecting concurrently in different worker threads must
#: never see (or pop) each other's registries.
_AMBIENT = threading.local()


def _stack() -> List[MetricsRegistry]:
    try:
        return _AMBIENT.stack
    except AttributeError:
        stack: List[MetricsRegistry] = []
        _AMBIENT.stack = stack
        return stack


def active() -> bool:
    """True when a collection scope is open (instrumentation is live)."""
    return bool(_stack())


def current() -> Optional[MetricsRegistry]:
    """The registry instrumented code is currently writing into."""
    stack = _stack()
    return stack[-1] if stack else None


@contextmanager
def collecting(registry: MetricsRegistry) -> Iterator[MetricsRegistry]:
    """Route the ambient helpers into ``registry`` for the scope."""
    stack = _stack()
    stack.append(registry)
    try:
        yield registry
    finally:
        stack.pop()


def inc(name: str, amount: Union[int, float] = 1, **labels: Any) -> None:
    """Increment a counter in the active registry (no-op when inactive)."""
    stack = _stack()
    if stack:
        stack[-1].counter(name, **labels).inc(amount)


def observe(name: str, value: Union[int, float], **labels: Any) -> None:
    """Record a histogram sample in the active registry (no-op when
    inactive)."""
    stack = _stack()
    if stack:
        stack[-1].histogram(name, **labels).observe(value)


def set_gauge(name: str, value: Union[int, float], **labels: Any) -> None:
    """Set a gauge level in the active registry (no-op when inactive)."""
    stack = _stack()
    if stack:
        stack[-1].gauge(name, **labels).set(value)
