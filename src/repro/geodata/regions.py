"""Region algebra: the paper's geographic units of analysis.

The paper groups flow endpoints into seven region labels (Figures 6, 7,
10 and Table 8): ``EU 28``, ``Rest of Europe``, ``N. America``,
``S. America``, ``Asia``, ``Africa`` and ``Oceania``.  Crucially, EU28 is
carved *out* of Europe — a flow from Germany to Switzerland counts as
leaving the GDPR jurisdiction even though it stays on the continent.
"""

from __future__ import annotations

import enum
from typing import Dict, Optional

from repro.errors import GeoDataError
from repro.geodata.countries import Country, CountryRegistry, default_registry


class Region(enum.Enum):
    """The paper's seven region labels plus an ``UNKNOWN`` bucket."""

    EU28 = "EU 28"
    REST_EUROPE = "Rest of Europe"
    NORTH_AMERICA = "N. America"
    SOUTH_AMERICA = "S. America"
    ASIA = "Asia"
    AFRICA = "Africa"
    OCEANIA = "Oceania"
    UNKNOWN = "unknown"

    def __str__(self) -> str:  # pragma: no cover - display helper
        return self.value


CONTINENT_NAMES: Dict[str, str] = {
    "AF": "Africa",
    "AS": "Asia",
    "EU": "Europe",
    "NA": "N. America",
    "OC": "Oceania",
    "SA": "S. America",
}

_CONTINENT_TO_REGION: Dict[str, Region] = {
    "AF": Region.AFRICA,
    "AS": Region.ASIA,
    "NA": Region.NORTH_AMERICA,
    "OC": Region.OCEANIA,
    "SA": Region.SOUTH_AMERICA,
}


def region_of_country(
    iso2: Optional[str], registry: Optional[CountryRegistry] = None
) -> Region:
    """Map a country code to the paper's region label.

    ``None`` (geolocation failed) maps to :attr:`Region.UNKNOWN`.
    """
    if iso2 is None:
        return Region.UNKNOWN
    registry = registry or default_registry()
    country = registry.find(iso2)
    if country is None:
        raise GeoDataError(f"unknown country code {iso2!r}")
    return region_of(country)


def region_of(country: Country) -> Region:
    """Map a :class:`Country` to the paper's region label."""
    if country.continent == "EU":
        return Region.EU28 if country.eu28 else Region.REST_EUROPE
    return _CONTINENT_TO_REGION[country.continent]


def continent_label(country: Country) -> str:
    """Plain continent display name (Europe undivided), for diagnostics."""
    return CONTINENT_NAMES[country.continent]


def same_country(origin: Optional[str], destination: Optional[str]) -> bool:
    """True when both endpoints geolocate to the same known country."""
    return origin is not None and origin == destination


def same_region(
    origin: Optional[str],
    destination: Optional[str],
    registry: Optional[CountryRegistry] = None,
) -> bool:
    """True when both endpoints fall in the same known paper region."""
    origin_region = region_of_country(origin, registry)
    destination_region = region_of_country(destination, registry)
    if Region.UNKNOWN in (origin_region, destination_region):
        return False
    return origin_region is destination_region


def in_gdpr_jurisdiction(
    iso2: Optional[str], registry: Optional[CountryRegistry] = None
) -> bool:
    """True when the country is an EU28 member (GDPR jurisdiction)."""
    return region_of_country(iso2, registry) is Region.EU28
