"""Great-circle distance and the geodesic latency model.

The active-geolocation substrate (``repro.geoloc``) emulates RIPE
IPmap-style measurements: probes ping a target and the shortest observed
RTT constrains the target's location.  The physics here is the standard
speed-of-light-in-fibre bound: light in glass covers roughly 200 km per
millisecond, and real paths are longer than geodesics, so measured RTTs
sit above ``2 * distance / 200`` with path-stretch and queueing noise on
top.  :func:`min_rtt_ms` produces such an RTT sample.
"""

from __future__ import annotations

import math
import random
from typing import Optional, Tuple

from repro.errors import ValidationError

EARTH_RADIUS_KM = 6371.0
#: kilometres light travels per millisecond in fibre (c / refractive index)
FIBRE_KM_PER_MS = 200.0
#: typical multiplicative path stretch of real routes over geodesics
DEFAULT_PATH_STRETCH = 1.4
#: fixed last-mile / serialization overhead added to every RTT sample
BASE_OVERHEAD_MS = 0.4


def great_circle_km(
    lat1: float, lon1: float, lat2: float, lon2: float
) -> float:
    """Great-circle distance in kilometres between two lat/lon points.

    Uses the haversine formula, which is numerically stable for the
    distances this simulation needs.
    """
    phi1, phi2 = math.radians(lat1), math.radians(lat2)
    dphi = math.radians(lat2 - lat1)
    dlmb = math.radians(lon2 - lon1)
    a = (
        math.sin(dphi / 2.0) ** 2
        + math.cos(phi1) * math.cos(phi2) * math.sin(dlmb / 2.0) ** 2
    )
    return 2.0 * EARTH_RADIUS_KM * math.asin(min(1.0, math.sqrt(a)))


def propagation_floor_ms(distance_km: float) -> float:
    """Hard lower bound on RTT for a given geodesic distance."""
    if distance_km < 0:
        raise ValidationError("distance must be non-negative")
    return 2.0 * distance_km / FIBRE_KM_PER_MS


def min_rtt_ms(
    distance_km: float,
    rng: Optional[random.Random] = None,
    path_stretch: float = DEFAULT_PATH_STRETCH,
    base_overhead_ms: float = BASE_OVERHEAD_MS,
) -> float:
    """Sample a minimum-of-several-pings RTT for ``distance_km``.

    The sample is the propagation floor multiplied by the path stretch,
    plus a last-mile/serialization overhead and a small one-sided noise
    term.  It is guaranteed to stay at or above the physical floor, the
    property the multilateration engine relies on.
    """
    floor = propagation_floor_ms(distance_km)
    stretch = max(1.0, path_stretch)
    noise = 0.0
    if rng is not None:
        # One-sided: queueing and detours only ever add latency.  The
        # magnitude models the residual spread of a minimum over many
        # pings, so it is small relative to the propagation component.
        noise = abs(rng.gauss(0.0, 0.06)) * (floor + 1.0) + rng.random() * 0.2
    return floor * stretch + base_overhead_ms + noise


def rtt_upper_bound_km(rtt_ms: float) -> float:
    """Largest geodesic distance compatible with an observed RTT.

    Inverts the physical floor only (no stretch), so the bound is always
    conservative: the true target is never farther than this.
    """
    if rtt_ms < 0:
        raise ValidationError("rtt must be non-negative")
    return rtt_ms * FIBRE_KM_PER_MS / 2.0


def midpoint(
    a: Tuple[float, float], b: Tuple[float, float]
) -> Tuple[float, float]:
    """Approximate geographic midpoint of two lat/lon points.

    Good enough for the probe-mesh placement jitter; not used for any
    measurement math.
    """
    return ((a[0] + b[0]) / 2.0, (a[1] + b[1]) / 2.0)
