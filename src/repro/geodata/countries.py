"""Country registry: the geographic ground truth of the simulated world.

Each :class:`Country` carries the attributes the reproduction needs:

* ISO-3166 alpha-2 code and display name,
* continent code (``EU``, ``NA``, ``SA``, ``AS``, ``AF``, ``OC``),
* EU28 membership as of 2018 (the GDPR jurisdiction studied by the paper
  — note the United Kingdom *is* a member in this period),
* a population figure (millions) used to scale user bases,
* an IT-infrastructure index in ``[0, 100]`` approximating relative
  datacenter / hosting density.  The paper finds that national
  confinement of tracking flows correlates with this density (Sect. 5 and
  7.3); the index drives where organizations deploy PoPs.
* a latitude / longitude centroid used by the latency model.

The values are order-of-magnitude realistic (2018-era) but are inputs to
a simulation, not a data product.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.errors import GeoDataError

CONTINENTS = ("AF", "AS", "EU", "NA", "OC", "SA")


@dataclass(frozen=True)
class Country:
    """A country with the attributes the simulation depends on."""

    iso2: str
    name: str
    continent: str
    eu28: bool
    population_m: float
    infra_index: float
    lat: float
    lon: float

    def __post_init__(self) -> None:
        if self.continent not in CONTINENTS:
            raise GeoDataError(f"unknown continent {self.continent!r}")
        if not 0.0 <= self.infra_index <= 100.0:
            raise GeoDataError("infra_index must be within [0, 100]")
        if self.eu28 and self.continent != "EU":
            raise GeoDataError(f"{self.iso2}: EU28 members must be in Europe")

    @property
    def hosting_site(self) -> Tuple[float, float]:
        """Where the country's datacenters actually cluster.

        Hosting concentrates at interconnection hubs, which are often
        far from the demographic centroid (Germany hosts at Frankfurt,
        not Berlin; the US east-coast hub is Ashburn).  Server placement
        and resolver egress use this point; the plain centroid remains
        the eyeball/user location.
        """
        return HOSTING_SITES.get(self.iso2, (self.lat, self.lon))

    @property
    def jitter_radius_deg(self) -> float:
        """Placement jitter (degrees) for probes/servers/users.

        Scaled with population as a crude proxy for territory so that
        entities placed "in" a small country do not physically land
        across its borders (which would corrupt the active-geolocation
        ground truth).
        """
        return min(1.5, 0.3 + self.population_m / 80.0)


#: datacenter-hub coordinates where they differ meaningfully from the
#: demographic centroid (Frankfurt, Ashburn, Milan, Zurich, ...)
HOSTING_SITES: Dict[str, Tuple[float, float]] = {
    "DE": (50.11, 8.68),    # Frankfurt (DE-CIX)
    "US": (39.04, -77.49),  # Ashburn, VA
    "IT": (45.46, 9.19),    # Milan
    "CH": (47.37, 8.54),    # Zurich
    "RU": (55.76, 37.62),   # Moscow
    "CA": (43.65, -79.38),  # Toronto
    "BR": (-23.55, -46.63), # São Paulo
    "AU": (-33.87, 151.21), # Sydney
    "IN": (19.08, 72.88),   # Mumbai
    "CN": (31.23, 121.47),  # Shanghai
}

# (iso2, name, continent, eu28, population_m, infra_index, lat, lon)
_COUNTRY_ROWS: List[Tuple[str, str, str, bool, float, float, float, float]] = [
    # --- EU28 (2018 membership, including the UK) -----------------------
    ("AT", "Austria", "EU", True, 8.8, 42.0, 48.21, 16.37),
    ("BE", "Belgium", "EU", True, 11.4, 40.0, 50.85, 4.35),
    ("BG", "Bulgaria", "EU", True, 7.0, 16.0, 42.70, 23.32),
    ("HR", "Croatia", "EU", True, 4.1, 10.0, 45.81, 15.98),
    ("CY", "Cyprus", "EU", True, 1.2, 4.0, 35.17, 33.36),
    ("CZ", "Czechia", "EU", True, 10.6, 28.0, 50.08, 14.44),
    ("DK", "Denmark", "EU", True, 5.8, 30.0, 55.68, 12.57),
    ("EE", "Estonia", "EU", True, 1.3, 12.0, 59.44, 24.75),
    ("FI", "Finland", "EU", True, 5.5, 26.0, 60.17, 24.94),
    ("FR", "France", "EU", True, 67.0, 78.0, 48.86, 2.35),
    ("DE", "Germany", "EU", True, 82.8, 95.0, 52.52, 13.41),
    ("GR", "Greece", "EU", True, 10.7, 10.0, 37.98, 23.73),
    ("HU", "Hungary", "EU", True, 9.8, 18.0, 47.50, 19.04),
    ("IE", "Ireland", "EU", True, 4.8, 70.0, 53.35, -6.26),
    ("IT", "Italy", "EU", True, 60.5, 55.0, 41.90, 12.50),
    ("LV", "Latvia", "EU", True, 1.9, 9.0, 56.95, 24.11),
    ("LT", "Lithuania", "EU", True, 2.8, 11.0, 54.69, 25.28),
    ("LU", "Luxembourg", "EU", True, 0.6, 22.0, 49.61, 6.13),
    ("MT", "Malta", "EU", True, 0.5, 3.0, 35.90, 14.51),
    ("NL", "Netherlands", "EU", True, 17.2, 90.0, 52.37, 4.90),
    ("PL", "Poland", "EU", True, 38.0, 32.0, 52.23, 21.01),
    ("PT", "Portugal", "EU", True, 10.3, 18.0, 38.72, -9.14),
    ("RO", "Romania", "EU", True, 19.5, 14.0, 44.43, 26.10),
    ("SK", "Slovakia", "EU", True, 5.4, 12.0, 48.15, 17.11),
    ("SI", "Slovenia", "EU", True, 2.1, 9.0, 46.05, 14.51),
    ("ES", "Spain", "EU", True, 46.7, 50.0, 40.42, -3.70),
    ("SE", "Sweden", "EU", True, 10.1, 38.0, 59.33, 18.07),
    ("GB", "United Kingdom", "EU", True, 66.0, 92.0, 51.51, -0.13),
    # --- Rest of Europe --------------------------------------------------
    ("CH", "Switzerland", "EU", False, 8.5, 44.0, 46.95, 7.45),
    ("NO", "Norway", "EU", False, 5.3, 24.0, 59.91, 10.75),
    ("RU", "Russia", "EU", False, 144.5, 34.0, 55.76, 37.62),
    ("RS", "Serbia", "EU", False, 7.0, 7.0, 44.79, 20.45),
    ("MD", "Moldova", "EU", False, 3.5, 3.0, 47.01, 28.86),
    ("UA", "Ukraine", "EU", False, 44.2, 12.0, 50.45, 30.52),
    ("IS", "Iceland", "EU", False, 0.35, 8.0, 64.15, -21.94),
    ("TR", "Turkey", "EU", False, 82.0, 16.0, 39.93, 32.86),
    # --- North America ----------------------------------------------------
    ("US", "United States", "NA", False, 327.0, 100.0, 38.90, -77.04),
    ("CA", "Canada", "NA", False, 37.0, 55.0, 45.42, -75.70),
    ("MX", "Mexico", "NA", False, 126.0, 20.0, 19.43, -99.13),
    ("PA", "Panama", "NA", False, 4.2, 5.0, 8.98, -79.52),
    # --- South America ----------------------------------------------------
    ("BR", "Brazil", "SA", False, 209.0, 30.0, -15.79, -47.88),
    ("AR", "Argentina", "SA", False, 44.5, 14.0, -34.60, -58.38),
    ("CL", "Chile", "SA", False, 18.7, 12.0, -33.45, -70.67),
    ("CO", "Colombia", "SA", False, 49.7, 10.0, 4.71, -74.07),
    ("PE", "Peru", "SA", False, 32.0, 6.0, -12.05, -77.04),
    ("VE", "Venezuela", "SA", False, 28.9, 4.0, 10.48, -66.90),
    # --- Asia --------------------------------------------------------------
    ("JP", "Japan", "AS", False, 126.5, 60.0, 35.68, 139.69),
    ("SG", "Singapore", "AS", False, 5.6, 58.0, 1.35, 103.82),
    ("HK", "Hong Kong", "AS", False, 7.4, 50.0, 22.32, 114.17),
    ("IN", "India", "AS", False, 1353.0, 28.0, 28.61, 77.21),
    ("CN", "China", "AS", False, 1393.0, 42.0, 39.90, 116.40),
    ("MY", "Malaysia", "AS", False, 31.5, 14.0, 3.14, 101.69),
    ("TH", "Thailand", "AS", False, 69.4, 12.0, 13.76, 100.50),
    ("TW", "Taiwan", "AS", False, 23.6, 26.0, 25.03, 121.57),
    ("KR", "South Korea", "AS", False, 51.6, 38.0, 37.57, 126.98),
    ("IL", "Israel", "AS", False, 8.9, 20.0, 31.77, 35.21),
    ("AE", "United Arab Emirates", "AS", False, 9.6, 16.0, 24.45, 54.38),
    ("ID", "Indonesia", "AS", False, 267.0, 10.0, -6.21, 106.85),
    # --- Africa ------------------------------------------------------------
    ("ZA", "South Africa", "AF", False, 57.8, 14.0, -25.75, 28.19),
    ("EG", "Egypt", "AF", False, 98.4, 8.0, 30.04, 31.24),
    ("NG", "Nigeria", "AF", False, 195.9, 6.0, 9.06, 7.49),
    ("KE", "Kenya", "AF", False, 51.4, 6.0, -1.29, 36.82),
    ("TN", "Tunisia", "AF", False, 11.6, 4.0, 36.81, 10.18),
    ("MA", "Morocco", "AF", False, 36.0, 5.0, 34.02, -6.84),
    # --- Oceania -----------------------------------------------------------
    ("AU", "Australia", "OC", False, 24.9, 34.0, -35.28, 149.13),
    ("NZ", "New Zealand", "OC", False, 4.9, 12.0, -41.29, 174.78),
]


class CountryRegistry:
    """Lookup and iteration over the simulated world's countries."""

    def __init__(self, countries: Iterable[Country]) -> None:
        self._by_iso2: Dict[str, Country] = {}
        for country in countries:
            if country.iso2 in self._by_iso2:
                raise GeoDataError(f"duplicate country {country.iso2}")
            self._by_iso2[country.iso2] = country

    def __len__(self) -> int:
        return len(self._by_iso2)

    def __contains__(self, iso2: str) -> bool:
        return iso2 in self._by_iso2

    def __iter__(self):
        return iter(sorted(self._by_iso2.values(), key=lambda c: c.iso2))

    def get(self, iso2: str) -> Country:
        """Return the country for ``iso2`` or raise :class:`GeoDataError`."""
        country = self._by_iso2.get(iso2)
        if country is None:
            raise GeoDataError(f"unknown country code {iso2!r}")
        return country

    def find(self, iso2: str) -> Optional[Country]:
        """Return the country for ``iso2`` or ``None``."""
        return self._by_iso2.get(iso2)

    def eu28(self) -> List[Country]:
        """Return EU28 member countries sorted by ISO code."""
        return [c for c in self if c.eu28]

    def in_continent(self, continent: str) -> List[Country]:
        if continent not in CONTINENTS:
            raise GeoDataError(f"unknown continent {continent!r}")
        return [c for c in self if c.continent == continent]

    def codes(self) -> List[str]:
        return sorted(self._by_iso2)


_DEFAULT: Optional[CountryRegistry] = None


def default_registry() -> CountryRegistry:
    """Return the process-wide default registry (immutable; built once)."""
    # An idempotent memo of immutable data built from a module constant:
    # every process converges to the same registry, so shard outputs
    # cannot depend on which worker built it first.
    global _DEFAULT  # reprolint: disable=P501
    if _DEFAULT is None:
        # Benign race: losers rebuild identical immutable data, so the
        # lock-free memo needs no witness.
        _DEFAULT = CountryRegistry(  # reprolint: disable=T1003
            Country(*row) for row in _COUNTRY_ROWS
        )
    return _DEFAULT
