"""Geographic ground truth: country registry, region algebra (EU28,
continents, GDPR jurisdiction), and the geodesic distance / latency model
used by the active-geolocation substrate."""

from repro.geodata.countries import Country, CountryRegistry, default_registry
from repro.geodata.regions import (
    CONTINENT_NAMES,
    Region,
    continent_label,
    region_of_country,
)
from repro.geodata.distance import great_circle_km, min_rtt_ms

__all__ = [
    "Country",
    "CountryRegistry",
    "default_registry",
    "Region",
    "CONTINENT_NAMES",
    "continent_label",
    "region_of_country",
    "great_circle_km",
    "min_rtt_ms",
]
