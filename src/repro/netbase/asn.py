"""Autonomous-system registry.

ASes give endpoints an organizational identity independent of geography:
an eyeball AS (an ISP's access network), a hosting AS (a datacenter
operator or a tracker's own infrastructure), or a cloud AS.  The NetFlow
exporter stamps flows with the AS of the external endpoint, and the
commercial-geolocation emulation uses the AS registration country as its
(wrong, legal-seat) answer for infrastructure addresses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

from repro.errors import ReproError

AS_KINDS = ("eyeball", "hosting", "cloud", "transit")


@dataclass(frozen=True)
class AutonomousSystem:
    """A simulated AS: number, display name, kind, registration country."""

    number: int
    name: str
    kind: str
    registered_country: str

    def __post_init__(self) -> None:
        if self.number <= 0:
            raise ReproError("AS number must be positive")
        if self.kind not in AS_KINDS:
            raise ReproError(f"unknown AS kind {self.kind!r}")


class ASRegistry:
    """Allocation and lookup of simulated AS numbers."""

    #: private-use 32-bit ASN range start; keeps simulated numbers
    #: visually distinct from well-known real ASNs.
    FIRST_NUMBER = 4_200_000_000

    def __init__(self) -> None:
        self._by_number: Dict[int, AutonomousSystem] = {}
        self._next = self.FIRST_NUMBER

    def __len__(self) -> int:
        return len(self._by_number)

    def register(
        self, name: str, kind: str, registered_country: str
    ) -> AutonomousSystem:
        """Allocate the next AS number and register the AS under it."""
        asn = AutonomousSystem(
            number=self._next,
            name=name,
            kind=kind,
            registered_country=registered_country,
        )
        self._by_number[asn.number] = asn
        self._next += 1
        return asn

    def get(self, number: int) -> AutonomousSystem:
        try:
            return self._by_number[number]
        except KeyError:
            raise ReproError(f"unknown AS number {number}") from None

    def find(self, number: int) -> Optional[AutonomousSystem]:
        return self._by_number.get(number)

    def all(self) -> List[AutonomousSystem]:
        return sorted(self._by_number.values(), key=lambda a: a.number)

    def by_kind(self, kind: str) -> List[AutonomousSystem]:
        if kind not in AS_KINDS:
            raise ReproError(f"unknown AS kind {kind!r}")
        return [a for a in self.all() if a.kind == kind]

    def extend(self, ases: Iterable[AutonomousSystem]) -> None:
        """Bulk-register externally constructed AS objects."""
        for asn in ases:
            if asn.number in self._by_number:
                raise ReproError(f"duplicate AS number {asn.number}")
            self._by_number[asn.number] = asn
            self._next = max(self._next, asn.number + 1)
