"""RIR-style address-plan allocator.

The simulated world needs a coherent address plan: every eyeball user and
every server gets an address from a prefix whose metadata records the
*true* country and the *kind* of network (eyeball access, hosting /
datacenter, or cloud).  The geolocation substrate consults this metadata
as ground truth; the commercial-database emulation deliberately ignores
parts of it (that is the paper's Table 3/4 effect).

Layout: the IPv4 space region ``10.0.0.0/8`` ... is NOT used; instead we
carve the full unicast space abstractly — the simulation never talks to a
real network, so we simply hand out /16s from ``1.0.0.0`` upward and tag
them.  IPv6 pools are carved from ``2001:db8::/32`` (the documentation
prefix) for the ~3% of tracker IPs the paper reports as IPv6.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from repro.errors import AllocationError
from repro.netbase.addr import IPAddress, Prefix

#: network kinds recorded on allocated prefixes
KINDS = ("eyeball", "hosting", "cloud")


@dataclass(frozen=True)
class PrefixRecord:
    """Metadata attached to an allocated prefix."""

    prefix: Prefix
    country: str
    kind: str
    owner: str

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise AllocationError(f"unknown prefix kind {self.kind!r}")


class PrefixPool:
    """Sequential allocator of sub-prefixes and addresses from one prefix."""

    def __init__(self, prefix: Prefix) -> None:
        self.prefix = prefix
        self._cursor = prefix.network
        self._end = prefix.network + prefix.num_addresses

    @property
    def remaining(self) -> int:
        return self._end - self._cursor

    def allocate_prefix(self, length: int) -> Prefix:
        """Carve the next aligned sub-prefix of the given mask length."""
        if length < self.prefix.length:
            raise AllocationError(
                f"cannot allocate /{length} from {self.prefix}"
            )
        size = 1 << (
            (32 if self.prefix.version == 4 else 128) - length
        )
        # Align the cursor up to the subnet size.
        aligned = (self._cursor + size - 1) & ~(size - 1)
        if aligned + size > self._end:
            raise AllocationError(f"pool {self.prefix} exhausted")
        self._cursor = aligned + size
        return Prefix(self.prefix.version, aligned, length)

    def allocate_address(self) -> IPAddress:
        """Hand out the next single address."""
        if self._cursor >= self._end:
            raise AllocationError(f"pool {self.prefix} exhausted")
        address = IPAddress(self.prefix.version, self._cursor)
        self._cursor += 1
        return address


@dataclass
class AddressPlan:
    """The world's address plan: tagged pools per (country, kind, owner).

    ``lookup(ip)`` recovers the :class:`PrefixRecord` covering an
    address, which is how ground-truth location and network kind are
    attached to every endpoint in the simulation.
    """

    v4_root: Prefix = field(
        default_factory=lambda: Prefix.parse("1.0.0.0/8")
    )
    v6_root: Prefix = field(
        default_factory=lambda: Prefix.parse("2001:db8::/32")
    )

    def __post_init__(self) -> None:
        self._v4_super = PrefixPool(self.v4_root)
        self._v6_super = PrefixPool(self.v6_root)
        self._records: List[PrefixRecord] = []
        self._pools: Dict[Prefix, PrefixPool] = {}
        # Index from (version, /16-truncated network) to candidate records
        # for fast lookup.
        self._index: Dict[Tuple[int, int], List[PrefixRecord]] = {}

    # -- pool creation -----------------------------------------------------
    def create_pool(
        self,
        country: str,
        kind: str,
        owner: str,
        length: int = 20,
        version: int = 4,
    ) -> PrefixRecord:
        """Allocate and register a fresh tagged pool.

        Returns the :class:`PrefixRecord`; use :meth:`pool` to draw
        addresses from it.
        """
        superpool = self._v4_super if version == 4 else self._v6_super
        try:
            prefix = superpool.allocate_prefix(length)
        except AllocationError as exc:
            raise AllocationError(
                f"address space exhausted creating pool for {owner}"
            ) from exc
        record = PrefixRecord(prefix=prefix, country=country, kind=kind, owner=owner)
        self._records.append(record)
        self._pools[prefix] = PrefixPool(prefix)
        bucket_bits = 16 if version == 4 else 48
        width = 32 if version == 4 else 128
        lo_bucket = prefix.network >> (width - bucket_bits)
        hi_bucket = (prefix.network + prefix.num_addresses - 1) >> (
            width - bucket_bits
        )
        for bucket in range(lo_bucket, hi_bucket + 1):
            self._index.setdefault((version, bucket), []).append(record)
        return record

    def pool(self, prefix: Prefix) -> PrefixPool:
        """The live allocator behind a registered pool prefix."""
        try:
            return self._pools[prefix]
        except KeyError:
            raise AllocationError(f"unregistered pool {prefix}") from None

    # -- queries ---------------------------------------------------------
    def lookup(self, address: IPAddress) -> Optional[PrefixRecord]:
        """Find the registered prefix covering ``address``, if any."""
        bucket_bits = 16 if address.version == 4 else 48
        width = 32 if address.version == 4 else 128
        bucket = address.value >> (width - bucket_bits)
        for record in self._index.get((address.version, bucket), ()):
            if address in record.prefix:
                return record
        return None

    def records(self) -> Iterator[PrefixRecord]:
        return iter(self._records)

    def records_for(
        self, country: Optional[str] = None, kind: Optional[str] = None,
        owner: Optional[str] = None,
    ) -> List[PrefixRecord]:
        """Filter registered pools by any combination of attributes."""
        out = []
        for record in self._records:
            if country is not None and record.country != country:
                continue
            if kind is not None and record.kind != kind:
                continue
            if owner is not None and record.owner != owner:
                continue
            out.append(record)
        return out
