"""Network addressing substrate: IPv4/IPv6 value types, prefix
arithmetic, an RIR-style address-plan allocator, and an autonomous-system
registry.  Everything above this layer (DNS, web, NetFlow, geolocation)
speaks in these types."""

from repro.netbase.addr import IPAddress, Prefix
from repro.netbase.allocator import AddressPlan, PrefixPool, PrefixRecord
from repro.netbase.asn import AutonomousSystem, ASRegistry

__all__ = [
    "IPAddress",
    "Prefix",
    "AddressPlan",
    "PrefixPool",
    "PrefixRecord",
    "AutonomousSystem",
    "ASRegistry",
]
