"""IP address and prefix value types.

Implemented from first principles (integer arithmetic over the 32- and
128-bit address spaces) rather than on top of :mod:`ipaddress`, because
the allocator and the NetFlow exporter need cheap, hashable, orderable
value types and bulk prefix arithmetic.

IPv4 parsing accepts dotted-quad; IPv6 parsing accepts full and
``::``-compressed hextet forms (sufficient for the simulation, which
generates all addresses itself).  Formatting always produces canonical
text (IPv6 with the longest zero run compressed).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Tuple

from repro.errors import AddressError

_MAX = {4: (1 << 32) - 1, 6: (1 << 128) - 1}
_BITS = {4: 32, 6: 128}


@dataclass(frozen=True, order=True)
class IPAddress:
    """An IPv4 or IPv6 address as an integer plus a version tag."""

    version: int
    value: int

    def __post_init__(self) -> None:
        if self.version not in (4, 6):
            raise AddressError(f"unknown IP version {self.version!r}")
        if not 0 <= self.value <= _MAX[self.version]:
            raise AddressError(
                f"address value out of range for IPv{self.version}"
            )

    # -- construction -----------------------------------------------------
    @classmethod
    def parse(cls, text: str) -> "IPAddress":
        """Parse dotted-quad IPv4 or (possibly compressed) IPv6 text."""
        if ":" in text:
            return cls(6, _parse_v6(text))
        return cls(4, _parse_v4(text))

    @classmethod
    def v4(cls, value: int) -> "IPAddress":
        return cls(4, value)

    @classmethod
    def v6(cls, value: int) -> "IPAddress":
        return cls(6, value)

    # -- arithmetic ---------------------------------------------------------
    def __add__(self, offset: int) -> "IPAddress":
        return IPAddress(self.version, self.value + offset)

    def __int__(self) -> int:
        return self.value

    # -- presentation ---------------------------------------------------------
    def __str__(self) -> str:
        if self.version == 4:
            return _format_v4(self.value)
        return _format_v6(self.value)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"IPAddress({str(self)!r})"


def _parse_v4(text: str) -> int:
    parts = text.split(".")
    if len(parts) != 4:
        raise AddressError(f"malformed IPv4 address {text!r}")
    value = 0
    for part in parts:
        if not part.isdigit() or (len(part) > 1 and part[0] == "0"):
            raise AddressError(f"malformed IPv4 octet {part!r} in {text!r}")
        octet = int(part)
        if octet > 255:
            raise AddressError(f"IPv4 octet out of range in {text!r}")
        value = (value << 8) | octet
    return value


def _format_v4(value: int) -> str:
    return ".".join(
        str((value >> shift) & 0xFF) for shift in (24, 16, 8, 0)
    )


def _parse_v6(text: str) -> int:
    if text.count("::") > 1:
        raise AddressError(f"malformed IPv6 address {text!r}")
    if "::" in text:
        head_text, tail_text = text.split("::", 1)
        head = head_text.split(":") if head_text else []
        tail = tail_text.split(":") if tail_text else []
        missing = 8 - len(head) - len(tail)
        if missing < 1:
            raise AddressError(f"malformed IPv6 address {text!r}")
        groups = head + ["0"] * missing + tail
    else:
        groups = text.split(":")
        if len(groups) != 8:
            raise AddressError(f"malformed IPv6 address {text!r}")
    value = 0
    for group in groups:
        if not group or len(group) > 4:
            raise AddressError(f"malformed IPv6 hextet {group!r} in {text!r}")
        try:
            hextet = int(group, 16)
        except ValueError:
            raise AddressError(
                f"malformed IPv6 hextet {group!r} in {text!r}"
            ) from None
        value = (value << 16) | hextet
    return value


def _format_v6(value: int) -> str:
    groups = [(value >> (16 * (7 - i))) & 0xFFFF for i in range(8)]
    # Find the longest run of zero groups (length >= 2) to compress.
    best_start, best_len = -1, 0
    run_start, run_len = -1, 0
    for index, group in enumerate(groups):
        if group == 0:
            if run_start < 0:
                run_start, run_len = index, 0
            run_len += 1
            if run_len > best_len:
                best_start, best_len = run_start, run_len
        else:
            run_start, run_len = -1, 0
    if best_len >= 2:
        head = ":".join(f"{g:x}" for g in groups[:best_start])
        tail = ":".join(f"{g:x}" for g in groups[best_start + best_len :])
        return f"{head}::{tail}"
    return ":".join(f"{g:x}" for g in groups)


@dataclass(frozen=True, order=True)
class Prefix:
    """A CIDR prefix: a network address and a mask length."""

    version: int
    network: int
    length: int

    def __post_init__(self) -> None:
        if self.version not in (4, 6):
            raise AddressError(f"unknown IP version {self.version!r}")
        bits = _BITS[self.version]
        if not 0 <= self.length <= bits:
            raise AddressError(
                f"prefix length {self.length} out of range for IPv{self.version}"
            )
        if not 0 <= self.network <= _MAX[self.version]:
            raise AddressError("network value out of range")
        if self.network & self.host_mask():
            raise AddressError(
                f"network {self.network:#x} has host bits set for /{self.length}"
            )

    # -- construction -----------------------------------------------------
    @classmethod
    def parse(cls, text: str) -> "Prefix":
        """Parse ``address/length`` CIDR text."""
        if "/" not in text:
            raise AddressError(f"missing /length in prefix {text!r}")
        addr_text, length_text = text.rsplit("/", 1)
        if not length_text.isdigit():
            raise AddressError(f"malformed prefix length in {text!r}")
        address = IPAddress.parse(addr_text)
        return cls(address.version, address.value, int(length_text))

    @classmethod
    def of(cls, address: IPAddress, length: int) -> "Prefix":
        """Prefix containing ``address`` with the given mask length."""
        bits = _BITS[address.version]
        mask = _MAX[address.version] ^ ((1 << (bits - length)) - 1) if length else 0
        return cls(address.version, address.value & mask, length)

    # -- mask helpers -----------------------------------------------------
    def host_bits(self) -> int:
        return _BITS[self.version] - self.length

    def host_mask(self) -> int:
        return (1 << self.host_bits()) - 1

    def netmask(self) -> int:
        return _MAX[self.version] ^ self.host_mask()

    # -- membership / size ----------------------------------------------------
    @property
    def num_addresses(self) -> int:
        return 1 << self.host_bits()

    def first(self) -> IPAddress:
        return IPAddress(self.version, self.network)

    def last(self) -> IPAddress:
        return IPAddress(self.version, self.network | self.host_mask())

    def __contains__(self, item: object) -> bool:
        if isinstance(item, IPAddress):
            return (
                item.version == self.version
                and item.value & self.netmask() == self.network
            )
        if isinstance(item, Prefix):
            return (
                item.version == self.version
                and item.length >= self.length
                and item.network & self.netmask() == self.network
            )
        return NotImplemented  # type: ignore[return-value]

    def overlaps(self, other: "Prefix") -> bool:
        if other.version != self.version:
            return False
        return other in self or self in other

    # -- subdivision -----------------------------------------------------
    def subnets(self, new_length: int) -> Iterator["Prefix"]:
        """Yield the subdivision of this prefix into /new_length subnets."""
        if new_length < self.length:
            raise AddressError("new_length must not be shorter than length")
        if new_length > _BITS[self.version]:
            raise AddressError("new_length exceeds address width")
        step = 1 << (_BITS[self.version] - new_length)
        for network in range(
            self.network, self.network + self.num_addresses, step
        ):
            yield Prefix(self.version, network, new_length)

    def supernet(self, new_length: int) -> "Prefix":
        """The enclosing prefix of mask length ``new_length``."""
        if new_length > self.length:
            raise AddressError("supernet must be shorter than prefix")
        return Prefix.of(self.first(), new_length)

    def addresses(self) -> Iterator[IPAddress]:
        """Iterate every address in the prefix (use only on small ones)."""
        for value in range(self.network, self.network + self.num_addresses):
            yield IPAddress(self.version, value)

    def nth(self, index: int) -> IPAddress:
        """The ``index``-th address of the prefix (0-based)."""
        if not 0 <= index < self.num_addresses:
            raise AddressError(
                f"address index {index} out of range for {self}"
            )
        return IPAddress(self.version, self.network + index)

    # -- presentation ---------------------------------------------------------
    def __str__(self) -> str:
        return f"{self.first()}/{self.length}"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Prefix({str(self)!r})"


def summarize(prefixes: List[Prefix]) -> List[Prefix]:
    """Collapse a prefix list: drop prefixes contained in another one.

    This is containment-deduplication, not full CIDR aggregation of
    adjacent prefixes; it is what the cloud-range matcher needs.
    """
    kept: List[Prefix] = []
    for candidate in sorted(prefixes, key=lambda p: (p.version, p.length)):
        if not any(candidate in existing for existing in kept):
            kept.append(candidate)
    return sorted(kept)


def prefix_key(prefix: Prefix) -> Tuple[int, int, int]:
    """Sort/lookup key for a prefix (version, network, length)."""
    return (prefix.version, prefix.network, prefix.length)
