"""Per-ISP traffic synthesis for the snapshot days.

The synthesizer drives the *same* web ecosystem the panel browsed — the
same FQDNs, the same authoritative DNS, the same server fleet — from the
vantage of an ISP's subscriber population, and exports sampled NetFlow.
Per flow it:

1. draws a tracking FQDN weighted by organization market share (what an
   average subscriber's browser fetches),
2. chooses the subscriber's resolver path — the ISP resolver for mobile
   users and, with the configured probability, a third-party public
   resolver for broadband users (the provider-type effect of
   Sect. 7.3),
3. resolves the FQDN and emits a user→server flow with the paper's
   observed port/protocol mix (>83% on 443, QUIC's UDP share, <0.5%
   non-web).

A smaller stream of background (non-tracking) flows to clean-service
servers is mixed in so the join has realistic negatives.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only
    import random

from repro.config import ISPConfig
from repro.dnssim.authority import ClientSite
from repro.errors import NetFlowError
from repro.netbase.addr import IPAddress, Prefix
from repro.netbase.allocator import AddressPlan
from repro.netflow.exporter import FlowExporter, PacketSampler, RouterInterface
from repro.netflow.isps import ISPProfile
from repro.netflow.records import PROTO_TCP, PROTO_UDP, FlowRecord
from repro.util.rng import RngStreams, WeightedSampler
from repro.web.browser import MappingService
from repro.web.deployment import DeployedFqdn, Fleet
from repro.web.organizations import ServiceRole

#: relative request frequency by FQDN role (mirrors the browsing mix)
_ROLE_TRAFFIC_WEIGHT: Dict[ServiceRole, float] = {
    ServiceRole.AD_SERVING: 1.6,
    ServiceRole.RTB_BID: 0.4,
    ServiceRole.COOKIE_SYNC: 0.9,
    ServiceRole.TRACKING_PIXEL: 0.7,
    ServiceRole.ANALYTICS_TAG: 1.2,
    ServiceRole.CDN: 1.2,
}


class TrafficSynthesizer:
    """Synthesizes one ISP's sampled tracking (and background) flows."""

    def __init__(
        self,
        isp: ISPProfile,
        fleet: Fleet,
        mapping: MappingService,
        plan: AddressPlan,
        config: ISPConfig,
        streams: RngStreams,
        n_subscriber_ips: int = 512,
    ) -> None:
        self._isp = isp
        self._fleet = fleet
        self._mapping = mapping
        self._config = config
        self._rng = streams.fork(f"isp-traffic-{isp.name}")
        self._tracking_sampler = self._build_sampler(tracking=True)
        self._clean_sampler = self._build_sampler(tracking=False)
        self._local_share, self._local_sampler = self._build_local_sampler()
        subscriber_pool = plan.create_pool(
            country=isp.country,
            kind="eyeball",
            owner=isp.name,
            length=22,
        )
        pool = plan.pool(subscriber_pool.prefix)
        self._subscriber_ips: List[IPAddress] = [
            pool.allocate_address() for _ in range(n_subscriber_ips)
        ]
        self._subscriber_prefix: Prefix = subscriber_pool.prefix
        self.exporter = FlowExporter(
            interfaces=[
                RouterInterface(router_id=r, interface_id=i, internal_edge=(i % 2 == 0))
                for r in range(1, 5)
                for i in range(4)
            ],
            subscriber_space=[subscriber_pool.prefix],
            sampler=PacketSampler(config.sampling_rate),
        )

    @property
    def subscriber_prefix(self) -> Prefix:
        return self._subscriber_prefix

    def _build_sampler(self, tracking: bool) -> WeightedSampler:
        fleet = self._fleet
        items: List[DeployedFqdn] = []
        weights: List[float] = []
        for deployed in fleet.fqdns():
            org = fleet.org(deployed.org_name)
            if org.is_tracking != tracking:
                continue
            role_weight = _ROLE_TRAFFIC_WEIGHT.get(deployed.role, 0.5)
            items.append(deployed)
            weights.append(org.market_weight * role_weight)
        if not items:
            raise NetFlowError(
                f"fleet has no {'tracking' if tracking else 'clean'} FQDNs"
            )
        return WeightedSampler(items, weights)

    #: share of tracking traffic going to nationally-homed trackers
    #: before availability damping — subscribers browse national sites,
    #: which embed the national ad-tech scene (cf. RTBEngine affinity)
    LOCAL_AFFINITY = 0.72
    LOCAL_AVAILABILITY_K = 20.0

    def _build_local_sampler(
        self,
    ) -> Tuple[float, Optional[WeightedSampler]]:
        from repro.web.organizations import OrgKind

        fleet = self._fleet
        local_kinds = (OrgKind.TRACKER, OrgKind.DMP, OrgKind.ANALYTICS)
        items: List[DeployedFqdn] = []
        weights: List[float] = []
        for deployed in fleet.fqdns():
            org = fleet.org(deployed.org_name)
            if (
                org.is_tracking
                and org.kind in local_kinds
                and org.legal_country == self._isp.country
            ):
                items.append(deployed)
                weights.append(org.market_weight)
        if not items:
            return 0.0, None
        share = self.LOCAL_AFFINITY * len(items) / (
            len(items) + self.LOCAL_AVAILABILITY_K
        )
        return share, WeightedSampler(items, weights)

    # -- public API ---------------------------------------------------------
    def snapshot(
        self,
        day: float,
        *,
        rng: Optional["random.Random"] = None,
        mapping: Optional[MappingService] = None,
    ) -> List[FlowRecord]:
        """Synthesize the sampled flows of one 24h snapshot.

        ``rng`` and ``mapping`` override the synthesizer's own stream
        and DNS mapping for this snapshot only.  The runtime uses them
        to run each (ISP, snapshot) shard against a shard-derived RNG
        and a private mapping clone, decoupling shards from each other
        and from the shared world state.
        """
        n_tracking = self._config.sampled_flows.get(self._isp.name)
        if n_tracking is None:
            raise NetFlowError(
                f"no sampled-flow budget configured for {self._isp.name}"
            )
        rng = self._rng if rng is None else rng
        mapping = self._mapping if mapping is None else mapping
        records: List[FlowRecord] = []
        for _ in range(n_tracking):
            sampler = self._tracking_sampler
            if (
                self._local_sampler is not None
                and rng.random() < self._local_share
            ):
                sampler = self._local_sampler
            records.append(self._make_flow(day, sampler, rng, mapping))
        for _ in range(self._config.background_flows):
            records.append(self._make_flow(day, self._clean_sampler, rng, mapping))
        records.sort(key=lambda r: r.timestamp)
        return [r for r in self.exporter.export(records)]

    # -- internals -----------------------------------------------------
    #: probability a public-resolver query carries EDNS-Client-Subnet,
    #: letting the authority see the subscriber's own country anyway
    ECS_SHARE = 0.75

    def _resolver_vantage(
        self, rng: "random.Random", mapping: MappingService
    ) -> ClientSite:
        if self._isp.is_mobile:
            public_share = self._config.mobile_public_resolver_share
        else:
            public_share = self._config.broadband_public_resolver_share
        uses_public = rng.random() < public_share
        if uses_public and rng.random() >= self.ECS_SHARE:
            return mapping.vantage_for(
                self._isp.country, True, rng.randrange(3)
            )
        # ISP resolver path: the authority sees the resolver's egress.
        mix = self._isp.resolved_egress_mix()
        countries = sorted(mix)
        point = rng.random() * sum(mix.values())
        cumulative = 0.0
        egress = countries[-1]
        for country in countries:
            cumulative += mix[country]
            if point <= cumulative:
                egress = country
                break
        return mapping.country_site(egress)

    def _make_flow(
        self,
        day: float,
        sampler: WeightedSampler,
        rng: "random.Random",
        mapping: MappingService,
    ) -> FlowRecord:
        deployed: DeployedFqdn = sampler.sample(rng)
        vantage = self._resolver_vantage(rng, mapping)
        server = mapping.resolve(deployed.fqdn, vantage, day)
        interface = self.exporter.pick_interface(rng)

        if rng.random() < self._config.non_web_share:
            dst_port = rng.randint(1024, 60000)
            protocol = PROTO_TCP
        elif rng.random() < self._config.https_share:
            dst_port = 443
            # QUIC rides UDP/443 (Sect. 7.2's UDP observation).
            protocol = PROTO_UDP if rng.random() < 0.3 else PROTO_TCP
        else:
            dst_port = 80
            protocol = PROTO_TCP

        packets = 1 + min(30, int(rng.expovariate(0.5)))
        return FlowRecord(
            timestamp=day + rng.random(),
            router_id=interface.router_id,
            interface_id=interface.interface_id,
            protocol=protocol,
            src_ip=self._subscriber_ips[
                rng.randrange(len(self._subscriber_ips))
            ],
            dst_ip=server.ip,
            src_port=rng.randint(32768, 60999),
            dst_port=dst_port,
            tos=0,
            sampled_packets=packets,
            sampled_bytes=packets * rng.randint(120, 1400),
        )
