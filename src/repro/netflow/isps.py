"""The four European ISPs of the study (Table 7).

Each :class:`ISPProfile` is an anonymized large ISP: its operating
country, access type (broadband / mobile / mixed), subscriber scale, and
traffic-synthesis parameters.  The access type drives the resolver mix
— mobile subscribers use the ISP resolver almost exclusively, broadband
subscribers increasingly use third-party resolvers — which the paper
identifies as the cause of the mobile operators' higher confinement.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List


class AccessType(enum.Enum):
    BROADBAND = "broadband"
    MOBILE = "mobile"
    MIXED = "mixed"


@dataclass(frozen=True)
class ISPProfile:
    """One ISP of the Sect. 7 study."""

    name: str
    country: str
    access: AccessType
    subscribers_m: float
    demographics: str
    #: relative daily web activity per subscriber (mobile browses less —
    #: much of mobile traffic rides in apps, not browsers)
    web_activity: float
    #: where the ISP's own resolvers egress toward authorities — the
    #: interconnection geography.  German ISPs peer at home (DE-CIX);
    #: the Polish ISP hauls much of its transit to Amsterdam; the
    #: Hungarian ISP interconnects at Vienna, the CEE hub.  Authorities
    #: map clients by this vantage, which is what sends Polish traffic
    #: to the Netherlands and Hungarian traffic to Austria (Fig. 12).
    egress_mix: Dict[str, float] = field(default_factory=dict)

    @property
    def is_mobile(self) -> bool:
        return self.access is AccessType.MOBILE

    def resolved_egress_mix(self) -> Dict[str, float]:
        """The egress mix, defaulting to the home country."""
        return self.egress_mix or {self.country: 1.0}


def default_isps() -> List[ISPProfile]:
    """The Table 7 profiles."""
    return [
        ISPProfile(
            name="DE-Broadband",
            country="DE",
            access=AccessType.BROADBAND,
            subscribers_m=15.0,
            demographics="15+ million broadband households",
            web_activity=1.0,
            egress_mix={"DE": 1.0},
        ),
        ISPProfile(
            name="DE-Mobile",
            country="DE",
            access=AccessType.MOBILE,
            subscribers_m=40.0,
            demographics="40+ million mobile users",
            web_activity=0.12,
            egress_mix={"DE": 1.0},
        ),
        ISPProfile(
            name="PL",
            country="PL",
            access=AccessType.MIXED,
            subscribers_m=11.0,
            demographics="11+ million mobile and broadband users",
            web_activity=0.35,
            egress_mix={"NL": 0.60, "PL": 0.17, "US": 0.23},
        ),
        ISPProfile(
            name="HU",
            country="HU",
            access=AccessType.MOBILE,
            subscribers_m=6.0,
            demographics="6+ million mobile and broadband users",
            web_activity=0.5,
            egress_mix={"AT": 0.85, "HU": 0.15},
        ),
    ]
